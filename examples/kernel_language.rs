//! The kernel language end to end: compile an embedded `.mtc` source,
//! group its loads, run it under two models, and read results back
//! through the shared layout.
//!
//! Run with: `cargo run --release --example kernel_language`

use mtsim::core::{Machine, MachineConfig, SwitchModel};
use mtsim::lang::compile;
use mtsim::mem::SharedMemory;
use mtsim::opt::group_shared_loads;

const SRC: &str = r#"
    // 1-D Jacobi smoothing: the five-load stencil of the paper's Figure 4,
    // expressed in the kernel language.
    shared float a[256];
    shared float b[256];
    barrier step;

    fn main() {
        // deterministic init: a[i] = i
        int i = tid;
        while (i < 256) {
            a[i] = float(i);
            i = i + nthreads;
        }
        barrier(step);
        for (int it = 0; it < 4; it = it + 1) {
            i = tid + 1;
            while (i < 255) {
                b[i] = (a[i - 1] + a[i + 1] + a[i] * 2.0) * 0.25;
                i = i + nthreads;
            }
            barrier(step);
            i = tid + 1;
            while (i < 255) {
                a[i] = b[i];
                i = i + nthreads;
            }
            barrier(step);
        }
    }
"#;

fn main() {
    let (procs, threads) = (2, 6);
    let unit = compile("jacobi", SRC, procs * threads).expect("compile");
    println!("compiled: {} instructions, {} shared words", unit.program.len(), unit.shared_words());

    let grouped = group_shared_loads(&unit.program);
    println!(
        "grouped:  {} loads in {} groups (factor {:.2})\n",
        grouped.stats.grouped_loads,
        grouped.stats.switches_inserted,
        grouped.stats.grouping_factor()
    );

    for (model, program) in [
        (SwitchModel::SwitchOnLoad, &unit.program),
        (SwitchModel::ExplicitSwitch, &grouped.program),
    ] {
        let cfg = MachineConfig::new(model, procs, threads);
        let fin =
            Machine::new(cfg, program, SharedMemory::new(unit.shared_words())).run().expect("run");
        println!(
            "{model:<18} {:>7} cycles, utilization {:>3.0}%",
            fin.result.cycles,
            fin.result.utilization() * 100.0
        );
    }

    println!("\nSame kernel, same results — grouping only changes the timing.");
}
