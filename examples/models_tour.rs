//! A tour of the paper's Figure 1 design space: run the `water` molecular
//! dynamics application under all eight context-switch models and compare
//! cycles, utilization, switches, and traffic.
//!
//! Run with: `cargo run --release --example models_tour`

use mtsim::apps::{build_app, run_app, AppKind, Scale};
use mtsim::core::{MachineConfig, SwitchModel};

fn main() {
    let (procs, t) = (2, 4);
    println!("water under every multithreading model ({procs} procs x {t} threads)\n");
    println!(
        "{:<20} {:>10} {:>6} {:>10} {:>9} {:>9}",
        "model", "cycles", "util", "switches", "run-len", "bits/cyc"
    );
    for model in SwitchModel::ALL {
        let app = build_app(AppKind::Water, Scale::Tiny, procs * t);
        let mut cfg = MachineConfig::new(model, procs, t);
        if model == SwitchModel::Ideal {
            cfg.latency = 0;
        }
        let r = run_app(&app, cfg).expect("tour run");
        println!(
            "{:<20} {:>10} {:>5.0}% {:>10} {:>9.1} {:>9.2}",
            model.name(),
            r.cycles,
            r.utilization() * 100.0,
            r.switches_taken,
            r.run_lengths.mean(),
            r.bits_per_cycle()
        );
    }
    println!("\nEvery model computes bit-identical results (each run is verified");
    println!("against the host reference); they differ only in how well they");
    println!("hide the 200-cycle round trip and what they demand of the network.");
}
