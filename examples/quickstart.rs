//! Quickstart: write a tiny parallel kernel with the builder DSL, group
//! its shared loads, and watch multithreading hide a 200-cycle memory
//! latency.
//!
//! Run with: `cargo run --release --example quickstart`

use mtsim::asm::ProgramBuilder;
use mtsim::core::{Machine, MachineConfig, SwitchModel};
use mtsim::mem::SharedMemory;
use mtsim::opt::group_shared_loads;

fn main() {
    // Each thread sums a strided slice of a shared vector: two shared
    // loads per iteration, then a little arithmetic.
    let n: i64 = 512;
    let mut b = ProgramBuilder::new("dot");
    let acc = b.def_f("acc", 0.0);
    let i = b.def_i("i", b.tid());
    b.while_(i.get().lt(n), |b| {
        let x = b.load_shared_f(i.get());
        let y = b.load_shared_f(i.get() + n);
        b.assign_f(acc, acc.get() + x * y);
        b.assign(i, i.get() + b.nthreads());
    });
    // Every thread publishes its partial sum to its own slot.
    b.store_shared_f(b.tid() + 2 * n, acc.get());
    let program = b.finish();

    // Input image: x[i] = i/8, y[i] = 2 (so the dot product is known).
    let mut shared = SharedMemory::new((2 * n + 64) as u64);
    for k in 0..n {
        shared.write_f64(k as u64, k as f64 / 8.0);
        shared.write_f64((k + n) as u64, 2.0);
    }

    println!("== one processor, one thread, switch-on-load ==");
    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1);
    let run = Machine::new(cfg, &program, shared.clone()).run().expect("run");
    report(&run.result);

    println!("\n== one processor, 12 threads, switch-on-load ==");
    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 12);
    let run = Machine::new(cfg, &program, shared.clone()).run().expect("run");
    report(&run.result);

    println!("\n== one processor, 12 threads, explicit-switch on grouped code ==");
    let grouped = group_shared_loads(&program);
    println!(
        "   (grouping pass: {} loads in {} groups, factor {:.2})",
        grouped.stats.grouped_loads,
        grouped.stats.switches_inserted,
        grouped.stats.grouping_factor()
    );
    let cfg = MachineConfig::new(SwitchModel::ExplicitSwitch, 1, 12);
    let run = Machine::new(cfg, &grouped.program, shared).run().expect("run");
    report(&run.result);

    // Check the math: sum over i of (i/8)*2 = n*(n-1)/8.
    let want: f64 = (0..n).map(|k| k as f64 / 8.0 * 2.0).sum();
    let got: f64 = (0..12).map(|t| run.shared.read_f64((2 * n + t) as u64)).sum();
    assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
    println!("\ndot product verified: {got}");
}

fn report(r: &mtsim::core::RunResult) {
    println!(
        "   {} cycles, utilization {:.0}%, {} switches, mean run-length {:.1}",
        r.cycles,
        r.utilization() * 100.0,
        r.switches_taken,
        r.run_lengths.mean()
    );
}
