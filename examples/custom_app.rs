//! Writing your own parallel application against the public API: a shared
//! histogram built with the runtime's work queue, ticket lock, and
//! barrier, then run under the paper's conditional-switch model with
//! caches.
//!
//! Run with: `cargo run --release --example custom_app`

use mtsim::asm::{ProgramBuilder, SharedLayout};
use mtsim::core::{Machine, MachineConfig, SwitchModel};
use mtsim::isa::AccessHint;
use mtsim::mem::SharedMemory;
use mtsim::opt::group_shared_loads;
use mtsim::rt::{Barrier, TicketLock, WorkQueue};

const ITEMS: i64 = 1000;
const BINS: i64 = 16;
const NTHREADS: i64 = 8;

fn main() {
    // Shared layout: input items, histogram bins, a max-bin cell with its
    // lock, a work queue, and a barrier.
    let mut layout = SharedLayout::new();
    let items = layout.alloc("items", ITEMS as u64) as i64;
    let bins = layout.alloc("bins", BINS as u64) as i64;
    let max_cell = layout.alloc("max", 1) as i64;
    let lock = TicketLock::alloc(&mut layout, "max-lock");
    let wq = WorkQueue::alloc(&mut layout, "items-q");
    let bar = Barrier::alloc(&mut layout, "phases", NTHREADS);

    let mut b = ProgramBuilder::new("histogram");

    // Phase 1: dynamically claim items, bump their bin with fetch-and-add.
    wq.emit_for_each(&mut b, ITEMS, 16, |b, i| {
        let v = b.def_i("v", b.load_shared(i.get() + items));
        b.fetch_add_discard((v.get() & (BINS - 1)) + bins, b.const_i(1), AccessHint::Data);
    });
    bar.emit_wait(&mut b);

    // Phase 2: each thread scans a stride of bins and updates the global
    // max under the lock.
    let i = b.def_i("i", b.tid());
    b.while_(i.get().lt(BINS), |b| {
        let count = b.def_i("count", b.load_shared(i.get() + bins));
        lock.emit_critical(b, |b| {
            let cur = b.def_i("cur", b.load_shared(b.const_i(max_cell)));
            b.if_(count.get().gt(cur.get()), |b| {
                b.store_shared(b.const_i(max_cell), count.get());
            });
        });
        b.assign(i, i.get() + b.nthreads());
    });

    let program = group_shared_loads(&b.finish()).program;

    // Host-side input + reference.
    let mut shared = SharedMemory::new(layout.size());
    let mut want = vec![0i64; BINS as usize];
    for k in 0..ITEMS {
        let v = k * k % 97; // deterministic "data"
        shared.write_i64((items + k) as u64, v);
        want[(v & (BINS - 1)) as usize] += 1;
    }
    let want_max = want.iter().copied().max().unwrap();

    let cfg = MachineConfig::new(SwitchModel::ConditionalSwitch, 4, (NTHREADS / 4) as usize);
    let run = Machine::new(cfg, &program, shared).run().expect("run");

    for (k, &w) in want.iter().enumerate() {
        let got = run.shared.read_i64((bins as usize + k) as u64);
        assert_eq!(got, w, "bin {k}");
    }
    assert_eq!(run.shared.read_i64(max_cell as u64), want_max);

    println!("histogram over {ITEMS} items verified; max bin = {want_max}");
    println!(
        "{} cycles at {:.0}% utilization; cache hit rate {:.0}%; {} switches skipped",
        run.result.cycles,
        run.result.utilization() * 100.0,
        run.result.cache.map(|c| c.hit_rate() * 100.0).unwrap_or(0.0),
        run.result.switches_skipped,
    );
}
