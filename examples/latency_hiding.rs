//! The paper's core phenomenon on a real application: sweep the
//! multithreading level for `sor` and watch the explicit-switch model
//! reach high efficiency with a fraction of the threads the
//! switch-on-load baseline needs.
//!
//! Run with: `cargo run --release --example latency_hiding`

use mtsim::apps::{app_builder, baseline_cycles, efficiency, run_app, AppKind, Scale};
use mtsim::core::{MachineConfig, SwitchModel};

fn main() {
    let procs = 4;
    let build = app_builder(AppKind::Sor, Scale::Small);
    let baseline = baseline_cycles(&build);
    println!("sor, {procs} processors, 200-cycle latency\n");
    println!("{:>3}  {:>16}  {:>16}", "T", "switch-on-load", "explicit-switch");
    for t in [1, 2, 4, 6, 8, 12, 16] {
        let app = build(procs * t);
        let sol = run_app(&app, MachineConfig::new(SwitchModel::SwitchOnLoad, procs, t))
            .expect("switch-on-load run");
        let exp = run_app(&app, MachineConfig::new(SwitchModel::ExplicitSwitch, procs, t))
            .expect("explicit-switch run");
        println!(
            "{t:>3}  {:>15.0}%  {:>15.0}%",
            efficiency(baseline, procs, sol.cycles) * 100.0,
            efficiency(baseline, procs, exp.cycles) * 100.0
        );
    }
    println!("\nGrouping the five neighbor loads of the SOR stencil (paper Fig. 4)");
    println!("multiplies the run-length ~5x, so far fewer threads cover the latency.");
}
