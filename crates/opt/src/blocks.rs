//! Basic-block discovery over a linear instruction stream.

use mtsim_asm::Program;
use mtsim_isa::Target;
use std::ops::Range;

/// Returns the basic blocks of `prog` as half-open instruction ranges, in
/// program order.
///
/// Leaders are: instruction 0, every branch/jump target, and every
/// instruction following a control instruction (branch, jump, halt).
pub fn basic_blocks(prog: &Program) -> Vec<Range<usize>> {
    let n = prog.len();
    let mut leader = vec![false; n + 1];
    leader[0] = true;
    leader[n] = true;
    for (pc, inst) in prog.insts().iter().enumerate() {
        if let Some(Target::Pc(t)) = inst.target() {
            leader[t as usize] = true;
        }
        if inst.is_control() {
            leader[pc + 1] = true;
        }
    }
    let mut blocks = Vec::new();
    let mut start = 0;
    for (pc, &lead) in leader.iter().enumerate().skip(1) {
        if lead {
            blocks.push(start..pc);
            start = pc;
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_asm::ProgramBuilder;

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new("t");
        let x = b.def_i("x", 1);
        let y = b.def_i("y", x.get() + 2);
        b.store_local(b.const_i(0), y.get());
        let p = b.finish();
        let blocks = basic_blocks(&p);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0], 0..p.len());
    }

    #[test]
    fn loop_splits_blocks() {
        let mut b = ProgramBuilder::new("t");
        let i = b.def_i("i", 0);
        b.while_(i.get().lt(4), |b| {
            b.assign(i, i.get() + 1);
        });
        let p = b.finish();
        let blocks = basic_blocks(&p);
        // init block, loop head (branch), body+backjump, exit(halt)
        assert!(blocks.len() >= 3, "{blocks:?}\n{}", p.listing());
        // Blocks tile the program exactly.
        let mut covered = 0;
        for r in &blocks {
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, p.len());
    }

    #[test]
    fn branch_targets_start_blocks() {
        let mut b = ProgramBuilder::new("t");
        let x = b.def_i("x", 0);
        b.if_else(b.tid().eq(0), |b| b.assign(x, 1), |b| b.assign(x, 2));
        let p = b.finish();
        let blocks = basic_blocks(&p);
        for inst in p.insts() {
            if let Some(Target::Pc(t)) = inst.target() {
                assert!(
                    blocks.iter().any(|r| r.start == t as usize),
                    "target @{t} is not a leader"
                );
            }
        }
    }
}
