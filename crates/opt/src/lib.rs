//! # mtsim-opt
//!
//! The paper's compiler post-processor (§5.1): basic-block discovery,
//! intra-block dependency analysis, **grouping of shared loads**, and
//! insertion of the explicit context-switch instruction after each group.
//!
//! > "we wrote a post-processor which finds the basic blocks in an object
//! > file, does dependency analysis within the basic blocks, and then
//! > reorganizes the instructions so as to group shared loads together. It
//! > then inserts a single context switch instruction after each group of
//! > independent shared loads."
//!
//! The analysis is intra-block and uses the paper's pessimistic aliasing
//! assumption (footnote 1): *every shared store might conflict with every
//! shared load*. Local memory operations are treated with the same
//! pessimism among themselves. Register dependencies distinguish plain
//! ordering from **completion** dependencies: an instruction that reads (or
//! overwrites) the destination of a still-pending shared load can only be
//! placed after a `Switch`, which is what forces groups to close.
//!
//! ## Example
//!
//! ```
//! use mtsim_asm::ProgramBuilder;
//! use mtsim_opt::group_shared_loads;
//!
//! let mut b = ProgramBuilder::new("avg");
//! let x = b.load_shared_f(b.const_i(10));
//! let y = b.load_shared_f(b.const_i(11));
//! let avg = b.def_f("avg", (x + y) * 0.5);
//! b.store_shared_f(b.const_i(12), avg.get());
//! let original = b.finish();
//!
//! let grouped = group_shared_loads(&original);
//! // Both loads now sit in one group guarded by a single switch.
//! assert_eq!(grouped.stats.switches_inserted, 1);
//! assert_eq!(grouped.stats.grouped_loads, 2);
//! ```

mod blocks;
mod dag;
mod pass;

pub use blocks::basic_blocks;
pub use pass::{group_shared_loads, GroupStats, GroupingResult};
