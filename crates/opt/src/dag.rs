//! Intra-block dependency DAG construction.
//!
//! Two edge flavors:
//!
//! * **order** edges — the successor may be emitted any time after the
//!   predecessor has been *issued* (memory-ordering edges, WAR on ordinary
//!   registers, …);
//! * **completion** edges — the successor additionally requires the
//!   predecessor's *value*: it reads or overwrites the destination of a
//!   blocking shared read, so a `Switch` must intervene if the predecessor
//!   is still pending.

use mtsim_isa::Inst;

/// A dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Edge {
    /// Successor node (index within the block).
    pub to: usize,
    /// True if the successor needs the predecessor's completed value.
    pub needs_completion: bool,
}

/// Dependency DAG for one basic block (terminator excluded by the caller).
#[derive(Debug, Default)]
pub(crate) struct Dag {
    /// Outgoing edges per node.
    pub succs: Vec<Vec<Edge>>,
    /// Number of incoming edges per node.
    pub preds: Vec<usize>,
    /// Number of incoming completion edges per node.
    pub completion_preds: Vec<usize>,
}

/// True for instructions that block awaiting a reply: shared loads and
/// fetch-and-adds whose result register is used (a discarded fetch-and-add,
/// `rd = r0`, is fire-and-forget like a store).
pub(crate) fn is_blocking_read(inst: &Inst) -> bool {
    match inst {
        Inst::FetchAdd { rd, .. } => !rd.is_zero(),
        _ => inst.is_shared_read(),
    }
}

/// True for memory operations that behave like stores for ordering
/// purposes in the given space.
fn is_shared_storelike(inst: &Inst) -> bool {
    inst.is_shared_write() || matches!(inst, Inst::FetchAdd { .. })
}

fn is_local_load(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Load { space: mtsim_isa::Space::Local, .. }
            | Inst::FLoad { space: mtsim_isa::Space::Local, .. }
            | Inst::LoadPair { space: mtsim_isa::Space::Local, .. }
    )
}

fn is_local_store(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Store { space: mtsim_isa::Space::Local, .. }
            | Inst::FStore { space: mtsim_isa::Space::Local, .. }
            | Inst::StorePair { space: mtsim_isa::Space::Local, .. }
    )
}

impl Dag {
    /// Builds the DAG for `insts` (one basic block, no terminator).
    pub(crate) fn build(insts: &[Inst]) -> Dag {
        let n = insts.len();
        let mut dag =
            Dag { succs: vec![Vec::new(); n], preds: vec![0; n], completion_preds: vec![0; n] };

        // Register bookkeeping. Index space: 0..32 int, 32..64 fp.
        const NREGS: usize = 64;
        let mut last_def: [Option<usize>; NREGS] = [None; NREGS];
        let mut readers_since_def: Vec<Vec<usize>> = vec![Vec::new(); NREGS];

        // Memory bookkeeping (pessimistic aliasing within each space).
        let mut last_shared_store: Option<usize> = None;
        let mut shared_accesses_since_store: Vec<usize> = Vec::new();
        let mut last_local_store: Option<usize> = None;
        let mut local_accesses_since_store: Vec<usize> = Vec::new();

        let add_edge = |dag: &mut Dag, from: usize, to: usize, needs: bool| {
            debug_assert!(from < to, "edge must go forward: {from} -> {to}");
            dag.succs[from].push(Edge { to, needs_completion: needs });
            dag.preds[to] += 1;
            if needs {
                dag.completion_preds[to] += 1;
            }
        };

        for (i, inst) in insts.iter().enumerate() {
            let uses: Vec<usize> = inst
                .int_uses()
                .iter()
                .map(|r| r.index())
                .chain(inst.fp_uses().iter().map(|f| 32 + f.index()))
                .collect();
            let defs: Vec<usize> = inst
                .int_def()
                .iter()
                .map(|r| r.index())
                .chain(inst.fp_defs().iter().map(|f| 32 + f.index()))
                .collect();

            // RAW: reading a value. Needs completion if producer is a
            // blocking read (the value arrives only after a Switch).
            for &u in &uses {
                if let Some(d) = last_def[u] {
                    add_edge(&mut dag, d, i, is_blocking_read(&insts[d]));
                }
                readers_since_def[u].push(i);
            }
            // WAR / WAW on destinations.
            for &d in &defs {
                for &r in &readers_since_def[d] {
                    if r != i {
                        // Overwriting after a read: plain ordering.
                        add_edge(&mut dag, r, i, false);
                    }
                }
                if let Some(prev) = last_def[d] {
                    // Overwriting a pending load's destination would race
                    // the in-flight reply: needs completion.
                    add_edge(&mut dag, prev, i, is_blocking_read(&insts[prev]));
                }
                last_def[d] = Some(i);
                readers_since_def[d].clear();
            }

            // Shared-memory ordering: stores (and fetch-and-adds) conflict
            // with every shared access; loads commute with loads.
            if inst.is_shared_access() {
                if is_shared_storelike(inst) {
                    for &a in &shared_accesses_since_store {
                        add_edge(&mut dag, a, i, false);
                    }
                    if let Some(s) = last_shared_store {
                        if !shared_accesses_since_store.contains(&s) {
                            add_edge(&mut dag, s, i, false);
                        }
                    }
                    last_shared_store = Some(i);
                    shared_accesses_since_store.clear();
                } else if let Some(s) = last_shared_store {
                    add_edge(&mut dag, s, i, false);
                }
                shared_accesses_since_store.push(i);
            }

            // Local-memory ordering with the same pessimism.
            if is_local_load(inst) || is_local_store(inst) {
                if is_local_store(inst) {
                    for &a in &local_accesses_since_store {
                        add_edge(&mut dag, a, i, false);
                    }
                    if let Some(s) = last_local_store {
                        if !local_accesses_since_store.contains(&s) {
                            add_edge(&mut dag, s, i, false);
                        }
                    }
                    last_local_store = Some(i);
                    local_accesses_since_store.clear();
                } else if let Some(s) = last_local_store {
                    add_edge(&mut dag, s, i, false);
                }
                local_accesses_since_store.push(i);
            }
        }
        dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_isa::{AccessHint, AluOp, FReg, Reg, Space};

    fn sload(rd: u8, base: u8) -> Inst {
        Inst::Load {
            space: Space::Shared,
            rd: Reg::new(rd),
            base: Reg::new(base),
            offset: 0,
            hint: AccessHint::Data,
        }
    }

    #[test]
    fn raw_from_load_needs_completion() {
        let insts = vec![
            sload(8, 9),
            Inst::AluI { op: AluOp::Add, rd: Reg::new(10), rs: Reg::new(8), imm: 1 },
        ];
        let dag = Dag::build(&insts);
        assert_eq!(dag.succs[0], vec![Edge { to: 1, needs_completion: true }]);
        assert_eq!(dag.completion_preds[1], 1);
    }

    #[test]
    fn independent_loads_have_no_edges() {
        let insts = vec![sload(8, 9), sload(10, 9)];
        let dag = Dag::build(&insts);
        assert!(dag.succs[0].is_empty());
        assert_eq!(dag.preds[1], 0);
    }

    #[test]
    fn shared_store_orders_after_prior_loads() {
        let insts = vec![
            sload(8, 9),
            Inst::Store {
                space: Space::Shared,
                rs: Reg::new(11),
                base: Reg::new(9),
                offset: 1,
                hint: AccessHint::Data,
            },
            sload(12, 9),
        ];
        let dag = Dag::build(&insts);
        // load0 -> store (alias pessimism), store -> load2
        assert!(dag.succs[0].iter().any(|e| e.to == 1 && !e.needs_completion));
        assert!(dag.succs[1].iter().any(|e| e.to == 2));
    }

    #[test]
    fn discarded_fetch_add_is_not_blocking() {
        let faa = Inst::FetchAdd {
            rd: Reg::ZERO,
            rs: Reg::new(8),
            base: Reg::new(9),
            offset: 0,
            hint: AccessHint::Data,
        };
        assert!(!is_blocking_read(&faa));
        let faa2 = Inst::FetchAdd {
            rd: Reg::new(10),
            rs: Reg::new(8),
            base: Reg::new(9),
            offset: 0,
            hint: AccessHint::Data,
        };
        assert!(is_blocking_read(&faa2));
    }

    #[test]
    fn waw_on_pending_load_dest_needs_completion() {
        let insts = vec![
            sload(8, 9),
            Inst::AluI { op: AluOp::Add, rd: Reg::new(8), rs: Reg::ZERO, imm: 0 },
        ];
        let dag = Dag::build(&insts);
        assert!(dag.succs[0].iter().any(|e| e.to == 1 && e.needs_completion));
    }

    #[test]
    fn local_ops_do_not_order_against_shared() {
        let insts = vec![
            Inst::Store {
                space: Space::Local,
                rs: Reg::new(8),
                base: Reg::new(9),
                offset: 0,
                hint: AccessHint::Data,
            },
            sload(10, 11),
        ];
        let dag = Dag::build(&insts);
        assert!(dag.succs[0].is_empty());
    }

    #[test]
    fn load_pair_fp_raw_needs_completion() {
        let insts = vec![
            Inst::LoadPair {
                space: Space::Shared,
                fd1: FReg::new(0),
                fd2: FReg::new(1),
                base: Reg::new(9),
                offset: 0,
            },
            Inst::Fpu {
                op: mtsim_isa::FpuOp::Add,
                fd: FReg::new(2),
                fs: FReg::new(0),
                ft: FReg::new(1),
            },
        ];
        let dag = Dag::build(&insts);
        assert_eq!(dag.completion_preds[1], 2);
    }
}
