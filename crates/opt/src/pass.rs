//! The grouping pass: list-schedules each basic block so that independent
//! shared loads are issued together, then inserts one `Switch` per group.

use crate::blocks::basic_blocks;
use crate::dag::{is_blocking_read, Dag};
use mtsim_asm::Program;
use mtsim_isa::{Inst, Pc, Target};
use std::collections::BTreeMap;

/// Statistics produced by [`group_shared_loads`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Number of `Switch` instructions inserted (= number of groups).
    pub switches_inserted: usize,
    /// Total blocking shared reads placed into groups.
    pub grouped_loads: usize,
    /// Histogram of group sizes: `size -> count`.
    pub group_sizes: BTreeMap<usize, usize>,
    /// Number of basic blocks processed.
    pub blocks: usize,
}

impl GroupStats {
    /// Mean loads per group — the paper's static "grouping" factor.
    /// Returns 0.0 if there are no groups.
    pub fn grouping_factor(&self) -> f64 {
        if self.switches_inserted == 0 {
            0.0
        } else {
            self.grouped_loads as f64 / self.switches_inserted as f64
        }
    }

    /// Largest group formed.
    pub fn max_group(&self) -> usize {
        self.group_sizes.keys().copied().max().unwrap_or(0)
    }
}

/// Result of the grouping pass.
#[derive(Debug, Clone)]
pub struct GroupingResult {
    /// The reorganized program with `Switch` instructions inserted.
    pub program: Program,
    /// Static statistics about the transformation.
    pub stats: GroupStats,
}

/// Reorganizes `prog` for the explicit-switch/conditional-switch models:
/// groups independent shared loads within each basic block and inserts a
/// single `Switch` after each group.
///
/// The transformation preserves semantics: per-register write order, memory
/// order within each space (with the paper's pessimistic aliasing), and
/// control structure are all unchanged.
///
/// # Panics
///
/// Panics if `prog` already contains `Switch` instructions (the pass
/// expects compiler-natural input and is not idempotent).
pub fn group_shared_loads(prog: &Program) -> GroupingResult {
    assert_eq!(prog.switch_count(), 0, "grouping pass expects a switch-free input program");

    let blocks = basic_blocks(prog);
    let mut out: Vec<Inst> = Vec::with_capacity(prog.len() + prog.len() / 4);
    let mut stats = GroupStats { blocks: blocks.len(), ..GroupStats::default() };
    // old leader pc -> new pc
    let mut leader_map: Vec<(Pc, Pc)> = Vec::with_capacity(blocks.len());

    for range in &blocks {
        leader_map.push((range.start as Pc, out.len() as Pc));
        let insts = &prog.insts()[range.clone()];
        schedule_block(insts, &mut out, &mut stats);
    }

    // Rewrite branch targets to the new leader positions.
    for inst in &mut out {
        if let Some(Target::Pc(old)) = inst.target() {
            let new = leader_map
                .iter()
                .find(|&&(o, _)| o == old)
                .map(|&(_, n)| n)
                .unwrap_or_else(|| panic!("branch target @{old} is not a block leader"));
            inst.set_target(Target::Pc(new));
        }
    }

    GroupingResult {
        program: Program::from_raw_parts(prog.name().to_string(), out)
            .with_local_words(prog.local_words()),
        stats,
    }
}

fn schedule_block(insts: &[Inst], out: &mut Vec<Inst>, stats: &mut GroupStats) {
    let (body, terminator) = match insts.last() {
        Some(t) if t.is_control() => (&insts[..insts.len() - 1], Some(*t)),
        _ => (insts, None),
    };

    if !body.iter().any(is_blocking_read) {
        // Nothing to group: keep the block untouched (zero penalty).
        out.extend_from_slice(insts);
        return;
    }

    let n = body.len();
    let dag = Dag::build(body);
    let mut unemitted_preds = dag.preds.clone();
    let mut uncompleted_needs = dag.completion_preds.clone();
    let mut emitted = vec![false; n];
    let mut pending: Vec<usize> = Vec::new();
    let mut emitted_count = 0usize;

    let candidate =
        |i: usize, emitted: &[bool], unemitted_preds: &[usize], uncompleted_needs: &[usize]| {
            !emitted[i] && unemitted_preds[i] == 0 && uncompleted_needs[i] == 0
        };

    while emitted_count < n {
        // 1. Issue every ready blocking read (opens / extends the group).
        let mut issued_any = false;
        loop {
            let next = (0..n).find(|&i| {
                candidate(i, &emitted, &unemitted_preds, &uncompleted_needs)
                    && is_blocking_read(&body[i])
            });
            let Some(i) = next else { break };
            emitted[i] = true;
            emitted_count += 1;
            out.push(body[i]);
            pending.push(i);
            issued_any = true;
            for e in &dag.succs[i] {
                unemitted_preds[e.to] -= 1;
                // completion deps stay blocked until the Switch
            }
        }
        if issued_any {
            continue;
        }

        // 2. Emit one ready non-read instruction.
        if let Some(i) =
            (0..n).find(|&i| candidate(i, &emitted, &unemitted_preds, &uncompleted_needs))
        {
            emitted[i] = true;
            emitted_count += 1;
            out.push(body[i]);
            for e in &dag.succs[i] {
                unemitted_preds[e.to] -= 1;
                if e.needs_completion {
                    uncompleted_needs[e.to] -= 1;
                }
            }
            continue;
        }

        // 3. Stuck on pending values: close the group with a Switch.
        assert!(!pending.is_empty(), "dependency cycle in basic block");
        close_group(&dag, &mut pending, &mut uncompleted_needs, out, stats);
    }

    // Loads still in flight at block end: close the group before leaving
    // the block (intra-block analysis cannot see uses in successor blocks).
    if !pending.is_empty() {
        close_group(&dag, &mut pending, &mut uncompleted_needs, out, stats);
    }

    if let Some(t) = terminator {
        out.push(t);
    }
}

fn close_group(
    dag: &Dag,
    pending: &mut Vec<usize>,
    uncompleted_needs: &mut [usize],
    out: &mut Vec<Inst>,
    stats: &mut GroupStats,
) {
    out.push(Inst::Switch);
    stats.switches_inserted += 1;
    stats.grouped_loads += pending.len();
    *stats.group_sizes.entry(pending.len()).or_insert(0) += 1;
    for p in pending.drain(..) {
        for e in &dag.succs[p] {
            if e.needs_completion {
                uncompleted_needs[e.to] -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_asm::ProgramBuilder;

    /// Builds the paper's Figure 4 sor inner-loop flavor: 5 shared loads
    /// combined into one result.
    fn sor_like() -> Program {
        let mut b = ProgramBuilder::new("sor-inner");
        let base = 100i64;
        let n = b.load_shared_f(b.const_i(base));
        let s = b.load_shared_f(b.const_i(base + 1));
        let e = b.load_shared_f(b.const_i(base + 2));
        let w = b.load_shared_f(b.const_i(base + 3));
        let c = b.load_shared_f(b.const_i(base + 4));
        let avg = b.def_f("avg", (n + s + e + w + c) * 0.2);
        b.store_shared_f(b.const_i(base + 10), avg.get());
        b.finish()
    }

    #[test]
    fn figure4_five_loads_one_switch() {
        let p = sor_like();
        let g = group_shared_loads(&p);
        assert_eq!(g.stats.switches_inserted, 1, "{}", g.program.listing());
        assert_eq!(g.stats.grouped_loads, 5);
        assert_eq!(g.stats.max_group(), 5);
        assert!((g.stats.grouping_factor() - 5.0).abs() < 1e-12);

        // The five loads are contiguous, and the single switch separates
        // them from the first use of a loaded value (independent work such
        // as loading the 0.2 constant may legally sit between group and
        // switch — it only widens the overlap window).
        let insts = g.program.insts();
        let first_load = insts.iter().position(|i| i.is_shared_read()).unwrap();
        for k in 0..5 {
            assert!(insts[first_load + k].is_shared_read(), "{}", g.program.listing());
        }
        let sw = insts.iter().position(|i| matches!(i, Inst::Switch)).unwrap();
        let first_use = insts
            .iter()
            .position(|i| matches!(i, Inst::Fpu { op: mtsim_isa::FpuOp::Add, .. }))
            .unwrap();
        assert!(first_load + 4 < sw && sw < first_use, "{}", g.program.listing());
    }

    #[test]
    fn dependent_loads_split_groups() {
        // b = *(a); c = *(b)  -- pointer chase cannot be grouped.
        let mut b = ProgramBuilder::new("chase");
        let pa = b.load_shared(b.const_i(10));
        let va = b.def_i("va", pa);
        let pb = b.load_shared(va.get());
        let vb = b.def_i("vb", pb);
        b.store_shared(b.const_i(20), vb.get());
        let p = b.finish();
        let g = group_shared_loads(&p);
        assert_eq!(g.stats.switches_inserted, 2, "{}", g.program.listing());
        assert_eq!(g.stats.max_group(), 1);
    }

    #[test]
    fn loads_do_not_cross_shared_stores() {
        let mut b = ProgramBuilder::new("st-barrier");
        let x = b.def_i("x", b.load_shared(b.const_i(0)));
        b.store_shared(b.const_i(1), x.get());
        let y = b.def_i("y", b.load_shared(b.const_i(2)));
        b.store_shared(b.const_i(3), y.get());
        let p = b.finish();
        let g = group_shared_loads(&p);
        // The second load must stay after the first store.
        let insts = g.program.insts();
        let store1 = insts.iter().position(|i| i.is_shared_write()).unwrap();
        let load2 = insts.iter().enumerate().filter(|(_, i)| i.is_shared_read()).nth(1).unwrap().0;
        assert!(load2 > store1, "{}", g.program.listing());
        assert_eq!(g.stats.switches_inserted, 2);
    }

    #[test]
    fn branch_targets_remain_valid() {
        let mut b = ProgramBuilder::new("looped");
        let acc = b.def_f("acc", 0.0);
        b.for_range("i", 0, 8, |b, i| {
            let v = b.load_shared_f(i.get() + 100);
            let w = b.load_shared_f(i.get() + 200);
            b.assign_f(acc, acc.get() + v + w);
        });
        b.store_shared_f(b.const_i(300), acc.get());
        let p = b.finish();
        let g = group_shared_loads(&p);
        // All targets point at valid pcs and at block leaders.
        let blocks = basic_blocks(&g.program);
        for inst in g.program.insts() {
            if let Some(Target::Pc(t)) = inst.target() {
                assert!(blocks.iter().any(|r| r.start == t as usize));
            }
        }
        // Two loads per iteration grouped under a single switch.
        assert_eq!(g.stats.max_group(), 2, "{}", g.program.listing());
    }

    #[test]
    fn blocks_without_loads_are_untouched() {
        let mut b = ProgramBuilder::new("pure");
        let x = b.def_i("x", 3);
        let y = b.def_i("y", x.get() * 7);
        b.store_local(b.const_i(0), y.get());
        let p = b.finish();
        let g = group_shared_loads(&p);
        assert_eq!(g.program.insts(), p.insts());
        assert_eq!(g.stats.switches_inserted, 0);
    }

    #[test]
    fn discarded_fetch_add_needs_no_switch() {
        let mut b = ProgramBuilder::new("faa");
        b.fetch_add_discard(b.const_i(5), b.const_i(1), mtsim_isa::AccessHint::Data);
        let p = b.finish();
        let g = group_shared_loads(&p);
        assert_eq!(g.stats.switches_inserted, 0, "{}", g.program.listing());
    }

    #[test]
    fn semantics_preserving_register_order() {
        // x = load a; x = x + 1; y = load b; store(y + x)
        let mut b = ProgramBuilder::new("order");
        let x = b.def_i("x", b.load_shared(b.const_i(0)));
        b.assign(x, x.get() + 1);
        let y = b.def_i("y", b.load_shared(b.const_i(1)));
        b.store_shared(b.const_i(2), y.get() + x.get());
        let p = b.finish();
        let g = group_shared_loads(&p);
        // Both loads are independent (different dests) so they group.
        assert_eq!(g.stats.max_group(), 2, "{}", g.program.listing());
        // The increment of x must come after the switch.
        let insts = g.program.insts();
        let sw = insts.iter().position(|i| matches!(i, Inst::Switch)).unwrap();
        let inc = insts.iter().position(|i| matches!(i, Inst::AluI { imm: 1, .. })).unwrap();
        assert!(inc > sw);
    }

    #[test]
    fn local_ops_may_move_across_shared_loads() {
        let mut b = ProgramBuilder::new("mix");
        let l = b.def_i("l", b.load_local(b.const_i(0)));
        let s = b.def_i("s", b.load_shared(b.const_i(1)));
        let t = b.def_i("t", b.load_shared(b.const_i(2)));
        b.store_local(b.const_i(3), l.get() + 1);
        b.store_shared(b.const_i(4), s.get() + t.get());
        let p = b.finish();
        let g = group_shared_loads(&p);
        assert_eq!(g.stats.max_group(), 2, "{}", g.program.listing());
    }

    #[test]
    #[should_panic(expected = "switch-free")]
    fn rejects_already_switched_input() {
        let mut b = ProgramBuilder::new("sw");
        b.explicit_switch();
        let p = b.finish();
        let _ = group_shared_loads(&p);
    }

    #[test]
    fn grouped_program_size_grows_only_by_switches() {
        let p = sor_like();
        let g = group_shared_loads(&p);
        assert_eq!(g.program.len(), p.len() + g.stats.switches_inserted);
    }

    #[test]
    fn loadpair_groups_with_loads() {
        let mut b = ProgramBuilder::new("pair");
        let (x, y) = b.load_pair_shared_f("pos", b.const_i(10));
        let z = b.load_shared_f(b.const_i(20));
        let s = b.def_f("s", x.get() + y.get() + z);
        b.store_shared_f(b.const_i(30), s.get());
        let p = b.finish();
        let g = group_shared_loads(&p);
        assert_eq!(g.stats.switches_inserted, 1, "{}", g.program.listing());
        assert_eq!(g.stats.grouped_loads, 2); // LoadPair + FLoad
    }
}
