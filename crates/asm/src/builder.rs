//! The structured program builder and its code generator.
//!
//! Code generation is deliberately "compiler-natural": expressions are
//! evaluated in order, each load is emitted immediately before its first
//! use, and no shared-load grouping is performed — that is the job of the
//! `mtsim-opt` post-pass, exactly as in the paper where a separate
//! post-processor rewrites `-O2` object code.

use crate::expr::{Cond, FExpr, IExpr};
use crate::layout::LocalFrame;
use crate::program::{LabelTable, Program};
use mtsim_isa::{AccessHint, AluOp, FReg, Inst, LabelId, Pc, Reg, Space};

/// Handle to an integer variable declared with [`ProgramBuilder::def_i`].
///
/// Variables live in registers for their enclosing scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IVar(usize);

impl IVar {
    /// The variable's value as an expression.
    pub fn get(self) -> IExpr {
        IExpr::Var(self.0)
    }
}

impl From<IVar> for IExpr {
    fn from(v: IVar) -> IExpr {
        v.get()
    }
}

/// Handle to a floating-point variable declared with
/// [`ProgramBuilder::def_f`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FVar(usize);

impl FVar {
    /// The variable's value as an expression.
    pub fn get(self) -> FExpr {
        FExpr::Var(self.0)
    }
}

impl From<FVar> for FExpr {
    fn from(v: FVar) -> FExpr {
        v.get()
    }
}

#[derive(Debug)]
struct IVarSlot {
    name: String,
    reg: Reg,
    alive: bool,
}

#[derive(Debug)]
struct FVarSlot {
    name: String,
    reg: FReg,
    alive: bool,
}

/// Structured builder producing a [`Program`].
///
/// See the crate docs for an example. Scoped constructs (`if_`, `while_`,
/// `for_range`) free the registers of variables declared inside their
/// bodies when the body ends.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: LabelTable,
    ivars: Vec<IVarSlot>,
    fvars: Vec<FVarSlot>,
    int_pool: std::collections::VecDeque<Reg>,
    fp_pool: std::collections::VecDeque<FReg>,
    temps_i: Vec<Reg>,
    temps_f: Vec<FReg>,
    scopes: Vec<(Vec<usize>, Vec<usize>)>,
    local: LocalFrame,
}

impl ProgramBuilder {
    /// Creates a builder for a program named `name`.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        // Allocatable pools: r6..r31 except r29 (sp) for integers (r0..r5
        // are ABI/runtime registers), all of f0..f31 for floats.
        let int_pool: std::collections::VecDeque<Reg> =
            (6..32).filter(|&n| n != 29).map(Reg::new).collect();
        let fp_pool: std::collections::VecDeque<FReg> = (0..32).map(FReg::new).collect();
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: LabelTable::default(),
            ivars: Vec::new(),
            fvars: Vec::new(),
            int_pool,
            fp_pool,
            temps_i: Vec::new(),
            temps_f: Vec::new(),
            scopes: vec![(Vec::new(), Vec::new())],
            local: LocalFrame::new(),
        }
    }

    // ------------------------------------------------------------------
    // Expression constructors (no code emitted until consumed)
    // ------------------------------------------------------------------

    /// The thread id (0-based), available in every thread at entry.
    pub fn tid(&self) -> IExpr {
        IExpr::Tid
    }

    /// The total number of threads in the computation.
    pub fn nthreads(&self) -> IExpr {
        IExpr::NThreads
    }

    /// Integer constant expression.
    pub fn const_i(&self, v: i64) -> IExpr {
        IExpr::Const(v)
    }

    /// Float constant expression.
    pub fn const_f(&self, v: f64) -> FExpr {
        FExpr::Const(v)
    }

    /// Shared-memory integer load expression.
    pub fn load_shared(&self, addr: impl Into<IExpr>) -> IExpr {
        IExpr::LoadShared(Box::new(addr.into()), AccessHint::Data)
    }

    /// Shared-memory integer load with an explicit [`AccessHint`] (used by
    /// the runtime to tag spin-loop traffic).
    pub fn load_shared_hint(&self, addr: impl Into<IExpr>, hint: AccessHint) -> IExpr {
        IExpr::LoadShared(Box::new(addr.into()), hint)
    }

    /// Shared-memory float load expression.
    pub fn load_shared_f(&self, addr: impl Into<IExpr>) -> FExpr {
        FExpr::LoadShared(Box::new(addr.into()))
    }

    /// Local-memory integer load expression.
    pub fn load_local(&self, addr: impl Into<IExpr>) -> IExpr {
        IExpr::LoadLocal(Box::new(addr.into()))
    }

    /// Local-memory float load expression.
    pub fn load_local_f(&self, addr: impl Into<IExpr>) -> FExpr {
        FExpr::LoadLocal(Box::new(addr.into()))
    }

    /// Atomic fetch-and-add expression: evaluates to the pre-increment
    /// value of the shared word.
    pub fn fetch_add(&self, addr: impl Into<IExpr>, inc: impl Into<IExpr>) -> IExpr {
        IExpr::FetchAdd(Box::new(addr.into()), Box::new(inc.into()), AccessHint::Data)
    }

    /// Fetch-and-add tagged with an [`AccessHint`].
    pub fn fetch_add_hint(
        &self,
        addr: impl Into<IExpr>,
        inc: impl Into<IExpr>,
        hint: AccessHint,
    ) -> IExpr {
        IExpr::FetchAdd(Box::new(addr.into()), Box::new(inc.into()), hint)
    }

    // ------------------------------------------------------------------
    // Variables
    // ------------------------------------------------------------------

    /// Declares an integer variable initialized to `init`, allocating a
    /// register for the current scope.
    ///
    /// # Panics
    ///
    /// Panics if the integer register pool is exhausted (restructure the
    /// program to use local-memory arrays).
    pub fn def_i(&mut self, name: &str, init: impl Into<IExpr>) -> IVar {
        let reg = self
            .int_pool
            .pop_back()
            .unwrap_or_else(|| panic!("{}: out of integer registers at var '{name}'", self.name));
        let idx = self.ivars.len();
        self.ivars.push(IVarSlot { name: name.to_string(), reg, alive: true });
        self.scopes.last_mut().expect("scope stack empty").0.push(idx);
        let e = init.into();
        self.eval_i(&e, Some(reg));
        self.reset_temps();
        IVar(idx)
    }

    /// Declares a float variable initialized to `init`.
    ///
    /// # Panics
    ///
    /// Panics if the FP register pool is exhausted.
    pub fn def_f(&mut self, name: &str, init: impl Into<FExpr>) -> FVar {
        let reg = self
            .fp_pool
            .pop_back()
            .unwrap_or_else(|| panic!("{}: out of fp registers at var '{name}'", self.name));
        let idx = self.fvars.len();
        self.fvars.push(FVarSlot { name: name.to_string(), reg, alive: true });
        self.scopes.last_mut().expect("scope stack empty").1.push(idx);
        let e = init.into();
        self.eval_f(&e, Some(reg));
        self.reset_temps();
        FVar(idx)
    }

    /// Reassigns an integer variable.
    pub fn assign(&mut self, var: IVar, value: impl Into<IExpr>) {
        let reg = self.ivar_reg(var.0);
        let e = value.into();
        self.eval_i(&e, Some(reg));
        self.reset_temps();
    }

    /// Reassigns a float variable.
    pub fn assign_f(&mut self, var: FVar, value: impl Into<FExpr>) {
        let reg = self.fvar_reg(var.0);
        let e = value.into();
        self.eval_f(&e, Some(reg));
        self.reset_temps();
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    /// Stores an integer to shared memory.
    pub fn store_shared(&mut self, addr: impl Into<IExpr>, value: impl Into<IExpr>) {
        self.store_shared_hint(addr, value, AccessHint::Data);
    }

    /// Stores an integer to shared memory with an [`AccessHint`].
    pub fn store_shared_hint(
        &mut self,
        addr: impl Into<IExpr>,
        value: impl Into<IExpr>,
        hint: AccessHint,
    ) {
        let v = value.into();
        let rs = self.eval_i(&v, None);
        let a = addr.into();
        let (base, offset) = self.eval_addr(&a);
        self.insts.push(Inst::Store { space: Space::Shared, rs, base, offset, hint });
        self.reset_temps();
    }

    /// Stores a float to shared memory.
    pub fn store_shared_f(&mut self, addr: impl Into<IExpr>, value: impl Into<FExpr>) {
        let v = value.into();
        let fs = self.eval_f(&v, None);
        let a = addr.into();
        let (base, offset) = self.eval_addr(&a);
        self.insts.push(Inst::FStore { space: Space::Shared, fs, base, offset });
        self.reset_temps();
    }

    /// Stores an integer to local memory.
    pub fn store_local(&mut self, addr: impl Into<IExpr>, value: impl Into<IExpr>) {
        let v = value.into();
        let rs = self.eval_i(&v, None);
        let a = addr.into();
        let (base, offset) = self.eval_addr(&a);
        self.insts.push(Inst::Store {
            space: Space::Local,
            rs,
            base,
            offset,
            hint: AccessHint::Data,
        });
        self.reset_temps();
    }

    /// Stores a float to local memory.
    pub fn store_local_f(&mut self, addr: impl Into<IExpr>, value: impl Into<FExpr>) {
        let v = value.into();
        let fs = self.eval_f(&v, None);
        let a = addr.into();
        let (base, offset) = self.eval_addr(&a);
        self.insts.push(Inst::FStore { space: Space::Local, fs, base, offset });
        self.reset_temps();
    }

    /// Loads two adjacent shared words with a single Load-Double message
    /// into two fresh float variables (paper §3's Load-Double).
    pub fn load_pair_shared_f(&mut self, name: &str, addr: impl Into<IExpr>) -> (FVar, FVar) {
        let v1 = self.alloc_fvar(&format!("{name}.0"));
        let v2 = self.alloc_fvar(&format!("{name}.1"));
        let a = addr.into();
        let (base, offset) = self.eval_addr(&a);
        let fd1 = self.fvar_reg(v1.0);
        let fd2 = self.fvar_reg(v2.0);
        self.insts.push(Inst::LoadPair { space: Space::Shared, fd1, fd2, base, offset });
        self.reset_temps();
        (v1, v2)
    }

    /// Stores two floats to adjacent shared words with a single
    /// Store-Double message.
    pub fn store_pair_shared_f(
        &mut self,
        addr: impl Into<IExpr>,
        v1: impl Into<FExpr>,
        v2: impl Into<FExpr>,
    ) {
        let e1 = v1.into();
        let e2 = v2.into();
        let fs1 = self.eval_f(&e1, None);
        let fs2 = self.eval_f(&e2, None);
        let a = addr.into();
        let (base, offset) = self.eval_addr(&a);
        self.insts.push(Inst::StorePair { space: Space::Shared, fs1, fs2, base, offset });
        self.reset_temps();
    }

    /// Performs a fetch-and-add whose result is discarded (`rd = r0`): the
    /// message is still sent and serialized atomically at memory, but the
    /// thread does not wait for the reply. Used for barrier arrival.
    pub fn fetch_add_discard(
        &mut self,
        addr: impl Into<IExpr>,
        inc: impl Into<IExpr>,
        hint: AccessHint,
    ) {
        let i = inc.into();
        let rs = self.eval_i(&i, None);
        let a = addr.into();
        let (base, offset) = self.eval_addr(&a);
        self.insts.push(Inst::FetchAdd { rd: Reg::ZERO, rs, base, offset, hint });
        self.reset_temps();
    }

    /// Emits an explicit context-switch instruction. Normally inserted by
    /// the `mtsim-opt` grouping pass; exposed for hand-written code and the
    /// runtime.
    pub fn explicit_switch(&mut self) {
        self.insts.push(Inst::Switch);
    }

    /// Emits a raw instruction (escape hatch for the runtime crate).
    pub fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Sets the thread's scheduling priority (see
    /// `mtsim_core::MachineConfig::priority_scheduling`).
    pub fn set_priority(&mut self, level: u8) {
        self.insts.push(Inst::SetPrio { level });
    }

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------

    /// Creates a fresh, unplaced label.
    pub fn fresh_label(&mut self) -> LabelId {
        self.labels.fresh()
    }

    /// Places `label` at the current position.
    pub fn place_label(&mut self, label: LabelId) {
        self.labels.place(label, self.insts.len() as Pc);
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: LabelId) {
        self.insts.push(Inst::Jump { target: mtsim_isa::Target::Label(label) });
    }

    /// Branches to `label` when `cond` holds.
    pub fn branch_if(&mut self, cond: Cond, label: LabelId) {
        let rs = self.eval_i(&cond.lhs, None);
        let rt = self.eval_i(&cond.rhs, None);
        self.insts.push(Inst::Branch {
            cond: cond.op,
            rs,
            rt,
            target: mtsim_isa::Target::Label(label),
        });
        self.reset_temps();
    }

    /// Branches to `label` when `cond` does not hold.
    pub fn branch_unless(&mut self, cond: Cond, label: LabelId) {
        self.branch_if(cond.negate(), label);
    }

    /// `if cond { then }`.
    pub fn if_(&mut self, cond: Cond, then: impl FnOnce(&mut ProgramBuilder)) {
        let end = self.fresh_label();
        self.branch_unless(cond, end);
        self.scoped(then);
        self.place_label(end);
    }

    /// `if cond { then } else { otherwise }`.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then: impl FnOnce(&mut ProgramBuilder),
        otherwise: impl FnOnce(&mut ProgramBuilder),
    ) {
        let else_l = self.fresh_label();
        let end = self.fresh_label();
        self.branch_unless(cond, else_l);
        self.scoped(then);
        self.jump(end);
        self.place_label(else_l);
        self.scoped(otherwise);
        self.place_label(end);
    }

    /// `while cond { body }`. The condition is re-evaluated every iteration
    /// (including any loads or fetch-and-adds it contains).
    pub fn while_(&mut self, cond: Cond, body: impl FnOnce(&mut ProgramBuilder)) {
        let head = self.fresh_label();
        let end = self.fresh_label();
        self.place_label(head);
        self.branch_unless(cond, end);
        self.scoped(body);
        self.jump(head);
        self.place_label(end);
    }

    /// Counted loop: `for i in lo..hi { body(i) }` with unit step.
    ///
    /// `hi` is evaluated **once**, before the first iteration.
    pub fn for_range(
        &mut self,
        name: &str,
        lo: impl Into<IExpr>,
        hi: impl Into<IExpr>,
        body: impl FnOnce(&mut ProgramBuilder, IVar),
    ) {
        self.for_range_step(name, lo, hi, 1, body);
    }

    /// Counted loop with a positive step.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn for_range_step(
        &mut self,
        name: &str,
        lo: impl Into<IExpr>,
        hi: impl Into<IExpr>,
        step: i64,
        body: impl FnOnce(&mut ProgramBuilder, IVar),
    ) {
        assert!(step > 0, "for_range_step requires a positive step");
        self.push_scope();
        let i = self.def_i(name, lo);
        let limit = self.def_i(&format!("_{name}_limit"), hi);
        let head = self.fresh_label();
        let end = self.fresh_label();
        self.place_label(head);
        self.branch_unless(i.get().lt(limit.get()), end);
        self.scoped(|b| body(b, i));
        self.assign(i, i.get() + step);
        self.jump(head);
        self.place_label(end);
        self.pop_scope();
    }

    // ------------------------------------------------------------------
    // Local memory
    // ------------------------------------------------------------------

    /// Allocates `words` words of per-thread local memory, returning the
    /// base word address (a compile-time constant).
    pub fn local_alloc(&mut self, words: u64) -> i64 {
        self.local.alloc(words) as i64
    }

    /// Total local memory allocated so far.
    pub fn local_size(&self) -> u64 {
        self.local.size()
    }

    // ------------------------------------------------------------------
    // Finishing
    // ------------------------------------------------------------------

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Appends `Halt` (if missing) and resolves all labels, producing the
    /// final [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any created label was never placed.
    pub fn finish(mut self) -> Program {
        if !matches!(self.insts.last(), Some(Inst::Halt)) {
            self.insts.push(Inst::Halt);
        }
        Program::resolve(self.name, self.insts, self.labels.slots())
            .with_local_words(self.local.size())
    }

    // ------------------------------------------------------------------
    // Internals: scopes and registers
    // ------------------------------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push((Vec::new(), Vec::new()));
    }

    fn pop_scope(&mut self) {
        let (ivs, fvs) = self.scopes.pop().expect("scope underflow");
        for idx in ivs {
            let slot = &mut self.ivars[idx];
            slot.alive = false;
            self.int_pool.push_back(slot.reg);
        }
        for idx in fvs {
            let slot = &mut self.fvars[idx];
            slot.alive = false;
            self.fp_pool.push_back(slot.reg);
        }
    }

    /// Runs `f` in a fresh variable scope: variables it declares release
    /// their registers when the scope ends (used by the control-flow
    /// constructs, and available to code generators such as `mtsim-lang`).
    pub fn scoped(&mut self, f: impl FnOnce(&mut ProgramBuilder)) {
        self.push_scope();
        f(self);
        self.pop_scope();
    }

    fn alloc_fvar(&mut self, name: &str) -> FVar {
        let reg = self
            .fp_pool
            .pop_back()
            .unwrap_or_else(|| panic!("{}: out of fp registers at var '{name}'", self.name));
        let idx = self.fvars.len();
        self.fvars.push(FVarSlot { name: name.to_string(), reg, alive: true });
        self.scopes.last_mut().expect("scope stack empty").1.push(idx);
        FVar(idx)
    }

    fn ivar_reg(&self, idx: usize) -> Reg {
        let slot = &self.ivars[idx];
        assert!(slot.alive, "use of dead variable '{}' (out of scope)", slot.name);
        slot.reg
    }

    fn fvar_reg(&self, idx: usize) -> FReg {
        let slot = &self.fvars[idx];
        assert!(slot.alive, "use of dead fp variable '{}' (out of scope)", slot.name);
        slot.reg
    }

    fn temp_i(&mut self) -> Reg {
        let r = self.int_pool.pop_front().unwrap_or_else(|| {
            panic!("{}: out of integer registers (expression too deep)", self.name)
        });
        self.temps_i.push(r);
        r
    }

    fn temp_f(&mut self) -> FReg {
        let r = self
            .fp_pool
            .pop_front()
            .unwrap_or_else(|| panic!("{}: out of fp registers (expression too deep)", self.name));
        self.temps_f.push(r);
        r
    }

    /// Returns `reg` to the pool if it is a live temporary (operands of a
    /// finished operation are dead).
    fn free_if_temp_i(&mut self, reg: Reg) {
        if let Some(pos) = self.temps_i.iter().position(|&r| r == reg) {
            self.temps_i.swap_remove(pos);
            self.int_pool.push_back(reg);
        }
    }

    fn free_if_temp_f(&mut self, reg: FReg) {
        if let Some(pos) = self.temps_f.iter().position(|&r| r == reg) {
            self.temps_f.swap_remove(pos);
            self.fp_pool.push_back(reg);
        }
    }

    fn reset_temps(&mut self) {
        while let Some(r) = self.temps_i.pop() {
            self.int_pool.push_back(r);
        }
        while let Some(r) = self.temps_f.pop() {
            self.fp_pool.push_back(r);
        }
    }

    // ------------------------------------------------------------------
    // Internals: expression evaluation
    // ------------------------------------------------------------------

    fn dest_or_temp_i(&mut self, dest: Option<Reg>) -> Reg {
        dest.unwrap_or_else(|| self.temp_i())
    }

    fn dest_or_temp_f(&mut self, dest: Option<FReg>) -> FReg {
        dest.unwrap_or_else(|| self.temp_f())
    }

    /// Evaluates `e` into `dest` (or a fresh temp), returning the register
    /// holding the value.
    fn eval_i(&mut self, e: &IExpr, dest: Option<Reg>) -> Reg {
        match e {
            IExpr::Const(0) if dest.is_none() => Reg::ZERO,
            IExpr::Const(v) => {
                let rd = self.dest_or_temp_i(dest);
                self.insts.push(Inst::AluI { op: AluOp::Add, rd, rs: Reg::ZERO, imm: *v });
                rd
            }
            IExpr::Var(idx) => {
                let src = self.ivar_reg(*idx);
                self.move_i(src, dest)
            }
            IExpr::Tid => self.move_i(Reg::TID, dest),
            IExpr::NThreads => self.move_i(Reg::NTHREADS, dest),
            IExpr::Bin(op, lhs, rhs) => {
                // Fold a constant right operand into an immediate form,
                // strength-reducing multiplication by a power of two into a
                // shift (as `-O2` would).
                if let IExpr::Const(imm) = **rhs {
                    let rs = self.eval_i(lhs, None);
                    let rd = self.dest_or_temp_i(dest);
                    if *op == AluOp::Mul && imm > 0 && (imm as u64).is_power_of_two() {
                        let sh = imm.trailing_zeros() as i64;
                        self.insts.push(Inst::AluI { op: AluOp::Sll, rd, rs, imm: sh });
                    } else {
                        self.insts.push(Inst::AluI { op: *op, rd, rs, imm });
                    }
                    self.free_if_temp_i(rs);
                    rd
                } else {
                    let rs = self.eval_i(lhs, None);
                    let rt = self.eval_i(rhs, None);
                    let rd = self.dest_or_temp_i(dest);
                    self.insts.push(Inst::Alu { op: *op, rd, rs, rt });
                    self.free_if_temp_i(rs);
                    self.free_if_temp_i(rt);
                    rd
                }
            }
            IExpr::LoadLocal(addr) => {
                let (base, offset) = self.eval_addr(addr);
                let rd = self.dest_or_temp_i(dest);
                self.insts.push(Inst::Load {
                    space: Space::Local,
                    rd,
                    base,
                    offset,
                    hint: AccessHint::Data,
                });
                self.free_if_temp_i(base);
                rd
            }
            IExpr::LoadShared(addr, hint) => {
                let (base, offset) = self.eval_addr(addr);
                let rd = self.dest_or_temp_i(dest);
                self.insts.push(Inst::Load { space: Space::Shared, rd, base, offset, hint: *hint });
                self.free_if_temp_i(base);
                rd
            }
            IExpr::FetchAdd(addr, inc, hint) => {
                let rs = self.eval_i(inc, None);
                let (base, offset) = self.eval_addr(addr);
                let rd = self.dest_or_temp_i(dest);
                self.insts.push(Inst::FetchAdd { rd, rs, base, offset, hint: *hint });
                self.free_if_temp_i(rs);
                self.free_if_temp_i(base);
                rd
            }
            IExpr::FromF(f) => {
                let fs = self.eval_f(f, None);
                let rd = self.dest_or_temp_i(dest);
                self.insts.push(Inst::CvtFI { rd, fs });
                self.free_if_temp_f(fs);
                rd
            }
            IExpr::CmpF(op, a, b) => {
                let fs = self.eval_f(a, None);
                let ft = self.eval_f(b, None);
                let rd = self.dest_or_temp_i(dest);
                self.insts.push(Inst::FpuCmp { op: *op, rd, fs, ft });
                self.free_if_temp_f(fs);
                self.free_if_temp_f(ft);
                rd
            }
        }
    }

    fn move_i(&mut self, src: Reg, dest: Option<Reg>) -> Reg {
        match dest {
            Some(d) if d != src => {
                self.insts.push(Inst::Alu { op: AluOp::Add, rd: d, rs: src, rt: Reg::ZERO });
                d
            }
            Some(d) => d,
            None => src,
        }
    }

    fn eval_f(&mut self, e: &FExpr, dest: Option<FReg>) -> FReg {
        match e {
            FExpr::Const(v) => {
                let fd = self.dest_or_temp_f(dest);
                self.insts.push(Inst::FLi { fd, val: *v });
                fd
            }
            FExpr::Var(idx) => {
                let src = self.fvar_reg(*idx);
                match dest {
                    Some(d) if d != src => {
                        // fmov via fadd with 0 would perturb cost; use a
                        // dedicated move through the FPU add unit.
                        self.insts.push(Inst::Fpu {
                            op: mtsim_isa::FpuOp::Max,
                            fd: d,
                            fs: src,
                            ft: src,
                        });
                        d
                    }
                    Some(d) => d,
                    None => src,
                }
            }
            FExpr::Bin(op, lhs, rhs) => {
                let fs = self.eval_f(lhs, None);
                let ft = self.eval_f(rhs, None);
                let fd = self.dest_or_temp_f(dest);
                self.insts.push(Inst::Fpu { op: *op, fd, fs, ft });
                self.free_if_temp_f(fs);
                self.free_if_temp_f(ft);
                fd
            }
            FExpr::LoadLocal(addr) => {
                let (base, offset) = self.eval_addr(addr);
                let fd = self.dest_or_temp_f(dest);
                self.insts.push(Inst::FLoad { space: Space::Local, fd, base, offset });
                self.free_if_temp_i(base);
                fd
            }
            FExpr::LoadShared(addr) => {
                let (base, offset) = self.eval_addr(addr);
                let fd = self.dest_or_temp_f(dest);
                self.insts.push(Inst::FLoad { space: Space::Shared, fd, base, offset });
                self.free_if_temp_i(base);
                fd
            }
            FExpr::FromI(i) => {
                let rs = self.eval_i(i, None);
                let fd = self.dest_or_temp_f(dest);
                self.insts.push(Inst::CvtIF { fd, rs });
                self.free_if_temp_i(rs);
                fd
            }
            FExpr::Sqrt(e) => {
                let fs = self.eval_f(e, None);
                let fd = self.dest_or_temp_f(dest);
                self.insts.push(Inst::FSqrt { fd, fs });
                self.free_if_temp_f(fs);
                fd
            }
        }
    }

    /// Evaluates an address expression into `(base, offset)`, folding a
    /// trailing constant into the offset field.
    fn eval_addr(&mut self, e: &IExpr) -> (Reg, i64) {
        match e {
            IExpr::Const(v) => (Reg::ZERO, *v),
            IExpr::Bin(AluOp::Add, a, b) => {
                if let IExpr::Const(k) = **b {
                    let base = self.eval_i(a, None);
                    (base, k)
                } else if let IExpr::Const(k) = **a {
                    let base = self.eval_i(b, None);
                    (base, k)
                } else {
                    (self.eval_i(e, None), 0)
                }
            }
            IExpr::Bin(AluOp::Sub, a, b) => {
                if let IExpr::Const(k) = **b {
                    let base = self.eval_i(a, None);
                    (base, -k)
                } else {
                    (self.eval_i(e, None), 0)
                }
            }
            _ => (self.eval_i(e, None), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_isa::Inst;

    #[test]
    fn straight_line_codegen() {
        let mut b = ProgramBuilder::new("t");
        let x = b.def_i("x", 5);
        let y = b.def_i("y", x.get() + 3);
        b.store_local(b.const_i(0), y.get());
        let p = b.finish();
        // li x; addi y; store; halt
        assert!(matches!(p.inst(0), Inst::AluI { imm: 5, .. }));
        assert!(matches!(p.inst(1), Inst::AluI { imm: 3, .. }));
        assert!(matches!(p.inst(2), Inst::Store { space: Space::Local, .. }));
        assert!(matches!(p.inst(3), Inst::Halt));
    }

    #[test]
    fn shared_load_folds_offset() {
        let mut b = ProgramBuilder::new("t");
        let i = b.def_i("i", 2);
        let v = b.load_shared(i.get() + 100);
        let _x = b.def_i("x", v);
        let p = b.finish();
        let has_folded = p
            .insts()
            .iter()
            .any(|ins| matches!(ins, Inst::Load { space: Space::Shared, offset: 100, .. }));
        assert!(has_folded, "{}", p.listing());
    }

    #[test]
    fn registers_are_recycled_by_scopes() {
        let mut b = ProgramBuilder::new("t");
        for round in 0..50 {
            // Each iteration declares scoped vars; pools must not exhaust.
            b.if_(b.tid().eq(round), |b| {
                let a = b.def_i("a", 1);
                let c = b.def_i("c", a.get() + 1);
                b.store_local(b.const_i(0), c.get());
            });
        }
        let p = b.finish();
        assert!(p.len() > 100);
    }

    #[test]
    fn expression_temps_are_recycled() {
        let mut b = ProgramBuilder::new("t");
        // A 30-term sum would exhaust the 20-register pool without eager
        // operand recycling.
        let mut e = b.const_i(0);
        for k in 0..30 {
            e = e + b.load_shared(b.const_i(k));
        }
        let s = b.def_i("s", e);
        b.store_shared(b.const_i(1000), s.get());
        let p = b.finish();
        assert_eq!(p.shared_access_count(), 31);
    }

    #[test]
    fn while_loop_shape() {
        let mut b = ProgramBuilder::new("t");
        let i = b.def_i("i", 0);
        b.while_(i.get().lt(10), |b| {
            b.assign(i, i.get() + 1);
        });
        let p = b.finish();
        // One backwards jump and one forward conditional branch.
        let jumps = p.insts().iter().filter(|i| matches!(i, Inst::Jump { .. })).count();
        let branches = p.insts().iter().filter(|i| matches!(i, Inst::Branch { .. })).count();
        assert_eq!(jumps, 1);
        assert_eq!(branches, 1);
    }

    #[test]
    fn for_range_counts() {
        let mut b = ProgramBuilder::new("t");
        b.for_range("i", 0, 4, |b, i| {
            b.store_local(i.get(), i.get());
        });
        let p = b.finish();
        assert!(p.len() > 5);
    }

    #[test]
    #[should_panic(expected = "out of scope")]
    fn use_after_scope_panics() {
        let mut b = ProgramBuilder::new("t");
        let mut escaped = None;
        b.if_(b.tid().eq(0), |b| {
            escaped = Some(b.def_i("dead", 1));
        });
        let v = escaped.unwrap();
        b.store_local(b.const_i(0), v.get());
    }

    #[test]
    fn fetch_add_discard_writes_r0() {
        let mut b = ProgramBuilder::new("t");
        b.fetch_add_discard(b.const_i(7), b.const_i(1), AccessHint::Data);
        let p = b.finish();
        assert!(p.insts().iter().any(|i| matches!(i, Inst::FetchAdd { rd, .. } if rd.is_zero())));
    }

    #[test]
    fn load_pair_defines_two_vars() {
        let mut b = ProgramBuilder::new("t");
        let (x, y) = b.load_pair_shared_f("pos", b.const_i(40));
        let s = b.def_f("s", x.get() + y.get());
        b.store_shared_f(b.const_i(50), s.get());
        let p = b.finish();
        assert!(p.insts().iter().any(|i| matches!(i, Inst::LoadPair { .. })));
    }

    #[test]
    fn if_else_both_arms() {
        let mut b = ProgramBuilder::new("t");
        let x = b.def_i("x", 0);
        b.if_else(b.tid().eq(0), |b| b.assign(x, 1), |b| b.assign(x, 2));
        b.store_local(b.const_i(0), x.get());
        let p = b.finish();
        assert!(p.len() >= 7);
    }
}
