//! Textual assembly parser — the inverse of the instruction `Display`
//! impl and [`Program::listing`](crate::Program::listing).
//!
//! Accepts the listing format (optional `pc:` prefixes, blank lines, and
//! `;` comments are ignored), so a program can be dumped with
//! `Program::listing`, edited by hand — the workflow of the paper's
//! assembly-level post-processor — and reloaded:
//!
//! ```
//! use mtsim_asm::{parse_program, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new("t");
//! let x = b.def_i("x", b.load_shared(b.const_i(4)));
//! b.store_shared(b.const_i(5), x.get() + 1);
//! let prog = b.finish();
//!
//! let reparsed = parse_program("t", &prog.listing()).unwrap();
//! assert_eq!(reparsed.insts(), prog.insts());
//! ```

use crate::Program;
use mtsim_isa::{AccessHint, AluOp, BCond, CmpOp, FReg, FpuOp, Inst, Reg, Space, Target};

/// A parse failure, with the 1-based line number and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

/// Parses a program listing back into a [`Program`].
///
/// # Errors
///
/// Returns the first offending line with a description. Branch targets
/// must use the resolved `@pc` form (as produced by `Program::listing`).
pub fn parse_program(name: &str, text: &str) -> Result<Program, ParseAsmError> {
    let mut insts = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut s = raw;
        if let Some(i) = s.find(';') {
            s = &s[..i];
        }
        // strip an optional "  123:" pc prefix
        if let Some(colon) = s.find(':') {
            if s[..colon].trim().chars().all(|c| c.is_ascii_digit())
                && !s[..colon].trim().is_empty()
            {
                s = &s[colon + 1..];
            }
        }
        let s = s.trim();
        if s.is_empty() {
            continue;
        }
        insts.push(parse_inst(s).map_err(|message| ParseAsmError { line, message })?);
    }
    if insts.is_empty() {
        return Err(ParseAsmError { line: 0, message: "empty program".to_string() });
    }
    // Validation mirrors Program::from_raw_parts but reports Err instead
    // of panicking.
    for (pc, inst) in insts.iter().enumerate() {
        if let Some(Target::Pc(t)) = inst.target() {
            if t as usize >= insts.len() {
                return Err(ParseAsmError {
                    line: pc + 1,
                    message: format!("branch target @{t} out of range"),
                });
            }
        }
    }
    if !insts.iter().any(|i| matches!(i, Inst::Halt)) {
        return Err(ParseAsmError { line: 0, message: "program has no halt".to_string() });
    }
    Ok(Program::from_raw_parts(name.to_string(), insts))
}

fn parse_inst(s: &str) -> Result<Inst, String> {
    let (mnemonic, rest) = match s.find(' ') {
        Some(i) => (&s[..i], s[i + 1..].trim()),
        None => (s, ""),
    };
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };

    // Zero-operand forms first.
    match mnemonic {
        "switch" => return expect0(&ops, Inst::Switch),
        "halt" => return expect0(&ops, Inst::Halt),
        "nop" => return expect0(&ops, Inst::Nop),
        _ => {}
    }

    if mnemonic == "prio" {
        let level: u8 =
            one(&ops)?.parse().map_err(|_| format!("bad priority level '{}'", ops[0]))?;
        return Ok(Inst::SetPrio { level });
    }

    // ALU register-register and register-immediate.
    if let Some(op) = alu_op(mnemonic) {
        let [rd, rs, rt] = three(&ops)?;
        return Ok(Inst::Alu { op, rd: reg(rd)?, rs: reg(rs)?, rt: reg(rt)? });
    }
    if let Some(op) = mnemonic.strip_suffix('i').and_then(alu_op) {
        let [rd, rs, imm] = three(&ops)?;
        return Ok(Inst::AluI {
            op,
            rd: reg(rd)?,
            rs: reg(rs)?,
            imm: imm.parse().map_err(|_| format!("bad immediate '{imm}'"))?,
        });
    }

    // FPU arithmetic / compares.
    if let Some(op) = fpu_op(mnemonic) {
        let [fd, fs, ft] = three(&ops)?;
        return Ok(Inst::Fpu { op, fd: freg(fd)?, fs: freg(fs)?, ft: freg(ft)? });
    }
    if let Some(op) = cmp_op(mnemonic) {
        let [rd, fs, ft] = three(&ops)?;
        return Ok(Inst::FpuCmp { op, rd: reg(rd)?, fs: freg(fs)?, ft: freg(ft)? });
    }

    match mnemonic {
        "fli" => {
            let [fd, val] = two(&ops)?;
            let bits = val.parse::<f64>().map_err(|_| format!("bad float '{val}'"))?;
            Ok(Inst::FLi { fd: freg(fd)?, val: bits })
        }
        "cvt.i.f" => {
            let [fd, rs] = two(&ops)?;
            Ok(Inst::CvtIF { fd: freg(fd)?, rs: reg(rs)? })
        }
        "cvt.f.i" => {
            let [rd, fs] = two(&ops)?;
            Ok(Inst::CvtFI { rd: reg(rd)?, fs: freg(fs)? })
        }
        "mov.i.f" => {
            let [fd, rs] = two(&ops)?;
            Ok(Inst::MovIF { fd: freg(fd)?, rs: reg(rs)? })
        }
        "mov.f.i" => {
            let [rd, fs] = two(&ops)?;
            Ok(Inst::MovFI { rd: reg(rd)?, fs: freg(fs)? })
        }
        "fsqrt" => {
            let [fd, fs] = two(&ops)?;
            Ok(Inst::FSqrt { fd: freg(fd)?, fs: freg(fs)? })
        }
        "j" => {
            let t = one(&ops)?;
            Ok(Inst::Jump { target: target(t)? })
        }
        _ => parse_memory_or_branch(mnemonic, &ops),
    }
}

fn parse_memory_or_branch(mnemonic: &str, ops: &[&str]) -> Result<Inst, String> {
    if let Some(cond) = bcond(mnemonic) {
        let [rs, rt, t] = three(ops)?;
        return Ok(Inst::Branch { cond, rs: reg(rs)?, rt: reg(rt)?, target: target(t)? });
    }

    // Memory mnemonics: base "ld"/"st"/"fld"/"fst"/"ldd"/"std"/"faa" with
    // ".l"/".s" space suffix and an optional ".spin"/".barrier"/".rel"
    // hint suffix.
    let (stem, hint) = if let Some(s) = mnemonic.strip_suffix(".spin") {
        (s, AccessHint::Spin)
    } else if let Some(s) = mnemonic.strip_suffix(".barrier") {
        (s, AccessHint::Barrier)
    } else if let Some(s) = mnemonic.strip_suffix(".rel") {
        (s, AccessHint::Release)
    } else {
        (mnemonic, AccessHint::Data)
    };
    if stem == "faa" {
        let [rd, rs, mem] = three(ops)?;
        let (offset, base) = mem_operand(mem)?;
        return Ok(Inst::FetchAdd { rd: reg(rd)?, rs: reg(rs)?, base, offset, hint });
    }
    let (op, space) = match stem.rsplit_once('.') {
        Some((op, "l")) => (op, Space::Local),
        Some((op, "s")) => (op, Space::Shared),
        _ => return Err(format!("unknown mnemonic '{mnemonic}'")),
    };
    match op {
        "ld" => {
            let [rd, mem] = two(ops)?;
            let (offset, base) = mem_operand(mem)?;
            Ok(Inst::Load { space, rd: reg(rd)?, base, offset, hint })
        }
        "st" => {
            let [rs, mem] = two(ops)?;
            let (offset, base) = mem_operand(mem)?;
            Ok(Inst::Store { space, rs: reg(rs)?, base, offset, hint })
        }
        "fld" => {
            let [fd, mem] = two(ops)?;
            let (offset, base) = mem_operand(mem)?;
            Ok(Inst::FLoad { space, fd: freg(fd)?, base, offset })
        }
        "fst" => {
            let [fs, mem] = two(ops)?;
            let (offset, base) = mem_operand(mem)?;
            Ok(Inst::FStore { space, fs: freg(fs)?, base, offset })
        }
        "ldd" => {
            let [pair, mem] = two(ops)?;
            let (fd1, fd2) = freg_pair(pair)?;
            let (offset, base) = mem_operand(mem)?;
            Ok(Inst::LoadPair { space, fd1, fd2, base, offset })
        }
        "std" => {
            let [pair, mem] = two(ops)?;
            let (fs1, fs2) = freg_pair(pair)?;
            let (offset, base) = mem_operand(mem)?;
            Ok(Inst::StorePair { space, fs1, fs2, base, offset })
        }
        _ => Err(format!("unknown mnemonic '{mnemonic}'")),
    }
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sle" => AluOp::Sle,
        "seq" => AluOp::Seq,
        "sne" => AluOp::Sne,
        _ => return None,
    })
}

fn fpu_op(m: &str) -> Option<FpuOp> {
    Some(match m {
        "fadd" => FpuOp::Add,
        "fsub" => FpuOp::Sub,
        "fmul" => FpuOp::Mul,
        "fdiv" => FpuOp::Div,
        "fmin" => FpuOp::Min,
        "fmax" => FpuOp::Max,
        _ => return None,
    })
}

fn cmp_op(m: &str) -> Option<CmpOp> {
    Some(match m {
        "flt" => CmpOp::Lt,
        "fle" => CmpOp::Le,
        "feq" => CmpOp::Eq,
        "fne" => CmpOp::Ne,
        _ => return None,
    })
}

fn bcond(m: &str) -> Option<BCond> {
    Some(match m {
        "beq" => BCond::Eq,
        "bne" => BCond::Ne,
        "blt" => BCond::Lt,
        "ble" => BCond::Le,
        "bgt" => BCond::Gt,
        "bge" => BCond::Ge,
        _ => return None,
    })
}

fn reg(s: &str) -> Result<Reg, String> {
    let n = s
        .strip_prefix('r')
        .and_then(|d| d.parse::<u8>().ok())
        .ok_or_else(|| format!("bad integer register '{s}'"))?;
    if n < 32 {
        Ok(Reg::new(n))
    } else {
        Err(format!("integer register out of range '{s}'"))
    }
}

fn freg(s: &str) -> Result<FReg, String> {
    let n = s
        .strip_prefix('f')
        .and_then(|d| d.parse::<u8>().ok())
        .ok_or_else(|| format!("bad fp register '{s}'"))?;
    if n < 32 {
        Ok(FReg::new(n))
    } else {
        Err(format!("fp register out of range '{s}'"))
    }
}

fn freg_pair(s: &str) -> Result<(FReg, FReg), String> {
    let (a, b) = s.split_once(':').ok_or_else(|| format!("bad register pair '{s}'"))?;
    Ok((freg(a)?, freg(b)?))
}

/// Parses `offset(base)`.
fn mem_operand(s: &str) -> Result<(i64, Reg), String> {
    let open = s.find('(').ok_or_else(|| format!("bad memory operand '{s}'"))?;
    let close =
        s.rfind(')').filter(|&c| c > open).ok_or_else(|| format!("bad memory operand '{s}'"))?;
    let offset: i64 = s[..open].trim().parse().map_err(|_| format!("bad offset in '{s}'"))?;
    let base = reg(s[open + 1..close].trim())?;
    Ok((offset, base))
}

fn target(s: &str) -> Result<Target, String> {
    let pc = s
        .strip_prefix('@')
        .and_then(|d| d.parse::<u32>().ok())
        .ok_or_else(|| format!("bad branch target '{s}' (expected @pc)"))?;
    Ok(Target::Pc(pc))
}

fn expect0(ops: &[&str], inst: Inst) -> Result<Inst, String> {
    if ops.is_empty() {
        Ok(inst)
    } else {
        Err(format!("unexpected operands for {inst}"))
    }
}

fn one<'a>(ops: &[&'a str]) -> Result<&'a str, String> {
    match ops {
        [a] => Ok(a),
        _ => Err(format!("expected 1 operand, found {}", ops.len())),
    }
}

fn two<'a>(ops: &[&'a str]) -> Result<[&'a str; 2], String> {
    match ops {
        [a, b] => Ok([a, b]),
        _ => Err(format!("expected 2 operands, found {}", ops.len())),
    }
}

fn three<'a>(ops: &[&'a str]) -> Result<[&'a str; 3], String> {
    match ops {
        [a, b, c] => Ok([a, b, c]),
        _ => Err(format!("expected 3 operands, found {}", ops.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn roundtrip(prog: &Program) {
        let text = prog.listing();
        let back = parse_program(prog.name(), &text).unwrap_or_else(|e| {
            panic!("parse failed: {e}\n{text}");
        });
        assert_eq!(back.insts(), prog.insts(), "\n{text}");
    }

    #[test]
    fn roundtrips_every_instruction_kind() {
        use mtsim_isa::Target;
        let r = Reg::new(8);
        let r2 = Reg::new(9);
        let f = FReg::new(1);
        let f2 = FReg::new(2);
        let insts = vec![
            Inst::Alu { op: AluOp::Add, rd: r, rs: r2, rt: r },
            Inst::AluI { op: AluOp::Xor, rd: r, rs: r2, imm: -12 },
            Inst::Fpu { op: FpuOp::Min, fd: f, fs: f2, ft: f },
            Inst::FpuCmp { op: CmpOp::Le, rd: r, fs: f, ft: f2 },
            Inst::FLi { fd: f, val: 2.5 },
            Inst::CvtIF { fd: f, rs: r },
            Inst::CvtFI { rd: r, fs: f },
            Inst::MovIF { fd: f, rs: r },
            Inst::MovFI { rd: r, fs: f },
            Inst::FSqrt { fd: f, fs: f2 },
            Inst::Load {
                space: Space::Shared,
                rd: r,
                base: r2,
                offset: -3,
                hint: AccessHint::Data,
            },
            Inst::Load { space: Space::Shared, rd: r, base: r2, offset: 0, hint: AccessHint::Spin },
            Inst::Store { space: Space::Local, rs: r, base: r2, offset: 7, hint: AccessHint::Data },
            Inst::FLoad { space: Space::Shared, fd: f, base: r, offset: 1 },
            Inst::FStore { space: Space::Local, fs: f, base: r, offset: 2 },
            Inst::LoadPair { space: Space::Shared, fd1: f, fd2: f2, base: r, offset: 0 },
            Inst::StorePair { space: Space::Shared, fs1: f, fs2: f2, base: r, offset: 4 },
            Inst::FetchAdd { rd: r, rs: r2, base: r, offset: 0, hint: AccessHint::Spin },
            Inst::Branch { cond: BCond::Ge, rs: r, rt: r2, target: Target::Pc(21) },
            Inst::Jump { target: Target::Pc(0) },
            Inst::SetPrio { level: 1 },
            Inst::Switch,
            Inst::Nop,
            Inst::Halt,
        ];
        roundtrip(&Program::from_raw_parts("all", insts));
    }

    #[test]
    fn roundtrips_builder_programs() {
        let mut b = ProgramBuilder::new("loop");
        let acc = b.def_f("acc", 0.0);
        b.for_range("i", 0, 8, |b, i| {
            let v = b.load_shared_f(i.get() + 16);
            b.assign_f(acc, acc.get() + v * 0.5);
        });
        b.store_shared_f(b.const_i(40), acc.get());
        roundtrip(&b.finish());
    }

    #[test]
    fn accepts_comments_and_blank_lines() {
        let text = "\n; header comment\n  0:  addi r8, r0, 5 ; set x\n\n  halt\n";
        let p = parse_program("c", text).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = parse_program("e", "addi r8, r0, 5\nbogus r1\nhalt").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_out_of_range_targets() {
        let err = parse_program("e", "j @99\nhalt").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn rejects_missing_halt() {
        let err = parse_program("e", "nop").unwrap_err();
        assert!(err.message.contains("halt"));
    }

    #[test]
    fn rejects_bad_registers() {
        assert!(parse_program("e", "add r32, r0, r0\nhalt").is_err());
        assert!(parse_program("e", "fadd f40, f0, f0\nhalt").is_err());
    }
}
