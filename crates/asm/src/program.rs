//! The [`Program`] container: a resolved, immutable instruction sequence.

use mtsim_isa::{Inst, LabelId, Pc, Target};

/// A finished program: instructions with all branch targets resolved to
/// absolute program counters.
///
/// Produced by [`crate::ProgramBuilder::finish`] or by
/// [`Program::from_raw_parts`] (used by the optimizer, which rewrites
/// instruction sequences).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    local_words: u64,
}

impl Program {
    /// Builds a program from a name and an already-resolved instruction
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if any branch target is still an unresolved label or points
    /// outside the program, or if the program does not end with a reachable
    /// `Halt` (every well-formed thread must terminate explicitly).
    pub fn from_raw_parts(name: impl Into<String>, insts: Vec<Inst>) -> Program {
        let name = name.into();
        assert!(!insts.is_empty(), "program {name} is empty");
        for (pc, inst) in insts.iter().enumerate() {
            if let Some(t) = inst.target() {
                match t {
                    Target::Label(l) => panic!("program {name}: unresolved label L{l} at pc {pc}"),
                    Target::Pc(p) => assert!(
                        (p as usize) < insts.len(),
                        "program {name}: branch target @{p} out of range at pc {pc}"
                    ),
                }
            }
        }
        assert!(insts.iter().any(|i| matches!(i, Inst::Halt)), "program {name} contains no Halt");
        Program { name, insts, local_words: 0 }
    }

    /// Resolves labels against a label table (`labels[id] = pc`) and builds
    /// the program. Used by the builder.
    pub(crate) fn resolve(name: String, mut insts: Vec<Inst>, labels: &[Option<Pc>]) -> Program {
        for inst in &mut insts {
            if let Some(Target::Label(l)) = inst.target() {
                let pc = labels
                    .get(l as usize)
                    .copied()
                    .flatten()
                    .unwrap_or_else(|| panic!("label L{l} was never placed"));
                inst.set_target(Target::Pc(pc));
            }
        }
        Program::from_raw_parts(name, insts)
    }

    /// The program's name (used in listings and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Words of per-thread local memory the program requires (recorded by
    /// the builder's local allocator; preserved across the grouping pass).
    pub fn local_words(&self) -> u64 {
        self.local_words
    }

    /// Sets the local-memory requirement (used by the builder and by
    /// passes that rebuild the instruction vector).
    pub fn with_local_words(mut self, words: u64) -> Program {
        self.local_words = words;
        self
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn inst(&self, pc: Pc) -> &Inst {
        &self.insts[pc as usize]
    }

    /// All instructions in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions (never true for a validated
    /// program, but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Number of static shared-memory access instructions.
    pub fn shared_access_count(&self) -> usize {
        self.insts.iter().filter(|i| i.is_shared_access()).count()
    }

    /// Number of static `Switch` instructions.
    pub fn switch_count(&self) -> usize {
        self.insts.iter().filter(|i| matches!(i, Inst::Switch)).count()
    }

    /// A human-readable listing, one instruction per line with pc prefixes.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(s, "{pc:5}:  {inst}");
        }
        s
    }
}

/// A label-placement table used during building.
#[derive(Debug, Default)]
pub(crate) struct LabelTable {
    placed: Vec<Option<Pc>>,
}

impl LabelTable {
    pub(crate) fn fresh(&mut self) -> LabelId {
        self.placed.push(None);
        (self.placed.len() - 1) as LabelId
    }

    pub(crate) fn place(&mut self, id: LabelId, pc: Pc) {
        let slot = &mut self.placed[id as usize];
        assert!(slot.is_none(), "label L{id} placed twice");
        *slot = Some(pc);
    }

    pub(crate) fn slots(&self) -> &[Option<Pc>] {
        &self.placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_isa::{AluOp, Reg};

    fn nop() -> Inst {
        Inst::Nop
    }

    #[test]
    fn program_is_send_and_sync() {
        // The sweep engine shares one built `Program` across worker threads
        // behind an `Arc`; this must not regress to interior mutability.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Program>();
    }

    #[test]
    fn from_raw_parts_validates_targets() {
        let p =
            Program::from_raw_parts("t", vec![Inst::Jump { target: Target::Pc(1) }, Inst::Halt]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.name(), "t");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_target() {
        let _ =
            Program::from_raw_parts("t", vec![Inst::Jump { target: Target::Pc(9) }, Inst::Halt]);
    }

    #[test]
    #[should_panic(expected = "unresolved label")]
    fn rejects_unresolved_label() {
        let _ =
            Program::from_raw_parts("t", vec![Inst::Jump { target: Target::Label(0) }, Inst::Halt]);
    }

    #[test]
    #[should_panic(expected = "no Halt")]
    fn rejects_missing_halt() {
        let _ = Program::from_raw_parts("t", vec![nop()]);
    }

    #[test]
    fn counts_and_listing() {
        let insts = vec![
            Inst::AluI { op: AluOp::Add, rd: Reg::R8, rs: Reg::ZERO, imm: 5 },
            Inst::Switch,
            Inst::Halt,
        ];
        let p = Program::from_raw_parts("c", insts);
        assert_eq!(p.switch_count(), 1);
        assert_eq!(p.shared_access_count(), 0);
        let l = p.listing();
        assert!(l.contains("switch"));
        assert!(l.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn label_double_place_panics() {
        let mut t = LabelTable::default();
        let l = t.fresh();
        t.place(l, 0);
        t.place(l, 1);
    }
}
