//! Expression trees consumed by the builder's code generator.
//!
//! Integer expressions ([`IExpr`]) and floating-point expressions
//! ([`FExpr`]) support the usual operators via `std::ops` overloads, plus
//! explicit loads from the two memory spaces and fetch-and-add. Conditions
//! ([`Cond`]) compare two integer expressions with a branch condition and
//! are consumed by `if_`/`while_`.

use mtsim_isa::{AccessHint, AluOp, BCond, CmpOp, FpuOp};

/// An integer expression tree (64-bit signed values).
#[derive(Debug, Clone, PartialEq)]
pub enum IExpr {
    /// Immediate constant.
    Const(i64),
    /// A builder variable (by table index).
    Var(usize),
    /// The thread id (ABI register `r1`).
    Tid,
    /// The total thread count (ABI register `r2`).
    NThreads,
    /// Binary ALU operation.
    Bin(AluOp, Box<IExpr>, Box<IExpr>),
    /// Load from local (private) memory at the given word address.
    LoadLocal(Box<IExpr>),
    /// Load from shared memory at the given word address.
    LoadShared(Box<IExpr>, AccessHint),
    /// Atomic fetch-and-add at a shared word address: yields the old value.
    FetchAdd(Box<IExpr>, Box<IExpr>, AccessHint),
    /// Truncating conversion from a float expression.
    FromF(Box<FExpr>),
    /// Floating-point comparison yielding 0 or 1.
    CmpF(CmpOp, Box<FExpr>, Box<FExpr>),
}

/// A floating-point expression tree (`f64` values).
#[derive(Debug, Clone, PartialEq)]
pub enum FExpr {
    /// Immediate constant.
    Const(f64),
    /// A builder FP variable (by table index).
    Var(usize),
    /// Binary FP operation.
    Bin(FpuOp, Box<FExpr>, Box<FExpr>),
    /// Load from local memory.
    LoadLocal(Box<IExpr>),
    /// Load from shared memory.
    LoadShared(Box<IExpr>),
    /// Conversion from an integer expression.
    FromI(Box<IExpr>),
    /// Square root.
    Sqrt(Box<FExpr>),
}

/// A branch condition: `lhs op rhs` over integer expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: IExpr,
    /// Comparison.
    pub op: BCond,
    /// Right-hand side.
    pub rhs: IExpr,
}

impl Cond {
    /// The negated condition (used to branch around `if` bodies).
    pub fn negate(self) -> Cond {
        let op = match self.op {
            BCond::Eq => BCond::Ne,
            BCond::Ne => BCond::Eq,
            BCond::Lt => BCond::Ge,
            BCond::Le => BCond::Gt,
            BCond::Gt => BCond::Le,
            BCond::Ge => BCond::Lt,
        };
        Cond { lhs: self.lhs, op, rhs: self.rhs }
    }
}

impl From<i64> for IExpr {
    fn from(v: i64) -> IExpr {
        IExpr::Const(v)
    }
}

impl From<f64> for FExpr {
    fn from(v: f64) -> FExpr {
        FExpr::Const(v)
    }
}

macro_rules! ibin {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: Into<IExpr>> std::ops::$trait<R> for IExpr {
            type Output = IExpr;
            fn $method(self, rhs: R) -> IExpr {
                IExpr::Bin($op, Box::new(self), Box::new(rhs.into()))
            }
        }
    };
}

ibin!(Add, add, AluOp::Add);
ibin!(Sub, sub, AluOp::Sub);
ibin!(Mul, mul, AluOp::Mul);
ibin!(Div, div, AluOp::Div);
ibin!(Rem, rem, AluOp::Rem);
ibin!(BitAnd, bitand, AluOp::And);
ibin!(BitOr, bitor, AluOp::Or);
ibin!(BitXor, bitxor, AluOp::Xor);
ibin!(Shl, shl, AluOp::Sll);
ibin!(Shr, shr, AluOp::Srl);

macro_rules! fbin {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: Into<FExpr>> std::ops::$trait<R> for FExpr {
            type Output = FExpr;
            fn $method(self, rhs: R) -> FExpr {
                FExpr::Bin($op, Box::new(self), Box::new(rhs.into()))
            }
        }
    };
}

fbin!(Add, add, FpuOp::Add);
fbin!(Sub, sub, FpuOp::Sub);
fbin!(Mul, mul, FpuOp::Mul);
fbin!(Div, div, FpuOp::Div);

macro_rules! icmp {
    ($method:ident, $op:expr) => {
        /// Builds a [`Cond`] comparing `self` with `rhs`.
        pub fn $method(self, rhs: impl Into<IExpr>) -> Cond {
            Cond { lhs: self, op: $op, rhs: rhs.into() }
        }
    };
}

impl IExpr {
    icmp!(eq, BCond::Eq);
    icmp!(ne, BCond::Ne);
    icmp!(lt, BCond::Lt);
    icmp!(le, BCond::Le);
    icmp!(gt, BCond::Gt);
    icmp!(ge, BCond::Ge);

    /// Truncating conversion to float.
    pub fn to_f(self) -> FExpr {
        FExpr::FromI(Box::new(self))
    }

    /// `Slt`-style materialized comparison: `(self < rhs) as i64`.
    pub fn lt_val(self, rhs: impl Into<IExpr>) -> IExpr {
        IExpr::Bin(AluOp::Slt, Box::new(self), Box::new(rhs.into()))
    }
}

macro_rules! fcmp {
    ($method:ident, $op:expr) => {
        /// Builds a [`Cond`] that is true when the FP comparison holds.
        pub fn $method(self, rhs: impl Into<FExpr>) -> Cond {
            IExpr::CmpF($op, Box::new(self), Box::new(rhs.into())).ne(0)
        }
    };
}

impl FExpr {
    fcmp!(flt, CmpOp::Lt);
    fcmp!(fle, CmpOp::Le);
    fcmp!(feq, CmpOp::Eq);
    fcmp!(fne, CmpOp::Ne);

    /// Truncating conversion to integer.
    pub fn to_i(self) -> IExpr {
        IExpr::FromF(Box::new(self))
    }

    /// Square root.
    pub fn sqrt(self) -> FExpr {
        FExpr::Sqrt(Box::new(self))
    }

    /// Element-wise minimum.
    pub fn min(self, rhs: impl Into<FExpr>) -> FExpr {
        FExpr::Bin(FpuOp::Min, Box::new(self), Box::new(rhs.into()))
    }

    /// Element-wise maximum.
    pub fn max(self, rhs: impl Into<FExpr>) -> FExpr {
        FExpr::Bin(FpuOp::Max, Box::new(self), Box::new(rhs.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_build_trees() {
        let e = (IExpr::Const(1) + 2) * 3;
        match e {
            IExpr::Bin(AluOp::Mul, lhs, _) => match *lhs {
                IExpr::Bin(AluOp::Add, ..) => {}
                other => panic!("unexpected lhs {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cond_negation_roundtrip() {
        for op in [BCond::Eq, BCond::Ne, BCond::Lt, BCond::Le, BCond::Gt, BCond::Ge] {
            let c = Cond { lhs: IExpr::Const(0), op, rhs: IExpr::Const(1) };
            assert_eq!(c.clone().negate().negate(), c);
        }
    }

    #[test]
    fn float_comparison_lowers_to_int_cond() {
        let c = FExpr::Const(1.0).flt(2.0);
        assert_eq!(c.op, BCond::Ne);
        assert!(matches!(c.lhs, IExpr::CmpF(CmpOp::Lt, ..)));
        assert_eq!(c.rhs, IExpr::Const(0));
    }

    #[test]
    fn conversions() {
        assert!(matches!(IExpr::Const(1).to_f(), FExpr::FromI(_)));
        assert!(matches!(FExpr::Const(1.0).to_i(), IExpr::FromF(_)));
    }
}
