//! # mtsim-asm
//!
//! Program container and structured program-builder DSL for the `mtsim`
//! machine.
//!
//! The paper's applications were C programs compiled at `-O2` for the MIPS
//! R3000; its post-processor then rewrote the object code. Here the
//! applications are written against [`ProgramBuilder`], a structured builder
//! (scoped variables, expressions, `if`/`while`/counted loops) whose code
//! generator emits "naturally scheduled" code: each shared load appears
//! immediately before its first use, the way an optimizing compiler without
//! multithreading knowledge would schedule it. The grouping pass in
//! `mtsim-opt` then plays the role of the paper's post-processor.
//!
//! ## Example
//!
//! ```
//! use mtsim_asm::ProgramBuilder;
//!
//! // sum = a[0] + a[1] for a shared array at address 100
//! let mut b = ProgramBuilder::new("sum2");
//! let a = b.const_i(100);
//! let x = b.load_shared(a.clone());
//! let y = b.load_shared(a + 1);
//! let sum = b.def_i("sum", x + y);
//! let out = b.const_i(200);
//! b.store_shared(out, sum.get());
//! let prog = b.finish();
//! assert!(prog.len() > 0);
//! ```

mod builder;
mod expr;
mod layout;
mod parse;
mod program;

pub use builder::{FVar, IVar, ProgramBuilder};
pub use expr::{Cond, FExpr, IExpr};
pub use layout::{LocalFrame, SharedLayout};
pub use parse::{parse_program, ParseAsmError};
pub use program::Program;
