//! Memory-layout helpers.
//!
//! [`SharedLayout`] is a host-side bump allocator for the global shared
//! address space: the application harness allocates named regions (arrays,
//! counters, barriers) and bakes their base addresses into the generated
//! program as constants — mirroring the paper's statically-classified
//! shared declarations. [`LocalFrame`] plays the same role for each
//! thread's private memory.

/// Bump allocator over the shared word-address space.
#[derive(Debug, Clone, Default)]
pub struct SharedLayout {
    next: u64,
    regions: Vec<(String, u64, u64)>,
}

impl SharedLayout {
    /// An empty layout starting at address 0.
    pub fn new() -> SharedLayout {
        SharedLayout::default()
    }

    /// Allocates `words` shared words under `name`, returning the base
    /// word address.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn alloc(&mut self, name: impl Into<String>, words: u64) -> u64 {
        assert!(words > 0, "zero-sized shared region");
        let base = self.next;
        self.regions.push((name.into(), base, words));
        self.next += words;
        base
    }

    /// Total words allocated so far (the shared-memory size the simulator
    /// must provide).
    pub fn size(&self) -> u64 {
        self.next
    }

    /// Iterates `(name, base, words)` regions in allocation order.
    pub fn regions(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.regions.iter().map(|(n, b, w)| (n.as_str(), *b, *w))
    }

    /// Looks up a region's base address by name.
    pub fn base(&self, name: &str) -> Option<u64> {
        self.regions.iter().find(|(n, ..)| n == name).map(|&(_, b, _)| b)
    }
}

/// Bump allocator over a thread's private (local) word-address space.
#[derive(Debug, Clone, Default)]
pub struct LocalFrame {
    next: u64,
}

impl LocalFrame {
    /// An empty frame starting at local address 0.
    pub fn new() -> LocalFrame {
        LocalFrame::default()
    }

    /// Allocates `words` local words, returning the base word address.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn alloc(&mut self, words: u64) -> u64 {
        assert!(words > 0, "zero-sized local region");
        let base = self.next;
        self.next += words;
        base
    }

    /// Total local words allocated (the local-memory size each thread needs).
    pub fn size(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_layout_is_contiguous() {
        let mut l = SharedLayout::new();
        let a = l.alloc("a", 10);
        let b = l.alloc("b", 5);
        assert_eq!(a, 0);
        assert_eq!(b, 10);
        assert_eq!(l.size(), 15);
        assert_eq!(l.base("b"), Some(10));
        assert_eq!(l.base("c"), None);
        assert_eq!(l.regions().count(), 2);
    }

    #[test]
    fn local_frame_bumps() {
        let mut f = LocalFrame::new();
        assert_eq!(f.alloc(4), 0);
        assert_eq!(f.alloc(1), 4);
        assert_eq!(f.size(), 5);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_alloc_panics() {
        SharedLayout::new().alloc("z", 0);
    }
}
