//! Chaos harness for the crash-safe sweep layer (DESIGN.md §18).
//!
//! The differential fuzzer checks that the *simulator* is right; this
//! module checks that the *orchestration around it* cannot lose or
//! corrupt results. Each trial injects a seeded failure into a real
//! streamed sweep — a kill at a job boundary, a kill mid-append
//! (simulated by truncating the checkpoint at an arbitrary byte), or
//! worker panics at job boundaries — and asserts the recovered output is
//! **byte-identical** to a clean serial run of the same grid. A fixed
//! set of corruption cases additionally asserts that a damaged
//! checkpoint is always a typed [`SweepError`], never a panic or a
//! silent partial resume.

use std::sync::Arc;

use mtsim_apps::{AppKind, Scale};
use mtsim_core::SwitchModel;
use mtsim_rng::Rng;
use mtsim_sweep::{
    load_checkpoint, resume_sweep, run_sweep, ArtifactCache, ChaosPlan, SweepError, SweepOpts,
    SweepSpec,
};

/// Configuration for a chaos campaign.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Kill/resume trials to run (each trial is one seeded kill-point).
    pub trials: usize,
    /// Master seed; every injection site derives from it.
    pub seed: u64,
    /// Worker threads for the interrupted runs (resumes and the
    /// reference run are serial so byte-identity is against a fixed
    /// baseline).
    pub workers: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig { trials: 25, seed: 0xC0A5, workers: mtsim_sweep::default_workers() }
    }
}

/// Results of a chaos campaign.
#[derive(Debug, Clone, Default)]
pub struct ChaosSummary {
    /// Trials completed.
    pub trials: usize,
    /// Seeded kill-points exercised (boundary kills + mid-append
    /// truncations), each followed by a resume.
    pub kills: usize,
    /// Worker panics injected (healed by the retry layer).
    pub panics_injected: usize,
    /// Fixed corruption cases checked.
    pub corruption_cases: usize,
    /// Property violations, in the order found.
    pub failures: Vec<String>,
}

impl ChaosSummary {
    /// True when every recovery was byte-identical and every corruption
    /// was a typed error.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable report (stable across runs at a fixed seed).
    pub fn report(&self) -> String {
        let mut out = format!(
            "mtsim chaos: {} trials, {} kill-points resumed, {} panics injected, \
             {} corruption cases\n",
            self.trials, self.kills, self.panics_injected, self.corruption_cases
        );
        for f in &self.failures {
            out.push_str(&format!("FAIL: {f}\n"));
        }
        if self.passed() {
            out.push_str("every recovery byte-identical; every corruption typed\n");
        }
        out
    }
}

/// The grid every trial runs: small enough that a trial is milliseconds,
/// varied enough to cover both program variants, the artifact cache, and
/// the fault-injection path.
fn chaos_grid() -> SweepSpec {
    SweepSpec {
        apps: vec![AppKind::Sieve, AppKind::Sor],
        models: vec![SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch],
        procs: vec![2],
        threads: vec![1, 2],
        seeds: vec![1],
        drop_rates: vec![0.0, 0.05],
        scale: Scale::Tiny,
        ..SweepSpec::default()
    }
}

fn temp_ckpt(tag: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("mtsim-chaos-{}-{tag}.jsonl", std::process::id()));
    p.to_string_lossy().into_owned()
}

fn opts(workers: usize, stream: Option<String>, cache: &Arc<ArtifactCache>) -> SweepOpts {
    SweepOpts {
        workers: Some(workers),
        stream,
        cache: Some(Arc::clone(cache)),
        ..SweepOpts::default()
    }
}

/// Runs a chaos campaign. Deterministic for a fixed config.
///
/// Every leg — reference, kill, resume, panic-heal — shares one
/// campaign-lifetime [`ArtifactCache`], mirroring how `mtsim serve`
/// threads its cache across jobs: crashes and resumes must neither
/// corrupt the shared cache nor rebuild artifacts it already holds
/// (after the reference run warms it, any later leg reporting a cache
/// miss is a failure).
pub fn chaos(cfg: ChaosConfig) -> ChaosSummary {
    let spec = chaos_grid();
    let total = spec.len();
    let cache = Arc::new(ArtifactCache::new());
    let reference =
        run_sweep(&spec, &opts(1, None, &cache)).expect("chaos reference grid must be valid");
    let ref_json = reference.results_json();
    let ref_csv = reference.results_csv();

    let mut summary = ChaosSummary { trials: cfg.trials, ..ChaosSummary::default() };
    let mut rng = Rng::derive(cfg.seed, "chaos-campaign");

    for trial in 0..cfg.trials {
        let path = temp_ckpt(&format!("t{trial}"));
        let result = if rng.next_u64().is_multiple_of(2) {
            kill_at_boundary(&spec, &path, cfg.workers, &mut rng, &cache)
        } else {
            kill_mid_append(&spec, &path, cfg.workers, &mut rng, &cache)
        };
        summary.kills += 1;
        match result {
            Err(msg) => summary.failures.push(format!("trial {trial}: {msg}")),
            Ok(resumed) => {
                if resumed.cache_misses != 0 {
                    summary.failures.push(format!(
                        "trial {trial}: warm campaign cache rebuilt {} artifacts",
                        resumed.cache_misses
                    ));
                }
                if resumed.results_json() != ref_json {
                    summary
                        .failures
                        .push(format!("trial {trial}: resumed JSON differs from clean serial run"));
                }
                if resumed.results_csv() != ref_csv {
                    summary
                        .failures
                        .push(format!("trial {trial}: resumed CSV differs from clean serial run"));
                }
                match load_checkpoint(&path) {
                    Ok(ckpt) if ckpt.records.len() == total => {}
                    Ok(ckpt) => summary.failures.push(format!(
                        "trial {trial}: checkpoint holds {} of {total} records after resume",
                        ckpt.records.len()
                    )),
                    Err(e) => summary
                        .failures
                        .push(format!("trial {trial}: checkpoint unreadable after resume: {e}")),
                }
            }
        }

        // Every few trials, additionally prove injected worker panics
        // heal through the retry layer without perturbing the table.
        if trial % 5 == 0 {
            let n_panics = 1 + (rng.next_u64() as usize) % 3;
            let ids: Vec<usize> =
                (0..n_panics).map(|_| (rng.next_u64() as usize) % total).collect();
            summary.panics_injected += ids.len();
            let plan = ChaosPlan { panic_once: ids.clone(), kill_after: None };
            let healed = run_sweep(
                &spec,
                &SweepOpts {
                    retries: 2,
                    chaos: Some(plan),
                    ..opts(cfg.workers, Some(path.clone()), &cache)
                },
            );
            match healed {
                Ok(out) if out.results_json() == ref_json => {}
                Ok(_) => summary.failures.push(format!(
                    "trial {trial}: panics at {ids:?} changed the result table despite retries"
                )),
                Err(e) => summary
                    .failures
                    .push(format!("trial {trial}: panic injection aborted the sweep: {e}")),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    summary.failures.extend(corruption_cases(&spec, &cache, &mut summary.corruption_cases));
    summary
}

/// Kill at a job boundary: stop claiming after `k` completions, then
/// resume. The checkpoint is consistent (no torn tail) but incomplete.
fn kill_at_boundary(
    spec: &SweepSpec,
    path: &str,
    workers: usize,
    rng: &mut Rng,
    cache: &Arc<ArtifactCache>,
) -> Result<mtsim_sweep::SweepOutcome, String> {
    let total = spec.len();
    let k = 1 + (rng.next_u64() as usize) % (total - 1);
    let killed = run_sweep(
        spec,
        &SweepOpts {
            chaos: Some(ChaosPlan { panic_once: vec![], kill_after: Some(k) }),
            ..opts(workers, Some(path.to_string()), cache)
        },
    );
    match killed {
        Err(SweepError::Aborted { completed, .. }) if completed >= k && completed < total => {}
        other => {
            return Err(format!(
                "kill after {k} jobs should abort with {k}<=completed<{total}, got {other:?}"
            ))
        }
    }
    resume_sweep(spec, &opts(workers, None, cache), path).map_err(|e| format!("resume failed: {e}"))
}

/// Kill mid-append: run the sweep to completion, then truncate the
/// checkpoint at an arbitrary byte past the header — exactly what a
/// power cut mid-`write(2)` leaves behind — and resume.
fn kill_mid_append(
    spec: &SweepSpec,
    path: &str,
    workers: usize,
    rng: &mut Rng,
    cache: &Arc<ArtifactCache>,
) -> Result<mtsim_sweep::SweepOutcome, String> {
    run_sweep(spec, &opts(workers, Some(path.to_string()), cache))
        .map_err(|e| format!("streamed run failed: {e}"))?;
    let bytes = std::fs::read(path).map_err(|e| format!("read checkpoint: {e}"))?;
    let header_end =
        bytes.iter().position(|&b| b == b'\n').ok_or("checkpoint has no header line")? + 1;
    // Cut anywhere in (header_end, len): a line boundary loses whole
    // records, anywhere else leaves a torn tail. Both must recover.
    let span = bytes.len() - header_end;
    let cut = header_end + 1 + (rng.next_u64() as usize) % (span - 1);
    std::fs::write(path, &bytes[..cut]).map_err(|e| format!("truncate checkpoint: {e}"))?;
    resume_sweep(spec, &opts(workers, None, cache), path)
        .map_err(|e| format!("resume after truncation at byte {cut} failed: {e}"))
}

/// Fixed corruption cases: each must be a typed error, never a panic and
/// never a silent partial resume. Returns failure messages.
fn corruption_cases(
    spec: &SweepSpec,
    cache: &Arc<ArtifactCache>,
    count: &mut usize,
) -> Vec<String> {
    let mut failures = Vec::new();
    let path = temp_ckpt("corruption");
    if let Err(e) = run_sweep(spec, &opts(1, Some(path.clone()), cache)) {
        return vec![format!("corruption-case setup sweep failed: {e}")];
    }
    let pristine = std::fs::read(&path).expect("checkpoint just written");
    let lines: Vec<usize> =
        pristine.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i).collect();

    // Case 1: bit flip inside a complete interior record.
    *count += 1;
    let mut flipped = pristine.clone();
    let target = lines[0] + 10; // inside record line 2
    flipped[target] ^= 0x01;
    std::fs::write(&path, &flipped).unwrap();
    match resume_sweep(spec, &opts(1, None, cache), &path) {
        Err(SweepError::Corrupt { line: 2, .. }) => {}
        other => failures.push(format!(
            "checksum-mismatch line must resume as Corrupt at line 2, got {}",
            describe(&other)
        )),
    }

    // Case 2: final record truncated but still newline-terminated — a
    // complete line that fails its checksum, i.e. corruption rather than
    // a crash signature.
    *count += 1;
    let last_start = lines[lines.len() - 2] + 1;
    let last_end = lines[lines.len() - 1];
    let keep = last_start + (last_end - last_start) / 2;
    let mut cut = pristine[..keep].to_vec();
    cut.push(b'\n');
    std::fs::write(&path, &cut).unwrap();
    match resume_sweep(spec, &opts(1, None, cache), &path) {
        Err(SweepError::Corrupt { .. }) => {}
        other => failures.push(format!(
            "newline-terminated truncated record must be Corrupt, got {}",
            describe(&other)
        )),
    }

    // Case 3: resuming with a different spec must be refused outright.
    *count += 1;
    std::fs::write(&path, &pristine).unwrap();
    let other_spec = SweepSpec { latencies: vec![50], ..spec.clone() };
    match resume_sweep(&other_spec, &opts(1, None, cache), &path) {
        Err(SweepError::SpecMismatch { .. }) => {}
        other => {
            failures.push(format!("mismatched spec must be SpecMismatch, got {}", describe(&other)))
        }
    }

    // Case 4: a sweep whose job keeps failing transiently must complete
    // with that job quarantined — graceful degradation, not an abort.
    *count += 1;
    match run_sweep(
        spec,
        &SweepOpts {
            workers: Some(1),
            retries: 0,
            chaos: Some(ChaosPlan { panic_once: vec![0], kill_after: None }),
            ..SweepOpts::default()
        },
    ) {
        Ok(out) if out.quarantined_count() == 1 => {
            if !out.results_json().contains("\"failed_jobs\"") {
                failures.push("quarantined job missing from failed_jobs section".into());
            }
        }
        other => failures.push(format!(
            "retry-starved panic must quarantine exactly one job, got {}",
            describe(&other)
        )),
    }

    std::fs::remove_file(&path).ok();
    failures
}

fn describe(r: &Result<mtsim_sweep::SweepOutcome, SweepError>) -> String {
    match r {
        Ok(out) => format!(
            "Ok({} jobs, {} failed, {} quarantined)",
            out.jobs.len(),
            out.failed_count(),
            out.quarantined_count()
        ),
        Err(e) => format!("Err({e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_recovers_byte_identically() {
        let summary = chaos(ChaosConfig { trials: 4, seed: 0xC0A5, workers: 2 });
        assert!(summary.passed(), "{}", summary.report());
        assert_eq!(summary.kills, 4);
        assert_eq!(summary.corruption_cases, 4);
        assert!(summary.report().contains("every recovery byte-identical"));
    }

    #[test]
    fn campaign_is_deterministic_for_a_fixed_seed() {
        let a = chaos(ChaosConfig { trials: 2, seed: 7, workers: 2 });
        let b = chaos(ChaosConfig { trials: 2, seed: 7, workers: 2 });
        assert_eq!(a.report(), b.report());
        assert!(a.passed(), "{}", a.report());
    }
}
