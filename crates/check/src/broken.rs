//! A deliberate miscompiler, used as a self-test of the harness.
//!
//! `mtsim_opt::group_shared_loads` is only allowed to hoist shared loads
//! *within* the region bounded by the previous shared store (the §4/§5
//! reorganization constraint: a load may not move across a store it might
//! alias). This module produces images that violate exactly that rule —
//! it runs the real grouping pass, then swaps a shared store with a later
//! shared load in the instruction stream — so the differential harness
//! and shrinker can be shown to *catch* the illegal reordering. The
//! fixture test in `tests/broken_fixture.rs` asserts the divergence is
//! detected and shrinks the witness program to a handful of instructions.

use mtsim_asm::Program;
use mtsim_opt::group_shared_loads;

/// Window (in instructions) past a shared store within which a following
/// shared load is considered for the illegal swap. Small, so the swap
/// stays inside one basic block in practice.
const SWAP_WINDOW: usize = 8;

/// All "miscompiled" variants of `prog`: the grouped image with one
/// shared store swapped with a shared load that program order places
/// after it. Returns an empty vector when the program has no
/// store-then-load pair in range (nothing to miscompile).
pub fn miscompiled_candidates(prog: &Program) -> Vec<Program> {
    let grouped = group_shared_loads(prog).program;
    let insts = grouped.insts();
    let mut out = Vec::new();
    for i in 0..insts.len() {
        if !insts[i].is_shared_write() {
            continue;
        }
        for j in (i + 1)..insts.len().min(i + 1 + SWAP_WINDOW) {
            if insts[j].is_shared_read() {
                let mut v = insts.to_vec();
                v.swap(i, j);
                out.push(
                    Program::from_raw_parts(format!("{}-miscompiled", grouped.name()), v)
                        .with_local_words(grouped.local_words()),
                );
                break; // one candidate per store: its nearest following load
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_asm::ProgramBuilder;

    #[test]
    fn store_then_load_yields_a_candidate() {
        let mut b = ProgramBuilder::new("t");
        b.store_shared(b.const_i(0), b.const_i(7));
        let v = b.def_i("v", b.load_shared(b.const_i(0)));
        b.store_shared(b.const_i(1), v.get());
        let prog = b.finish();
        let cands = miscompiled_candidates(&prog);
        assert!(!cands.is_empty(), "expected at least one illegal swap");
        for c in &cands {
            assert_eq!(c.len(), group_shared_loads(&prog).program.len());
            assert_ne!(c.insts(), group_shared_loads(&prog).program.insts());
        }
    }

    #[test]
    fn pure_compute_has_no_candidates() {
        let mut b = ProgramBuilder::new("t");
        let v = b.def_i("v", 1);
        b.assign(v, v.get() + 2);
        let prog = b.finish();
        assert!(miscompiled_candidates(&prog).is_empty());
    }
}
