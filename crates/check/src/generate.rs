//! Seeded random program generator over the `mtsim-asm` builder DSL.
//!
//! Generated programs are **race-free by construction** so their final
//! architectural state is independent of thread interleaving — the
//! property that makes oracle-vs-engine differential testing sound:
//!
//! * the *input* region is read-only (seeded before the run, never
//!   stored to);
//! * the *accumulator* cells receive only commutative updates
//!   (fire-and-forget fetch-and-adds, or lock-protected `+=`);
//! * the *output* region is partitioned per thread — thread `t` touches
//!   only its own `out_slots` words;
//! * local memory and builder variables hold only values derived from the
//!   above, so per-thread register files are deterministic too — except
//!   where a synchronization primitive materializes an arrival order in a
//!   register (ticket numbers, barrier generations), which
//!   [`TestProgram::regs_comparable`] accounts for.
//!
//! The statement/expression AST here is deliberately its own small tree
//! (not `mtsim_asm::IExpr` directly) so the shrinking minimizer in
//! [`crate::shrink`] can enumerate structural reductions.

use mtsim_asm::{FExpr, FVar, IExpr, IVar, Program, ProgramBuilder, SharedLayout};
use mtsim_isa::{AccessHint, AluOp, BCond, CmpOp, FpuOp};
use mtsim_mem::SharedMemory;
use mtsim_rng::Rng;
use mtsim_rt::{Barrier, TicketLock};

/// Integer builder variables available to generated code.
pub const NIVARS: usize = 3;
/// Floating-point builder variables available to generated code.
pub const NFVARS: usize = 2;

/// A generator-level integer expression.
#[derive(Debug, Clone, PartialEq)]
pub enum IE {
    /// Immediate constant.
    Const(i64),
    /// Thread id.
    Tid,
    /// Total thread count.
    NThreads,
    /// Builder variable `0..NIVARS`.
    Var(usize),
    /// Binary ALU operation.
    Bin(AluOp, Box<IE>, Box<IE>),
    /// Load from the read-only input region (index is masked in-range).
    LoadIn(Box<IE>),
    /// Load from this thread's private output slot.
    LoadOut(u64),
    /// Load from local scratch (constant in-range address).
    LoadLocal(u64),
    /// Fetch-and-add on this thread's private output slot (single writer,
    /// so the returned old value is deterministic).
    FetchAddOut(u64, i64),
    /// Truncating conversion from float.
    FromF(Box<FE>),
    /// Float comparison yielding 0/1.
    CmpF(CmpOp, Box<FE>, Box<FE>),
}

/// A generator-level floating-point expression.
#[derive(Debug, Clone, PartialEq)]
pub enum FE {
    /// Immediate constant.
    Const(f64),
    /// Builder FP variable `0..NFVARS`.
    Var(usize),
    /// Binary FP operation.
    Bin(FpuOp, Box<FE>, Box<FE>),
    /// Float load from the read-only input region (masked index).
    LoadIn(Box<IE>),
    /// Float load from local scratch.
    LoadLocal(u64),
    /// Conversion from integer.
    FromI(Box<IE>),
    /// Square root.
    Sqrt(Box<FE>),
}

/// A comparison between two integer expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Cnd {
    /// Branch condition.
    pub op: BCond,
    /// Left operand.
    pub a: IE,
    /// Right operand.
    pub b: IE,
}

/// A generator-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `ivar[i] = e`.
    AssignI(usize, IE),
    /// `fvar[i] = e`.
    AssignF(usize, FE),
    /// Shared store to this thread's private output slot.
    StoreOut(u64, IE),
    /// Float shared store to a private output slot.
    StoreOutF(u64, FE),
    /// Local store (constant in-range address).
    StoreLocal(u64, IE),
    /// Float local store.
    StoreLocalF(u64, FE),
    /// Fire-and-forget fetch-and-add into an accumulator cell.
    FaaAcc(u64, IE),
    /// Two-sided conditional.
    If(Cnd, Vec<Stmt>, Vec<Stmt>),
    /// Counted loop with a constant trip count.
    For(u8, Vec<Stmt>),
    /// Lock-protected `cs[cell] += k` (read-modify-write under the ticket
    /// lock). Critical sections get their own cell region, disjoint from
    /// the fetch-and-add accumulators: an RMW store is atomic only
    /// against other lock holders, so mixing it with lock-free
    /// fetch-and-adds on one cell would be a genuine race (the fuzzer
    /// found exactly that in an early version of this generator).
    Critical(u64, i64),
    /// Full-machine barrier (emitted only at top level so every thread
    /// reaches the same barrier sequence).
    Barrier,
}

/// One generated test case: sizing parameters plus the statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct TestProgram {
    /// Total threads the case runs with.
    pub nthreads: usize,
    /// Read-only input words (power of two; loads are masked into range).
    pub in_words: u64,
    /// Commutative accumulator cells.
    pub acc_cells: u64,
    /// Private output words per thread.
    pub out_slots: u64,
    /// Local scratch words per thread.
    pub local_words: u64,
    /// Seed for the initial input-region image.
    pub input_seed: u64,
    /// The program body.
    pub stmts: Vec<Stmt>,
}

/// A fully emitted, runnable case.
pub struct EmittedCase {
    /// The program image.
    pub program: Program,
    /// Initialized shared memory (inputs seeded, everything else zero).
    pub shared: SharedMemory,
    /// Threads the case was emitted for.
    pub nthreads: usize,
    /// True when per-thread register files and locals are
    /// interleaving-independent and may be compared against the oracle.
    pub regs_comparable: bool,
}

impl TestProgram {
    /// The same case re-targeted at a different thread count.
    pub fn with_nthreads(&self, nthreads: usize) -> TestProgram {
        TestProgram { nthreads, ..self.clone() }
    }

    /// Whether any statement (recursively) uses the ticket lock.
    pub fn uses_lock(&self) -> bool {
        fn scan(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Critical(..) => true,
                Stmt::If(_, a, b) => scan(a) || scan(b),
                Stmt::For(_, b) => scan(b),
                _ => false,
            })
        }
        scan(&self.stmts)
    }

    /// Whether the top level contains a barrier.
    pub fn uses_barrier(&self) -> bool {
        self.stmts.iter().any(|s| matches!(s, Stmt::Barrier))
    }

    /// True when the final register files are interleaving-independent:
    /// single-threaded runs always are; multithreaded runs are unless a
    /// synchronization primitive materialized an arrival order (ticket
    /// number, barrier generation) in a register.
    pub fn regs_comparable(&self) -> bool {
        self.nthreads == 1 || (!self.uses_lock() && !self.uses_barrier())
    }

    /// Emits the case: program plus initialized shared memory.
    pub fn emit(&self) -> EmittedCase {
        let mut layout = SharedLayout::new();
        let in_base = layout.alloc("in", self.in_words);
        let acc_base = layout.alloc("acc", self.acc_cells);
        let cs_base = layout.alloc("cs", self.acc_cells);
        let lock = self.uses_lock().then(|| TicketLock::alloc(&mut layout, "lock"));
        let barrier =
            self.uses_barrier().then(|| Barrier::alloc(&mut layout, "bar", self.nthreads as i64));
        let out_base = layout.alloc("out", self.nthreads as u64 * self.out_slots);

        let mut b = ProgramBuilder::new("fuzz");
        b.local_alloc(self.local_words);
        let ivars: Vec<IVar> = (0..NIVARS).map(|i| b.def_i(&format!("gi{i}"), i as i64)).collect();
        let fvars: Vec<FVar> = (0..NFVARS).map(|i| b.def_f(&format!("gf{i}"), i as f64)).collect();
        let ctx = EmitCtx {
            in_base,
            acc_base,
            cs_base,
            out_base,
            out_slots: self.out_slots,
            in_mask: self.in_words - 1,
            ivars,
            fvars,
            lock,
            barrier,
        };
        for s in &self.stmts {
            emit_stmt(&mut b, s, &ctx);
        }
        let program = b.finish();

        let mut shared = SharedMemory::new(layout.size().max(1));
        let mut rng = Rng::derive(self.input_seed, "check-inputs");
        for i in 0..self.in_words {
            if rng.chance(0.5) {
                shared.write_i64(in_base + i, rng.range_i64(-64, 64));
            } else {
                shared.write_f64(in_base + i, rng.range_f64(-8.0, 8.0));
            }
        }
        EmittedCase {
            program,
            shared,
            nthreads: self.nthreads,
            regs_comparable: self.regs_comparable(),
        }
    }
}

struct EmitCtx {
    in_base: u64,
    acc_base: u64,
    cs_base: u64,
    out_base: u64,
    out_slots: u64,
    in_mask: u64,
    ivars: Vec<IVar>,
    fvars: Vec<FVar>,
    lock: Option<TicketLock>,
    barrier: Option<Barrier>,
}

impl EmitCtx {
    /// Address expression for this thread's private output slot.
    fn out_addr(&self, slot: u64) -> IExpr {
        IExpr::Tid * self.out_slots as i64 + (self.out_base + slot % self.out_slots.max(1)) as i64
    }

    /// Address expression for a masked input-region index.
    fn in_addr(&self, idx: &IE) -> IExpr {
        (lower_ie(idx, self) & self.in_mask as i64) + self.in_base as i64
    }
}

fn lower_ie(e: &IE, ctx: &EmitCtx) -> IExpr {
    match e {
        IE::Const(v) => IExpr::Const(*v),
        IE::Tid => IExpr::Tid,
        IE::NThreads => IExpr::NThreads,
        IE::Var(i) => ctx.ivars[i % NIVARS].get(),
        IE::Bin(op, a, b) => {
            IExpr::Bin(*op, Box::new(lower_ie(a, ctx)), Box::new(lower_ie(b, ctx)))
        }
        IE::LoadIn(idx) => IExpr::LoadShared(Box::new(ctx.in_addr(idx)), AccessHint::Data),
        IE::LoadOut(slot) => IExpr::LoadShared(Box::new(ctx.out_addr(*slot)), AccessHint::Data),
        IE::LoadLocal(a) => IExpr::LoadLocal(Box::new(IExpr::Const(*a as i64))),
        IE::FetchAddOut(slot, k) => IExpr::FetchAdd(
            Box::new(ctx.out_addr(*slot)),
            Box::new(IExpr::Const(*k)),
            AccessHint::Data,
        ),
        IE::FromF(f) => IExpr::FromF(Box::new(lower_fe(f, ctx))),
        IE::CmpF(op, a, b) => {
            IExpr::CmpF(*op, Box::new(lower_fe(a, ctx)), Box::new(lower_fe(b, ctx)))
        }
    }
}

fn lower_fe(e: &FE, ctx: &EmitCtx) -> FExpr {
    match e {
        FE::Const(v) => FExpr::Const(*v),
        FE::Var(i) => ctx.fvars[i % NFVARS].get(),
        FE::Bin(op, a, b) => {
            FExpr::Bin(*op, Box::new(lower_fe(a, ctx)), Box::new(lower_fe(b, ctx)))
        }
        FE::LoadIn(idx) => FExpr::LoadShared(Box::new(ctx.in_addr(idx))),
        FE::LoadLocal(a) => FExpr::LoadLocal(Box::new(IExpr::Const(*a as i64))),
        FE::FromI(i) => FExpr::FromI(Box::new(lower_ie(i, ctx))),
        FE::Sqrt(f) => FExpr::Sqrt(Box::new(lower_fe(f, ctx))),
    }
}

fn lower_cnd(c: &Cnd, ctx: &EmitCtx) -> mtsim_asm::Cond {
    mtsim_asm::Cond { lhs: lower_ie(&c.a, ctx), op: c.op, rhs: lower_ie(&c.b, ctx) }
}

fn emit_stmt(b: &mut ProgramBuilder, s: &Stmt, ctx: &EmitCtx) {
    match s {
        Stmt::AssignI(v, e) => {
            let e = lower_ie(e, ctx);
            b.assign(ctx.ivars[v % NIVARS], e);
        }
        Stmt::AssignF(v, e) => {
            let e = lower_fe(e, ctx);
            b.assign_f(ctx.fvars[v % NFVARS], e);
        }
        Stmt::StoreOut(slot, e) => {
            let (a, e) = (ctx.out_addr(*slot), lower_ie(e, ctx));
            b.store_shared(a, e);
        }
        Stmt::StoreOutF(slot, e) => {
            let (a, e) = (ctx.out_addr(*slot), lower_fe(e, ctx));
            b.store_shared_f(a, e);
        }
        Stmt::StoreLocal(a, e) => {
            let e = lower_ie(e, ctx);
            b.store_local(b.const_i(*a as i64), e);
        }
        Stmt::StoreLocalF(a, e) => {
            let e = lower_fe(e, ctx);
            b.store_local_f(b.const_i(*a as i64), e);
        }
        Stmt::FaaAcc(cell, e) => {
            let addr = b.const_i((ctx.acc_base + cell) as i64);
            let e = lower_ie(e, ctx);
            b.fetch_add_discard(addr, e, AccessHint::Data);
        }
        Stmt::If(c, then, els) => {
            let c = lower_cnd(c, ctx);
            if els.is_empty() {
                b.if_(c, |b| {
                    for s in then {
                        emit_stmt(b, s, ctx);
                    }
                });
            } else {
                b.if_else(
                    c,
                    |b| {
                        for s in then {
                            emit_stmt(b, s, ctx);
                        }
                    },
                    |b| {
                        for s in els {
                            emit_stmt(b, s, ctx);
                        }
                    },
                );
            }
        }
        Stmt::For(trips, body) => {
            b.for_range("gl", 0, *trips as i64, |b, _| {
                for s in body {
                    emit_stmt(b, s, ctx);
                }
            });
        }
        Stmt::Critical(cell, k) => {
            let lock = ctx.lock.expect("lock allocated for Critical");
            let addr = (ctx.cs_base + cell) as i64;
            b.scoped(|b| {
                let ticket = lock.emit_acquire(b);
                let v = b.def_i("_cs", b.load_shared(b.const_i(addr)));
                b.store_shared(b.const_i(addr), v.get() + *k);
                lock.emit_release(b, ticket);
            });
        }
        Stmt::Barrier => {
            let bar = ctx.barrier.expect("barrier allocated");
            b.scoped(|b| bar.emit_wait(b));
        }
    }
}

// ---------------------------------------------------------------------
// Random generation
// ---------------------------------------------------------------------

/// Generates one random test case from a seed. The same seed always
/// produces the same case.
pub fn generate(seed: u64) -> TestProgram {
    let mut rng = Rng::derive(seed, "check-gen");
    let nthreads = *pick(&mut rng, &[1usize, 2, 4, 6]);
    let in_words = *pick(&mut rng, &[8u64, 16]);
    let acc_cells = *pick(&mut rng, &[1u64, 2, 4]);
    let out_slots = *pick(&mut rng, &[1u64, 2, 4]);
    let local_words = *pick(&mut rng, &[4u64, 8]);
    let allow_lock = rng.chance(0.35);
    let allow_barrier = nthreads > 1 && rng.chance(0.35);

    let mut g = Gen { rng, acc_cells, out_slots, local_words, allow_lock };
    let n = g.rng.range_u64(3, 10) as usize;
    let mut stmts = Vec::with_capacity(n);
    for _ in 0..n {
        if allow_barrier && g.rng.chance(0.15) {
            stmts.push(Stmt::Barrier);
        } else {
            let s = g.stmt(0);
            stmts.push(s);
        }
    }
    TestProgram { nthreads, in_words, acc_cells, out_slots, local_words, input_seed: seed, stmts }
}

fn pick<'a, T>(rng: &mut Rng, xs: &'a [T]) -> &'a T {
    &xs[rng.below(xs.len() as u64) as usize]
}

struct Gen {
    rng: Rng,
    acc_cells: u64,
    out_slots: u64,
    local_words: u64,
    allow_lock: bool,
}

impl Gen {
    fn stmt(&mut self, depth: usize) -> Stmt {
        let roll = self.rng.below(100);
        match roll {
            0..=24 => Stmt::AssignI(self.rng.below(NIVARS as u64) as usize, self.ie(2)),
            25..=34 => Stmt::AssignF(self.rng.below(NFVARS as u64) as usize, self.fe(2)),
            35..=49 => Stmt::StoreOut(self.rng.below(self.out_slots), self.ie(2)),
            50..=56 => Stmt::StoreOutF(self.rng.below(self.out_slots), self.fe(2)),
            57..=66 => Stmt::StoreLocal(self.rng.below(self.local_words), self.ie(2)),
            67..=71 => Stmt::StoreLocalF(self.rng.below(self.local_words), self.fe(1)),
            72..=81 => Stmt::FaaAcc(self.rng.below(self.acc_cells), self.ie(1)),
            82..=89 if depth < 2 => {
                let c = self.cnd();
                let then = self.block(depth + 1);
                let els = if self.rng.chance(0.4) { self.block(depth + 1) } else { Vec::new() };
                Stmt::If(c, then, els)
            }
            90..=95 if depth < 2 => {
                let trips = self.rng.range_u64(1, 5) as u8;
                Stmt::For(trips, self.block(depth + 1))
            }
            96..=99 if self.allow_lock => {
                Stmt::Critical(self.rng.below(self.acc_cells), self.rng.range_i64(1, 8))
            }
            _ => Stmt::AssignI(self.rng.below(NIVARS as u64) as usize, self.ie(2)),
        }
    }

    fn block(&mut self, depth: usize) -> Vec<Stmt> {
        let n = self.rng.range_u64(1, 4) as usize;
        (0..n).map(|_| self.stmt(depth)).collect()
    }

    fn cnd(&mut self) -> Cnd {
        let op = *pick(
            &mut self.rng,
            &[BCond::Eq, BCond::Ne, BCond::Lt, BCond::Le, BCond::Gt, BCond::Ge],
        );
        Cnd { op, a: self.ie(1), b: self.ie(1) }
    }

    fn ie(&mut self, depth: usize) -> IE {
        if depth == 0 {
            return match self.rng.below(7) {
                0 => IE::Const(self.rng.range_i64(-16, 17)),
                1 => IE::Tid,
                2 => IE::NThreads,
                3 => IE::Var(self.rng.below(NIVARS as u64) as usize),
                4 => IE::LoadOut(self.rng.below(self.out_slots)),
                5 => IE::LoadLocal(self.rng.below(self.local_words)),
                _ => IE::Const(self.rng.range_i64(0, 8)),
            };
        }
        match self.rng.below(12) {
            0..=4 => {
                let op = *pick(
                    &mut self.rng,
                    &[
                        AluOp::Add,
                        AluOp::Sub,
                        AluOp::Mul,
                        AluOp::Div,
                        AluOp::Rem,
                        AluOp::And,
                        AluOp::Or,
                        AluOp::Xor,
                        AluOp::Sll,
                        AluOp::Srl,
                        AluOp::Sra,
                        AluOp::Slt,
                        AluOp::Sle,
                        AluOp::Seq,
                        AluOp::Sne,
                    ],
                );
                IE::Bin(op, Box::new(self.ie(depth - 1)), Box::new(self.ie(depth - 1)))
            }
            5..=6 => IE::LoadIn(Box::new(self.ie(depth - 1))),
            7 => IE::FetchAddOut(self.rng.below(self.out_slots), self.rng.range_i64(1, 5)),
            8 => IE::FromF(Box::new(self.fe(depth - 1))),
            9 => {
                let op = *pick(&mut self.rng, &[CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ne]);
                IE::CmpF(op, Box::new(self.fe(depth - 1)), Box::new(self.fe(depth - 1)))
            }
            _ => self.ie(0),
        }
    }

    fn fe(&mut self, depth: usize) -> FE {
        if depth == 0 {
            return match self.rng.below(4) {
                0 => FE::Const(self.rng.range_f64(-4.0, 4.0)),
                1 => FE::Var(self.rng.below(NFVARS as u64) as usize),
                2 => FE::LoadLocal(self.rng.below(self.local_words)),
                _ => FE::Const(1.5),
            };
        }
        match self.rng.below(8) {
            0..=3 => {
                let op = *pick(
                    &mut self.rng,
                    &[FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Div, FpuOp::Min, FpuOp::Max],
                );
                FE::Bin(op, Box::new(self.fe(depth - 1)), Box::new(self.fe(depth - 1)))
            }
            4 => FE::LoadIn(Box::new(self.ie(depth - 1))),
            5 => FE::FromI(Box::new(self.ie(depth - 1))),
            6 => FE::Sqrt(Box::new(self.fe(depth - 1))),
            _ => self.fe(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a, b);
        let c = generate(43);
        assert_ne!(a, c, "different seeds should give different cases");
    }

    #[test]
    fn emitted_programs_are_well_formed() {
        for seed in 0..40 {
            let tp = generate(seed);
            let case = tp.emit();
            assert!(case.program.len() > 1, "seed {seed}: empty program");
            assert_eq!(
                case.program.switch_count(),
                0,
                "seed {seed}: generator must not emit Switch (grouping pass requirement)"
            );
        }
    }

    #[test]
    fn single_thread_retarget_keeps_body() {
        let tp = generate(7);
        let one = tp.with_nthreads(1);
        assert_eq!(one.stmts, tp.stmts);
        assert_eq!(one.nthreads, 1);
        assert!(one.regs_comparable());
    }
}
