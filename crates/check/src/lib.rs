//! # mtsim-check
//!
//! Correctness tooling for the simulator (DESIGN.md §15): a sequential
//! **reference interpreter** over `mtsim-isa` programs, a seeded
//! **program fuzzer** over the `mtsim-asm` builder DSL, a **differential
//! harness** that holds every switch model × latency × grouping × fault
//! seed to the oracle's architectural result, and a greedy **shrinking
//! minimizer** that reduces failing cases to small witnesses.
//!
//! The oracle ([`run_oracle`]) executes programs with no pipeline, no
//! cache, no context switching, and zero latency — round-robin, one
//! instruction per live thread — so it defines *architectural* semantics
//! only. Generated programs ([`generate`]) are race-free by construction,
//! which makes the differential property exact: every engine schedule
//! must produce the oracle's final shared memory, and (when no
//! synchronization primitive materialized an arrival order in a
//! register) its exact register files and local memories too.
//!
//! Entry points:
//!
//! * [`chaos`] — the `mtsim check --chaos` driver: seeded kills,
//!   truncations, and worker panics against the crash-safe sweep layer
//!   (DESIGN.md §18), asserting byte-identical recovery.
//! * [`fuzz`] — the `mtsim check` driver: N seeded cases across the full
//!   model grid on the work-stealing pool, failures minimized.
//! * [`check_program`] — one case, one verdict.
//! * [`miscompiled_candidates`] — a deliberate §4-violating miscompiler
//!   used to prove the harness catches real reordering bugs.

mod broken;
mod chaos;
mod diff;
mod generate;
mod oracle;
mod shrink;

pub use broken::miscompiled_candidates;
pub use chaos::{chaos, ChaosConfig, ChaosSummary};
pub use diff::{check_program, compare, fault_profile, CaseFailure, CaseReport, LATENCIES};
pub use generate::{generate, Cnd, EmittedCase, Stmt, TestProgram, FE, IE};
pub use oracle::{run_oracle, OracleError, OracleRun};
pub use shrink::{metric, shrink, DEFAULT_BUDGET};

use mtsim_rng::Rng;
use mtsim_sweep::run_jobs;

/// Configuration for a fuzzing campaign.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Number of generated cases.
    pub cases: usize,
    /// Master seed; every case seed derives from it.
    pub seed: u64,
    /// Worker threads for the case-level fan-out.
    pub jobs: usize,
    /// Predicate-evaluation budget for shrinking each failure.
    pub shrink_budget: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            cases: 100,
            seed: 0xB00,
            jobs: mtsim_sweep::default_workers(),
            shrink_budget: DEFAULT_BUDGET,
        }
    }
}

/// One minimized failure from a campaign.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The derived seed of the failing case (reproduce with
    /// `generate(case_seed)`).
    pub case_seed: u64,
    /// What diverged, on the *original* (unshrunk) case.
    pub failure: CaseFailure,
    /// The minimized witness case.
    pub minimized: TestProgram,
    /// Assembly listing of the minimized witness (at its own thread
    /// count), for bug reports.
    pub listing: String,
}

/// Results of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzSummary {
    /// Cases generated and checked.
    pub cases: usize,
    /// Engine runs compared against the oracle.
    pub engine_runs: usize,
    /// Oracle executions.
    pub oracle_runs: usize,
    /// Worker panics (always failures; counted separately because there
    /// is no case to shrink).
    pub panics: Vec<String>,
    /// Divergences found, each minimized.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzSummary {
    /// True when every case matched the oracle everywhere.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.panics.is_empty()
    }

    /// Human-readable report (stable across runs at a fixed seed).
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "mtsim check: {} cases, {} engine runs, {} oracle runs\n",
            self.cases, self.engine_runs, self.oracle_runs
        ));
        for p in &self.panics {
            out.push_str(&format!("PANIC: {p}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!(
                "FAIL seed={:#x} at {}: {}\n  minimized to {} statement(s), nthreads={}:\n",
                f.case_seed,
                f.failure.label,
                f.failure.detail,
                f.minimized.stmts.len(),
                f.minimized.nthreads
            ));
            for line in f.listing.lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        if self.passed() {
            out.push_str("all cases match the reference interpreter\n");
        }
        out
    }
}

/// Derives the per-case seed stream for a campaign. Exposed so a failing
/// seed printed by the CLI can be replayed in a test.
pub fn case_seeds(master: u64, cases: usize) -> Vec<u64> {
    let mut r = Rng::derive(master, "check-fuzz");
    (0..cases).map(|_| r.next_u64()).collect()
}

/// Fault seed paired with a case seed in the campaign grid.
fn fault_seed_for(case_seed: u64) -> u64 {
    Rng::derive(case_seed, "check-fault-seed").next_u64()
}

/// Runs a fuzzing campaign: generates `cfg.cases` cases, checks each one
/// across the full differential grid on the work-stealing pool, and
/// minimizes every failure (serially, after the parallel phase).
pub fn fuzz(cfg: FuzzConfig) -> FuzzSummary {
    let seeds = case_seeds(cfg.seed, cfg.cases);
    let outcomes = run_jobs(seeds, cfg.jobs, |_idx, &case_seed| {
        let tp = generate(case_seed);
        check_program(&tp, fault_seed_for(case_seed))
    });

    let mut summary = FuzzSummary { cases: cfg.cases, ..FuzzSummary::default() };
    for (case_seed, outcome) in outcomes {
        match outcome {
            Err(panic) => summary.panics.push(format!("case seed {case_seed:#x}: {panic}")),
            Ok(Ok(report)) => {
                summary.engine_runs += report.engine_runs;
                summary.oracle_runs += report.oracle_runs;
            }
            Ok(Err(failure)) => {
                let tp = generate(case_seed);
                let fault_seed = fault_seed_for(case_seed);
                let minimized =
                    shrink(&tp, cfg.shrink_budget, |cand| check_program(cand, fault_seed).is_err());
                let listing = minimized.emit().program.listing();
                summary.failures.push(FuzzFailure { case_seed, failure, minimized, listing });
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_stream_is_deterministic_and_spread() {
        let a = case_seeds(0xB00, 8);
        let b = case_seeds(0xB00, 8);
        assert_eq!(a, b);
        let uniq: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(uniq.len(), a.len());
        assert_ne!(case_seeds(0xB01, 8), a);
    }

    #[test]
    fn small_campaign_passes() {
        let summary = fuzz(FuzzConfig { cases: 8, seed: 0xB00, jobs: 2, ..Default::default() });
        assert!(summary.passed(), "{}", summary.report());
        assert!(summary.engine_runs > 0);
        assert!(summary.report().contains("all cases match"));
    }
}
