//! Greedy shrinking minimizer for failing [`TestProgram`]s.
//!
//! Given a case and a predicate "this case still fails", the minimizer
//! repeatedly tries structural reductions — drop a statement, hoist a
//! block's contents into its parent, collapse an expression to one of its
//! operands or to a constant, reduce the thread count or a trip count —
//! and keeps any reduction that both shrinks the case and preserves the
//! failure. It runs to a fixpoint (no candidate accepted) or until the
//! evaluation budget is spent, whichever comes first.
//!
//! The predicate is arbitrary, so the same machinery minimizes genuine
//! differential failures (predicate = `check_program(..).is_err()`) and
//! the deliberately-miscompiled fixture (predicate = "the broken image
//! still diverges from the oracle").

use crate::generate::{Cnd, Stmt, TestProgram, FE, IE};

/// Hard cap on predicate evaluations per [`shrink`] call. Each evaluation
/// may run the engine many times, so this bounds total shrink cost.
pub const DEFAULT_BUDGET: usize = 600;

/// Minimizes `tp` while `still_fails` holds, evaluating the predicate at
/// most `budget` times. Returns the smallest failing case found (possibly
/// `tp` itself). The caller must ensure `still_fails(tp)` is true on
/// entry — the minimizer only ever returns cases for which the predicate
/// was observed to hold.
pub fn shrink(
    tp: &TestProgram,
    budget: usize,
    mut still_fails: impl FnMut(&TestProgram) -> bool,
) -> TestProgram {
    let mut best = tp.clone();
    let mut evals = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if evals >= budget {
                return best;
            }
            if metric(&cand) >= metric(&best) {
                continue;
            }
            evals += 1;
            if still_fails(&cand) {
                best = cand;
                improved = true;
                break; // restart candidate enumeration from the new best
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Shrink-ordering metric: AST size first, then thread count, then
/// sizing parameters — strictly decreasing along accepted candidates, so
/// the greedy loop terminates.
pub fn metric(tp: &TestProgram) -> u64 {
    fn ie(e: &IE) -> u64 {
        1 + match e {
            IE::Bin(_, a, b) => ie(a) + ie(b),
            IE::LoadIn(i) => ie(i),
            IE::FromF(f) => fe(f),
            IE::CmpF(_, a, b) => fe(a) + fe(b),
            _ => 0,
        }
    }
    fn fe(e: &FE) -> u64 {
        1 + match e {
            FE::Bin(_, a, b) => fe(a) + fe(b),
            FE::LoadIn(i) => ie(i),
            FE::FromI(i) => ie(i),
            FE::Sqrt(f) => fe(f),
            _ => 0,
        }
    }
    fn stmt(s: &Stmt) -> u64 {
        2 + match s {
            Stmt::AssignI(_, e)
            | Stmt::StoreOut(_, e)
            | Stmt::StoreLocal(_, e)
            | Stmt::FaaAcc(_, e) => ie(e),
            Stmt::AssignF(_, e) | Stmt::StoreOutF(_, e) | Stmt::StoreLocalF(_, e) => fe(e),
            Stmt::If(c, a, b) => ie(&c.a) + ie(&c.b) + block(a) + block(b),
            Stmt::For(t, b) => *t as u64 + block(b),
            Stmt::Critical(..) | Stmt::Barrier => 4,
        }
    }
    fn block(stmts: &[Stmt]) -> u64 {
        stmts.iter().map(stmt).sum()
    }
    block(&tp.stmts) * 16 + tp.nthreads as u64 * 2 + tp.in_words + tp.local_words
}

/// All one-step reductions of a case, roughly largest-effect first.
fn candidates(tp: &TestProgram) -> Vec<TestProgram> {
    let mut out = Vec::new();
    if tp.nthreads > 1 {
        out.push(tp.with_nthreads(1));
        if tp.nthreads > 2 {
            out.push(tp.with_nthreads(2));
        }
    }
    for stmts in block_variants(&tp.stmts) {
        out.push(TestProgram { stmts, ..tp.clone() });
    }
    if tp.in_words > 1 {
        out.push(TestProgram { in_words: tp.in_words / 2, ..tp.clone() });
    }
    if tp.local_words > 1 {
        out.push(TestProgram { local_words: tp.local_words / 2, ..tp.clone() });
    }
    out
}

/// All blocks obtainable from `stmts` by one reduction anywhere in it.
fn block_variants(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        // Drop statement i entirely.
        let mut dropped = stmts.to_vec();
        dropped.remove(i);
        out.push(dropped);

        // Reductions inside statement i.
        for s in stmt_variants(&stmts[i]) {
            let mut v = stmts.to_vec();
            v[i] = s;
            out.push(v);
        }

        // Hoist block contents into the parent.
        match &stmts[i] {
            Stmt::If(_, a, b) => {
                out.push(splice(stmts, i, a.clone()));
                if !b.is_empty() {
                    out.push(splice(stmts, i, b.clone()));
                }
            }
            Stmt::For(_, body) => out.push(splice(stmts, i, body.clone())),
            _ => {}
        }
    }
    out
}

fn splice(stmts: &[Stmt], i: usize, replacement: Vec<Stmt>) -> Vec<Stmt> {
    let mut v = stmts.to_vec();
    v.splice(i..=i, replacement);
    v
}

/// One-step reductions of a single statement (keeping its kind).
fn stmt_variants(s: &Stmt) -> Vec<Stmt> {
    match s {
        Stmt::AssignI(v, e) => ie_variants(e).into_iter().map(|e| Stmt::AssignI(*v, e)).collect(),
        Stmt::AssignF(v, e) => fe_variants(e).into_iter().map(|e| Stmt::AssignF(*v, e)).collect(),
        Stmt::StoreOut(a, e) => ie_variants(e).into_iter().map(|e| Stmt::StoreOut(*a, e)).collect(),
        Stmt::StoreOutF(a, e) => {
            fe_variants(e).into_iter().map(|e| Stmt::StoreOutF(*a, e)).collect()
        }
        Stmt::StoreLocal(a, e) => {
            ie_variants(e).into_iter().map(|e| Stmt::StoreLocal(*a, e)).collect()
        }
        Stmt::StoreLocalF(a, e) => {
            fe_variants(e).into_iter().map(|e| Stmt::StoreLocalF(*a, e)).collect()
        }
        Stmt::FaaAcc(a, e) => ie_variants(e).into_iter().map(|e| Stmt::FaaAcc(*a, e)).collect(),
        Stmt::If(c, a, b) => {
            let mut out = Vec::new();
            for ca in ie_variants(&c.a) {
                out.push(Stmt::If(Cnd { a: ca, ..c.clone() }, a.clone(), b.clone()));
            }
            for cb in ie_variants(&c.b) {
                out.push(Stmt::If(Cnd { b: cb, ..c.clone() }, a.clone(), b.clone()));
            }
            for va in block_variants(a) {
                out.push(Stmt::If(c.clone(), va, b.clone()));
            }
            for vb in block_variants(b) {
                out.push(Stmt::If(c.clone(), a.clone(), vb));
            }
            out
        }
        Stmt::For(t, body) => {
            let mut out = Vec::new();
            if *t > 1 {
                out.push(Stmt::For(1, body.clone()));
            }
            for v in block_variants(body) {
                out.push(Stmt::For(*t, v));
            }
            out
        }
        Stmt::Critical(..) | Stmt::Barrier => Vec::new(),
    }
}

/// One-step reductions of an integer expression.
fn ie_variants(e: &IE) -> Vec<IE> {
    match e {
        IE::Const(_) => Vec::new(),
        IE::Bin(_, a, b) => vec![(**a).clone(), (**b).clone(), IE::Const(1)],
        IE::LoadIn(i) => vec![(**i).clone(), IE::Const(1)],
        IE::FromF(_) | IE::CmpF(..) | IE::FetchAddOut(..) => vec![IE::Const(1)],
        _ => vec![IE::Const(1)],
    }
}

/// One-step reductions of a floating-point expression.
fn fe_variants(e: &FE) -> Vec<FE> {
    match e {
        FE::Const(_) => Vec::new(),
        FE::Bin(_, a, b) => vec![(**a).clone(), (**b).clone(), FE::Const(1.0)],
        FE::Sqrt(f) => vec![(**f).clone(), FE::Const(1.0)],
        _ => vec![FE::Const(1.0)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn metric_strictly_decreases_on_candidates_accepted_by_shrink() {
        let tp = generate(11);
        let m0 = metric(&tp);
        for c in candidates(&tp) {
            // Not all candidates are smaller (that's fine: shrink() filters),
            // but every removal-of-a-statement candidate must be.
            if c.stmts.len() < tp.stmts.len() && c.nthreads == tp.nthreads {
                assert!(metric(&c) < m0);
            }
        }
    }

    #[test]
    fn shrink_to_empty_when_everything_fails() {
        // A predicate that always holds should drive the case to (near)
        // nothing: no statements, one thread.
        let tp = generate(3);
        let min = shrink(&tp, 10_000, |_| true);
        assert!(min.stmts.is_empty(), "left: {:?}", min.stmts);
        assert_eq!(min.nthreads, 1);
    }

    #[test]
    fn shrink_respects_the_predicate() {
        // Predicate: case still contains at least one FaaAcc statement.
        fn has_faa(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::FaaAcc(..) => true,
                Stmt::If(_, a, b) => has_faa(a) || has_faa(b),
                Stmt::For(_, b) => has_faa(b),
                _ => false,
            })
        }
        let mut tp = generate(5);
        tp.stmts.push(Stmt::FaaAcc(0, IE::Tid));
        let min = shrink(&tp, 10_000, |c| has_faa(&c.stmts));
        assert!(has_faa(&min.stmts));
        // Everything not needed for the predicate is gone.
        assert_eq!(min.stmts.len(), 1, "left: {:?}", min.stmts);
        assert_eq!(min.nthreads, 1);
    }
}
