//! The differential harness: one generated case versus the oracle across
//! the full model grid.
//!
//! For every thread-count variant and processor split of a
//! [`TestProgram`], the harness runs the engine under **every** switch
//! model, at latencies {0, 200, 1000}, on both the compiler-natural and
//! the grouped (`mtsim_opt::group_shared_loads`) program image, plus a
//! set of fault-injected runs — and demands that each run's final
//! architectural state equals the sequential oracle's. This checks the
//! paper's central claim at the semantics level: switch models, latency,
//! grouping, and an unreliable network may change *timing*, never
//! *results*.
//!
//! Metamorphic invariants layered on top:
//!
//! * a repeated run under an identical configuration is bit-identical,
//!   including its cycle count (engine determinism);
//! * with one processor, one thread, no faults, and the ungrouped image,
//!   the engine executes exactly the oracle's dynamic instruction count
//!   (generated programs are spin-free when single-threaded);
//! * the grouping pass is semantics-preserving (every grouped run is
//!   held to the same oracle).

use crate::generate::TestProgram;
use crate::oracle::{run_oracle, OracleRun};
use mtsim_asm::Program;
use mtsim_core::{FinishedRun, Machine, MachineConfig, NetworkConfig, SwitchModel, Topology};
use mtsim_mem::{FaultConfig, LatencyDist};
use mtsim_opt::group_shared_loads;
use mtsim_rng::Rng;

/// Latencies every non-fault configuration is exercised at.
pub const LATENCIES: [u64; 3] = [0, 200, 1000];

/// Cycle budget per engine run. Generated programs are tiny; hitting this
/// means the engine hung (reported as a mismatch, not a panic).
const MAX_CYCLES: u64 = 20_000_000;

/// Instruction budget for the oracle (its deadlock stand-in).
const ORACLE_FUEL: u64 = 5_000_000;

/// A reproducible description of one failing engine configuration.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Which run diverged, e.g. `"n=4 p=2 t=2 grouped switch_on_use lat=200"`.
    pub label: String,
    /// First observed divergence, human-readable.
    pub detail: String,
    /// Thread count of the failing variant.
    pub nthreads: usize,
}

/// Statistics from a passing case.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseReport {
    /// Engine runs executed and compared.
    pub engine_runs: usize,
    /// Oracle executions (one per thread-count variant × split).
    pub oracle_runs: usize,
}

/// Processor/thread splits exercised for a given total thread count.
fn splits(n: usize) -> Vec<(usize, usize)> {
    let mut out = vec![(1, n)];
    if n > 1 {
        out.push((n, 1));
    }
    if n >= 4 && n.is_multiple_of(2) {
        out.push((2, n / 2));
    }
    out
}

/// Thread-count variants of a case: always the single-threaded
/// re-emission (oracle-exact, registers comparable) plus the case's own
/// thread count.
fn variants(tp: &TestProgram) -> Vec<TestProgram> {
    if tp.nthreads == 1 {
        vec![tp.clone()]
    } else {
        vec![tp.with_nthreads(1), tp.clone()]
    }
}

/// Whether a configuration guarantees forward progress for a program that
/// spin-waits (locks/barriers). Cooperative switch models only let a
/// spinning thread's same-processor siblings run if the spin loop
/// actually yields:
///
/// * `SwitchOnUse`/`SwitchOnUseMiss` yield at the use of a *pending*
///   value — at zero latency nothing is ever pending, so a spinner
///   monopolizes its processor;
/// * the explicit-switch models yield only at `Switch` instructions,
///   which ungrouped (compiler-natural) code does not contain, and even
///   grouped code's `Switch` is a no-op when the group's replies already
///   arrived (zero latency).
///
/// These are properties of the modeled hardware (the paper's machines
/// hide *latency*; with none, cooperative switching has nothing to hook
/// on), not engine bugs — so the harness skips exactly these
/// combinations. With one thread per processor there is no sibling to
/// starve and every combination must terminate.
fn progress_guaranteed(
    model: SwitchModel,
    latency: u64,
    grouped: bool,
    has_sync: bool,
    tpp: usize,
) -> bool {
    if !has_sync || tpp == 1 {
        return true;
    }
    match model {
        SwitchModel::Ideal
        | SwitchModel::SwitchEveryCycle
        | SwitchModel::SwitchOnLoad
        | SwitchModel::SwitchOnMiss => true,
        SwitchModel::SwitchOnUse | SwitchModel::SwitchOnUseMiss => latency > 0,
        SwitchModel::ExplicitSwitch | SwitchModel::ConditionalSwitch => grouped && latency > 0,
    }
}

/// The fault profile used for fault-seed runs: drops, delays and
/// duplicates all enabled, geometric extra latency.
pub fn fault_profile(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop_rate: 0.05,
        delay_rate: 0.10,
        dup_rate: 0.05,
        dist: LatencyDist::Geometric { min: 1, p: 0.25 },
        ..FaultConfig::default()
    }
}

/// Checks one generated case against the oracle over the whole grid.
///
/// Returns the run counts on success, or the first divergence found. The
/// `fault_seed` parameterizes the fault-injected runs (the differential
/// property must hold for *every* fault seed; the fuzz driver derives one
/// per case).
pub fn check_program(tp: &TestProgram, fault_seed: u64) -> Result<CaseReport, CaseFailure> {
    let mut report = CaseReport::default();
    for var in variants(tp) {
        for (procs, tpp) in splits(var.nthreads) {
            check_split(&var, procs, tpp, fault_seed, &mut report)?;
        }
    }
    Ok(report)
}

fn check_split(
    tp: &TestProgram,
    procs: usize,
    tpp: usize,
    fault_seed: u64,
    report: &mut CaseReport,
) -> Result<(), CaseFailure> {
    let case = tp.emit();
    let n = case.nthreads;
    let who = |tag: &str, model: SwitchModel, lat: u64| {
        format!("n={n} p={procs} t={tpp} {tag} {} lat={lat}", model.name())
    };
    let fail = |label: String, detail: String| CaseFailure { label, detail, nthreads: n };

    let local_words = MachineConfig::new(SwitchModel::Ideal, 1, 1)
        .local_mem_words
        .max(case.program.local_words());
    let oracle = run_oracle(&case.program, case.shared.clone(), n, local_words, ORACLE_FUEL)
        .map_err(|e| fail(format!("n={n} oracle"), e.to_string()))?;
    report.oracle_runs += 1;

    let grouped = group_shared_loads(&case.program).program;
    let images: [(&Program, &str); 2] = [(&case.program, "ungrouped"), (&grouped, "grouped")];

    let has_sync = tp.uses_lock() || tp.uses_barrier();
    for (prog, tag) in images {
        for model in SwitchModel::ALL {
            for lat in LATENCIES {
                if !progress_guaranteed(model, lat, tag == "grouped", has_sync, tpp) {
                    continue;
                }
                let cfg = MachineConfig::new(model, procs, tpp).with_latency(lat);
                let run = run_engine(cfg, prog, &case.shared)
                    .map_err(|e| fail(who(tag, model, lat), e))?;
                report.engine_runs += 1;
                compare(&oracle, &run, case.regs_comparable)
                    .map_err(|d| fail(who(tag, model, lat), d))?;

                // Metamorphic: single-threaded, zero-latency, ungrouped
                // runs are spin-free, so the engine must execute exactly
                // the oracle's dynamic instruction count.
                if n == 1
                    && lat == 0
                    && tag == "ungrouped"
                    && model == SwitchModel::Ideal
                    && run.result.instructions != oracle.instructions
                {
                    return Err(fail(
                        who(tag, model, lat),
                        format!(
                            "instruction count diverged: engine {} vs oracle {}",
                            run.result.instructions, oracle.instructions
                        ),
                    ));
                }
            }
        }
    }

    // Engine determinism: an identical configuration twice must reproduce
    // the run bit-for-bit, cycle count included.
    {
        let model = SwitchModel::SwitchOnUse;
        let mk = || MachineConfig::new(model, procs, tpp).with_latency(200);
        let a = run_engine(mk(), &case.program, &case.shared)
            .map_err(|e| fail(who("det-a", model, 200), e))?;
        let b = run_engine(mk(), &case.program, &case.shared)
            .map_err(|e| fail(who("det-b", model, 200), e))?;
        report.engine_runs += 2;
        if a.result.cycles != b.result.cycles || a.threads != b.threads {
            return Err(fail(
                who("determinism", model, 200),
                format!("repeated run diverged: {} vs {} cycles", a.result.cycles, b.result.cycles),
            ));
        }
    }

    // Fault-injected runs: drops/delays/duplicates change traffic and
    // timing, never architecture.
    let fault_grid: [(SwitchModel, &Program, &str); 3] = [
        (SwitchModel::SwitchOnLoad, &case.program, "fault-ungrouped"),
        (SwitchModel::ExplicitSwitch, &grouped, "fault-grouped"),
        (SwitchModel::ConditionalSwitch, &grouped, "fault-grouped"),
    ];
    for (i, (model, prog, tag)) in fault_grid.into_iter().enumerate() {
        let seed = Rng::derive(fault_seed, "fault-run").next_u64().wrapping_add(i as u64);
        let cfg = MachineConfig::new(model, procs, tpp)
            .with_latency(200)
            .with_faults(fault_profile(seed));
        let run = run_engine(cfg, prog, &case.shared).map_err(|e| fail(who(tag, model, 200), e))?;
        report.engine_runs += 1;
        compare(&oracle, &run, case.regs_comparable).map_err(|d| fail(who(tag, model, 200), d))?;
    }

    // Network-topology runs (PR 4): a modeled interconnect — queueing,
    // routing, combining — changes timing, never results. Every contention
    // topology must still match the oracle byte-for-byte. (`Constant` is
    // already the whole grid above: an inactive network is the identity.)
    let net_grid: [(Topology, bool, SwitchModel, &Program); 4] = [
        (Topology::Crossbar, false, SwitchModel::SwitchOnLoad, &case.program),
        (Topology::Mesh, false, SwitchModel::SwitchOnLoad, &case.program),
        (Topology::Butterfly, false, SwitchModel::SwitchOnLoad, &case.program),
        (Topology::Butterfly, true, SwitchModel::ExplicitSwitch, &grouped),
    ];
    for (topology, combining, model, prog) in net_grid {
        let label = format!(
            "n={n} p={procs} t={tpp} net-{topology}{} {} lat=200",
            if combining { "+comb" } else { "" },
            model.name()
        );
        let cfg = MachineConfig::new(model, procs, tpp)
            .with_latency(200)
            .with_net(NetworkConfig::new(topology).with_combining(combining));
        let run = run_engine(cfg, prog, &case.shared).map_err(|e| fail(label.clone(), e))?;
        report.engine_runs += 1;
        compare(&oracle, &run, case.regs_comparable).map_err(|d| fail(label, d))?;
    }

    Ok(())
}

fn run_engine(
    mut cfg: MachineConfig,
    prog: &Program,
    shared: &mtsim_mem::SharedMemory,
) -> Result<FinishedRun, String> {
    cfg.max_cycles = MAX_CYCLES;
    cfg.try_validate()?;
    Machine::new(cfg, prog, shared.clone()).run().map_err(|e| format!("engine error: {e}"))
}

/// Compares an engine run against the oracle: full shared memory always;
/// registers, FP bit patterns, and local memory when the case is
/// interleaving-independent at the register level.
pub fn compare(oracle: &OracleRun, run: &FinishedRun, regs_comparable: bool) -> Result<(), String> {
    if oracle.shared.len() != run.shared.len() {
        return Err(format!(
            "shared size diverged: oracle {} vs engine {} words",
            oracle.shared.len(),
            run.shared.len()
        ));
    }
    for addr in 0..oracle.shared.len() {
        let (o, e) = (oracle.shared.read(addr), run.shared.read(addr));
        if o != e {
            return Err(format!(
                "shared[{addr}] diverged: oracle {o:#x} ({}) vs engine {e:#x} ({})",
                o as i64, e as i64
            ));
        }
    }
    if !regs_comparable {
        return Ok(());
    }
    if oracle.threads.len() != run.threads.len() {
        return Err(format!(
            "thread count diverged: oracle {} vs engine {}",
            oracle.threads.len(),
            run.threads.len()
        ));
    }
    for (t, (o, e)) in oracle.threads.iter().zip(run.threads.iter()).enumerate() {
        if let Some(r) = (0..o.regs.len()).find(|&r| o.regs[r] != e.regs[r]) {
            return Err(format!(
                "thread {t} r{r} diverged: oracle {} vs engine {}",
                o.regs[r], e.regs[r]
            ));
        }
        if let Some(r) = (0..o.fregs.len()).find(|&r| o.fregs[r] != e.fregs[r]) {
            return Err(format!(
                "thread {t} f{r} diverged: oracle {:#x} vs engine {:#x}",
                o.fregs[r], e.fregs[r]
            ));
        }
        if o.local != e.local {
            let w = (0..o.local.len().min(e.local.len()))
                .find(|&w| o.local[w] != e.local[w])
                .unwrap_or(0);
            return Err(format!(
                "thread {t} local[{w}] diverged: oracle {:#x} vs engine {:#x}",
                o.local.get(w).copied().unwrap_or(0),
                e.local.get(w).copied().unwrap_or(0)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn splits_cover_the_paper_shapes() {
        assert_eq!(splits(1), vec![(1, 1)]);
        assert_eq!(splits(2), vec![(1, 2), (2, 1)]);
        assert_eq!(splits(4), vec![(1, 4), (4, 1), (2, 2)]);
    }

    #[test]
    fn a_handful_of_seeds_pass_the_full_grid() {
        for seed in 0..6 {
            let tp = generate(seed);
            let report = check_program(&tp, seed)
                .unwrap_or_else(|f| panic!("seed {seed} failed at {}: {}", f.label, f.detail));
            assert!(report.engine_runs > 0);
        }
    }
}
