//! The sequential reference interpreter — the architectural oracle.
//!
//! This is a from-scratch second implementation of the ISA's *architectural*
//! semantics: no event loop, no pipeline, no caches, no latency, no switch
//! models. Threads are interpreted one instruction at a time in strict
//! round-robin order (thread 0, 1, …, n-1, 0, …), which is fair — spin
//! loops around barriers and ticket locks always make progress — and
//! timing-free. For the race-free programs the fuzzer generates (disjoint
//! private stores, commutative fetch-and-add accumulation, lock-protected
//! read-modify-writes), the final memory image is interleaving-independent,
//! so *any* fair schedule here must agree with *every* engine schedule.
//!
//! The engine in `mtsim-core` writes a loaded value into its destination
//! register at issue time and applies shared mutations in global time
//! order; architecturally that is exactly "read memory now", which is what
//! this interpreter does. Anything the two disagree on is a bug in one of
//! them — that disagreement is the entire point of `mtsim-check`.

use mtsim_asm::Program;
use mtsim_core::ThreadImage;
use mtsim_isa::{AluOp, BCond, CmpOp, FReg, FpuOp, Inst, Pc, Reg, Space};
use mtsim_mem::SharedMemory;

/// Why the oracle could not finish a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The simulated program performed a wild access or ran off the end of
    /// its code (mirrors `SimError::BadProgram`).
    BadProgram {
        /// Thread id.
        thread: usize,
        /// Program counter of the offending instruction.
        pc: u64,
        /// Human-readable description.
        detail: String,
    },
    /// The instruction budget ran out before every thread halted — the
    /// oracle's stand-in for deadlock/livelock detection.
    Fuel {
        /// Instructions executed before giving up.
        executed: u64,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::BadProgram { thread, pc, detail } => {
                write!(f, "oracle: bad program (thread {thread}, pc {pc}): {detail}")
            }
            OracleError::Fuel { executed } => {
                write!(f, "oracle: fuel exhausted after {executed} instructions")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// The oracle's verdict: final shared memory, final per-thread
/// architectural state, and the dynamic instruction count.
#[derive(Debug)]
pub struct OracleRun {
    /// Shared memory at completion.
    pub shared: SharedMemory,
    /// Final state of every thread, indexed by thread id.
    pub threads: Vec<ThreadImage>,
    /// Total instructions executed across all threads.
    pub instructions: u64,
}

/// One interpreted thread.
struct OThread {
    regs: [i64; Reg::COUNT],
    fregs: [f64; FReg::COUNT],
    local: Vec<u64>,
    pc: Pc,
    halted: bool,
}

impl OThread {
    fn new(tid: i64, nthreads: i64, local_words: u64) -> OThread {
        let mut regs = [0i64; Reg::COUNT];
        regs[Reg::TID.index()] = tid;
        regs[Reg::NTHREADS.index()] = nthreads;
        OThread {
            regs,
            fregs: [0.0; FReg::COUNT],
            local: vec![0; local_words as usize],
            pc: 0,
            halted: false,
        }
    }

    fn rget(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    fn rset(&mut self, r: Reg, v: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }
}

/// Runs `program` on `nthreads` threads over `shared`, round-robin one
/// instruction at a time, until every thread halts.
///
/// `local_words` must match the engine's sizing rule
/// (`config.local_mem_words.max(program.local_words())`) for local-memory
/// images to be comparable.
///
/// # Errors
///
/// [`OracleError::BadProgram`] on wild accesses or a runaway program
/// counter; [`OracleError::Fuel`] when `fuel` instructions were executed
/// without reaching global halt.
pub fn run_oracle(
    program: &Program,
    shared: SharedMemory,
    nthreads: usize,
    local_words: u64,
    fuel: u64,
) -> Result<OracleRun, OracleError> {
    let mut shared = shared;
    let mut threads: Vec<OThread> =
        (0..nthreads).map(|t| OThread::new(t as i64, nthreads as i64, local_words)).collect();
    let mut executed: u64 = 0;
    let mut live = nthreads;

    while live > 0 {
        for (tid, thread) in threads.iter_mut().enumerate() {
            if thread.halted {
                continue;
            }
            if executed >= fuel {
                return Err(OracleError::Fuel { executed });
            }
            executed += 1;
            step(program, thread, &mut shared, tid)?;
            if thread.halted {
                live -= 1;
            }
        }
    }

    let threads = threads
        .into_iter()
        .map(|t| ThreadImage { regs: t.regs, fregs: t.fregs.map(f64::to_bits), local: t.local })
        .collect();
    Ok(OracleRun { shared, threads, instructions: executed })
}

fn bad(tid: usize, pc: Pc, detail: String) -> OracleError {
    OracleError::BadProgram { thread: tid, pc: pc as u64, detail }
}

/// Effective word address, rejecting negatives.
fn ea(th: &OThread, tid: usize, pc: Pc, base: Reg, offset: i64) -> Result<u64, OracleError> {
    let a = th.rget(base).wrapping_add(offset);
    if a < 0 {
        Err(bad(tid, pc, format!("negative effective address {a}")))
    } else {
        Ok(a as u64)
    }
}

fn shared_read(sh: &SharedMemory, tid: usize, pc: Pc, addr: u64) -> Result<u64, OracleError> {
    sh.try_read(addr).ok_or_else(|| bad(tid, pc, format!("shared load out of range: word {addr}")))
}

fn shared_write(
    sh: &mut SharedMemory,
    tid: usize,
    pc: Pc,
    addr: u64,
    v: u64,
) -> Result<(), OracleError> {
    sh.try_write(addr, v)
        .ok_or_else(|| bad(tid, pc, format!("shared store out of range: word {addr}")))
}

fn local_read(th: &OThread, tid: usize, pc: Pc, addr: u64) -> Result<u64, OracleError> {
    th.local
        .get(addr as usize)
        .copied()
        .ok_or_else(|| bad(tid, pc, format!("local load out of range: word {addr}")))
}

fn local_write(th: &mut OThread, tid: usize, pc: Pc, addr: u64, v: u64) -> Result<(), OracleError> {
    match th.local.get_mut(addr as usize) {
        Some(slot) => {
            *slot = v;
            Ok(())
        }
        None => Err(bad(tid, pc, format!("local store out of range: word {addr}"))),
    }
}

/// Integer ALU semantics (the ISA spec: wrapping arithmetic, division by
/// zero yields 0, shift counts masked to 6 bits, comparisons yield 0/1).
fn alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
        AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
        AluOp::Sra => a >> (b as u64 & 63),
        AluOp::Slt => (a < b) as i64,
        AluOp::Sle => (a <= b) as i64,
        AluOp::Seq => (a == b) as i64,
        AluOp::Sne => (a != b) as i64,
    }
}

/// Executes one instruction of one thread.
fn step(
    program: &Program,
    th: &mut OThread,
    shared: &mut SharedMemory,
    tid: usize,
) -> Result<(), OracleError> {
    let pc = th.pc;
    if pc as usize >= program.len() {
        return Err(bad(tid, pc, "program counter ran past the end of the code".to_string()));
    }
    let inst = *program.inst(pc);
    th.pc += 1;
    match inst {
        Inst::Alu { op, rd, rs, rt } => {
            let v = alu(op, th.rget(rs), th.rget(rt));
            th.rset(rd, v);
        }
        Inst::AluI { op, rd, rs, imm } => {
            let v = alu(op, th.rget(rs), imm);
            th.rset(rd, v);
        }
        Inst::Fpu { op, fd, fs, ft } => {
            let a = th.fregs[fs.index()];
            let b = th.fregs[ft.index()];
            th.fregs[fd.index()] = match op {
                FpuOp::Add => a + b,
                FpuOp::Sub => a - b,
                FpuOp::Mul => a * b,
                FpuOp::Div => a / b,
                FpuOp::Min => a.min(b),
                FpuOp::Max => a.max(b),
            };
        }
        Inst::FpuCmp { op, rd, fs, ft } => {
            let a = th.fregs[fs.index()];
            let b = th.fregs[ft.index()];
            let v = match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
            };
            th.rset(rd, v as i64);
        }
        Inst::FLi { fd, val } => th.fregs[fd.index()] = val,
        Inst::CvtIF { fd, rs } => th.fregs[fd.index()] = th.rget(rs) as f64,
        Inst::CvtFI { rd, fs } => {
            let v = th.fregs[fs.index()] as i64;
            th.rset(rd, v);
        }
        Inst::MovIF { fd, rs } => th.fregs[fd.index()] = f64::from_bits(th.rget(rs) as u64),
        Inst::MovFI { rd, fs } => {
            let v = th.fregs[fs.index()].to_bits() as i64;
            th.rset(rd, v);
        }
        Inst::FSqrt { fd, fs } => th.fregs[fd.index()] = th.fregs[fs.index()].sqrt(),

        Inst::Load { space, rd, base, offset, .. } => {
            let a = ea(th, tid, pc, base, offset)?;
            let raw = match space {
                Space::Local => local_read(th, tid, pc, a)?,
                Space::Shared => shared_read(shared, tid, pc, a)?,
            };
            th.rset(rd, raw as i64);
        }
        Inst::Store { space, rs, base, offset, .. } => {
            let a = ea(th, tid, pc, base, offset)?;
            let v = th.rget(rs) as u64;
            match space {
                Space::Local => local_write(th, tid, pc, a, v)?,
                Space::Shared => shared_write(shared, tid, pc, a, v)?,
            }
        }
        Inst::FLoad { space, fd, base, offset } => {
            let a = ea(th, tid, pc, base, offset)?;
            let raw = match space {
                Space::Local => local_read(th, tid, pc, a)?,
                Space::Shared => shared_read(shared, tid, pc, a)?,
            };
            th.fregs[fd.index()] = f64::from_bits(raw);
        }
        Inst::FStore { space, fs, base, offset } => {
            let a = ea(th, tid, pc, base, offset)?;
            let v = th.fregs[fs.index()].to_bits();
            match space {
                Space::Local => local_write(th, tid, pc, a, v)?,
                Space::Shared => shared_write(shared, tid, pc, a, v)?,
            }
        }
        Inst::LoadPair { space, fd1, fd2, base, offset } => {
            let a = ea(th, tid, pc, base, offset)?;
            let (r1, r2) = match space {
                Space::Local => (local_read(th, tid, pc, a)?, local_read(th, tid, pc, a + 1)?),
                Space::Shared => {
                    (shared_read(shared, tid, pc, a)?, shared_read(shared, tid, pc, a + 1)?)
                }
            };
            th.fregs[fd1.index()] = f64::from_bits(r1);
            th.fregs[fd2.index()] = f64::from_bits(r2);
        }
        Inst::StorePair { space, fs1, fs2, base, offset } => {
            let a = ea(th, tid, pc, base, offset)?;
            let (v1, v2) = (th.fregs[fs1.index()].to_bits(), th.fregs[fs2.index()].to_bits());
            match space {
                Space::Local => {
                    local_write(th, tid, pc, a, v1)?;
                    local_write(th, tid, pc, a + 1, v2)?;
                }
                Space::Shared => {
                    shared_write(shared, tid, pc, a, v1)?;
                    shared_write(shared, tid, pc, a + 1, v2)?;
                }
            }
        }
        Inst::FetchAdd { rd, rs, base, offset, .. } => {
            let a = ea(th, tid, pc, base, offset)?;
            let inc = th.rget(rs);
            let old = shared
                .try_fetch_add(a, inc)
                .ok_or_else(|| bad(tid, pc, format!("fetch-and-add out of range: word {a}")))?;
            th.rset(rd, old as i64);
        }

        Inst::Branch { cond, rs, rt, target } => {
            let a = th.rget(rs);
            let b = th.rget(rt);
            let take = match cond {
                BCond::Eq => a == b,
                BCond::Ne => a != b,
                BCond::Lt => a < b,
                BCond::Le => a <= b,
                BCond::Gt => a > b,
                BCond::Ge => a >= b,
            };
            if take {
                th.pc = target.pc();
            }
        }
        Inst::Jump { target } => th.pc = target.pc(),
        // Architecturally invisible: scheduling hints and timing-only
        // instructions.
        Inst::SetPrio { .. } | Inst::Switch | Inst::Nop => {}
        Inst::Halt => th.halted = true,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_asm::ProgramBuilder;
    use mtsim_isa::AccessHint;

    #[test]
    fn single_thread_arithmetic_and_memory() {
        let mut b = ProgramBuilder::new("t");
        let x = b.def_i("x", 7);
        b.assign(x, x.get() * 6);
        b.store_shared(b.const_i(0), x.get());
        b.store_local(b.const_i(1), x.get() + 1);
        let v = b.def_i("v", b.load_local(b.const_i(1)));
        b.store_shared(b.const_i(1), v.get());
        let prog = b.finish();

        let run = run_oracle(&prog, SharedMemory::new(4), 1, 256, 1_000_000).unwrap();
        assert_eq!(run.shared.read_i64(0), 42);
        assert_eq!(run.shared.read_i64(1), 43);
    }

    #[test]
    fn round_robin_finishes_barriers() {
        // A fetch-and-add arrival plus a spin on the generation word: the
        // round-robin schedule must let the last arriver release everyone.
        let mut layout = mtsim_asm::SharedLayout::new();
        let a = layout.alloc("a", 1) as i64;
        let out = layout.alloc("out", 1) as i64;
        let bar = mtsim_rt::Barrier::alloc(&mut layout, "bar", 4);
        let mut b = ProgramBuilder::new("t");
        b.fetch_add_discard(b.const_i(a), b.const_i(1), AccessHint::Data);
        bar.emit_wait(&mut b);
        b.if_(b.tid().eq(0), |b| {
            let v = b.def_i("v", b.load_shared(b.const_i(a)));
            b.store_shared(b.const_i(out), v.get());
        });
        let prog = b.finish();

        let run = run_oracle(&prog, SharedMemory::new(layout.size()), 4, 256, 1_000_000).unwrap();
        assert_eq!(run.shared.read_i64(out as u64), 4);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let mut b = ProgramBuilder::new("t");
        b.while_(b.const_i(0).eq(0), |_| {});
        let prog = b.finish();
        let err = run_oracle(&prog, SharedMemory::new(1), 1, 256, 1000).unwrap_err();
        assert!(matches!(err, OracleError::Fuel { .. }));
    }

    #[test]
    fn wild_access_is_bad_program() {
        let mut b = ProgramBuilder::new("t");
        b.store_shared(b.const_i(999_999), b.const_i(1));
        let prog = b.finish();
        let err = run_oracle(&prog, SharedMemory::new(4), 1, 256, 1000).unwrap_err();
        assert!(matches!(err, OracleError::BadProgram { .. }));
    }
}
