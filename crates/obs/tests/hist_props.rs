//! Property tests for streaming-histogram determinism (the satellite
//! requirement behind sweep `--attr`): the same multiset of samples must
//! produce identical buckets and quantiles no matter how it is ordered,
//! partitioned across workers, or merged. Style follows
//! `crates/sweep/tests/json_props.rs`: a small hand-rolled xorshift
//! generator, many seeds, no external property-testing crate.

use mtsim_obs::StreamHist;

/// Deterministic xorshift64* — the workspace's stock test generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A sample spread over both histogram regions: exact (< 256) and
    /// log-bucketed, with occasional huge values.
    fn sample(&mut self) -> u64 {
        match self.next() % 4 {
            0 => self.next() % 256,
            1 => 200, // the paper's constant latency, heavily repeated
            2 => self.next() % 100_000,
            _ => self.next() >> (self.next() % 60),
        }
    }
}

fn record_all(values: &[u64]) -> StreamHist {
    let mut h = StreamHist::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn insertion_order_does_not_change_the_histogram() {
    for seed in 1..=20u64 {
        let mut rng = Rng::new(seed);
        let values: Vec<u64> = (0..500).map(|_| rng.sample()).collect();
        let forward = record_all(&values);
        let mut reversed: Vec<u64> = values.clone();
        reversed.reverse();
        let backward = record_all(&reversed);
        // An arbitrary deterministic shuffle: stride through the values.
        let mut strided = Vec::with_capacity(values.len());
        for start in 0..7 {
            strided.extend(values.iter().skip(start).step_by(7).copied());
        }
        let shuffled = record_all(&strided);
        assert_eq!(forward, backward, "seed {seed}: reverse order changed the histogram");
        assert_eq!(forward, shuffled, "seed {seed}: shuffle changed the histogram");
    }
}

#[test]
fn worker_count_and_merge_order_do_not_change_the_histogram() {
    for seed in 1..=20u64 {
        let mut rng = Rng::new(seed);
        let values: Vec<u64> = (0..500).map(|_| rng.sample()).collect();
        let sequential = record_all(&values);
        for workers in [1usize, 2, 3, 4, 8, 16] {
            // Partition round-robin over `workers` shards, as the sweep
            // pool would, then merge in two different orders.
            let mut shards = vec![StreamHist::new(); workers];
            for (i, &v) in values.iter().enumerate() {
                shards[i % workers].record(v);
            }
            let mut fwd = StreamHist::new();
            for s in &shards {
                fwd.merge(s);
            }
            let mut rev = StreamHist::new();
            for s in shards.iter().rev() {
                rev.merge(s);
            }
            assert_eq!(sequential, fwd, "seed {seed}: {workers} workers changed the histogram");
            assert_eq!(fwd, rev, "seed {seed}: merge order changed the histogram");
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(
                    sequential.quantile(q),
                    fwd.quantile(q),
                    "seed {seed}: quantile {q} drifted under {workers} workers"
                );
            }
        }
    }
}

#[test]
fn quantiles_never_exceed_observed_maximum() {
    for seed in 1..=10u64 {
        let mut rng = Rng::new(seed);
        let h = record_all(&(0..300).map(|_| rng.sample()).collect::<Vec<_>>());
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert!(h.quantile(q) <= h.max(), "seed {seed}: q{q} above max");
        }
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }
}

#[test]
fn merging_an_empty_histogram_is_identity() {
    let mut rng = Rng::new(9);
    let h = record_all(&(0..100).map(|_| rng.sample()).collect::<Vec<_>>());
    let mut merged = h.clone();
    merged.merge(&StreamHist::new());
    assert_eq!(h, merged);
    let mut other_way = StreamHist::new();
    other_way.merge(&h);
    assert_eq!(h, other_way);
}
