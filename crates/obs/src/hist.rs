//! Log-bucketed streaming histograms (HDR-style).
//!
//! Values `0..=255` land in exact unit-width buckets, so the common
//! latencies of this simulator (the paper's constant 200-cycle network)
//! report *exact* quantiles. Larger values use one power-of-two range
//! split into 16 linear sub-buckets (relative error < 1/16). Recording is
//! O(1), merging is bucket-wise addition, and every operation is
//! deterministic: the same multiset of samples produces the same buckets
//! and quantiles regardless of insertion or merge order.

/// Exact unit-width buckets for values below this bound.
const EXACT: usize = 256;
/// log2 of [`EXACT`].
const EXACT_BITS: u32 = 8;
/// Linear sub-buckets per power-of-two range above [`EXACT`].
const SUB: usize = 16;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 4;
/// Total bucket count: exact region + 16 sub-buckets for each of the
/// power-of-two ranges `2^8..2^63`.
const BUCKETS: usize = EXACT + (64 - EXACT_BITS as usize) * SUB;

/// A mergeable streaming histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct StreamHist {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for StreamHist {
    fn default() -> StreamHist {
        StreamHist::new()
    }
}

impl PartialEq for StreamHist {
    fn eq(&self, other: &StreamHist) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.buckets[..] == other.buckets[..]
    }
}
impl Eq for StreamHist {}

/// Bucket index of `value`.
#[inline]
fn index_of(value: u64) -> usize {
    if value < EXACT as u64 {
        value as usize
    } else {
        let k = 63 - value.leading_zeros(); // value in [2^k, 2^(k+1)), k >= 8
        let sub = ((value >> (k - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        EXACT + (k - EXACT_BITS) as usize * SUB + sub
    }
}

/// Smallest value mapping to bucket `i` — the reported representative, so
/// quantiles of exact-region samples are exact and larger ones round down.
#[inline]
fn low_of(i: usize) -> u64 {
    if i < EXACT {
        i as u64
    } else {
        let k = EXACT_BITS + ((i - EXACT) / SUB) as u32;
        let sub = ((i - EXACT) % SUB) as u64;
        (1u64 << k) + (sub << (k - SUB_BITS))
    }
}

impl StreamHist {
    /// An empty histogram.
    pub fn new() -> StreamHist {
        StreamHist { buckets: Box::new([0; BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[index_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the representative (bucket
    /// lower bound) of the bucket holding the sample of rank
    /// `ceil(q × count)`. Exact for values below 256; within 1/16 above.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return low_of(i);
            }
        }
        self.max
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges `other` into `self` (bucket-wise addition; order-independent).
    pub fn merge(&mut self, other: &StreamHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates `(bucket_low, count)` over non-empty buckets in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, &c)| (low_of(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let mut h = StreamHist::new();
        for _ in 0..1000 {
            h.record(200);
        }
        assert_eq!(h.p50(), 200);
        assert_eq!(h.p99(), 200);
        assert_eq!(h.min(), 200);
        assert_eq!(h.max(), 200);
        assert!((h.mean() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = StreamHist::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn large_values_round_down_within_a_sixteenth() {
        let mut h = StreamHist::new();
        h.record(1_000_000);
        let p = h.p50();
        assert!(p <= 1_000_000, "representative must not exceed the sample");
        assert!((1_000_000 - p) as f64 <= 1_000_000.0 / 16.0, "p50={p}");
    }

    #[test]
    fn bucket_index_and_low_agree() {
        for v in [0, 1, 255, 256, 257, 300, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = index_of(v);
            assert!(low_of(i) <= v, "low({i})={} > {v}", low_of(i));
            if i + 1 < BUCKETS {
                assert!(low_of(i + 1) > v, "value {v} not below next bucket");
            }
        }
    }

    #[test]
    fn merge_is_addition() {
        let mut a = StreamHist::new();
        let mut b = StreamHist::new();
        a.record(3);
        b.record(500);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 3);
        assert_eq!(a.nonzero_buckets().map(|(_, c)| c).sum::<u64>(), 3);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = StreamHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
