//! `mtsim-obs`: zero-cost observability for the mtsim engine.
//!
//! The paper's entire argument is about *where cycles go* (Boothe &
//! Ranade §4–6), so the engine is instrumented at every state transition
//! — but through a [`Recorder`] trait selected by **generics**, never a
//! runtime flag. The engine's hot loop is monomorphized once per recorder
//! type; with [`NoopRecorder`] every hook is an empty inline function and
//! the compiled code is the uninstrumented engine, bit-identical results
//! and all. With [`ObsRecorder`] the same run additionally produces:
//!
//! * a typed event trace (fixed-capacity ring, [`event`]),
//! * per-thread cycle attribution with a conservation proof ([`attr`]),
//! * mergeable streaming histograms ([`hist`]),
//! * Chrome/Perfetto trace JSON and a text flame table
//!   ([`trace_export`], [`flame`]).
//!
//! This crate is dependency-free (DESIGN.md §9) and engine-agnostic: it
//! speaks in plain processor/thread indices and cycle counts.

pub mod attr;
pub mod event;
pub mod flame;
pub mod hist;
pub mod json;
pub mod trace_export;

pub use attr::{AttrSummary, AttrTable, Cat};
pub use event::{Event, EventKind, EventRing, SwitchCause};
pub use hist::StreamHist;
pub use json::JsonBuilder;
pub use trace_export::{spans_to_chrome_trace, TraceSpan};

/// Which streaming histogram a sample feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Round-trip latency of one reply-bearing shared read, in cycles
    /// (includes fault-retry extension).
    LoadLatency,
    /// Cycles one network message sat queued on busy links or modules.
    QueueResidency,
    /// Busy cycles a thread ran between two context switches.
    RunLength,
}

/// The engine's observability hooks.
///
/// The engine is generic over `R: Recorder`; each call site is guarded by
/// `R::ENABLED` only where *computing the arguments* costs something —
/// the calls themselves compile away for [`NoopRecorder`].
pub trait Recorder {
    /// `false` only for the no-op recorder: lets the engine skip argument
    /// computation (e.g. network-statistics deltas) that a real recorder
    /// needs.
    const ENABLED: bool = true;

    /// A typed event at simulation cycle `at` on `proc` about `thread`.
    fn event(&mut self, at: u64, proc: usize, thread: usize, kind: EventKind);

    /// Charges `cycles` of `thread`'s time to `cat` (never [`Cat::Idle`]).
    fn charge(&mut self, thread: usize, cat: Cat, cycles: u64);

    /// Charges `cycles` of end-of-run idle to `proc`.
    fn charge_idle(&mut self, proc: usize, cycles: u64);

    /// Feeds `value` into the histogram behind `metric`.
    fn sample(&mut self, metric: Metric, value: u64);

    /// The run completed at wall-clock cycle `cycles`.
    fn finish_run(&mut self, cycles: u64);
}

/// The disabled path: every hook is empty and inlined, so the engine
/// monomorphized over this type is the seed engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _at: u64, _proc: usize, _thread: usize, _kind: EventKind) {}

    #[inline(always)]
    fn charge(&mut self, _thread: usize, _cat: Cat, _cycles: u64) {}

    #[inline(always)]
    fn charge_idle(&mut self, _proc: usize, _cycles: u64) {}

    #[inline(always)]
    fn sample(&mut self, _metric: Metric, _value: u64) {}

    #[inline(always)]
    fn finish_run(&mut self, _cycles: u64) {}
}

/// Default event-ring capacity (events, not bytes) for [`ObsRecorder`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// The full recorder: event ring + attribution table + histograms.
#[derive(Debug, Clone)]
pub struct ObsRecorder {
    /// The typed event trace.
    pub events: EventRing,
    /// Per-thread cycle attribution.
    pub attr: AttrTable,
    /// Shared-load round-trip latency.
    pub load_latency: StreamHist,
    /// Network queue residency per message.
    pub queue_residency: StreamHist,
    /// Run length between context switches.
    pub run_lengths: StreamHist,
}

impl ObsRecorder {
    /// A recorder for `processors × total_threads` with the default ring
    /// capacity.
    pub fn new(processors: usize, total_threads: usize) -> ObsRecorder {
        ObsRecorder::with_capacity(processors, total_threads, DEFAULT_RING_CAPACITY)
    }

    /// A recorder whose ring keeps the most recent `capacity` events.
    pub fn with_capacity(processors: usize, total_threads: usize, capacity: usize) -> ObsRecorder {
        ObsRecorder {
            events: EventRing::new(capacity),
            attr: AttrTable::new(processors, total_threads),
            load_latency: StreamHist::new(),
            queue_residency: StreamHist::new(),
            run_lengths: StreamHist::new(),
        }
    }

    /// The Chrome/Perfetto trace JSON of the recorded events.
    pub fn chrome_trace(&self) -> String {
        trace_export::chrome_trace(&self.events)
    }

    /// The text flame table of the recorded attribution.
    pub fn flame_table(&self) -> String {
        flame::flame_table(&self.attr)
    }
}

impl Recorder for ObsRecorder {
    fn event(&mut self, at: u64, proc: usize, thread: usize, kind: EventKind) {
        self.events.push(Event { at, proc: proc as u32, thread: thread as u32, kind });
    }

    fn charge(&mut self, thread: usize, cat: Cat, cycles: u64) {
        self.attr.charge(thread, cat, cycles);
    }

    fn charge_idle(&mut self, proc: usize, cycles: u64) {
        self.attr.charge_idle(proc, cycles);
    }

    fn sample(&mut self, metric: Metric, value: u64) {
        match metric {
            Metric::LoadLatency => self.load_latency.record(value),
            Metric::QueueResidency => self.queue_residency.record(value),
            Metric::RunLength => self.run_lengths.record(value),
        }
    }

    fn finish_run(&mut self, cycles: u64) {
        self.attr.set_cycles(cycles);
        debug_assert!(
            self.attr.conservation_error(cycles).is_none(),
            "{}",
            self.attr.conservation_error(cycles).unwrap_or_default()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        const { assert!(!<NoopRecorder as Recorder>::ENABLED) };
        const { assert!(<ObsRecorder as Recorder>::ENABLED) };
    }

    #[test]
    fn obs_recorder_routes_samples_and_charges() {
        let mut r = ObsRecorder::new(1, 2);
        r.sample(Metric::LoadLatency, 200);
        r.sample(Metric::RunLength, 3);
        r.charge(0, Cat::Busy, 10);
        r.charge_idle(0, 2);
        r.event(5, 0, 1, EventKind::Halt);
        r.finish_run(12);
        assert_eq!(r.load_latency.count(), 1);
        assert_eq!(r.run_lengths.count(), 1);
        assert_eq!(r.attr.thread_cat(0, Cat::Busy), 10);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.attr.cycles(), 12);
        assert_eq!(r.attr.conservation_error(12), None);
    }
}
