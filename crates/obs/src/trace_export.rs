//! Chrome trace-event / Perfetto JSON export.
//!
//! Emits the [Trace Event Format] JSON object that `chrome://tracing` and
//! [ui.perfetto.dev] load directly: thread execution intervals as complete
//! (`"X"`) slices — one per switch-in/switch-out pair — and every other
//! engine event as a thread-scoped instant (`"i"`). Timestamps are raw
//! simulation cycles (the `ts` unit is nominally microseconds; for a
//! simulator, one "microsecond" per cycle reads naturally). `pid` is the
//! processor, `tid` the global thread id.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::event::{Event, EventKind, EventRing};
use crate::json::JsonBuilder;

/// Renders the ring's events as a Chrome trace-event JSON object.
pub fn chrome_trace(ring: &EventRing) -> String {
    // Sort by time, stable so same-cycle events keep engine order. The ring
    // interleaves processors whose local clocks run ahead of each other, so
    // it is only per-processor ordered.
    let mut events: Vec<&Event> = ring.iter().collect();
    events.sort_by_key(|e| e.at);

    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("traceEvents").begin_array();

    // Name the rows once: pid = processor, tid = thread.
    let mut procs: Vec<u32> = events.iter().map(|e| e.proc).collect();
    procs.sort_unstable();
    procs.dedup();
    for p in procs {
        j.begin_object();
        j.key("name").string("process_name");
        j.key("ph").string("M");
        j.key("pid").u64(p as u64);
        j.key("args").begin_object().key("name").string(&format!("proc {p}")).end();
        j.end();
    }
    let mut threads: Vec<(u32, u32)> = events.iter().map(|e| (e.proc, e.thread)).collect();
    threads.sort_unstable();
    threads.dedup();
    for (p, t) in threads {
        j.begin_object();
        j.key("name").string("thread_name");
        j.key("ph").string("M");
        j.key("pid").u64(p as u64);
        j.key("tid").u64(t as u64);
        j.key("args").begin_object().key("name").string(&format!("thread {t}")).end();
        j.end();
    }

    // Pair switch-in with the next switch-out/halt of the same thread into
    // "X" slices; everything else becomes an instant.
    let mut open: Vec<(u32, u32, u64)> = Vec::new(); // (proc, thread, since)
    for e in &events {
        match e.kind {
            EventKind::SwitchIn => {
                open.retain(|&(p, t, _)| !(p == e.proc && t == e.thread));
                open.push((e.proc, e.thread, e.at));
            }
            EventKind::SwitchOut { cause } => {
                if let Some(i) = open.iter().position(|&(p, t, _)| p == e.proc && t == e.thread) {
                    let (_, _, since) = open.remove(i);
                    slice(&mut j, e.proc, e.thread, since, e.at, cause.name());
                }
            }
            EventKind::Halt => {
                if let Some(i) = open.iter().position(|&(p, t, _)| p == e.proc && t == e.thread) {
                    let (_, _, since) = open.remove(i);
                    slice(&mut j, e.proc, e.thread, since, e.at, "halt");
                }
                instant(&mut j, e, |_| {});
            }
            kind => instant(&mut j, e, |j| args_for(j, kind)),
        }
    }
    // A slice still open when the trace ends (ring overflow ate the
    // switch-out) is dropped rather than fabricated.

    j.end(); // traceEvents
    j.key("displayTimeUnit").string("ms");
    j.key("otherData").begin_object();
    j.key("tool").string("mtsim-obs");
    j.key("clock").string("sim-cycles");
    j.key("dropped_events").u64(ring.dropped());
    j.end();
    j.end();
    j.finish()
}

/// A caller-supplied interval for [`spans_to_chrome_trace`]: a named
/// slice on a named track. Units are whatever the caller's clock is —
/// the `ts` field is nominally microseconds, so plain counters (cycles,
/// sequence numbers) read naturally in the Perfetto timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    pub name: String,
    /// Track (rendered as a thread row); tracks appear in first-use order.
    pub track: String,
    pub start: u64,
    pub dur: u64,
}

/// Renders arbitrary spans as a Chrome trace-event JSON object — the
/// same envelope [`chrome_trace`] emits, for data that never went
/// through an [`EventRing`] (e.g. `mtsim serve` rendering a sweep's
/// checkpoint as a job timeline). Everything lands in one process;
/// each distinct track becomes a named thread row.
pub fn spans_to_chrome_trace(title: &str, spans: &[TraceSpan]) -> String {
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("traceEvents").begin_array();

    j.begin_object();
    j.key("name").string("process_name");
    j.key("ph").string("M");
    j.key("pid").u64(0);
    j.key("args").begin_object().key("name").string(title).end();
    j.end();

    // Tracks get dense tids in order of first appearance.
    let mut tracks: Vec<&str> = Vec::new();
    for s in spans {
        if !tracks.contains(&s.track.as_str()) {
            tracks.push(&s.track);
        }
    }
    for (tid, track) in tracks.iter().enumerate() {
        j.begin_object();
        j.key("name").string("thread_name");
        j.key("ph").string("M");
        j.key("pid").u64(0);
        j.key("tid").u64(tid as u64);
        j.key("args").begin_object().key("name").string(track).end();
        j.end();
    }

    for s in spans {
        let tid = tracks.iter().position(|t| *t == s.track).expect("track registered above");
        j.begin_object();
        j.key("name").string(&s.name);
        j.key("cat").string("span");
        j.key("ph").string("X");
        j.key("ts").u64(s.start);
        j.key("dur").u64(s.dur);
        j.key("pid").u64(0);
        j.key("tid").u64(tid as u64);
        j.end();
    }

    j.end(); // traceEvents
    j.key("displayTimeUnit").string("ms");
    j.key("otherData").begin_object();
    j.key("tool").string("mtsim-obs");
    j.end();
    j.end();
    j.finish()
}

/// One complete ("X") slice: a thread's residency on its processor.
fn slice(j: &mut JsonBuilder, proc: u32, thread: u32, since: u64, until: u64, cause: &str) {
    j.begin_object();
    j.key("name").string("run");
    j.key("cat").string("sched");
    j.key("ph").string("X");
    j.key("ts").u64(since);
    j.key("dur").u64(until.saturating_sub(since));
    j.key("pid").u64(proc as u64);
    j.key("tid").u64(thread as u64);
    j.key("args").begin_object().key("switch_cause").string(cause).end();
    j.end();
}

/// One thread-scoped instant ("i") event.
fn instant(j: &mut JsonBuilder, e: &Event, args: impl FnOnce(&mut JsonBuilder)) {
    j.begin_object();
    j.key("name").string(e.kind.name());
    j.key("cat").string("engine");
    j.key("ph").string("i");
    j.key("s").string("t");
    j.key("ts").u64(e.at);
    j.key("pid").u64(e.proc as u64);
    j.key("tid").u64(e.thread as u64);
    j.key("args").begin_object();
    args(j);
    j.end();
    j.end();
}

/// Typed payload fields of an instant event.
fn args_for(j: &mut JsonBuilder, kind: EventKind) {
    match kind {
        EventKind::LoadIssue { addr }
        | EventKind::StoreIssue { addr }
        | EventKind::NetDequeue { addr }
        | EventKind::BarrierArrive { addr }
        | EventKind::BarrierRelease { addr } => {
            j.key("addr").u64(addr);
        }
        EventKind::LoadReply { addr, latency } => {
            j.key("addr").u64(addr);
            j.key("latency").u64(latency);
        }
        EventKind::FetchAdd { addr, combined } => {
            j.key("addr").u64(addr);
            j.key("combined").bool(combined);
        }
        EventKind::NetEnqueue { addr, queued } => {
            j.key("addr").u64(addr);
            j.key("queued").u64(queued);
        }
        EventKind::SpinBegin { addr, barrier } => {
            j.key("addr").u64(addr);
            j.key("barrier").bool(barrier);
        }
        EventKind::FaultRetry { addr, retries, timeouts } => {
            j.key("addr").u64(addr);
            j.key("retries").u64(retries);
            j.key("timeouts").u64(timeouts);
        }
        EventKind::SpinEnd => {}
        EventKind::SwitchIn | EventKind::SwitchOut { .. } | EventKind::Halt => {
            unreachable!("sched events are slices, not instants")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SwitchCause;

    fn push(r: &mut EventRing, at: u64, proc: u32, thread: u32, kind: EventKind) {
        r.push(Event { at, proc, thread, kind });
    }

    #[test]
    fn pairs_switches_into_slices() {
        let mut r = EventRing::new(64);
        push(&mut r, 0, 0, 0, EventKind::SwitchIn);
        push(&mut r, 5, 0, 0, EventKind::LoadIssue { addr: 7 });
        push(&mut r, 6, 0, 0, EventKind::SwitchOut { cause: SwitchCause::Load });
        push(&mut r, 6, 0, 1, EventKind::SwitchIn);
        push(&mut r, 9, 0, 1, EventKind::Halt);
        let json = chrome_trace(&r);
        assert!(json.starts_with(r#"{"traceEvents":["#));
        assert!(json.contains(r#""ph":"X","ts":0,"dur":6,"pid":0,"tid":0"#), "{json}");
        assert!(json.contains(r#""switch_cause":"load""#));
        assert!(json.contains(r#""ph":"X","ts":6,"dur":3,"pid":0,"tid":1"#), "{json}");
        assert!(json.contains(r#""name":"load_issue""#));
        assert!(json.contains(r#""addr":7"#));
        assert!(json.contains(r#""dropped_events":0"#));
    }

    #[test]
    fn cross_processor_events_are_time_sorted() {
        let mut r = EventRing::new(64);
        // Proc 1's events land in the ring after proc 0's later ones.
        push(&mut r, 50, 0, 0, EventKind::StoreIssue { addr: 1 });
        push(&mut r, 10, 1, 2, EventKind::StoreIssue { addr: 2 });
        let json = chrome_trace(&r);
        let a = json.find(r#""addr":2"#).unwrap();
        let b = json.find(r#""addr":1"#).unwrap();
        assert!(a < b, "earlier event must come first: {json}");
    }

    #[test]
    fn orphan_switch_in_is_dropped_not_fabricated() {
        let mut r = EventRing::new(64);
        push(&mut r, 3, 0, 0, EventKind::SwitchIn);
        let json = chrome_trace(&r);
        assert!(!json.contains(r#""ph":"X""#), "no slice without a switch-out: {json}");
    }

    #[test]
    fn spans_render_as_slices_on_first_use_ordered_tracks() {
        let span = |name: &str, track: &str, start, dur| TraceSpan {
            name: name.into(),
            track: track.into(),
            start,
            dur,
        };
        let json = spans_to_chrome_trace(
            "sweep 3",
            &[
                span("job 0", "ok", 0, 10),
                span("job 1", "failed", 10, 2),
                span("job 2", "ok", 12, 5),
            ],
        );
        assert!(json.starts_with(r#"{"traceEvents":["#));
        assert!(json.contains(r#""name":"sweep 3""#));
        // "ok" appeared first → tid 0; "failed" → tid 1.
        assert!(json.contains(r#""args":{"name":"ok"}"#));
        assert!(
            json.contains(
                r#""name":"job 1","cat":"span","ph":"X","ts":10,"dur":2,"pid":0,"tid":1"#
            ),
            "{json}"
        );
        assert!(
            json.contains(
                r#""name":"job 2","cat":"span","ph":"X","ts":12,"dur":5,"pid":0,"tid":0"#
            ),
            "{json}"
        );
    }
}
