//! Typed engine events and the fixed-capacity ring that stores them.

/// Why a thread was switched out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchCause {
    /// A blocking shared read under a switch-on-load-style model.
    Load,
    /// First use of an in-flight value (switch-on-use models).
    Use,
    /// A detected cache miss (switch-on-miss models).
    Miss,
    /// An explicit `switch` instruction.
    Explicit,
    /// The conditional model's forced switch (`max_run` elapsed).
    Forced,
    /// Free round-robin rotation (every-cycle model, store rotation).
    Rotation,
}

impl SwitchCause {
    /// Short stable name (used by the trace exporter).
    pub fn name(self) -> &'static str {
        match self {
            SwitchCause::Load => "load",
            SwitchCause::Use => "use",
            SwitchCause::Miss => "miss",
            SwitchCause::Explicit => "explicit",
            SwitchCause::Forced => "forced",
            SwitchCause::Rotation => "rotation",
        }
    }
}

/// One typed engine event. Payload fields are simulation facts (word
/// addresses, cycle latencies), never host-side data, so traces are
/// deterministic across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A thread was picked to run.
    SwitchIn,
    /// A thread was switched out.
    SwitchOut {
        /// What triggered the switch.
        cause: SwitchCause,
    },
    /// A blocking shared read was issued.
    LoadIssue {
        /// Shared word address.
        addr: u64,
    },
    /// The reply to a shared read is due.
    LoadReply {
        /// Shared word address.
        addr: u64,
        /// Round-trip latency in cycles (includes fault retries).
        latency: u64,
    },
    /// A shared store was issued (write-through, never waited on).
    StoreIssue {
        /// Shared word address.
        addr: u64,
    },
    /// A fetch-and-add crossed the network.
    FetchAdd {
        /// Shared word address.
        addr: u64,
        /// True when in-network combining merged it with a concurrent
        /// same-address add.
        combined: bool,
    },
    /// A message entered a contended network queue (residency > 0). The
    /// engine observes queueing at message granularity — per-message
    /// residency, not per-hop — so one event stands for the whole trip.
    NetEnqueue {
        /// Shared word address the message targets.
        addr: u64,
        /// Cycles the message sat queued on busy links/modules.
        queued: u64,
    },
    /// The queued message of the matching [`EventKind::NetEnqueue`] drained.
    NetDequeue {
        /// Shared word address the message targets.
        addr: u64,
    },
    /// A thread started polling a synchronization word.
    SpinBegin {
        /// Shared word being polled.
        addr: u64,
        /// True for a barrier-generation poll, false for a lock.
        barrier: bool,
    },
    /// The thread left its poll loop (did real work again).
    SpinEnd,
    /// A barrier arrival (release-tagged fetch-and-add).
    BarrierArrive {
        /// Barrier counter word.
        addr: u64,
    },
    /// A barrier release (release-tagged store flipping the generation).
    BarrierRelease {
        /// Word written to release the waiters.
        addr: u64,
    },
    /// Fault injection forced at least one resend of a request.
    FaultRetry {
        /// Shared word address.
        addr: u64,
        /// NACK-driven resends.
        retries: u64,
        /// Timeout-driven resends.
        timeouts: u64,
    },
    /// The thread executed `halt`.
    Halt,
}

impl EventKind {
    /// Short stable name (used by the trace exporter).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SwitchIn => "switch_in",
            EventKind::SwitchOut { .. } => "switch_out",
            EventKind::LoadIssue { .. } => "load_issue",
            EventKind::LoadReply { .. } => "load_reply",
            EventKind::StoreIssue { .. } => "store_issue",
            EventKind::FetchAdd { .. } => "fetch_add",
            EventKind::NetEnqueue { .. } => "net_enqueue",
            EventKind::NetDequeue { .. } => "net_dequeue",
            EventKind::SpinBegin { .. } => "spin_begin",
            EventKind::SpinEnd => "spin_end",
            EventKind::BarrierArrive { .. } => "barrier_arrive",
            EventKind::BarrierRelease { .. } => "barrier_release",
            EventKind::FaultRetry { .. } => "fault_retry",
            EventKind::Halt => "halt",
        }
    }
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulation cycle at which the event happened.
    pub at: u64,
    /// Processor it happened on.
    pub proc: u32,
    /// Thread it concerns.
    pub thread: u32,
    /// What happened.
    pub kind: EventKind,
}

/// Fixed-capacity ring buffer of events: the newest `capacity` events are
/// kept, older ones are overwritten (counted in [`EventRing::dropped`]).
/// Bounded memory means tracing can stay on for arbitrarily long runs.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring keeping the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing { buf: Vec::new(), capacity, head: 0, dropped: 0 }
    }

    /// Appends an event, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates the held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> Event {
        Event { at, proc: 0, thread: 0, kind: EventKind::Halt }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for t in 0..5 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.iter().map(|e| e.at).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest-first iteration of the survivors");
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut r = EventRing::new(8);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert_eq!(r.len(), 1);
    }
}
