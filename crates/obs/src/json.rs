//! A minimal hand-rolled JSON writer.
//!
//! The workspace has a zero-external-dependency policy (DESIGN.md §9), so
//! serialization cannot lean on serde. This builder emits syntactically
//! valid JSON with deterministic byte-for-byte output for the same call
//! sequence: key order is the caller's call order and `f64` uses Rust's
//! shortest-roundtrip `Display`, which is platform-independent. It lives
//! here (the dependency-free observability crate) and is shared by the
//! sweep result writers and the trace exporters.

/// Incremental JSON builder. Call `begin_object`/`begin_array`, emit
/// keys and values, `end`, then `finish`.
#[derive(Debug, Default)]
pub struct JsonBuilder {
    out: String,
    /// (is_object, values_emitted) per open container.
    stack: Vec<(bool, usize)>,
    after_key: bool,
}

impl JsonBuilder {
    /// An empty builder.
    pub fn new() -> JsonBuilder {
        JsonBuilder::default()
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.stack.push((true, 0));
        self
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.stack.push((false, 0));
        self
    }

    /// Closes the innermost container.
    pub fn end(&mut self) -> &mut Self {
        let (is_object, _) = self.stack.pop().expect("end() with no open container");
        self.out.push(if is_object { '}' } else { ']' });
        self
    }

    /// Emits an object key; the next call emits its value.
    pub fn key(&mut self, key: &str) -> &mut Self {
        debug_assert!(matches!(self.stack.last(), Some((true, _))), "key() outside an object");
        self.pre_value();
        Self::push_escaped(&mut self.out, key);
        self.out.push(':');
        self.after_key = true;
        self
    }

    /// Emits a string value.
    pub fn string(&mut self, value: &str) -> &mut Self {
        self.pre_value();
        Self::push_escaped(&mut self.out, value);
        self
    }

    /// Emits an unsigned integer value.
    pub fn u64(&mut self, value: u64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&value.to_string());
        self
    }

    /// Emits a float value; non-finite floats become `null` (JSON has no
    /// NaN/Infinity).
    pub fn f64(&mut self, value: f64) -> &mut Self {
        self.pre_value();
        if value.is_finite() {
            let s = value.to_string();
            self.out.push_str(&s);
            // `Display` drops the ".0" on whole floats; keep the value
            // float-typed for strict readers.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Emits a boolean value.
    pub fn bool(&mut self, value: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Returns the accumulated JSON text.
    ///
    /// # Panics
    ///
    /// Panics if a container is still open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "finish() with {} open container(s)", self.stack.len());
        self.out
    }

    /// Comma/position bookkeeping shared by every emitter.
    fn pre_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some((_, count)) = self.stack.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
        }
    }

    fn push_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_commas() {
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.key("a").u64(1);
        j.key("b").begin_array().u64(2).u64(3).end();
        j.key("c").begin_object().key("d").string("x").end();
        j.end();
        assert_eq!(j.finish(), r#"{"a":1,"b":[2,3],"c":{"d":"x"}}"#);
    }

    #[test]
    fn floats_stay_float_typed_and_nonfinite_is_null() {
        let mut j = JsonBuilder::new();
        j.begin_array().f64(1.0).f64(0.625).f64(f64::NAN).end();
        assert_eq!(j.finish(), "[1.0,0.625,null]");
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        let mut j = JsonBuilder::new();
        j.string("a\"b\\c\nd\u{1}e");
        assert_eq!(j.finish(), "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    #[should_panic(expected = "open container")]
    fn finish_rejects_unclosed_containers() {
        let mut j = JsonBuilder::new();
        j.begin_object();
        let _ = j.finish();
    }
}
