//! The text "flame table": the paper's efficiency decomposition rendered
//! per thread, per processor, and machine-wide.

use crate::attr::{AttrTable, Cat};

/// Renders the attribution table as fixed-width text. Threads are rows,
/// the five per-thread categories are columns; processor idle (end-of-run
//  slack) and machine-wide percentages follow.
pub fn flame_table(attr: &AttrTable) -> String {
    let procs = attr.processors();
    let threads = attr.threads();
    let tpp = threads / procs.max(1);
    let cycles = attr.cycles();
    let mut out = String::new();
    out.push_str(&format!("flame table: {procs} proc(s) x {tpp} thread(s), {cycles} cycles\n"));
    out.push_str(&format!("{:<8}{:<6}", "thread", "proc"));
    for cat in &Cat::ALL[..5] {
        out.push_str(&format!("{:>14}", cat.name()));
    }
    out.push_str(&format!("{:>14}\n", "total"));
    for t in 0..threads {
        let p = t.checked_div(tpp).unwrap_or(0);
        out.push_str(&format!("{:<8}{:<6}", format!("t{t}"), format!("p{p}")));
        for &cat in &Cat::ALL[..5] {
            out.push_str(&format!("{:>14}", attr.thread_cat(t, cat)));
        }
        out.push_str(&format!("{:>14}\n", attr.thread_total(t)));
    }
    out.push_str("idle (end-of-run slack) per processor:\n");
    for p in 0..procs {
        out.push_str(&format!("{:<8}{:>14}\n", format!("p{p}"), attr.proc_idle(p)));
    }
    let machine = (cycles * procs as u64).max(1) as f64;
    out.push_str("share of machine cycles:");
    for cat in Cat::ALL {
        let pct = 100.0 * attr.total(cat) as f64 / machine;
        out.push_str(&format!("  {} {:.1}%", cat.name(), pct));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_idle_and_percentages() {
        let mut a = AttrTable::new(2, 4);
        a.charge(0, Cat::Busy, 75);
        a.charge(1, Cat::MemoryStall, 100);
        a.charge(2, Cat::LockSpin, 5);
        a.charge(3, Cat::BarrierWait, 10);
        a.charge_idle(1, 10);
        a.set_cycles(100);
        let s = flame_table(&a);
        assert!(s.starts_with("flame table: 2 proc(s) x 2 thread(s), 100 cycles\n"), "{s}");
        assert!(s.contains("t0"), "{s}");
        assert!(s.contains("t3"), "{s}");
        assert!(s.contains("idle (end-of-run slack)"), "{s}");
        assert!(s.contains("busy 37.5%"), "{s}");
        assert!(s.contains("idle 5.0%"), "{s}");
        // Every thread row ends with its own total.
        let t1 = s.lines().find(|l| l.starts_with("t1")).unwrap();
        assert!(t1.trim_end().ends_with("100"), "{t1}");
    }

    #[test]
    fn empty_table_renders_without_panic() {
        let mut a = AttrTable::new(1, 1);
        a.set_cycles(0);
        let s = flame_table(&a);
        assert!(s.contains("0 cycles"));
    }
}
