//! Per-thread cycle attribution.
//!
//! Every simulated processor cycle is charged to exactly one category,
//! reproducing the paper's efficiency decomposition (§4–6) per thread:
//! the five waiting/working categories are charged to the thread that
//! caused them, and end-of-run slack (a processor finished, others still
//! running) is charged to the processor as idle. The conservation law
//! `Σ thread categories + Σ proc idle == processors × run cycles` is
//! checked by [`AttrTable::conservation_error`].

/// Where a simulated cycle went. The first five are per-thread; [`Cat::Idle`]
/// is per-processor (no thread exists to charge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cat {
    /// Executing instructions.
    Busy,
    /// Context-switch overhead.
    SwitchOverhead,
    /// Waiting on a shared-memory reply (including fault-retry backoff:
    /// a request being resent is still a memory wait, never idle).
    MemoryStall,
    /// Spinning on a lock word.
    LockSpin,
    /// Waiting at a barrier.
    BarrierWait,
    /// No runnable thread and nothing outstanding (end-of-run slack).
    Idle,
}

/// Number of per-thread categories (all but [`Cat::Idle`]).
pub const THREAD_CATS: usize = 5;

impl Cat {
    /// All categories in display order.
    pub const ALL: [Cat; 6] = [
        Cat::Busy,
        Cat::SwitchOverhead,
        Cat::MemoryStall,
        Cat::LockSpin,
        Cat::BarrierWait,
        Cat::Idle,
    ];

    /// Short stable name (column headers, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Cat::Busy => "busy",
            Cat::SwitchOverhead => "switch-ovh",
            Cat::MemoryStall => "mem-stall",
            Cat::LockSpin => "lock-spin",
            Cat::BarrierWait => "barrier-wait",
            Cat::Idle => "idle",
        }
    }

    fn slot(self) -> usize {
        match self {
            Cat::Busy => 0,
            Cat::SwitchOverhead => 1,
            Cat::MemoryStall => 2,
            Cat::LockSpin => 3,
            Cat::BarrierWait => 4,
            Cat::Idle => panic!("idle is charged per processor, not per thread"),
        }
    }
}

/// The attribution table: one row of per-thread category counters per
/// thread, one idle counter per processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrTable {
    per_thread: Vec<[u64; THREAD_CATS]>,
    per_proc_idle: Vec<u64>,
    /// Wall-clock run cycles, filled in when the run finishes.
    cycles: u64,
}

impl AttrTable {
    /// A zeroed table for `processors × total_threads`.
    pub fn new(processors: usize, total_threads: usize) -> AttrTable {
        AttrTable {
            per_thread: vec![[0; THREAD_CATS]; total_threads],
            per_proc_idle: vec![0; processors],
            cycles: 0,
        }
    }

    /// Charges `cycles` on `thread` to `cat` (not [`Cat::Idle`]).
    #[inline]
    pub fn charge(&mut self, thread: usize, cat: Cat, cycles: u64) {
        self.per_thread[thread][cat.slot()] += cycles;
    }

    /// Charges `cycles` of idle to processor `proc`.
    #[inline]
    pub fn charge_idle(&mut self, proc: usize, cycles: u64) {
        self.per_proc_idle[proc] += cycles;
    }

    /// Records the run's wall-clock cycle count.
    pub fn set_cycles(&mut self, cycles: u64) {
        self.cycles = cycles;
    }

    /// Wall-clock run cycles (0 until the run finished).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.per_thread.len()
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.per_proc_idle.len()
    }

    /// Cycles charged to `thread` under `cat` (not [`Cat::Idle`]).
    pub fn thread_cat(&self, thread: usize, cat: Cat) -> u64 {
        self.per_thread[thread][cat.slot()]
    }

    /// Total cycles charged to `thread` across all categories.
    pub fn thread_total(&self, thread: usize) -> u64 {
        self.per_thread[thread].iter().sum()
    }

    /// Idle cycles charged to processor `proc`.
    pub fn proc_idle(&self, proc: usize) -> u64 {
        self.per_proc_idle[proc]
    }

    /// Sum of one category over all threads (or all processors for
    /// [`Cat::Idle`]).
    pub fn total(&self, cat: Cat) -> u64 {
        if cat == Cat::Idle {
            self.per_proc_idle.iter().sum()
        } else {
            self.per_thread.iter().map(|row| row[cat.slot()]).sum()
        }
    }

    /// The conservation law: every cycle of every processor is charged
    /// exactly once, so the table must sum to `processors × cycles`.
    /// Returns a description of the discrepancy, or `None` when it holds.
    pub fn conservation_error(&self, cycles: u64) -> Option<String> {
        let charged: u64 = Cat::ALL.iter().map(|&c| self.total(c)).sum();
        let expect = cycles * self.per_proc_idle.len() as u64;
        if charged == expect {
            None
        } else {
            Some(format!(
                "attribution leak: charged {charged} cycles, machine ran {expect} \
                 ({} procs × {cycles} cycles)",
                self.per_proc_idle.len()
            ))
        }
    }

    /// Flattens into the `Copy` summary sweeps ship across threads.
    pub fn summary(&self) -> AttrSummary {
        AttrSummary {
            busy: self.total(Cat::Busy),
            switch_overhead: self.total(Cat::SwitchOverhead),
            memory_stall: self.total(Cat::MemoryStall),
            lock_spin: self.total(Cat::LockSpin),
            barrier_wait: self.total(Cat::BarrierWait),
            idle: self.total(Cat::Idle),
        }
    }
}

/// Machine-wide attribution totals: flat and `Copy`, one per sweep point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttrSummary {
    /// Cycles executing instructions.
    pub busy: u64,
    /// Context-switch overhead cycles.
    pub switch_overhead: u64,
    /// Memory-wait cycles (including fault-retry backoff).
    pub memory_stall: u64,
    /// Lock-spin cycles.
    pub lock_spin: u64,
    /// Barrier-wait cycles.
    pub barrier_wait: u64,
    /// End-of-run idle cycles.
    pub idle: u64,
}

impl AttrSummary {
    /// Per-category totals in [`Cat::ALL`] order.
    pub fn by_cat(&self) -> [(Cat, u64); 6] {
        [
            (Cat::Busy, self.busy),
            (Cat::SwitchOverhead, self.switch_overhead),
            (Cat::MemoryStall, self.memory_stall),
            (Cat::LockSpin, self.lock_spin),
            (Cat::BarrierWait, self.barrier_wait),
            (Cat::Idle, self.idle),
        ]
    }

    /// Sum over every category.
    pub fn total(&self) -> u64 {
        self.by_cat().iter().map(|&(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_when_everything_is_charged() {
        let mut a = AttrTable::new(2, 4);
        a.charge(0, Cat::Busy, 60);
        a.charge(1, Cat::MemoryStall, 40);
        a.charge(2, Cat::LockSpin, 30);
        a.charge(3, Cat::BarrierWait, 50);
        a.charge_idle(0, 0);
        a.charge_idle(1, 20);
        assert_eq!(a.conservation_error(100), None);
        let s = a.summary();
        assert_eq!(s.total(), 200);
        assert_eq!(s.busy, 60);
        assert_eq!(s.idle, 20);
    }

    #[test]
    fn conservation_reports_a_leak() {
        let mut a = AttrTable::new(1, 1);
        a.charge(0, Cat::Busy, 99);
        let err = a.conservation_error(100).expect("one cycle missing");
        assert!(err.contains("99") && err.contains("100"), "{err}");
    }

    #[test]
    #[should_panic(expected = "per processor")]
    fn idle_cannot_be_charged_to_a_thread() {
        let mut a = AttrTable::new(1, 1);
        a.charge(0, Cat::Idle, 1);
    }
}
