//! Behavioral tests of the fault-injection layer: determinism, retry
//! accounting, typed failures, and deadlock reporting under faults.

use mtsim_asm::{Program, ProgramBuilder};
use mtsim_core::{Machine, MachineConfig, RunResult, SimError, SwitchModel};
use mtsim_isa::AccessHint;
use mtsim_mem::{FaultConfig, LatencyDist, SharedMemory};

/// A kernel with plenty of reply-bearing traffic: every thread sums a
/// window of shared words and stores its sum.
fn load_kernel(iters: i64) -> Program {
    let mut b = ProgramBuilder::new("faulty-loads");
    let acc = b.def_i("acc", 0);
    b.for_range("i", 0, iters, |b, i| {
        let v = b.def_i("v", b.load_shared(i.get() & 63));
        b.assign(acc, acc.get() + v.get());
    });
    b.store_shared(b.tid() + 100, acc.get());
    b.finish()
}

fn faulty(seed: u64, drop: f64, delay: f64) -> FaultConfig {
    FaultConfig { seed, drop_rate: drop, delay_rate: delay, ..FaultConfig::default() }
}

fn run_with(cfg: MachineConfig, prog: &Program, words: u64) -> RunResult {
    Machine::new(cfg, prog, SharedMemory::new(words)).run().expect("run").result
}

#[test]
fn identical_seed_and_rates_reproduce_bit_identically() {
    // The fault schedule is a pure function of (seed, rates, program,
    // config): two runs must agree on every statistic, not just cycles.
    let prog = load_kernel(50);
    let cfg =
        MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 3).with_faults(faulty(1234, 0.2, 0.3));
    let a = run_with(cfg.clone(), &prog, 128);
    let b = run_with(cfg, &prog, 128);
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "runs must be bit-identical");
    assert!(a.total_retries() + a.total_timeouts() > 0, "rates this high must fault");
}

#[test]
fn different_seeds_draw_different_schedules() {
    let prog = load_kernel(50);
    let base = MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 3);
    let a = run_with(base.clone().with_faults(faulty(1, 0.3, 0.0)), &prog, 128);
    let b = run_with(base.with_faults(faulty(2, 0.3, 0.0)), &prog, 128);
    assert_ne!(a.cycles, b.cycles, "different seeds should produce different timing");
}

#[test]
fn faulted_runs_still_compute_correct_results() {
    // Faults are timing-only: the memory image must match the fault-free
    // run exactly; only the clock (and the retry counters) move.
    let prog = load_kernel(40);
    let clean_cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 2);
    let fault_cfg = clean_cfg.clone().with_faults(faulty(99, 0.25, 0.25));

    let mut mem = SharedMemory::new(128);
    for a in 0..64 {
        mem.write_i64(a, (a * 3) as i64);
    }
    let clean = Machine::new(clean_cfg, &prog, mem.clone()).run().unwrap();
    let faulted = Machine::new(fault_cfg, &prog, mem).run().unwrap();

    for a in 0..128 {
        assert_eq!(
            clean.shared.read_i64(a),
            faulted.shared.read_i64(a),
            "faults must never change the computed values (word {a})"
        );
    }
    assert!(faulted.result.cycles > clean.result.cycles, "retries cost time");
    let wait: u64 = faulted.result.per_proc.iter().map(|p| p.fault_wait).sum();
    assert!(wait > 0, "fault_wait must account the extra cycles");
}

#[test]
fn retry_exhaustion_is_a_typed_fault() {
    let mut b = ProgramBuilder::new("doomed");
    let v = b.def_i("v", b.load_shared(b.const_i(3)));
    b.store_shared(b.const_i(4), v.get());
    let prog = b.finish();
    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1).with_faults(FaultConfig {
        drop_rate: 1.0,
        max_retries: 2,
        ..FaultConfig::default()
    });
    let err = Machine::new(cfg, &prog, SharedMemory::new(8)).run().unwrap_err();
    match err {
        SimError::Fault { proc, thread, addr, attempts, .. } => {
            assert_eq!(proc, 0);
            assert_eq!(thread, 0);
            assert_eq!(addr, 3);
            assert_eq!(attempts, 3, "first send plus two retries");
        }
        other => panic!("expected Fault, got {other:?}"),
    }
}

#[test]
fn two_thread_barrier_expecting_three_deadlocks_with_named_waiters() {
    // A sense-reversing-style barrier miscounted for 3 arrivals, entered
    // by only 2 threads: both spin on the arrival counter forever. The
    // detector must name both threads and the word they wait on — not
    // fall through to a generic watchdog timeout.
    let mut b = ProgramBuilder::new("short-barrier");
    b.fetch_add_discard(b.const_i(0), b.const_i(1), AccessHint::Data);
    b.while_(b.load_shared_hint(b.const_i(0), AccessHint::Spin).ne(3), |_b| {});
    b.store_shared(b.tid() + 1, 1);
    let prog = b.finish();

    let mut cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 1);
    cfg.max_cycles = 1_000_000;
    let err = Machine::new(cfg, &prog, SharedMemory::new(4)).run().unwrap_err();
    match err {
        SimError::Deadlock { cycle, halted_threads, waiters } => {
            assert!(cycle < 1_000_000, "proven before the watchdog limit");
            assert_eq!(halted_threads, 0);
            let mut who: Vec<usize> = waiters.iter().map(|w| w.thread).collect();
            who.sort_unstable();
            assert_eq!(who, vec![0, 1], "both threads must be named");
            for w in &waiters {
                assert_eq!(w.addr, 0, "both wait on the arrival counter");
                assert_eq!(w.value, 2, "the counter is stuck at 2");
                assert_eq!(w.proc, w.thread, "one thread per processor here");
            }
            // The Display form carries the full cycle of waiters.
            let msg = SimError::Deadlock { cycle, halted_threads, waiters }.to_string();
            assert!(msg.contains("thread 0"), "{msg}");
            assert!(msg.contains("thread 1"), "{msg}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn deadlock_is_still_detected_under_faults() {
    // Fault-induced reply delays must not confuse the spin detector.
    let mut b = ProgramBuilder::new("spin-faulty");
    b.while_(b.load_shared_hint(b.const_i(0), AccessHint::Spin).eq(0), |_b| {});
    let prog = b.finish();
    let mut cfg =
        MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1).with_faults(faulty(5, 0.2, 0.2));
    cfg.max_cycles = 5_000_000;
    let err = Machine::new(cfg, &prog, SharedMemory::new(1)).run().unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "got {err:?}");
}

#[test]
fn wild_shared_access_is_a_bad_program_not_a_panic() {
    let mut b = ProgramBuilder::new("wild");
    let v = b.def_i("v", b.load_shared(b.const_i(1_000_000)));
    b.store_shared(b.const_i(0), v.get());
    let prog = b.finish();
    let err = Machine::new(
        MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1),
        &prog,
        SharedMemory::new(4),
    )
    .run()
    .unwrap_err();
    match err {
        SimError::BadProgram { thread, detail, .. } => {
            assert_eq!(thread, 0);
            assert!(detail.contains("1000000"), "{detail}");
        }
        other => panic!("expected BadProgram, got {other:?}"),
    }
}

#[test]
fn variable_latency_alone_uses_the_fault_path() {
    // A non-constant distribution with zero fault rates: still
    // deterministic, still correct, no retries.
    let prog = load_kernel(30);
    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 2).with_faults(FaultConfig {
        seed: 11,
        dist: LatencyDist::Uniform { lo: 50, hi: 400 },
        ..FaultConfig::default()
    });
    let a = run_with(cfg.clone(), &prog, 128);
    let b = run_with(cfg, &prog, 128);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total_retries(), 0);
    assert_eq!(a.total_timeouts(), 0);
}
