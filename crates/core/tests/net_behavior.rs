//! Behavioral tests of the engine under modeled interconnection networks:
//! topologies change timing, never results, and the default `constant`
//! topology is bit-identical to a machine with no network at all.

use mtsim_asm::Program;
use mtsim_asm::ProgramBuilder;
use mtsim_core::{Machine, MachineConfig, NetworkConfig, SwitchModel, Topology};
use mtsim_mem::SharedMemory;

fn memory_image(shared: &SharedMemory) -> Vec<u64> {
    (0..shared.len()).map(|a| shared.read(a)).collect()
}

/// Threads hammer a shared counter with fetch-and-adds and read a few
/// read-only shared words — a hot-spot kernel whose final memory is
/// order-insensitive, so every topology must agree on it. (The *observed*
/// F&A old values are interleaving-dependent, under a network exactly as
/// under a different constant latency, so they stay thread-private here.)
fn hotspot_kernel(iters: i64) -> Program {
    let mut b = ProgramBuilder::new("hot");
    let acc = b.def_i("acc", 0);
    b.for_range("i", 0, iters, |b, i| {
        let _old = b.def_i("old", b.fetch_add(b.const_i(0), 1));
        let v = b.def_i("v", b.load_shared((i.get() & 7) + 8));
        b.assign(acc, acc.get() + v.get());
    });
    b.store_shared(b.tid() + 16, acc.get());
    b.finish()
}

fn run_with(net: NetworkConfig, procs: usize, threads: usize) -> mtsim_core::FinishedRun {
    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, procs, threads).with_net(net);
    let mut shared = SharedMemory::new(64);
    for a in 8..16 {
        shared.write(a, a * 3);
    }
    Machine::new(cfg, &hotspot_kernel(20), shared).run().expect("run")
}

#[test]
fn all_topologies_agree_on_results() {
    let reference = run_with(NetworkConfig::constant(), 4, 2);
    assert_eq!(reference.shared.read(0), 4 * 2 * 20, "every F&A must land exactly once");
    for topology in Topology::ALL {
        for combining in [false, true] {
            let run = run_with(NetworkConfig::new(topology).with_combining(combining), 4, 2);
            assert_eq!(
                memory_image(&run.shared),
                memory_image(&reference.shared),
                "final memory diverged under {topology} (combining={combining})"
            );
        }
    }
}

#[test]
fn constant_topology_is_bit_identical_to_no_network() {
    // NetworkConfig::constant() must not even build a Network: stats and
    // timing match the paper-model machine exactly.
    let a = run_with(NetworkConfig::constant(), 2, 4);
    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 4);
    let b = Machine::new(cfg, &hotspot_kernel(20), SharedMemory::new(64)).run().expect("run");
    assert_eq!(a.result.stats(), b.result.stats());
    assert!(a.result.net.is_none(), "constant topology must not simulate a network");
}

#[test]
fn contention_topologies_report_network_stats() {
    for topology in [Topology::Crossbar, Topology::Mesh, Topology::Butterfly] {
        let run = run_with(NetworkConfig::new(topology), 4, 4);
        let net = run.result.net.expect("net stats present");
        assert!(net.requests > 0, "{topology} carried no traffic");
        assert!(net.latency_sum > 0);
        assert!(run.result.stats().net_requests > 0);
    }
}

#[test]
fn combining_merges_hot_fetch_adds_and_helps_latency() {
    let plain = run_with(NetworkConfig::new(Topology::Butterfly), 8, 2);
    let combined = run_with(NetworkConfig::new(Topology::Butterfly).with_combining(true), 8, 2);
    let p = plain.result.net.expect("net stats");
    let c = combined.result.net.expect("net stats");
    assert_eq!(p.fa_combined, 0);
    assert!(c.fa_combined > 0, "hot-spot F&As must merge under combining");
    assert!(
        c.queue_cycles <= p.queue_cycles,
        "combining must not increase queueing ({} > {})",
        c.queue_cycles,
        p.queue_cycles
    );
    // Results still agree (checked exhaustively above), and the network
    // carried the same number of F&A requests either way.
    assert_eq!(c.fa_requests, p.fa_requests);
}

#[test]
fn offered_load_raises_modeled_latency() {
    // More threads per processor = more concurrent requests = queueing.
    let light = run_with(NetworkConfig::new(Topology::Mesh), 4, 1);
    let heavy = run_with(NetworkConfig::new(Topology::Mesh), 4, 8);
    let l = light.result.net.expect("net stats");
    let h = heavy.result.net.expect("net stats");
    assert!(
        h.mean_latency() > l.mean_latency(),
        "mean latency should rise with load: {} vs {}",
        h.mean_latency(),
        l.mean_latency()
    );
}
