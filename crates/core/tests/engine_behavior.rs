//! Behavioral tests of the simulation engine across switch models.

use mtsim_asm::{Program, ProgramBuilder};
use mtsim_core::{Machine, MachineConfig, SimError, SwitchModel};
use mtsim_isa::AccessHint;
use mtsim_mem::SharedMemory;
use mtsim_opt::group_shared_loads;

fn run(cfg: MachineConfig, prog: &Program, words: u64) -> mtsim_core::RunResult {
    Machine::new(cfg, prog, SharedMemory::new(words)).run().expect("run").result
}

/// A kernel that loads a shared word, does `work` cycles of ALU work, and
/// repeats `iters` times. Sums loads into shared[1] at the end.
fn load_compute_kernel(iters: i64, work: usize) -> Program {
    let mut b = ProgramBuilder::new("lc");
    let acc = b.def_i("acc", 0);
    b.for_range("i", 0, iters, |b, i| {
        let v = b.def_i("v", b.load_shared(i.get() & 63));
        b.assign(acc, acc.get() + v.get());
        for _ in 0..work {
            b.assign(acc, acc.get() ^ 1);
        }
    });
    b.store_shared(b.const_i(100), acc.get());
    b.finish()
}

#[test]
fn scratch_reuse_is_bit_identical_to_fresh_machines() {
    use mtsim_core::{MachineScratch, NoopRecorder};
    let prog = load_compute_kernel(40, 3);
    let cfg = || MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 2);
    let fresh = Machine::new(cfg(), &prog, SharedMemory::new(128)).run().expect("fresh");

    let mut scratch = MachineScratch::new();
    for round in 0..3 {
        let (m, reused) =
            Machine::try_new_reusing(cfg(), &prog, SharedMemory::new(128), 7, &mut scratch)
                .expect("build");
        assert_eq!(reused, round > 0, "every build after the first must reuse");
        let lean = m.run_reusing(&mut NoopRecorder, 7, &mut scratch).expect("run");
        assert_eq!(format!("{:?}", lean.result), format!("{:?}", fresh.result));
        assert_eq!(format!("{:?}", lean.shared), format!("{:?}", fresh.shared));
    }

    // A different key never reuses; the same key across a *shape* change
    // (fewer threads, same program) reuses and stays correct.
    let cfg1 = || MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 1);
    let fresh1 = Machine::new(cfg1(), &prog, SharedMemory::new(128)).run().expect("fresh1");
    let (m, reused) =
        Machine::try_new_reusing(cfg1(), &prog, SharedMemory::new(128), 7, &mut scratch)
            .expect("build");
    assert!(reused, "same key, new shape: buffers still reusable");
    let lean = m.run_reusing(&mut NoopRecorder, 7, &mut scratch).expect("run");
    assert_eq!(format!("{:?}", lean.result), format!("{:?}", fresh1.result));
    let (_, reused) =
        Machine::try_new_reusing(cfg1(), &prog, SharedMemory::new(128), 8, &mut scratch)
            .expect("build");
    assert!(!reused, "a different key must not reuse");
}

#[test]
fn ideal_model_has_full_utilization_single_thread() {
    let prog = load_compute_kernel(50, 4);
    let r = run(MachineConfig::ideal(1), &prog, 128);
    assert!(r.utilization() > 0.999, "utilization {}", r.utilization());
    // Ideal-model reads rotate the (single) thread for fairness but cost
    // no cycles.
    assert_eq!(r.per_proc[0].idle, 0);
}

#[test]
fn switch_on_load_single_thread_starves() {
    // One thread, 200-cycle latency: almost all time is idle waiting.
    let prog = load_compute_kernel(50, 4);
    let r = run(MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1), &prog, 128);
    assert!(r.utilization() < 0.15, "expected starvation, got utilization {}", r.utilization());
    // Every shared load yields.
    assert!(r.switches_taken >= 50);
}

#[test]
fn multithreading_hides_latency_progressively() {
    let prog = load_compute_kernel(60, 6);
    let mut prev = 0.0;
    for threads in [1, 4, 8, 16, 24] {
        let r = run(MachineConfig::new(SwitchModel::SwitchOnLoad, 2, threads), &prog, 128);
        let u = r.utilization();
        assert!(
            u >= prev - 0.02,
            "utilization should not degrade with more threads: {u} after {prev} (T={threads})"
        );
        prev = prev.max(u);
    }
    assert!(prev > 0.85, "24 threads should nearly saturate: {prev}");
}

#[test]
fn run_lengths_match_instruction_spacing() {
    // Roughly: each iteration = loop overhead + load + work; the run-length
    // between switch-on-load switches equals the per-iteration busy cycles.
    let prog = load_compute_kernel(100, 10);
    let r = run(MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 2), &prog, 128);
    let mean = r.run_lengths.mean();
    assert!((10.0..30.0).contains(&mean), "mean run-length {mean} out of expected band");
}

#[test]
fn deterministic_across_runs() {
    let prog = load_compute_kernel(40, 3);
    let a = run(MachineConfig::new(SwitchModel::SwitchOnLoad, 4, 3), &prog, 128);
    let b = run(MachineConfig::new(SwitchModel::SwitchOnLoad, 4, 3), &prog, 128);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.switches_taken, b.switches_taken);
    assert_eq!(a.instructions, b.instructions);
}

#[test]
fn fetch_add_is_atomic_across_processors() {
    // 8 processors × 4 threads each add 1 to a counter 25 times.
    let mut b = ProgramBuilder::new("faa");
    b.for_range("i", 0, 25, |b, _| {
        b.fetch_add_discard(b.const_i(0), b.const_i(1), AccessHint::Data);
    });
    let prog = b.finish();
    let fin = Machine::new(
        MachineConfig::new(SwitchModel::SwitchOnLoad, 8, 4),
        &prog,
        SharedMemory::new(1),
    )
    .run()
    .unwrap();
    assert_eq!(fin.shared.read_i64(0), 8 * 4 * 25);
}

#[test]
fn ticket_lock_provides_mutual_exclusion() {
    // Classic ticket lock from fetch-and-add + spinning, then a
    // non-atomic read-modify-write of shared[2] inside the critical
    // section. Correct final count proves mutual exclusion.
    let next_ticket = 0i64;
    let now_serving = 1i64;
    let counter = 2i64;
    let mut b = ProgramBuilder::new("lock");
    b.for_range("i", 0, 10, |b, _| {
        let ticket = b.def_i("t", b.fetch_add(b.const_i(next_ticket), 1));
        // spin until now_serving == ticket
        b.while_(
            b.load_shared_hint(b.const_i(now_serving), AccessHint::Spin).ne(ticket.get()),
            |_b| {},
        );
        // critical section: non-atomic increment
        let v = b.def_i("v", b.load_shared(b.const_i(counter)));
        b.store_shared(b.const_i(counter), v.get() + 1);
        // release
        b.store_shared(b.const_i(now_serving), ticket.get() + 1);
    });
    let prog = b.finish();
    let fin = Machine::new(
        MachineConfig::new(SwitchModel::SwitchOnLoad, 4, 2),
        &prog,
        SharedMemory::new(3),
    )
    .run()
    .unwrap();
    assert_eq!(fin.shared.read_i64(2), 4 * 2 * 10);
}

#[test]
fn infinite_spin_is_reported_as_deadlock() {
    // A spin loop on a word nobody will ever write: the detector proves
    // the cycle and reports the waiter long before the watchdog limit.
    let mut b = ProgramBuilder::new("spin");
    b.while_(b.load_shared_hint(b.const_i(0), AccessHint::Spin).eq(0), |_b| {});
    let prog = b.finish();
    let mut cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1);
    cfg.max_cycles = 50_000;
    let err = Machine::new(cfg, &prog, SharedMemory::new(1)).run().unwrap_err();
    match err {
        SimError::Deadlock { cycle, halted_threads, waiters } => {
            assert!(cycle < 50_000, "proven well before the watchdog");
            assert_eq!(halted_threads, 0);
            assert_eq!(waiters.len(), 1);
            assert_eq!(waiters[0].thread, 0);
            assert_eq!(waiters[0].addr, 0);
            assert_eq!(waiters[0].value, 0);
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn watchdog_still_backstops_private_livelock() {
    // An infinite loop with no shared polling at all: the deadlock
    // detector has nothing to prove, so the watchdog fires.
    let mut b = ProgramBuilder::new("livelock");
    b.while_(b.const_i(0).eq(0), |_b| {});
    let prog = b.finish();
    let mut cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1);
    cfg.max_cycles = 50_000;
    let err = Machine::new(cfg, &prog, SharedMemory::new(1)).run().unwrap_err();
    match err {
        SimError::Watchdog { halted_threads, total_threads, .. } => {
            assert_eq!(halted_threads, 0);
            assert_eq!(total_threads, 1);
        }
        other => panic!("expected Watchdog, got {other:?}"),
    }
}

/// The sor-flavored grouped kernel: 5 loads per iteration.
fn five_load_kernel(iters: i64) -> Program {
    let mut b = ProgramBuilder::new("five");
    let acc = b.def_f("acc", 0.0);
    b.for_range("i", 0, iters, |b, i| {
        let base = i.get() & 63;
        let a = b.load_shared_f(base.clone());
        let c = b.load_shared_f(base.clone() + 64);
        let d = b.load_shared_f(base.clone() + 128);
        let e = b.load_shared_f(base.clone() + 192);
        let f = b.load_shared_f(base + 256);
        b.assign_f(acc, acc.get() + (a + c + d + e + f) * 0.2);
    });
    b.store_shared_f(b.const_i(400), acc.get());
    b.finish()
}

#[test]
fn explicit_switch_reduces_switches_and_threads_needed() {
    let original = five_load_kernel(80);
    let grouped = group_shared_loads(&original).program;

    let sol = run(MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 8), &original, 512);
    let exp = run(MachineConfig::new(SwitchModel::ExplicitSwitch, 2, 8), &grouped, 512);

    // Grouping removes ~80% of the context switches for this kernel.
    assert!(
        (exp.switches_taken as f64) < 0.45 * sol.switches_taken as f64,
        "explicit {} vs switch-on-load {}",
        exp.switches_taken,
        sol.switches_taken
    );
    // And at the same multithreading level it runs faster.
    assert!(
        exp.cycles < sol.cycles,
        "explicit {} cycles vs switch-on-load {}",
        exp.cycles,
        sol.cycles
    );
    // Dynamic grouping factor reflects the 5-load groups.
    assert!(exp.dynamic_grouping_factor() > 3.0, "{}", exp.dynamic_grouping_factor());
}

#[test]
fn explicit_switch_is_correct_without_grouping_pass_too() {
    // Running UNgrouped code under ExplicitSwitch must still compute the
    // right answer, just with scoreboard stalls instead of switch waits.
    let mut b = ProgramBuilder::new("viol");
    let x = b.def_i("x", b.load_shared(b.const_i(0)));
    b.store_shared(b.const_i(1), x.get() + 5);
    let prog = b.finish();
    let mut mem = SharedMemory::new(2);
    mem.write_i64(0, 37);
    let fin = Machine::new(MachineConfig::new(SwitchModel::ExplicitSwitch, 1, 1), &prog, mem)
        .run()
        .unwrap();
    assert_eq!(fin.shared.read_i64(1), 42);
    assert!(fin.result.scoreboard_stalls > 0, "use-before-switch must stall");
}

#[test]
fn switch_on_use_overlaps_address_computation() {
    // switch-on-use lets the thread run past the load until the value is
    // used, so with equal threads it should do no worse than
    // switch-on-load.
    let prog = five_load_kernel(60);
    let sol = run(MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 4), &prog, 512);
    let sou = run(MachineConfig::new(SwitchModel::SwitchOnUse, 1, 4), &prog, 512);
    assert!(sou.cycles <= sol.cycles, "use {} vs load {}", sou.cycles, sol.cycles);
}

#[test]
fn conditional_switch_skips_switches_on_cache_hits() {
    // Sum a small shared array twice; second pass hits the cache, so the
    // conditional switch is skipped.
    let mut b = ProgramBuilder::new("cs");
    let acc = b.def_f("acc", 0.0);
    b.for_range("pass", 0, 4, |b, _| {
        b.for_range("i", 0, 64, |b, i| {
            let v = b.load_shared_f(i.get());
            b.assign_f(acc, acc.get() + v);
        });
    });
    b.store_shared_f(b.const_i(100), acc.get());
    let grouped = group_shared_loads(&b.finish()).program;

    let r = run(MachineConfig::new(SwitchModel::ConditionalSwitch, 1, 2), &grouped, 128);
    assert!(
        r.switches_skipped > r.switches_taken,
        "skipped {} taken {}",
        r.switches_skipped,
        r.switches_taken
    );
    let cache = r.cache.expect("cache stats");
    assert!(cache.hit_rate() > 0.5, "hit rate {}", cache.hit_rate());
}

#[test]
fn conditional_switch_forced_switch_bounds_runs() {
    // All-hits workload with max_run: forced switches must appear.
    let mut b = ProgramBuilder::new("forced");
    let acc = b.def_f("acc", 0.0);
    b.for_range("pass", 0, 30, |b, _| {
        b.for_range("i", 0, 16, |b, i| {
            let v = b.load_shared_f(i.get());
            b.assign_f(acc, acc.get() + v);
        });
    });
    b.store_shared_f(b.const_i(50), acc.get());
    let grouped = group_shared_loads(&b.finish()).program;

    let with = run(
        MachineConfig::new(SwitchModel::ConditionalSwitch, 1, 2).with_max_run(Some(200)),
        &grouped,
        64,
    );
    assert!(with.forced_switches > 0);

    let without = run(
        MachineConfig::new(SwitchModel::ConditionalSwitch, 1, 2).with_max_run(None),
        &grouped,
        64,
    );
    assert_eq!(without.forced_switches, 0);
}

#[test]
fn switch_on_miss_pays_overhead() {
    let prog = load_compute_kernel(40, 2);
    let r = run(MachineConfig::new(SwitchModel::SwitchOnMiss, 1, 4), &prog, 128);
    // Misses exist (cold cache) and each taken switch costs cycles.
    let overhead: u64 = r.per_proc.iter().map(|p| p.overhead).sum();
    assert!(overhead > 0);
    assert!(r.cache.unwrap().misses > 0);
}

#[test]
fn every_cycle_model_interleaves_and_completes() {
    let prog = load_compute_kernel(20, 2);
    let r = run(MachineConfig::new(SwitchModel::SwitchEveryCycle, 1, 4), &prog, 128);
    // Every instruction rotates: switches ~ instructions.
    assert!(r.switches_taken >= r.instructions / 2);
    assert!(r.run_lengths.mean() < 15.0);
}

#[test]
fn values_flow_between_processors() {
    // Thread 0 (proc 0) writes a flag+value; thread 1 (proc 1) spins then
    // reads the value.
    let mut b = ProgramBuilder::new("comm");
    b.if_else(
        b.tid().eq(0),
        |b| {
            b.store_shared(b.const_i(1), 99);
            b.store_shared(b.const_i(0), 1); // flag
        },
        |b| {
            b.while_(b.load_shared_hint(b.const_i(0), AccessHint::Spin).eq(0), |_b| {});
            let v = b.def_i("v", b.load_shared(b.const_i(1)));
            b.store_shared(b.const_i(2), v.get() + 1);
        },
    );
    let prog = b.finish();
    let fin = Machine::new(
        MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 1),
        &prog,
        SharedMemory::new(3),
    )
    .run()
    .unwrap();
    assert_eq!(fin.shared.read_i64(2), 100);
}

#[test]
fn grouped_and_ungrouped_compute_identical_results() {
    for model in [
        SwitchModel::Ideal,
        SwitchModel::SwitchEveryCycle,
        SwitchModel::SwitchOnLoad,
        SwitchModel::SwitchOnUse,
        SwitchModel::SwitchOnMiss,
        SwitchModel::SwitchOnUseMiss,
    ] {
        let prog = five_load_kernel(10);
        let mut mem = SharedMemory::new(512);
        for a in 0..512 {
            mem.write_f64(a, a as f64 * 0.25);
        }
        let fin = Machine::new(MachineConfig::new(model, 2, 2), &prog, mem).run().unwrap();
        let got = fin.shared.read_f64(400);
        // Host-side reference.
        let mut acc = 0.0f64;
        for _ in 0..4 {
            // 4 threads run the same kernel; they all add into their own acc
            // then store to the same address — last store wins, value equals
            // a single thread's sum.
        }
        for i in 0..10i64 {
            let base = (i % 64) as u64;
            let s: f64 =
                [0, 64, 128, 192, 256].iter().map(|&o| ((base + o as u64) as f64) * 0.25).sum();
            acc += s * 0.2;
        }
        assert!((got - acc).abs() < 1e-9, "model {model}: got {got}, want {acc}");
    }
}

#[test]
fn explicit_and_conditional_compute_identical_results() {
    let prog = five_load_kernel(10);
    let grouped = group_shared_loads(&prog).program;
    for model in [SwitchModel::ExplicitSwitch, SwitchModel::ConditionalSwitch] {
        let mut mem = SharedMemory::new(512);
        for a in 0..512 {
            mem.write_f64(a, (a as f64).sqrt());
        }
        let fin = Machine::new(MachineConfig::new(model, 2, 2), &grouped, mem).run().unwrap();
        let got = fin.shared.read_f64(400);
        let mut acc = 0.0f64;
        for i in 0..10i64 {
            let base = (i % 64) as u64;
            let s: f64 =
                [0u64, 64, 128, 192, 256].iter().map(|&o| ((base + o) as f64).sqrt()).sum();
            acc += s * 0.2;
        }
        assert!((got - acc).abs() < 1e-9, "model {model}: got {got}, want {acc}");
    }
}

#[test]
fn traffic_accounting_matches_access_counts() {
    // 30 loads + 1 store, no caches, single thread.
    let mut b = ProgramBuilder::new("traffic");
    let acc = b.def_i("acc", 0);
    b.for_range("i", 0, 30, |b, i| {
        b.assign(acc, acc.get() + b.load_shared(i.get()));
    });
    b.store_shared(b.const_i(40), acc.get());
    let prog = b.finish();
    let r = run(MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1), &prog, 64);
    // 30 load round trips (2 msgs each) + 1 store round trip (2 msgs).
    assert_eq!(r.traffic.data_messages(), 30 * 2 + 2);
    assert!(r.bits_per_cycle() > 0.0);
}

#[test]
fn load_pair_halves_messages() {
    let mut b = ProgramBuilder::new("pair");
    let acc = b.def_f("acc", 0.0);
    b.for_range("i", 0, 16, |b, i| {
        let (x, y) = b.load_pair_shared_f("p", i.get() * 2);
        b.assign_f(acc, acc.get() + x.get() + y.get());
    });
    b.store_shared_f(b.const_i(63), acc.get());
    let prog = b.finish();
    let r = run(MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1), &prog, 64);
    // 16 pair loads (2 msgs each) + 1 store (2 msgs) — not 32 loads.
    assert_eq!(r.traffic.data_messages(), 16 * 2 + 2);
}

#[test]
fn interblock_estimate_skips_oneline_groups() {
    // Sequential loads through one array: after the first load of each
    // 32-word line, subsequent loads hit the one-line cache, so their
    // switches are skipped under the §5.2 estimator.
    let mut b = ProgramBuilder::new("seq");
    let acc = b.def_i("acc", 0);
    b.for_range("i", 0, 128, |b, i| {
        b.assign(acc, acc.get() + b.load_shared(i.get()));
    });
    b.store_shared(b.const_i(200), acc.get());
    let grouped = group_shared_loads(&b.finish()).program;

    let plain = run(MachineConfig::new(SwitchModel::ExplicitSwitch, 1, 4), &grouped, 256);
    let est = run(
        MachineConfig::new(SwitchModel::ExplicitSwitch, 1, 4).with_interblock_estimate(true),
        &grouped,
        256,
    );
    assert!(est.switches_skipped > 0);
    assert!(est.cycles < plain.cycles);
    assert!(est.one_line_hit_rate() > 0.9, "{}", est.one_line_hit_rate());
}

#[test]
fn interblock_estimate_does_not_starve_spinners() {
    // Regression: a barrier-style spin loop under the §5.2 estimator must
    // still yield (spin loads never count as one-line hits), or the
    // spinner starves its processor-mates and the barrier deadlocks.
    let mut b = ProgramBuilder::new("spin-est");
    b.if_else(
        b.tid().eq(0),
        |b| {
            // Wait for the flag, spinning.
            b.while_(b.load_shared_hint(b.const_i(0), AccessHint::Spin).eq(0), |_b| {});
        },
        |b| {
            // Same-processor thread sets the flag after some work.
            let acc = b.def_i("acc", 0);
            b.for_range("i", 0, 16, |b, i| {
                b.assign(acc, acc.get() + b.load_shared(i.get() + 8));
            });
            b.store_shared(b.const_i(1), acc.get());
            b.store_shared(b.const_i(0), 1);
        },
    );
    let grouped = group_shared_loads(&b.finish()).program;
    let mut cfg =
        MachineConfig::new(SwitchModel::ExplicitSwitch, 1, 2).with_interblock_estimate(true);
    cfg.max_cycles = 5_000_000;
    let fin = Machine::new(cfg, &grouped, SharedMemory::new(64)).run().expect("must not deadlock");
    assert_eq!(fin.shared.read_i64(0), 1);
}

#[test]
fn cycle_accounting_identity_holds() {
    // For every processor: busy + idle + overhead + stall == local finish
    // time — the engine only ever advances a clock through one of those
    // four accounts.
    for model in [
        SwitchModel::SwitchOnLoad,
        SwitchModel::SwitchOnUse,
        SwitchModel::ExplicitSwitch,
        SwitchModel::SwitchOnMiss,
        SwitchModel::SwitchOnUseMiss,
        SwitchModel::ConditionalSwitch,
        SwitchModel::SwitchEveryCycle,
    ] {
        let prog = load_compute_kernel(40, 4);
        let prog =
            if model.uses_explicit_switch() { group_shared_loads(&prog).program } else { prog };
        let r = Machine::new(MachineConfig::new(model, 2, 3), &prog, SharedMemory::new(128))
            .run()
            .unwrap()
            .result;
        for (p, s) in r.per_proc.iter().enumerate() {
            assert_eq!(
                s.busy + s.idle + s.overhead + s.stall,
                s.finish_time,
                "{model}, proc {p}: {s:?}"
            );
        }
    }
}

#[test]
fn priority_scheduling_prefers_critical_threads() {
    // One processor, three threads under conditional-switch with forced
    // switches. Thread 0 holds a ticket-style critical section (priority
    // raised via SetPrio) that requires two memory round trips; threads
    // 1-2 do long stretches of cached work. With priority scheduling the
    // holder is rescheduled ahead of them at every switch point, so the
    // lock is held for fewer cycles.
    use mtsim_isa::Inst;
    let build = || {
        let mut b = ProgramBuilder::new("prio");
        // addr 0: lock serving, addr 1: protected counter, 2..: data
        b.if_else(
            b.tid().eq(0),
            |b| {
                b.emit(Inst::SetPrio { level: 1 });
                // critical section: two dependent round trips
                let v = b.def_i("v", b.load_shared(b.const_i(1)));
                let w = b.def_i("w", b.load_shared(v.get() + 8));
                b.store_shared(b.const_i(1), w.get() + 1);
                b.emit(Inst::SetPrio { level: 0 });
                b.store_shared(b.const_i(0), 1); // "release"
            },
            |b| {
                let acc = b.def_f("acc", 0.0);
                b.for_range("r", 0, 40, |b, _| {
                    b.for_range("i", 0, 32, |b, i| {
                        let x = b.load_shared_f(i.get() + 64);
                        b.assign_f(acc, acc.get() + x);
                    });
                });
                b.store_shared_f(b.tid() + 32, acc.get());
            },
        );
        group_shared_loads(&b.finish()).program
    };
    let release_time = |prio: bool| {
        let cfg =
            MachineConfig::new(SwitchModel::ConditionalSwitch, 1, 3).with_priority_scheduling(prio);
        let fin = Machine::new(cfg, &build(), SharedMemory::new(128)).run().unwrap();
        assert_eq!(fin.shared.read_i64(0), 1);
        fin.result.cycles
    };
    // Total cycles are similar, but we can observe the preference through
    // determinism: the runs differ, and the prioritized one never loses.
    let without = release_time(false);
    let with = release_time(true);
    assert!(with <= without, "priority run {with} vs {without}");
}
