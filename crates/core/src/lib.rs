//! # mtsim-core
//!
//! The multithreaded-multiprocessor simulation engine — the primary
//! contribution of Boothe & Ranade (ISCA 1992), reimplemented from scratch.
//!
//! A [`Machine`] runs one program image on `P × T` threads (`T` is the
//! paper's *multithreading level*) over a shared memory with a constant
//! round-trip latency (200 cycles by default). Context switching between
//! the threads of a processor follows one of the paper's eight
//! [`SwitchModel`]s, from the unbuildable `Ideal` baseline through the
//! `SwitchOnLoad` baseline to the paper's `ExplicitSwitch` and
//! `ConditionalSwitch` contributions.
//!
//! The engine reports everything the paper measures: wall-clock cycles,
//! per-processor busy/idle/overhead accounting, run-length distributions
//! (Tables 2 and 4), context switches taken/skipped, dynamic grouping
//! factors, message/bandwidth tallies (§6.1), and cache statistics.
//!
//! Beyond the paper, the engine is hardened for hostile conditions: a
//! seeded fault-injection layer (unreliable replies with a retry/NACK
//! protocol — see `mtsim_mem::FaultConfig`), a deadlock detector that
//! proves spin-loop cycles and reports the waiting threads as
//! [`SimError::Deadlock`], and typed [`SimError`]s instead of panics for
//! every reachable failure of a simulated program.
//!
//! ## Quick example
//!
//! ```
//! use mtsim_asm::ProgramBuilder;
//! use mtsim_core::{Machine, MachineConfig, SwitchModel};
//! use mtsim_mem::SharedMemory;
//!
//! // Every thread atomically bumps a shared counter.
//! let mut b = ProgramBuilder::new("hello");
//! b.fetch_add_discard(b.const_i(0), b.const_i(1), mtsim_isa::AccessHint::Data);
//! let prog = b.finish();
//!
//! let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 4, 2);
//! let run = Machine::new(cfg, &prog, SharedMemory::new(4)).run()?;
//! assert_eq!(run.shared.read_i64(0), 8);
//! # Ok::<(), mtsim_core::SimError>(())
//! ```

mod engine;
mod model;
mod stats;
mod thread;

pub use engine::{FinishedRun, LeanRun, Machine, MachineScratch, ThreadImage};
pub use model::{MachineConfig, SwitchModel};
pub use stats::{DeadlockWaiter, ProcStats, RunLengthHist, RunResult, RunStats, SimError};

pub use mtsim_mem::{NetStats, Network, NetworkConfig, Topology};

// Observability surface (DESIGN.md §17). Re-exported so engine users can
// attach a recorder without depending on `mtsim-obs` directly.
pub use mtsim_obs::{
    AttrSummary, AttrTable, Cat, Event, EventKind, EventRing, Metric, NoopRecorder, ObsRecorder,
    Recorder, StreamHist, SwitchCause, DEFAULT_RING_CAPACITY,
};

#[cfg(test)]
mod send_audit {
    //! Compile-time `Send`/`Sync` audit for the sweep pool contract
    //! (DESIGN.md §14): a worker thread must be able to own a `Machine`
    //! and ship its results back. If a future change threads an `Rc` or
    //! raw pointer through the engine, these tests stop compiling instead
    //! of letting the parallel sweep engine regress silently.
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn engine_types_are_send() {
        assert_send::<Machine>();
        assert_send::<MachineConfig>();
        assert_send::<FinishedRun>();
        assert_send::<LeanRun>();
        assert_send::<MachineScratch>();
        assert_send::<RunResult>();
        assert_send::<RunStats>();
        assert_send::<SimError>();
    }

    #[test]
    fn shareable_types_are_sync() {
        assert_sync::<MachineConfig>();
        assert_sync::<RunResult>();
        assert_sync::<RunStats>();
        assert_sync::<SimError>();
    }
}
