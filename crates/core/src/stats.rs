//! Run statistics: run-length histograms (Tables 2 and 4), processor
//! utilization, context-switch and grouping tallies.

use mtsim_mem::{CacheStats, NetStats, TraceEvent, Traffic};

/// Histogram of run-lengths — the cycles a thread executes between
/// context switches (paper §4.1). Buckets are powers of two:
/// `1, 2, 3–4, 5–8, 9–16, …, 2¹⁵+`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunLengthHist {
    buckets: [u64; 17],
    count: u64,
    total_cycles: u64,
}

impl RunLengthHist {
    /// An empty histogram.
    pub fn new() -> RunLengthHist {
        RunLengthHist::default()
    }

    /// Records one run of `cycles` busy cycles.
    pub fn record(&mut self, cycles: u64) {
        let b = if cycles <= 1 {
            0
        } else {
            let lz = 64 - (cycles - 1).leading_zeros() as usize;
            lz.min(16)
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.total_cycles += cycles;
    }

    /// Number of runs recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean run-length in cycles (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }

    /// Total busy cycles over all runs.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Fraction of runs that fall in the bucket containing `len` (e.g. the
    /// paper's "39% of the run-lengths are 1 cycle").
    pub fn fraction_at(&self, len: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let b = if len <= 1 { 0 } else { (64 - (len - 1).leading_zeros() as usize).min(16) };
        self.buckets[b] as f64 / self.count as f64
    }

    /// Iterates `(bucket_label, count)` for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (String, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(b, &c)| {
            let label = match b {
                0 => "1".to_string(),
                1 => "2".to_string(),
                16 => format!("{}+", (1u64 << 15) + 1),
                _ => format!("{}-{}", (1u64 << (b - 1)) + 1, 1u64 << b),
            };
            (label, c)
        })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &RunLengthHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_cycles += other.total_cycles;
    }
}

/// Per-processor cycle accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycles spent executing instructions.
    pub busy: u64,
    /// Cycles spent with no runnable thread.
    pub idle: u64,
    /// Cycles wasted on context-switch overhead (miss-detected models).
    pub overhead: u64,
    /// Cycles stalled on the scoreboard (reading a pending register
    /// without an intervening `Switch` — a compiler-contract violation
    /// under `ExplicitSwitch`, ordinary behavior under `SwitchOnUse`).
    pub stall: u64,
    /// Local completion time of this processor.
    pub finish_time: u64,
    /// Requests resent after an explicit NACK (fault injection).
    pub retries: u64,
    /// Requests resent after a silent-drop timeout (fault injection).
    pub timeouts: u64,
    /// Extra cycles this processor's threads spent waiting out faulted
    /// replies (beyond the fault-free reply time).
    pub fault_wait: u64,
}

/// One blocked thread inside a reported deadlock: who waits, where, and on
/// which shared word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlockWaiter {
    /// Thread id.
    pub thread: usize,
    /// Hosting processor.
    pub proc: usize,
    /// Shared word the thread is spin-waiting on.
    pub addr: u64,
    /// Value the thread keeps reading back.
    pub value: u64,
}

impl std::fmt::Display for DeadlockWaiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} (proc {}) spinning on word {} = {}",
            self.thread, self.proc, self.addr, self.value
        )
    }
}

/// Why a simulation ended unsuccessfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The watchdog cycle limit elapsed before all threads halted —
    /// the backstop for livelock the deadlock detector cannot prove
    /// (e.g. an infinite private-compute loop).
    Watchdog {
        /// The configured limit.
        max_cycles: u64,
        /// Threads that had already halted.
        halted_threads: usize,
        /// Total threads.
        total_threads: usize,
    },
    /// A shared-memory request exhausted its retry budget under fault
    /// injection.
    Fault {
        /// Issuing processor.
        proc: usize,
        /// Issuing thread.
        thread: usize,
        /// Program counter of the faulted access.
        pc: u64,
        /// Shared word address requested.
        addr: u64,
        /// Attempts made (first send plus retries).
        attempts: u32,
        /// Cycle at which the request was abandoned.
        cycle: u64,
    },
    /// Every live thread is spin-waiting on a shared word that no
    /// remaining thread can ever change: a proven deadlock, reported with
    /// the full cycle of waiters instead of burning cycles until the
    /// watchdog.
    Deadlock {
        /// Cycle at which the deadlock was proven.
        cycle: u64,
        /// Threads already halted.
        halted_threads: usize,
        /// The blocked threads and the words they wait on.
        waiters: Vec<DeadlockWaiter>,
    },
    /// The simulated program performed an illegal operation (wild shared
    /// or local access, negative address, runaway program counter).
    BadProgram {
        /// Offending thread.
        thread: usize,
        /// Program counter of the offending instruction.
        pc: u64,
        /// Human-readable description.
        detail: String,
    },
    /// The machine configuration itself is invalid.
    Config {
        /// Human-readable description.
        detail: String,
    },
    /// An external supervisor (e.g. the sweep pool's per-job wall-clock
    /// watchdog) tripped the machine's cancel token mid-run. Unlike
    /// [`SimError::Watchdog`] — the deterministic simulated-cycle budget —
    /// cancellation depends on host wall-clock and is therefore never part
    /// of a deterministic result table.
    Cancelled {
        /// Simulated cycle at which the engine observed the token.
        cycle: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Watchdog { max_cycles, halted_threads, total_threads } => write!(
                f,
                "watchdog expired after {max_cycles} cycles with {halted_threads}/{total_threads} threads halted"
            ),
            SimError::Fault { proc, thread, pc, addr, attempts, cycle } => write!(
                f,
                "shared-memory request to word {addr} by thread {thread} (proc {proc}, pc {pc}) \
                 abandoned after {attempts} attempts at cycle {cycle}"
            ),
            SimError::Deadlock { cycle, halted_threads, waiters } => {
                write!(
                    f,
                    "deadlock at cycle {cycle}: {} thread(s) blocked ({halted_threads} halted): ",
                    waiters.len()
                )?;
                for (i, w) in waiters.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
            SimError::BadProgram { thread, pc, detail } => {
                write!(f, "bad program: {detail} (thread {thread}, pc {pc})")
            }
            SimError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            SimError::Cancelled { cycle } => {
                write!(f, "run cancelled by supervisor at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A flat, `Copy` summary of a [`RunResult`]: every headline counter and
/// nothing heap-allocated, so sweep harnesses can ship results across
/// threads and aggregate thousands of points without cloning per-processor
/// vectors, histograms, or traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of processors in the run.
    pub processors: u64,
    /// Wall-clock completion time in cycles.
    pub cycles: u64,
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Busy cycles summed over all processors.
    pub busy: u64,
    /// Idle cycles summed over all processors.
    pub idle: u64,
    /// Context-switch overhead cycles summed over all processors.
    pub overhead: u64,
    /// Scoreboard-stall cycles summed over all processors.
    pub stalls: u64,
    /// Context switches actually taken.
    pub switches_taken: u64,
    /// `Switch` instructions skipped.
    pub switches_skipped: u64,
    /// Switches forced by the `max_run` interval.
    pub forced_switches: u64,
    /// Blocking shared reads issued.
    pub reads_issued: u64,
    /// NACK-driven retries summed over all processors.
    pub retries: u64,
    /// Timeout-driven resends summed over all processors.
    pub timeouts: u64,
    /// Network round trips carried (0 under the constant topology).
    pub net_requests: u64,
    /// Sum of network round-trip latencies.
    pub net_latency_sum: u64,
    /// Largest single network round-trip latency.
    pub net_latency_max: u64,
    /// Cycles messages spent queued on busy links or modules.
    pub net_queue_cycles: u64,
    /// Fetch-and-adds merged in-network by combining.
    pub net_fa_combined: u64,
}

impl RunStats {
    /// Processor utilization: busy / (processors × wall-clock).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.processors == 0 {
            return 0.0;
        }
        self.busy as f64 / (self.cycles as f64 * self.processors as f64)
    }

    /// Mean modeled network round-trip latency (0.0 under `constant`).
    pub fn net_mean_latency(&self) -> f64 {
        if self.net_requests == 0 {
            0.0
        } else {
            self.net_latency_sum as f64 / self.net_requests as f64
        }
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock completion time in cycles (when the last thread halted).
    pub cycles: u64,
    /// Per-processor cycle accounting.
    pub per_proc: Vec<ProcStats>,
    /// Run-length distribution across all threads.
    pub run_lengths: RunLengthHist,
    /// Context switches actually taken.
    pub switches_taken: u64,
    /// `Switch` instructions skipped (conditional-switch cache hits and
    /// inter-block-estimate skips).
    pub switches_skipped: u64,
    /// Switches forced by the `max_run` interval (§6.2).
    pub forced_switches: u64,
    /// Blocking shared reads issued (dynamic).
    pub reads_issued: u64,
    /// Network traffic tally.
    pub traffic: Traffic,
    /// Aggregate cache statistics (cache models only).
    pub cache: Option<CacheStats>,
    /// Per-thread one-line-cache statistics: `(hits, accesses)` summed.
    pub one_line: (u64, u64),
    /// Scoreboard stalls observed (see [`ProcStats::stall`]).
    pub scoreboard_stalls: u64,
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Shared-access trace, when `MachineConfig::collect_trace` was set.
    pub trace: Option<Vec<TraceEvent>>,
    /// Network statistics, when a contention topology (or combining) was
    /// simulated; `None` under the paper's constant-latency pipe.
    pub net: Option<NetStats>,
}

impl RunResult {
    /// Total busy cycles over all processors.
    pub fn busy_cycles(&self) -> u64 {
        self.per_proc.iter().map(|p| p.busy).sum()
    }

    /// Processor utilization: busy / (processors × wall-clock).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.busy_cycles() as f64 / (self.cycles as f64 * self.per_proc.len() as f64)
    }

    /// Dynamic grouping factor: blocking reads per taken-or-skipped switch
    /// point. Meaningful under the explicit/conditional models.
    pub fn dynamic_grouping_factor(&self) -> f64 {
        let switch_points = self.switches_taken + self.switches_skipped;
        if switch_points == 0 {
            0.0
        } else {
            self.reads_issued as f64 / switch_points as f64
        }
    }

    /// Paper-style bandwidth demand: non-spin bits per cycle per processor.
    pub fn bits_per_cycle(&self) -> f64 {
        self.traffic.bits_per_cycle(self.cycles, self.per_proc.len() as u64)
    }

    /// Total NACK-driven retries over all processors (fault injection).
    pub fn total_retries(&self) -> u64 {
        self.per_proc.iter().map(|p| p.retries).sum()
    }

    /// Total timeout-driven resends over all processors (fault injection).
    pub fn total_timeouts(&self) -> u64 {
        self.per_proc.iter().map(|p| p.timeouts).sum()
    }

    /// Flattens the headline counters into a [`RunStats`] snapshot. Cheap
    /// (no allocation) and `Copy`, so sweep harnesses can keep one per grid
    /// point and drop the full result.
    pub fn stats(&self) -> RunStats {
        RunStats {
            processors: self.per_proc.len() as u64,
            cycles: self.cycles,
            instructions: self.instructions,
            busy: self.busy_cycles(),
            idle: self.per_proc.iter().map(|p| p.idle).sum(),
            overhead: self.per_proc.iter().map(|p| p.overhead).sum(),
            stalls: self.scoreboard_stalls,
            switches_taken: self.switches_taken,
            switches_skipped: self.switches_skipped,
            forced_switches: self.forced_switches,
            reads_issued: self.reads_issued,
            retries: self.total_retries(),
            timeouts: self.total_timeouts(),
            net_requests: self.net.map_or(0, |n| n.requests),
            net_latency_sum: self.net.map_or(0, |n| n.latency_sum),
            net_latency_max: self.net.map_or(0, |n| n.latency_max),
            net_queue_cycles: self.net.map_or(0, |n| n.queue_cycles),
            net_fa_combined: self.net.map_or(0, |n| n.fa_combined),
        }
    }

    /// One-line-cache hit rate (§5.2 estimator), 0.0 if unused.
    pub fn one_line_hit_rate(&self) -> f64 {
        if self.one_line.1 == 0 {
            0.0
        } else {
            self.one_line.0 as f64 / self.one_line.1 as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = RunLengthHist::new();
        for c in [1, 1, 2, 3, 4, 5, 8, 9, 100000] {
            h.record(c);
        }
        assert_eq!(h.count(), 9);
        assert!((h.fraction_at(1) - 2.0 / 9.0).abs() < 1e-12);
        assert!((h.fraction_at(3) - h.fraction_at(4)).abs() < 1e-12, "3 and 4 share a bucket");
        let labels: Vec<_> = h.buckets().map(|(l, _)| l).collect();
        assert!(labels.contains(&"1".to_string()));
        assert!(labels.contains(&"3-4".to_string()));
        assert!(labels.iter().any(|l| l.ends_with('+')));
    }

    #[test]
    fn histogram_mean() {
        let mut h = RunLengthHist::new();
        h.record(10);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(h.total_cycles(), 40);
    }

    #[test]
    fn histogram_merge() {
        let mut a = RunLengthHist::new();
        a.record(1);
        let mut b = RunLengthHist::new();
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = RunLengthHist::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_at(5), 0.0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn utilization_math() {
        let r = RunResult {
            cycles: 100,
            per_proc: vec![
                ProcStats { busy: 80, idle: 20, finish_time: 100, ..ProcStats::default() },
                ProcStats { busy: 40, idle: 60, finish_time: 100, ..ProcStats::default() },
            ],
            run_lengths: RunLengthHist::new(),
            switches_taken: 10,
            switches_skipped: 0,
            forced_switches: 0,
            reads_issued: 20,
            traffic: Traffic::new(),
            cache: None,
            one_line: (0, 0),
            scoreboard_stalls: 0,
            instructions: 120,
            trace: None,
            net: None,
        };
        assert!((r.utilization() - 0.6).abs() < 1e-12);
        assert!((r.dynamic_grouping_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn watchdog_error_displays() {
        let e = SimError::Watchdog { max_cycles: 10, halted_threads: 1, total_threads: 4 };
        let s = e.to_string();
        assert!(s.contains("watchdog") && s.contains("1/4"));
    }

    #[test]
    fn deadlock_error_names_every_waiter() {
        let e = SimError::Deadlock {
            cycle: 500,
            halted_threads: 0,
            waiters: vec![
                DeadlockWaiter { thread: 0, proc: 0, addr: 7, value: 1 },
                DeadlockWaiter { thread: 3, proc: 1, addr: 9, value: 0 },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("thread 0") && s.contains("thread 3"));
        assert!(s.contains("word 7") && s.contains("word 9"));
    }

    #[test]
    fn fault_and_bad_program_errors_display() {
        let f = SimError::Fault { proc: 2, thread: 5, pc: 10, addr: 33, attempts: 9, cycle: 4000 };
        assert!(f.to_string().contains("9 attempts"));
        let b = SimError::BadProgram { thread: 1, pc: 3, detail: "wild shared load".into() };
        assert!(b.to_string().contains("wild shared load"));
    }

    #[test]
    fn retry_totals_sum_over_processors() {
        let mut r = RunResult {
            cycles: 1,
            per_proc: vec![ProcStats::default(); 2],
            run_lengths: RunLengthHist::new(),
            switches_taken: 0,
            switches_skipped: 0,
            forced_switches: 0,
            reads_issued: 0,
            traffic: Traffic::new(),
            cache: None,
            one_line: (0, 0),
            scoreboard_stalls: 0,
            instructions: 0,
            trace: None,
            net: None,
        };
        r.per_proc[0].retries = 3;
        r.per_proc[1].retries = 4;
        r.per_proc[1].timeouts = 2;
        assert_eq!(r.total_retries(), 7);
        assert_eq!(r.total_timeouts(), 2);
    }

    #[test]
    fn net_stats_flatten_into_run_stats() {
        let mut r = RunResult {
            cycles: 1,
            per_proc: vec![ProcStats::default()],
            run_lengths: RunLengthHist::new(),
            switches_taken: 0,
            switches_skipped: 0,
            forced_switches: 0,
            reads_issued: 0,
            traffic: Traffic::new(),
            cache: None,
            one_line: (0, 0),
            scoreboard_stalls: 0,
            instructions: 0,
            trace: None,
            net: None,
        };
        assert_eq!(r.stats().net_requests, 0);
        assert_eq!(r.stats().net_mean_latency(), 0.0);
        r.net = Some(NetStats {
            requests: 4,
            latency_sum: 1000,
            latency_max: 400,
            queue_cycles: 120,
            fa_requests: 2,
            fa_combined: 1,
        });
        let s = r.stats();
        assert_eq!(s.net_requests, 4);
        assert_eq!(s.net_latency_max, 400);
        assert_eq!(s.net_queue_cycles, 120);
        assert_eq!(s.net_fa_combined, 1);
        assert!((s.net_mean_latency() - 250.0).abs() < 1e-12);
    }
}
