//! Multithreading models (the paper's Figure 1 taxonomy) and machine
//! configuration.

use mtsim_mem::{CacheParams, FaultConfig, NetworkConfig};

/// When a processor context-switches between its resident threads.
///
/// This is the paper's Figure 1 design space. The paper's evaluation
/// concentrates on [`SwitchOnLoad`](SwitchModel::SwitchOnLoad) (§4),
/// [`ExplicitSwitch`](SwitchModel::ExplicitSwitch) (§5) and
/// [`ConditionalSwitch`](SwitchModel::ConditionalSwitch) (§6); the other
/// variants are implemented for completeness and for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchModel {
    /// Zero-latency shared memory, no context switching: the unbuildable
    /// upper bound of the paper's Figure 2.
    Ideal,
    /// HEP/MASA style: yield after **every** instruction; a thread is not
    /// re-runnable until its outstanding reference completes.
    SwitchEveryCycle,
    /// Yield on every shared load and fetch-and-add (§4's baseline).
    SwitchOnLoad,
    /// Split-phase: loads issue and execution continues; yield at the
    /// first instruction that *uses* a still-pending value.
    SwitchOnUse,
    /// The paper's model (§5): loads issue and continue; the explicit
    /// `Switch` instruction yields until **all** outstanding replies have
    /// arrived. Requires code prepared by `mtsim_opt::group_shared_loads`.
    ExplicitSwitch,
    /// Per-processor cache; yield on a load that misses, paying
    /// [`MachineConfig::switch_cost`] wasted pipeline cycles (the switch is
    /// detected too late in the pipeline to be free).
    SwitchOnMiss,
    /// Split-phase plus cache: yield at the use of a value whose load
    /// missed, with the same late-detection cost.
    SwitchOnUseMiss,
    /// The paper's cached model (§6): grouped code as in `ExplicitSwitch`,
    /// but the `Switch` instruction yields only if a load of its group
    /// missed the cache — or unconditionally once the thread has run for
    /// [`MachineConfig::max_run`] cycles (the forced-switch flag that fixes
    /// the ugray critical-section pathology of §6.2).
    ConditionalSwitch,
}

impl SwitchModel {
    /// True for the models that use the per-processor shared-data cache.
    pub fn uses_cache(self) -> bool {
        matches!(
            self,
            SwitchModel::SwitchOnMiss
                | SwitchModel::SwitchOnUseMiss
                | SwitchModel::ConditionalSwitch
        )
    }

    /// True for the models that execute code prepared by the grouping pass
    /// (i.e. that give the `Switch` instruction its special meaning).
    pub fn uses_explicit_switch(self) -> bool {
        matches!(self, SwitchModel::ExplicitSwitch | SwitchModel::ConditionalSwitch)
    }

    /// True for the models where the context switch is detected too late
    /// in the pipeline to be free (cache-miss detection), costing
    /// [`MachineConfig::switch_cost`] cycles per taken switch.
    pub fn pays_switch_cost(self) -> bool {
        matches!(self, SwitchModel::SwitchOnMiss | SwitchModel::SwitchOnUseMiss)
    }

    /// All models, in the order of the paper's Figure 1 discussion.
    pub const ALL: [SwitchModel; 8] = [
        SwitchModel::Ideal,
        SwitchModel::SwitchEveryCycle,
        SwitchModel::SwitchOnLoad,
        SwitchModel::SwitchOnUse,
        SwitchModel::ExplicitSwitch,
        SwitchModel::SwitchOnMiss,
        SwitchModel::SwitchOnUseMiss,
        SwitchModel::ConditionalSwitch,
    ];

    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SwitchModel::Ideal => "ideal",
            SwitchModel::SwitchEveryCycle => "switch-every-cycle",
            SwitchModel::SwitchOnLoad => "switch-on-load",
            SwitchModel::SwitchOnUse => "switch-on-use",
            SwitchModel::ExplicitSwitch => "explicit-switch",
            SwitchModel::SwitchOnMiss => "switch-on-miss",
            SwitchModel::SwitchOnUseMiss => "switch-on-use-miss",
            SwitchModel::ConditionalSwitch => "conditional-switch",
        }
    }

    /// Parses a display name back to the model (`"switch-on-load"`, …).
    pub fn from_name(name: &str) -> Option<SwitchModel> {
        SwitchModel::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl std::fmt::Display for SwitchModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full machine configuration.
///
/// Defaults follow the paper: 200-cycle round-trip latency, zero-cost
/// switches for the opcode-identified models, a 200-cycle forced-switch
/// interval under `ConditionalSwitch`.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of processors.
    pub processors: usize,
    /// Threads per processor (the paper's "multithreading level").
    pub threads_per_proc: usize,
    /// Shared-memory round-trip latency in cycles.
    pub latency: u64,
    /// The context-switch model.
    pub model: SwitchModel,
    /// Cache geometry for the cache-based models (ignored otherwise).
    pub cache: CacheParams,
    /// Wasted pipeline cycles per taken switch for the miss-detected
    /// models (`SwitchOnMiss`, `SwitchOnUseMiss`). The paper says
    /// "several cycles"; default 4.
    pub switch_cost: u64,
    /// Forced-switch interval for `ConditionalSwitch` (paper §6.2 uses 200
    /// cycles). `None` disables the forced switch (the ablation case).
    pub max_run: Option<u64>,
    /// Minimum words of private local memory per thread; the machine
    /// allocates `max(this, program.local_words())`.
    pub local_mem_words: u64,
    /// Table 6 mode: consult a per-thread one-line 32-word cache and skip
    /// a `Switch` whose whole group hit it (estimates inter-block grouping,
    /// paper §5.2). Only meaningful with `ExplicitSwitch`.
    pub interblock_estimate: bool,
    /// Record every shared access into `RunResult::trace` (the paper's
    /// trace-analysis methodology; consumed by `mtsim-trace`).
    pub collect_trace: bool,
    /// Honor `SetPrio` levels when choosing among runnable threads —
    /// the paper's suggested critical-region priority scheduling (§6.2).
    pub priority_scheduling: bool,
    /// Watchdog: abort the run after this many cycles (deadlock guard).
    pub max_cycles: u64,
    /// Fault injection: seeded unreliable-network model (drops/NACKs,
    /// delays, duplicates, latency distributions). The default is inactive
    /// — the paper's reliable constant-latency network.
    pub fault: FaultConfig,
    /// Interconnection-network model (topology, link bandwidth,
    /// combining). The default `constant` topology is the paper's
    /// contention-free pipe: `latency` applies unchanged and no network
    /// state is simulated. Under contention topologies `latency` is
    /// replaced by modeled per-message round trips; the fault layer
    /// composes on top of whichever base latency the network produces.
    pub net: NetworkConfig,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            processors: 1,
            threads_per_proc: 1,
            latency: 200,
            model: SwitchModel::SwitchOnLoad,
            cache: CacheParams::default(),
            switch_cost: 4,
            max_run: Some(200),
            local_mem_words: 256,
            interblock_estimate: false,
            collect_trace: false,
            priority_scheduling: false,
            max_cycles: u64::MAX,
            fault: FaultConfig::default(),
            net: NetworkConfig::constant(),
        }
    }
}

impl MachineConfig {
    /// Convenience constructor: `processors × threads_per_proc` under
    /// `model` with paper defaults for everything else.
    pub fn new(model: SwitchModel, processors: usize, threads_per_proc: usize) -> MachineConfig {
        MachineConfig { model, processors, threads_per_proc, ..MachineConfig::default() }
    }

    /// The ideal (zero-latency) machine of the paper's Figure 2.
    pub fn ideal(processors: usize) -> MachineConfig {
        MachineConfig {
            model: SwitchModel::Ideal,
            processors,
            threads_per_proc: 1,
            latency: 0,
            ..MachineConfig::default()
        }
    }

    /// Total thread count.
    pub fn total_threads(&self) -> usize {
        self.processors * self.threads_per_proc
    }

    /// Sets the round-trip latency (builder style).
    pub fn with_latency(mut self, latency: u64) -> MachineConfig {
        self.latency = latency;
        self
    }

    /// Sets the cache geometry (builder style).
    pub fn with_cache(mut self, cache: CacheParams) -> MachineConfig {
        self.cache = cache;
        self
    }

    /// Sets the forced-switch interval (builder style).
    pub fn with_max_run(mut self, max_run: Option<u64>) -> MachineConfig {
        self.max_run = max_run;
        self
    }

    /// Enables the §5.2 inter-block grouping estimator (builder style).
    pub fn with_interblock_estimate(mut self, on: bool) -> MachineConfig {
        self.interblock_estimate = on;
        self
    }

    /// Enables critical-region priority scheduling (builder style).
    pub fn with_priority_scheduling(mut self, on: bool) -> MachineConfig {
        self.priority_scheduling = on;
        self
    }

    /// Enables shared-access trace collection (builder style).
    pub fn with_trace(mut self, on: bool) -> MachineConfig {
        self.collect_trace = on;
        self
    }

    /// Sets the fault-injection configuration (builder style).
    pub fn with_faults(mut self, fault: FaultConfig) -> MachineConfig {
        self.fault = fault;
        self
    }

    /// Sets the interconnection-network configuration (builder style).
    pub fn with_net(mut self, net: NetworkConfig) -> MachineConfig {
        self.net = net;
        self
    }

    /// Validates the configuration, returning a description of the first
    /// problem found instead of panicking.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.processors == 0 {
            return Err("need at least one processor".into());
        }
        if self.threads_per_proc == 0 {
            return Err("need at least one thread per processor".into());
        }
        if self.model.uses_cache() {
            self.cache.validate();
            if self.processors > 128 {
                return Err("cache directory supports at most 128 processors".into());
            }
        }
        if self.interblock_estimate && self.model != SwitchModel::ExplicitSwitch {
            return Err("interblock_estimate only applies to the explicit-switch model".into());
        }
        self.fault.check()?;
        if self.fault.is_active() && self.model == SwitchModel::Ideal {
            return Err("fault injection is meaningless on the ideal zero-latency machine".into());
        }
        self.net.check()?;
        if self.net.is_active() && self.model == SwitchModel::Ideal {
            return Err(
                "network simulation is meaningless on the ideal zero-latency machine".into()
            );
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero processors/threads, an inter-block estimate request
    /// on a model other than `ExplicitSwitch`, or bad fault rates. Library
    /// users who must not panic call [`try_validate`](Self::try_validate).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_mem::Topology;

    #[test]
    fn model_classification() {
        assert!(SwitchModel::ConditionalSwitch.uses_cache());
        assert!(!SwitchModel::ExplicitSwitch.uses_cache());
        assert!(SwitchModel::ExplicitSwitch.uses_explicit_switch());
        assert!(SwitchModel::SwitchOnMiss.pays_switch_cost());
        assert!(!SwitchModel::SwitchOnLoad.pays_switch_cost());
        assert_eq!(SwitchModel::ALL.len(), 8);
    }

    #[test]
    fn display_names_unique() {
        let names: std::collections::HashSet<_> =
            SwitchModel::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), SwitchModel::ALL.len());
    }

    #[test]
    fn default_config_is_paper_config() {
        let c = MachineConfig::default();
        assert_eq!(c.latency, 200);
        assert_eq!(c.max_run, Some(200));
        c.validate();
    }

    #[test]
    fn ideal_config() {
        let c = MachineConfig::ideal(64);
        assert_eq!(c.latency, 0);
        assert_eq!(c.total_threads(), 64);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "interblock_estimate")]
    fn estimate_requires_explicit_switch() {
        let c = MachineConfig {
            interblock_estimate: true,
            ..MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 1)
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let c = MachineConfig { processors: 0, ..MachineConfig::default() };
        c.validate();
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        let c = MachineConfig { threads_per_proc: 0, ..MachineConfig::default() };
        assert!(c.try_validate().unwrap_err().contains("thread"));

        let fault = FaultConfig { drop_rate: 1.5, ..FaultConfig::default() };
        let c = MachineConfig::default().with_faults(fault);
        assert!(c.try_validate().is_err());
    }

    #[test]
    fn net_rejected_on_ideal_machine() {
        let net = NetworkConfig::new(Topology::Mesh);
        let c = MachineConfig::ideal(4).with_net(net);
        assert!(c.try_validate().unwrap_err().contains("ideal"));
        let c = MachineConfig::default().with_net(net);
        assert!(c.try_validate().is_ok());
        let c = MachineConfig::default().with_net(net.with_link_bw(0));
        assert!(c.try_validate().unwrap_err().contains("bandwidth"));
    }

    #[test]
    fn faults_rejected_on_ideal_machine() {
        let fault = FaultConfig { drop_rate: 0.1, ..FaultConfig::default() };
        let c = MachineConfig::ideal(4).with_faults(fault);
        assert!(c.try_validate().unwrap_err().contains("ideal"));
        let c = MachineConfig::default().with_faults(fault);
        assert!(c.try_validate().is_ok());
    }
}
