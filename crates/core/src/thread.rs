//! Per-thread architectural state.

use mtsim_isa::{FReg, Pc, Reg};
use mtsim_mem::OneLineCache;

/// A register whose value is still in flight (issued shared read whose
/// reply has not arrived).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingReg {
    /// True for an FP register.
    pub fp: bool,
    /// Register index.
    pub idx: u8,
    /// Cycle at which the value becomes usable.
    pub ready: u64,
}

/// One thread's complete state: registers, private memory, pc, split-phase
/// scoreboard, and per-thread instrumentation.
#[derive(Debug, Clone)]
pub(crate) struct Thread {
    pub regs: [i64; Reg::COUNT],
    pub fregs: [f64; FReg::COUNT],
    pub local: Vec<u64>,
    pub pc: Pc,
    pub halted: bool,
    /// Earliest cycle at which this thread may run again.
    pub wake: u64,
    /// Max reply time over all outstanding reads.
    pub outstanding: u64,
    /// Registers with in-flight values.
    pub pending: Vec<PendingReg>,
    /// Conditional-switch: did any read in the current group miss?
    pub pending_miss: bool,
    /// Blocking reads issued since the last switch point.
    pub group_reads: u32,
    /// §5.2 estimator: did every read of the current group hit the
    /// one-line cache?
    pub group_all_oneline: bool,
    /// The §5.2 one-line 32-word per-thread cache.
    pub one_line: OneLineCache,
    /// Busy cycles since the last context switch (run-length accumulator,
    /// also drives the conditional-switch forced-switch interval).
    pub run_cycles: u64,
    /// Scheduling priority (0 = normal); set by `SetPrio`, honored when
    /// `MachineConfig::priority_scheduling` is enabled.
    pub prio: u8,
}

impl Thread {
    /// Creates a thread with the entry-ABI registers set (`r1` = tid,
    /// `r2` = nthreads) and zeroed local memory.
    pub fn new(tid: i64, nthreads: i64, local_words: u64) -> Thread {
        let mut regs = [0i64; Reg::COUNT];
        regs[Reg::TID.index()] = tid;
        regs[Reg::NTHREADS.index()] = nthreads;
        Thread {
            regs,
            fregs: [0.0; FReg::COUNT],
            local: vec![0; local_words as usize],
            pc: 0,
            halted: false,
            wake: 0,
            outstanding: 0,
            pending: Vec::new(),
            pending_miss: false,
            group_reads: 0,
            group_all_oneline: true,
            one_line: OneLineCache::default(),
            run_cycles: 0,
            prio: 0,
        }
    }

    /// Reads an integer register (`r0` reads as zero).
    #[inline]
    pub fn rget(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes an integer register (`r0` writes are discarded).
    #[inline]
    pub fn rset(&mut self, r: Reg, v: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Reads an FP register.
    #[inline]
    pub fn fget(&self, f: FReg) -> f64 {
        self.fregs[f.index()]
    }

    /// Writes an FP register.
    #[inline]
    pub fn fset(&mut self, f: FReg, v: f64) {
        self.fregs[f.index()] = v;
    }

    /// Computes the effective word address of `base + offset`.
    ///
    /// # Panics
    ///
    /// Panics if the effective address is negative.
    #[inline]
    pub fn ea(&self, base: Reg, offset: i64) -> u64 {
        let a = self.rget(base).wrapping_add(offset);
        debug_assert!(a >= 0, "negative effective address {a} (base {base}, offset {offset})");
        a as u64
    }

    /// Reads local memory.
    ///
    /// # Panics
    ///
    /// Panics (with a clear message) on an out-of-range local access.
    #[inline]
    pub fn local_read(&self, addr: u64) -> u64 {
        *self
            .local
            .get(addr as usize)
            .unwrap_or_else(|| panic!("local load out of range: {addr} >= {}", self.local.len()))
    }

    /// Writes local memory.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range local access.
    #[inline]
    pub fn local_write(&mut self, addr: u64, v: u64) {
        let len = self.local.len();
        *self
            .local
            .get_mut(addr as usize)
            .unwrap_or_else(|| panic!("local store out of range: {addr} >= {len}")) = v;
    }

    /// Removes `(fp, idx)` from the pending set (an overwrite kills the
    /// in-flight value).
    pub fn kill_pending(&mut self, fp: bool, idx: u8) {
        self.pending.retain(|p| !(p.fp == fp && p.idx == idx));
    }

    /// Drops pending entries that have arrived by `now`; returns the
    /// latest `ready` among pending entries matching the given registers,
    /// if any are still in flight.
    pub fn pending_ready_for(&mut self, now: u64, int_uses: &[Reg], fp_uses: &[FReg]) -> Option<u64> {
        self.pending.retain(|p| p.ready > now);
        let mut needed: Option<u64> = None;
        for p in &self.pending {
            let used = if p.fp {
                fp_uses.iter().any(|f| f.index() == p.idx as usize)
            } else {
                int_uses.iter().any(|r| r.index() == p.idx as usize)
            };
            if used {
                needed = Some(needed.map_or(p.ready, |n| n.max(p.ready)));
            }
        }
        needed
    }

    /// Resets the split-phase group state (at a switch point).
    pub fn clear_group(&mut self) {
        self.pending.clear();
        self.pending_miss = false;
        self.group_reads = 0;
        self.group_all_oneline = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_abi() {
        let t = Thread::new(3, 8, 16);
        assert_eq!(t.rget(Reg::TID), 3);
        assert_eq!(t.rget(Reg::NTHREADS), 8);
        assert_eq!(t.rget(Reg::ZERO), 0);
        assert_eq!(t.local.len(), 16);
    }

    #[test]
    fn r0_is_immutable() {
        let mut t = Thread::new(0, 1, 1);
        t.rset(Reg::ZERO, 99);
        assert_eq!(t.rget(Reg::ZERO), 0);
    }

    #[test]
    fn pending_scan_purges_and_finds() {
        let mut t = Thread::new(0, 1, 1);
        t.pending.push(PendingReg { fp: false, idx: 8, ready: 100 });
        t.pending.push(PendingReg { fp: true, idx: 2, ready: 150 });
        // At t=120 the int reg has arrived; only the fp one is pending.
        let need = t.pending_ready_for(120, &[Reg::new(8)], &[FReg::new(2)]);
        assert_eq!(need, Some(150));
        assert_eq!(t.pending.len(), 1);
        // Unrelated registers need nothing.
        let need = t.pending_ready_for(120, &[Reg::new(9)], &[]);
        assert_eq!(need, None);
    }

    #[test]
    fn kill_pending_removes_overwritten() {
        let mut t = Thread::new(0, 1, 1);
        t.pending.push(PendingReg { fp: false, idx: 8, ready: 100 });
        t.kill_pending(false, 8);
        assert!(t.pending.is_empty());
    }

    #[test]
    #[should_panic(expected = "local load out of range")]
    fn local_oob_panics() {
        let t = Thread::new(0, 1, 4);
        let _ = t.local_read(4);
    }
}
