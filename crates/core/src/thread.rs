//! Per-thread architectural state.

use mtsim_isa::{FReg, Pc, Reg};
use mtsim_mem::OneLineCache;
use mtsim_obs::Cat;

/// A register whose value is still in flight (issued shared read whose
/// reply has not arrived).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingReg {
    /// True for an FP register.
    pub fp: bool,
    /// Register index.
    pub idx: u8,
    /// Cycle at which the value becomes usable.
    pub ready: u64,
}

/// One thread's complete state: registers, private memory, pc, split-phase
/// scoreboard, and per-thread instrumentation.
#[derive(Debug, Clone)]
pub(crate) struct Thread {
    pub regs: [i64; Reg::COUNT],
    pub fregs: [f64; FReg::COUNT],
    pub local: Vec<u64>,
    pub pc: Pc,
    pub halted: bool,
    /// Earliest cycle at which this thread may run again.
    pub wake: u64,
    /// Max reply time over all outstanding reads.
    pub outstanding: u64,
    /// Registers with in-flight values.
    pub pending: Vec<PendingReg>,
    /// Conditional-switch: did any read in the current group miss?
    pub pending_miss: bool,
    /// Blocking reads issued since the last switch point.
    pub group_reads: u32,
    /// §5.2 estimator: did every read of the current group hit the
    /// one-line cache?
    pub group_all_oneline: bool,
    /// The §5.2 one-line 32-word per-thread cache.
    pub one_line: OneLineCache,
    /// Busy cycles since the last context switch (run-length accumulator,
    /// also drives the conditional-switch forced-switch interval).
    pub run_cycles: u64,
    /// Scheduling priority (0 = normal); set by `SetPrio`, honored when
    /// `MachineConfig::priority_scheduling` is enabled.
    pub prio: u8,
    /// Observability: what this thread is waiting for while asleep
    /// (memory reply, lock spin, barrier). Written only when a real
    /// recorder is attached; read when the processor sleeps until this
    /// thread's wake time, to attribute the gap.
    pub wait: Cat,
    /// Deadlock detection: the shared word this thread's current spin loop
    /// polls (spin-hinted loads with no intervening store/fetch-add).
    pub spin_addr: Option<u64>,
    /// Consecutive polls of `spin_addr` with no intervening shared-memory
    /// mutation anywhere in the machine.
    pub polls_clean: u32,
    /// Issue time of the latest poll of `spin_addr`.
    pub last_poll: u64,
    /// Value the latest poll read back (reported in deadlock diagnostics).
    pub last_poll_value: u64,
    /// Global mutation count observed at the latest poll.
    pub seen_mutations: u64,
    /// Architectural state captured a few clean polls into the spin (see
    /// [`Thread::note_spin_poll`]).
    pub spin_snapshot: Option<Box<SpinSnapshot>>,
    /// Proven periodic: a later clean poll reproduced `spin_snapshot`
    /// exactly, so absent an external shared-memory write this thread will
    /// spin forever.
    pub spin_confirmed: bool,
    /// Scoreboard entries ever created for this thread (issue side of the
    /// conservation law checked under `debug-invariants`).
    pub issued_entries: u64,
    /// Scoreboard entries ever removed — arrived, killed by an overwrite,
    /// or flushed at a switch point (retire side of the conservation law).
    pub reaped_entries: u64,
}

/// The architectural state that determines a thread's future behavior,
/// given unchanged local and shared memory: program counter and both
/// register files (floats compared bitwise). Local memory is not included
/// — local stores reset the spin tracking instead — and timing state
/// (wake/pending times) never influences control flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpinSnapshot {
    pc: Pc,
    regs: [i64; Reg::COUNT],
    fregs: [u64; FReg::COUNT],
}

/// Clean polls of one address before the state snapshot is captured.
const SPIN_SNAPSHOT_AT: u32 = 4;

impl Thread {
    /// Creates a thread with the entry-ABI registers set (`r1` = tid,
    /// `r2` = nthreads) and zeroed local memory.
    pub fn new(tid: i64, nthreads: i64, local_words: u64) -> Thread {
        let mut regs = [0i64; Reg::COUNT];
        regs[Reg::TID.index()] = tid;
        regs[Reg::NTHREADS.index()] = nthreads;
        Thread {
            regs,
            fregs: [0.0; FReg::COUNT],
            local: vec![0; local_words as usize],
            pc: 0,
            halted: false,
            wake: 0,
            outstanding: 0,
            pending: Vec::new(),
            pending_miss: false,
            group_reads: 0,
            group_all_oneline: true,
            one_line: OneLineCache::default(),
            run_cycles: 0,
            prio: 0,
            wait: Cat::MemoryStall,
            spin_addr: None,
            polls_clean: 0,
            last_poll: 0,
            last_poll_value: 0,
            seen_mutations: 0,
            spin_snapshot: None,
            spin_confirmed: false,
            issued_entries: 0,
            reaped_entries: 0,
        }
    }

    /// Re-initializes this thread to exactly the state [`Thread::new`]
    /// creates, but reusing its heap buffers (local memory, scoreboard)
    /// in place. Everything else is rebuilt through the constructor, so
    /// there is no second list of fields to keep in sync — a reset
    /// thread is bit-identical to a fresh one by construction.
    pub fn reset(&mut self, tid: i64, nthreads: i64, local_words: u64) {
        let mut local = std::mem::take(&mut self.local);
        let mut pending = std::mem::take(&mut self.pending);
        local.clear();
        local.resize(local_words as usize, 0);
        pending.clear();
        // `Thread::new` with zero local words performs no allocation.
        *self = Thread::new(tid, nthreads, 0);
        self.local = local;
        self.pending = pending;
    }

    /// Reads an integer register (`r0` reads as zero).
    #[inline]
    pub fn rget(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes an integer register (`r0` writes are discarded).
    #[inline]
    pub fn rset(&mut self, r: Reg, v: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Reads an FP register.
    #[inline]
    pub fn fget(&self, f: FReg) -> f64 {
        self.fregs[f.index()]
    }

    /// Writes an FP register.
    #[inline]
    pub fn fset(&mut self, f: FReg, v: f64) {
        self.fregs[f.index()] = v;
    }

    /// Computes the effective word address of `base + offset`, or `None`
    /// when it is negative (a wild address in the simulated program). The
    /// engine turns `None` into `SimError::BadProgram` — there is no
    /// panicking variant.
    #[inline]
    pub fn try_ea(&self, base: Reg, offset: i64) -> Option<u64> {
        let a = self.rget(base).wrapping_add(offset);
        if a < 0 {
            None
        } else {
            Some(a as u64)
        }
    }

    /// Reads local memory, or `None` when out of range.
    #[inline]
    pub fn try_local_read(&self, addr: u64) -> Option<u64> {
        self.local.get(addr as usize).copied()
    }

    /// Writes local memory, or returns `None` when out of range.
    #[inline]
    pub fn try_local_write(&mut self, addr: u64, v: u64) -> Option<()> {
        *self.local.get_mut(addr as usize)? = v;
        Some(())
    }

    /// The current behavior-determining architectural state.
    fn spin_state(&self) -> SpinSnapshot {
        SpinSnapshot { pc: self.pc, regs: self.regs, fregs: self.fregs.map(f64::to_bits) }
    }

    /// Records a spin-hinted poll of shared word `addr` issued at `now`,
    /// reading back `value`. `mutated_since` is true when any shared word
    /// anywhere was mutated since this thread's previous poll.
    ///
    /// After [`SPIN_SNAPSHOT_AT`] clean polls of one address the thread's
    /// architectural state is snapshotted; if a later clean poll reproduces
    /// the snapshot exactly, the loop is proven periodic: with unchanged
    /// local memory (local stores reset the tracking) and unchanged shared
    /// memory (`mutated_since` would have reset it), execution from
    /// identical state replays identically, so the thread can never leave
    /// the loop, store, or halt unless some *other* thread writes shared
    /// memory. Returns true the moment that proof lands.
    pub fn note_spin_poll(&mut self, addr: u64, value: u64, now: u64, mutated_since: bool) -> bool {
        if self.spin_addr != Some(addr) || mutated_since {
            self.spin_addr = Some(addr);
            self.polls_clean = 0;
            self.spin_snapshot = None;
            self.spin_confirmed = false;
        }
        self.polls_clean = self.polls_clean.saturating_add(1);
        self.last_poll = now;
        self.last_poll_value = value;
        if self.spin_confirmed {
            return false;
        }
        if self.polls_clean == SPIN_SNAPSHOT_AT {
            self.spin_snapshot = Some(Box::new(self.spin_state()));
        } else if self.polls_clean > SPIN_SNAPSHOT_AT {
            if let Some(s) = &self.spin_snapshot {
                if **s == self.spin_state() {
                    self.spin_confirmed = true;
                    return true;
                }
            }
        }
        false
    }

    /// Forgets any spin-loop evidence: called on every instruction that
    /// mutates state outside the snapshot's domain (local stores, shared
    /// stores, fetch-and-adds, priority changes).
    #[inline]
    pub fn reset_spin(&mut self) {
        if self.spin_addr.is_some() {
            self.spin_addr = None;
            self.polls_clean = 0;
            self.spin_snapshot = None;
            self.spin_confirmed = false;
        }
    }

    /// True when this thread is proven stuck in its spin loop (see
    /// [`Thread::note_spin_poll`]).
    #[inline]
    pub fn spin_blocked(&self) -> bool {
        !self.halted && self.spin_confirmed
    }

    /// Removes `(fp, idx)` from the pending set (an overwrite kills the
    /// in-flight value).
    pub fn kill_pending(&mut self, fp: bool, idx: u8) {
        let before = self.pending.len();
        self.pending.retain(|p| !(p.fp == fp && p.idx == idx));
        self.reaped_entries += (before - self.pending.len()) as u64;
    }

    /// Flushes every pending entry (all replies have arrived).
    pub fn reap_all_pending(&mut self) {
        self.reaped_entries += self.pending.len() as u64;
        self.pending.clear();
    }

    /// Drops pending entries that have arrived by `now`; returns the
    /// latest `ready` among pending entries matching the given registers,
    /// if any are still in flight.
    pub fn pending_ready_for(
        &mut self,
        now: u64,
        int_uses: &[Reg],
        fp_uses: &[FReg],
    ) -> Option<u64> {
        let before = self.pending.len();
        self.pending.retain(|p| p.ready > now);
        self.reaped_entries += (before - self.pending.len()) as u64;
        let mut needed: Option<u64> = None;
        for p in &self.pending {
            let used = if p.fp {
                fp_uses.iter().any(|f| f.index() == p.idx as usize)
            } else {
                int_uses.iter().any(|r| r.index() == p.idx as usize)
            };
            if used {
                needed = Some(needed.map_or(p.ready, |n| n.max(p.ready)));
            }
        }
        needed
    }

    /// Resets the split-phase group state (at a switch point).
    pub fn clear_group(&mut self) {
        self.reaped_entries += self.pending.len() as u64;
        self.pending.clear();
        self.pending_miss = false;
        self.group_reads = 0;
        self.group_all_oneline = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_abi() {
        let t = Thread::new(3, 8, 16);
        assert_eq!(t.rget(Reg::TID), 3);
        assert_eq!(t.rget(Reg::NTHREADS), 8);
        assert_eq!(t.rget(Reg::ZERO), 0);
        assert_eq!(t.local.len(), 16);
    }

    #[test]
    fn r0_is_immutable() {
        let mut t = Thread::new(0, 1, 1);
        t.rset(Reg::ZERO, 99);
        assert_eq!(t.rget(Reg::ZERO), 0);
    }

    #[test]
    fn pending_scan_purges_and_finds() {
        let mut t = Thread::new(0, 1, 1);
        t.pending.push(PendingReg { fp: false, idx: 8, ready: 100 });
        t.pending.push(PendingReg { fp: true, idx: 2, ready: 150 });
        // At t=120 the int reg has arrived; only the fp one is pending.
        let need = t.pending_ready_for(120, &[Reg::new(8)], &[FReg::new(2)]);
        assert_eq!(need, Some(150));
        assert_eq!(t.pending.len(), 1);
        // Unrelated registers need nothing.
        let need = t.pending_ready_for(120, &[Reg::new(9)], &[]);
        assert_eq!(need, None);
    }

    #[test]
    fn kill_pending_removes_overwritten() {
        let mut t = Thread::new(0, 1, 1);
        t.pending.push(PendingReg { fp: false, idx: 8, ready: 100 });
        t.kill_pending(false, 8);
        assert!(t.pending.is_empty());
    }

    #[test]
    fn checked_local_and_ea() {
        let mut t = Thread::new(0, 1, 4);
        assert_eq!(t.try_local_read(3), Some(0));
        assert_eq!(t.try_local_read(4), None);
        assert_eq!(t.try_local_write(3, 9), Some(()));
        assert_eq!(t.try_local_write(4, 9), None);
        assert_eq!(t.try_local_read(3), Some(9));
        t.rset(Reg::new(5), -10);
        assert_eq!(t.try_ea(Reg::new(5), 4), None);
        assert_eq!(t.try_ea(Reg::new(5), 10), Some(0));
    }

    #[test]
    fn reset_matches_a_fresh_thread_and_reuses_buffers() {
        let mut t = Thread::new(1, 4, 8);
        // Dirty every category of state a run can touch.
        t.rset(Reg::new(5), 42);
        t.fset(FReg::new(2), 3.5);
        t.try_local_write(3, 9).unwrap();
        t.pc = 17;
        t.halted = true;
        t.wake = 100;
        t.run_cycles = 9;
        t.pending.push(PendingReg { fp: false, idx: 8, ready: 100 });
        for i in 0..6 {
            t.note_spin_poll(7, 0, 100 * (i + 1), false);
        }
        let buf = t.local.as_ptr();
        t.reset(2, 6, 8);
        // The Debug rendering covers every field, so equal renderings
        // mean a reset thread is indistinguishable from a fresh one.
        assert_eq!(format!("{t:?}"), format!("{:?}", Thread::new(2, 6, 8)));
        assert_eq!(t.local.as_ptr(), buf, "local memory must be reused, not reallocated");
        // A shape change (more local words) still works.
        t.reset(0, 1, 16);
        assert_eq!(format!("{t:?}"), format!("{:?}", Thread::new(0, 1, 16)));
    }

    #[test]
    fn spin_tracking_confirms_periodic_state() {
        let mut t = Thread::new(0, 1, 1);
        assert!(!t.spin_blocked());
        // Four clean polls capture the snapshot; the fifth, with identical
        // architectural state, proves the loop periodic.
        for i in 0..4 {
            assert!(!t.note_spin_poll(7, 0, 100 * (i + 1), false));
            assert!(!t.spin_blocked());
        }
        assert!(t.note_spin_poll(7, 0, 500, false), "fifth identical poll confirms");
        assert!(t.spin_blocked());
        assert_eq!(t.last_poll_value, 0);
        // Once confirmed, further polls report nothing new.
        assert!(!t.note_spin_poll(7, 0, 600, false));
        // A mutation anywhere restarts the proof.
        assert!(!t.note_spin_poll(7, 0, 700, true));
        assert!(!t.spin_blocked());
        // Real work clears the evidence entirely.
        t.reset_spin();
        assert_eq!(t.spin_addr, None);
        assert_eq!(t.polls_clean, 0);
    }

    #[test]
    fn spin_tracking_rejects_changing_state() {
        let mut t = Thread::new(0, 1, 1);
        // A counting loop polls the same word, but a register changes every
        // iteration — the snapshot never matches, so no confirmation.
        for i in 0..50 {
            t.rset(Reg::new(9), i);
            assert!(!t.note_spin_poll(7, 0, (100 * (i + 1)) as u64, false));
        }
        assert!(!t.spin_blocked());
        // Polling a different word restarts the window.
        t.note_spin_poll(8, 1, 9000, false);
        assert_eq!(t.polls_clean, 1);
    }
}
