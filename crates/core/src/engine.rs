//! The discrete-event multiprocessor engine.
//!
//! Each processor interleaves its resident threads in round-robin order.
//! Between shared accesses a processor executes private (local) code
//! directly — nothing another processor does can affect it — so the event
//! loop only needs to interleave processors at shared-access boundaries.
//! Shared operations are applied to memory in global time order (ties
//! broken deterministically by event sequence), which, under the paper's
//! constant-latency network, is identical to memory-arrival order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::model::{MachineConfig, SwitchModel};
use crate::stats::{DeadlockWaiter, ProcStats, RunLengthHist, RunResult, SimError};
use crate::thread::{PendingReg, Thread};
use mtsim_asm::Program;
use mtsim_isa::{cost, AccessHint, AluOp, BCond, CmpOp, FpuOp, Inst, Pc, Space};
use mtsim_mem::{
    message_bits, CoherentCaches, FaultPlan, MsgClass, Network, SharedMemory, TraceEvent,
    TraceKind, Traffic,
};
use mtsim_obs::{Cat, EventKind, Metric, NoopRecorder, Recorder, SwitchCause};

#[derive(Debug, Default)]
struct Counters {
    taken: u64,
    skipped: u64,
    forced: u64,
    reads: u64,
    stalls: u64,
    instructions: u64,
    /// Shared-memory mutations (stores, fetch-and-adds) applied so far;
    /// the deadlock detector's clock.
    mutations: u64,
    /// Set when a thread's spin loop was just proven periodic — tells
    /// `step_proc` to run the machine-wide deadlock scan.
    spin_confirm: bool,
}

#[derive(Debug)]
struct Proc {
    queue: VecDeque<usize>,
    current: Option<usize>,
    time: u64,
    stats: ProcStats,
}

enum Outcome {
    Continue,
    Yield { wake: u64, cause: SwitchCause },
    Halt,
}

enum StepOut {
    Reschedule(u64),
    Done,
}

/// A configured machine ready to run one program to completion.
///
/// # Example
///
/// ```
/// use mtsim_asm::ProgramBuilder;
/// use mtsim_core::{Machine, MachineConfig, SwitchModel};
/// use mtsim_mem::SharedMemory;
///
/// // Each thread adds its id into a shared counter.
/// let mut b = ProgramBuilder::new("count");
/// b.fetch_add_discard(b.const_i(0), b.tid() + 1, mtsim_isa::AccessHint::Data);
/// let prog = b.finish();
///
/// let config = MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 2);
/// let run = Machine::new(config, &prog, SharedMemory::new(1)).run().unwrap();
/// assert_eq!(run.shared.read_i64(0), 1 + 2 + 3 + 4);
/// ```
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    program: Program,
    shared: SharedMemory,
    threads: Vec<Thread>,
    procs: Vec<Proc>,
    caches: Option<CoherentCaches>,
    traffic: Traffic,
    run_lengths: RunLengthHist,
    counters: Counters,
    trace: Option<Vec<TraceEvent>>,
    fault: Option<FaultPlan>,
    /// Present only when a contention topology (or combining) is
    /// configured; `None` leaves the paper's constant-latency path —
    /// and every existing golden number — untouched.
    net: Option<Network>,
    /// External cancel token, polled from the step loop. `None` (the
    /// default) costs one predictable branch per step; a supervisor that
    /// sets the flag turns the run into [`SimError::Cancelled`].
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

/// A completed run: statistics plus the final shared-memory image (for
/// result verification).
#[derive(Debug)]
pub struct FinishedRun {
    /// Simulation statistics.
    pub result: RunResult,
    /// Shared memory at completion.
    pub shared: SharedMemory,
    /// Final architectural state of every thread, indexed by thread id
    /// (used by `mtsim-check` to compare runs against the reference
    /// interpreter).
    pub threads: Vec<ThreadImage>,
}

/// The architectural state a thread retires with: both register files
/// (floats as bit patterns, so NaNs compare exactly) and private memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadImage {
    /// Integer registers (`r0` always zero).
    pub regs: [i64; mtsim_isa::Reg::COUNT],
    /// FP registers as IEEE-754 bit patterns.
    pub fregs: [u64; mtsim_isa::FReg::COUNT],
    /// Local (private) memory words.
    pub local: Vec<u64>,
}

/// A completed run without the per-thread architectural images: the
/// variant [`Machine::run_reusing`] returns when the caller only needs
/// statistics plus the final shared memory (e.g. for result
/// verification) and wants the thread buffers recycled instead of
/// imaged.
#[derive(Debug)]
pub struct LeanRun {
    /// Simulation statistics.
    pub result: RunResult,
    /// Shared memory at completion.
    pub shared: SharedMemory,
}

/// Recyclable machine buffers: the per-thread state (dominated by each
/// thread's local memory vector) and the program image from a finished
/// run, keyed by a caller-chosen artifact identity. A worker thread that
/// runs many same-shaped grid points keeps one of these; consecutive
/// [`Machine::try_new_reusing`] / [`Machine::run_reusing`] pairs with a
/// stable key then allocate no thread state and clone no program.
///
/// The scratch holds at most one parked machine — sweeps iterate grids
/// in axis order, so consecutive jobs on a worker overwhelmingly share
/// a shape and a deeper cache would mostly hold dead buffers.
#[derive(Debug, Default)]
pub struct MachineScratch {
    key: u64,
    threads: Vec<Thread>,
    program: Option<Program>,
}

impl MachineScratch {
    /// An empty scratch: the first build through it allocates fresh.
    pub fn new() -> MachineScratch {
        MachineScratch::default()
    }

    /// The key of the currently parked buffers (0 = empty).
    pub fn key(&self) -> u64 {
        self.key
    }
}

impl Machine {
    /// Builds a machine running `program` on every thread over `shared`.
    ///
    /// Thread ids are assigned contiguously per processor: processor `p`
    /// hosts threads `p*T .. (p+1)*T`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::validate`]). [`Machine::try_new`] reports the
    /// problem as a [`SimError::Config`] instead.
    pub fn new(config: MachineConfig, program: &Program, shared: SharedMemory) -> Machine {
        Machine::try_new(config, program, shared).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a machine, rejecting an invalid configuration as
    /// [`SimError::Config`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when
    /// [`MachineConfig::try_validate`] fails.
    pub fn try_new(
        config: MachineConfig,
        program: &Program,
        shared: SharedMemory,
    ) -> Result<Machine, SimError> {
        let mut scratch = MachineScratch::new();
        Machine::try_new_reusing(config, program, shared, 0, &mut scratch).map(|(m, _)| m)
    }

    /// Builds a machine like [`Machine::try_new`], but recycling the
    /// allocation-heavy buffers (per-thread local memories, the program
    /// image) parked in `scratch` by a previous [`Machine::run_reusing`]
    /// call when the caller-chosen `key` matches. Returns the machine and
    /// whether buffers were actually reused.
    ///
    /// The key contract: **equal non-zero keys imply an identical
    /// program.** Shape (thread count, local words) is re-derived from
    /// `config`/`program` either way, so a colliding key with a
    /// different shape costs allocations, never correctness — but a
    /// colliding key with a *different program* would silently run the
    /// wrong code. Key 0 never reuses (and never stashes a reusable
    /// program identity), which is how [`Machine::try_new`] gets the
    /// allocate-fresh behavior.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when
    /// [`MachineConfig::try_validate`] fails.
    pub fn try_new_reusing(
        config: MachineConfig,
        program: &Program,
        shared: SharedMemory,
        key: u64,
        scratch: &mut MachineScratch,
    ) -> Result<(Machine, bool), SimError> {
        config.try_validate().map_err(|detail| SimError::Config { detail })?;
        let nthreads = config.total_threads();
        let local_words = config.local_mem_words.max(program.local_words());
        let reused = key != 0 && scratch.key == key && scratch.program.is_some();
        let (program, mut threads) = if reused {
            (scratch.program.take().expect("key match implies a stashed program"), {
                scratch.key = 0;
                std::mem::take(&mut scratch.threads)
            })
        } else {
            (program.clone(), Vec::new())
        };
        threads.truncate(nthreads);
        for (tid, t) in threads.iter_mut().enumerate() {
            t.reset(tid as i64, nthreads as i64, local_words);
        }
        for tid in threads.len()..nthreads {
            threads.push(Thread::new(tid as i64, nthreads as i64, local_words));
        }
        let procs = (0..config.processors)
            .map(|p| Proc {
                queue: (p * config.threads_per_proc..(p + 1) * config.threads_per_proc).collect(),
                current: None,
                time: 0,
                stats: ProcStats::default(),
            })
            .collect();
        let caches =
            config.model.uses_cache().then(|| CoherentCaches::new(config.processors, config.cache));
        let collect_trace = config.collect_trace;
        let fault = config.fault.is_active().then(|| FaultPlan::new(config.fault));
        let net = config
            .net
            .is_active()
            .then(|| Network::new(config.net, config.processors, config.latency));
        let machine = Machine {
            config,
            program,
            shared,
            threads,
            procs,
            caches,
            traffic: Traffic::new(),
            run_lengths: RunLengthHist::new(),
            counters: Counters::default(),
            trace: collect_trace.then(Vec::new),
            fault,
            net,
            cancel: None,
        };
        Ok((machine, reused))
    }

    /// Attaches an external cancel token. A supervisor thread (e.g. the
    /// sweep pool's per-job wall-clock watchdog) stores `true` into the
    /// token; the engine polls it from the step loop and aborts the run
    /// with [`SimError::Cancelled`] within a few simulated instructions.
    /// Without a token the poll compiles to a single never-taken branch,
    /// so undecorated runs stay on the measured fast path.
    #[must_use]
    pub fn with_cancel_token(
        mut self,
        token: std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) -> Machine {
        self.cancel = Some(token);
        self
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs all threads to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] when every live thread is proven stuck in
    ///   a spin loop no remaining thread can release, reported with the
    ///   full cycle of waiters;
    /// * [`SimError::Watchdog`] when the configured cycle limit elapses
    ///   first (livelock the detector cannot prove);
    /// * [`SimError::Fault`] when a shared-memory request exhausts its
    ///   retry budget under fault injection;
    /// * [`SimError::BadProgram`] when the simulated program performs a
    ///   wild memory access or runs off the end of its code.
    pub fn run(self) -> Result<FinishedRun, SimError> {
        self.run_with(&mut NoopRecorder)
    }

    /// Runs all threads to completion with an observability [`Recorder`]
    /// attached. The engine is monomorphized per recorder type:
    /// [`Machine::run`] passes the no-op recorder, whose empty inline
    /// hooks compile away, so the undecorated path is the seed engine —
    /// bit-identical results, no measurable overhead. A real recorder
    /// (e.g. `mtsim_obs::ObsRecorder`) observes events, per-thread cycle
    /// attribution, and histogram samples without feeding anything back
    /// into the simulation, so results are identical either way.
    ///
    /// # Errors
    ///
    /// Exactly as [`Machine::run`].
    pub fn run_with<R: Recorder>(self, rec: &mut R) -> Result<FinishedRun, SimError> {
        let (result, shared, threads, _) = self.run_to_completion(rec)?;
        let threads = threads
            .into_iter()
            .map(|t| ThreadImage { regs: t.regs, fregs: t.fregs.map(f64::to_bits), local: t.local })
            .collect();
        Ok(FinishedRun { result, shared, threads })
    }

    /// Runs to completion like [`Machine::run_with`], then parks the
    /// machine's reusable buffers in `scratch` under `key` so the next
    /// [`Machine::try_new_reusing`] call with the same key skips the
    /// per-thread allocations and the program clone. Returns a
    /// [`LeanRun`] — statistics plus final shared memory, without the
    /// per-thread architectural images (their buffers are what gets
    /// recycled). Orchestration layers that only verify shared memory
    /// use this; `mtsim-check`'s state comparisons need
    /// [`Machine::run_with`].
    ///
    /// On error nothing is stashed: the failed machine's buffers are
    /// simply dropped, and `scratch` keeps whatever it held before.
    ///
    /// # Errors
    ///
    /// Exactly as [`Machine::run`].
    pub fn run_reusing<R: Recorder>(
        self,
        rec: &mut R,
        key: u64,
        scratch: &mut MachineScratch,
    ) -> Result<LeanRun, SimError> {
        let (result, shared, threads, program) = self.run_to_completion(rec)?;
        if key != 0 {
            scratch.key = key;
            scratch.threads = threads;
            scratch.program = Some(program);
        }
        Ok(LeanRun { result, shared })
    }

    /// The shared run loop: drives every processor to completion and
    /// hands the result back along with the moved-out buffers, so the
    /// public variants decide whether to image or recycle the threads.
    fn run_to_completion<R: Recorder>(
        mut self,
        rec: &mut R,
    ) -> Result<(RunResult, SharedMemory, Vec<Thread>, Program), SimError> {
        let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        for p in 0..self.procs.len() {
            heap.push(Reverse((0, seq, p)));
            seq += 1;
        }
        #[cfg(feature = "debug-invariants")]
        let mut last_event_time: u64 = 0;
        while let Some(Reverse((t, _, p))) = heap.pop() {
            #[cfg(feature = "debug-invariants")]
            {
                assert!(t >= last_event_time, "event clock ran backwards: {t} < {last_event_time}");
                last_event_time = t;
            }
            self.procs[p].time = self.procs[p].time.max(t);
            let peek = heap.peek().map(|r| r.0 .0).unwrap_or(u64::MAX);
            match self.step_proc(p, peek, rec)? {
                StepOut::Reschedule(at) => {
                    heap.push(Reverse((at, seq, p)));
                    seq += 1;
                }
                StepOut::Done => {}
            }
        }
        debug_assert!(self.threads.iter().all(|t| t.halted), "event queue drained early");

        let cycles = self.procs.iter().map(|p| p.stats.finish_time).max().unwrap_or(0);
        if R::ENABLED {
            // End-of-run slack: a processor that finished early idles until
            // the machine-wide completion cycle. Everything before its
            // finish time was already charged cycle-by-cycle, so this
            // closes the attribution conservation law.
            for (p, proc) in self.procs.iter().enumerate() {
                rec.charge_idle(p, cycles - proc.stats.finish_time);
            }
            rec.finish_run(cycles);
        }
        let one_line = self
            .threads
            .iter()
            .fold((0, 0), |(h, a), t| (h + t.one_line.hits(), a + t.one_line.accesses()));
        let result = RunResult {
            cycles,
            per_proc: self.procs.iter().map(|p| p.stats).collect(),
            run_lengths: self.run_lengths,
            switches_taken: self.counters.taken,
            switches_skipped: self.counters.skipped,
            forced_switches: self.counters.forced,
            reads_issued: self.counters.reads,
            traffic: self.traffic,
            cache: self.caches.as_ref().map(|c| c.total_stats()),
            one_line,
            scoreboard_stalls: self.counters.stalls,
            instructions: self.counters.instructions,
            trace: self.trace,
            net: self.net.as_ref().map(|n| n.stats()),
        };
        Ok((result, self.shared, self.threads, self.program))
    }

    /// Executes processor `p` from its current time until it must hand
    /// control back to the event loop.
    fn step_proc<R: Recorder>(
        &mut self,
        p: usize,
        peek: u64,
        rec: &mut R,
    ) -> Result<StepOut, SimError> {
        // Split borrows once for the whole batch.
        let config = &self.config;
        let program = &self.program;
        let shared = &mut self.shared;
        let threads = &mut self.threads;
        let caches = &mut self.caches;
        let traffic = &mut self.traffic;
        let run_lengths = &mut self.run_lengths;
        let counters = &mut self.counters;
        let trace = &mut self.trace;
        let fault = &mut self.fault;
        let net = &mut self.net;
        let cancel = self.cancel.as_deref();
        let proc = &mut self.procs[p];

        #[cfg(feature = "debug-invariants")]
        let mut last_time = proc.time;
        loop {
            #[cfg(feature = "debug-invariants")]
            {
                assert!(
                    proc.time >= last_time,
                    "processor {p} clock ran backwards: {} < {last_time}",
                    proc.time
                );
                last_time = proc.time;
                assert_step_invariants(p, proc, threads, config);
            }
            if proc.time > config.max_cycles {
                return Err(SimError::Watchdog {
                    max_cycles: config.max_cycles,
                    halted_threads: threads.iter().filter(|t| t.halted).count(),
                    total_threads: threads.len(),
                });
            }
            if let Some(token) = cancel {
                if token.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(SimError::Cancelled { cycle: proc.time });
                }
            }

            // Pick a thread if none is running: first runnable in
            // round-robin order.
            if proc.current.is_none() {
                if proc.queue.is_empty() {
                    proc.stats.finish_time = proc.time;
                    return Ok(StepOut::Done);
                }
                let now = proc.time;
                // Round-robin over runnable threads; with priority
                // scheduling enabled, a runnable higher-priority thread
                // (e.g. one inside a critical region) is taken first.
                let pick = if config.priority_scheduling {
                    proc.queue
                        .iter()
                        .enumerate()
                        .filter(|&(_, &t)| threads[t].wake <= now)
                        .max_by_key(|&(i, &t)| (threads[t].prio, std::cmp::Reverse(i)))
                        .map(|(i, _)| i)
                } else {
                    proc.queue.iter().position(|&t| threads[t].wake <= now)
                };
                match pick {
                    Some(i) => {
                        proc.current = proc.queue.remove(i);
                        if R::ENABLED {
                            rec.event(
                                proc.time,
                                p,
                                proc.current.expect("picked"),
                                EventKind::SwitchIn,
                            );
                        }
                    }
                    None => {
                        // `min_by_key` keeps the first of equal wakes, so
                        // the chosen (wake, thread) pair is deterministic
                        // and the wake value matches the former plain
                        // `min()` over wake times.
                        let (wtid, wake) = proc
                            .queue
                            .iter()
                            .map(|&t| (t, threads[t].wake))
                            .min_by_key(|&(_, w)| w)
                            .expect("nonempty");
                        // No lost wakeups: a sleep is only legal when every
                        // resident thread really wakes strictly later.
                        #[cfg(feature = "debug-invariants")]
                        assert!(
                            wake > now,
                            "lost wakeup on processor {p}: thread runnable at {now} but not picked"
                        );
                        // Attribution: the sleep ends when its earliest
                        // thread wakes, so the whole gap is that thread's
                        // wait — memory stall (including fault-retry
                        // backoff, which merely pushes the wake time out),
                        // lock spin, or barrier wait, as tagged when it
                        // yielded. True idle is only end-of-run slack.
                        rec.charge(wtid, threads[wtid].wait, wake - proc.time);
                        proc.stats.idle += wake - proc.time;
                        proc.time = wake;
                        return Ok(StepOut::Reschedule(wake));
                    }
                }
            }
            let tid = proc.current.expect("current thread");
            let pc = threads[tid].pc;
            if pc as usize >= program.len() {
                return Err(SimError::BadProgram {
                    thread: tid,
                    pc: pc as u64,
                    detail: format!(
                        "program counter ran past the end of the code ({} instructions)",
                        program.len()
                    ),
                });
            }
            let inst = *program.inst(pc);

            // Event boundary: shared accesses must execute in global time
            // order. If we have run ahead of the next event, hand control
            // back and resume when we are earliest again.
            if inst.is_shared_access() && proc.time > peek {
                return Ok(StepOut::Reschedule(proc.time));
            }

            // Split-phase scoreboard: reading an in-flight value.
            if !threads[tid].pending.is_empty() {
                let th = &mut threads[tid];
                if proc.time >= th.outstanding {
                    th.reap_all_pending();
                } else {
                    let iu = inst.int_uses();
                    let fu = inst.fp_uses();
                    if let Some(ready) = th.pending_ready_for(proc.time, &iu, &fu) {
                        match config.model {
                            SwitchModel::SwitchOnUse | SwitchModel::SwitchOnUseMiss => {
                                // This *is* the model's switch point.
                                let overhead = if config.model.pays_switch_cost() {
                                    config.switch_cost
                                } else {
                                    0
                                };
                                proc.stats.overhead += overhead;
                                proc.time += overhead;
                                rec.charge(tid, Cat::SwitchOverhead, overhead);
                                yield_thread(
                                    proc,
                                    threads,
                                    tid,
                                    ready,
                                    run_lengths,
                                    counters,
                                    p,
                                    SwitchCause::Use,
                                    rec,
                                );
                                continue;
                            }
                            _ => {
                                // Contract violation (or deliberate use
                                // before switch): stall in place.
                                let wait = ready - proc.time;
                                proc.stats.stall += wait;
                                counters.stalls += wait;
                                rec.charge(tid, Cat::MemoryStall, wait);
                                proc.time = ready;
                            }
                        }
                    }
                }
            }

            // Execute one instruction.
            let outcome = exec(
                config,
                inst,
                p,
                tid,
                &mut threads[tid],
                proc,
                shared,
                caches,
                traffic,
                counters,
                trace,
                fault,
                net,
                rec,
            )?;
            // A spin loop was just proven periodic: if every live thread
            // is in that state (and has seen the latest mutation), nobody
            // can ever write the words they wait on — a real deadlock.
            if counters.spin_confirm {
                counters.spin_confirm = false;
                if let Some(err) =
                    detect_deadlock(threads, config.threads_per_proc, counters.mutations, proc.time)
                {
                    return Err(err);
                }
            }
            match outcome {
                Outcome::Continue => {
                    if config.model == SwitchModel::SwitchEveryCycle {
                        let wake = proc.time;
                        yield_thread(
                            proc,
                            threads,
                            tid,
                            wake,
                            run_lengths,
                            counters,
                            p,
                            SwitchCause::Rotation,
                            rec,
                        );
                    }
                }
                Outcome::Yield { wake, cause } => {
                    if config.model.pays_switch_cost() {
                        proc.stats.overhead += config.switch_cost;
                        proc.time += config.switch_cost;
                        rec.charge(tid, Cat::SwitchOverhead, config.switch_cost);
                    }
                    yield_thread(proc, threads, tid, wake, run_lengths, counters, p, cause, rec);
                }
                Outcome::Halt => {
                    let th = &mut threads[tid];
                    if th.run_cycles > 0 {
                        run_lengths.record(th.run_cycles);
                        rec.sample(Metric::RunLength, th.run_cycles);
                        th.run_cycles = 0;
                    }
                    th.halted = true;
                    proc.current = None;
                    rec.event(proc.time, p, tid, EventKind::Halt);
                }
            }
        }
    }
}

/// Rotates `tid` to the back of the round-robin queue.
#[allow(clippy::too_many_arguments)]
fn yield_thread<R: Recorder>(
    proc: &mut Proc,
    threads: &mut [Thread],
    tid: usize,
    wake: u64,
    run_lengths: &mut RunLengthHist,
    counters: &mut Counters,
    p: usize,
    cause: SwitchCause,
    rec: &mut R,
) {
    let th = &mut threads[tid];
    if th.run_cycles > 0 {
        run_lengths.record(th.run_cycles);
        rec.sample(Metric::RunLength, th.run_cycles);
        th.run_cycles = 0;
    }
    th.wake = wake;
    proc.queue.push_back(tid);
    proc.current = None;
    counters.taken += 1;
    rec.event(proc.time, p, tid, EventKind::SwitchOut { cause });
}

/// Issues a blocking shared read under the configured model.
#[allow(clippy::too_many_arguments)]
fn read_dispatch(
    config: &MachineConfig,
    th: &mut Thread,
    counters: &mut Counters,
    dests: &[(bool, u8)],
    cache_hit: bool,
    oneline_hit: bool,
    reply: u64,
) -> Outcome {
    counters.reads += 1;
    match config.model {
        // Zero-latency rotation: free, and keeps round-robin fairness so
        // same-processor spin loops cannot starve their peers.
        SwitchModel::Ideal => Outcome::Yield { wake: reply, cause: SwitchCause::Load },
        SwitchModel::SwitchEveryCycle | SwitchModel::SwitchOnLoad => {
            Outcome::Yield { wake: reply, cause: SwitchCause::Load }
        }
        SwitchModel::SwitchOnUse => {
            push_pending(th, dests, reply);
            Outcome::Continue
        }
        SwitchModel::ExplicitSwitch => {
            th.group_reads += 1;
            if config.interblock_estimate && oneline_hit {
                // §5.2: this load would have been grouped with the
                // preceding reference — its latency is already covered by
                // the previous group's switch.
                Outcome::Continue
            } else {
                if config.interblock_estimate {
                    th.group_all_oneline = false;
                }
                push_pending(th, dests, reply);
                Outcome::Continue
            }
        }
        SwitchModel::SwitchOnMiss => {
            if cache_hit {
                Outcome::Continue
            } else {
                Outcome::Yield { wake: reply, cause: SwitchCause::Miss }
            }
        }
        SwitchModel::SwitchOnUseMiss => {
            if !cache_hit {
                push_pending(th, dests, reply);
            }
            Outcome::Continue
        }
        SwitchModel::ConditionalSwitch => {
            th.group_reads += 1;
            if !cache_hit {
                th.pending_miss = true;
                push_pending(th, dests, reply);
            }
            Outcome::Continue
        }
    }
}

fn push_pending(th: &mut Thread, dests: &[(bool, u8)], reply: u64) {
    for &(fp, idx) in dests {
        th.pending.push(PendingReg { fp, idx, ready: reply });
        th.issued_entries += 1;
    }
    th.outstanding = th.outstanding.max(reply);
}

/// The `debug-invariants` per-step machine check: run before every
/// instruction of every processor batch. Verifies the thread-state
/// machine, queue integrity, scoreboard-entry sanity, and the
/// issued-vs-retired conservation law for split-phase requests.
#[cfg(feature = "debug-invariants")]
fn assert_step_invariants(p: usize, proc: &Proc, threads: &[Thread], config: &MachineConfig) {
    let lo = p * config.threads_per_proc;
    let hi = lo + config.threads_per_proc;
    for &q in &proc.queue {
        assert!(
            (lo..hi).contains(&q),
            "processor {p} queue holds foreign thread {q} (residents are {lo}..{hi})"
        );
    }
    if let Some(cur) = proc.current {
        assert!((lo..hi).contains(&cur), "processor {p} is running foreign thread {cur}");
    }
    for tid in lo..hi {
        let th = &threads[tid];
        let queued = proc.queue.iter().filter(|&&t| t == tid).count();
        let running = usize::from(proc.current == Some(tid));
        if th.halted {
            assert!(
                queued + running == 0,
                "halted thread {tid} still schedulable on processor {p}"
            );
        } else {
            assert!(
                queued + running == 1,
                "thread {tid} appears {} times in processor {p}'s scheduler (want exactly 1)",
                queued + running
            );
        }
        for pend in &th.pending {
            let limit = if pend.fp { mtsim_isa::FReg::COUNT } else { mtsim_isa::Reg::COUNT };
            assert!(
                (pend.idx as usize) < limit,
                "thread {tid}: pending entry names register {} out of range",
                pend.idx
            );
            assert!(
                pend.fp || pend.idx != 0,
                "thread {tid}: r0 can never carry an in-flight value"
            );
        }
        assert!(
            th.issued_entries == th.reaped_entries + th.pending.len() as u64,
            "thread {tid}: scoreboard conservation broken \
             (issued {} != reaped {} + live {})",
            th.issued_entries,
            th.reaped_entries,
            th.pending.len()
        );
    }
}

/// Executes one instruction, advancing the processor clock.
#[allow(clippy::too_many_arguments)]
fn exec<R: Recorder>(
    config: &MachineConfig,
    inst: Inst,
    p: usize,
    tid: usize,
    th: &mut Thread,
    proc: &mut Proc,
    shared: &mut SharedMemory,
    caches: &mut Option<CoherentCaches>,
    traffic: &mut Traffic,
    counters: &mut Counters,
    trace: &mut Option<Vec<TraceEvent>>,
    fault: &mut Option<FaultPlan>,
    net: &mut Option<Network>,
    rec: &mut R,
) -> Result<Outcome, SimError> {
    let record =
        |trace: &mut Option<Vec<TraceEvent>>, time: u64, kind: TraceKind, addr: u64, spin: bool| {
            if let Some(tr) = trace.as_mut() {
                tr.push(TraceEvent { time, proc: p as u32, thread: tid as u32, kind, addr, spin });
            }
        };
    let t0 = proc.time;
    let pc0 = th.pc;
    let c = cost::cycles(&inst) as u64;
    proc.time += c;
    proc.stats.busy += c;
    th.run_cycles += c;
    counters.instructions += 1;
    rec.charge(tid, Cat::Busy, c);
    let latency = if config.model == SwitchModel::Ideal { 0 } else { config.latency };
    th.pc += 1;

    // Deadlock tracking: an instruction that mutates state outside the
    // spin snapshot's domain (local memory, shared memory, priority)
    // invalidates any periodicity evidence for this thread.
    if matches!(
        inst,
        Inst::Store { .. }
            | Inst::FStore { .. }
            | Inst::StorePair { .. }
            | Inst::FetchAdd { .. }
            | Inst::SetPrio { .. }
    ) {
        if R::ENABLED && th.spin_addr.is_some() {
            rec.event(t0, p, tid, EventKind::SpinEnd);
        }
        th.reset_spin();
    }

    // Overwriting a register kills any in-flight value headed for it.
    if !th.pending.is_empty() {
        if let Some(rd) = inst.int_def() {
            th.kill_pending(false, rd.index() as u8);
        }
        for fd in inst.fp_defs() {
            th.kill_pending(true, fd.index() as u8);
        }
    }

    match inst {
        Inst::Alu { op, rd, rs, rt } => {
            let v = alu(op, th.rget(rs), th.rget(rt));
            th.rset(rd, v);
            Ok(Outcome::Continue)
        }
        Inst::AluI { op, rd, rs, imm } => {
            let v = alu(op, th.rget(rs), imm);
            th.rset(rd, v);
            Ok(Outcome::Continue)
        }
        Inst::Fpu { op, fd, fs, ft } => {
            let a = th.fget(fs);
            let b = th.fget(ft);
            let v = match op {
                FpuOp::Add => a + b,
                FpuOp::Sub => a - b,
                FpuOp::Mul => a * b,
                FpuOp::Div => a / b,
                FpuOp::Min => a.min(b),
                FpuOp::Max => a.max(b),
            };
            th.fset(fd, v);
            Ok(Outcome::Continue)
        }
        Inst::FpuCmp { op, rd, fs, ft } => {
            let a = th.fget(fs);
            let b = th.fget(ft);
            let v = match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
            };
            th.rset(rd, v as i64);
            Ok(Outcome::Continue)
        }
        Inst::FLi { fd, val } => {
            th.fset(fd, val);
            Ok(Outcome::Continue)
        }
        Inst::CvtIF { fd, rs } => {
            th.fset(fd, th.rget(rs) as f64);
            Ok(Outcome::Continue)
        }
        Inst::CvtFI { rd, fs } => {
            th.rset(rd, th.fget(fs) as i64);
            Ok(Outcome::Continue)
        }
        Inst::MovIF { fd, rs } => {
            th.fset(fd, f64::from_bits(th.rget(rs) as u64));
            Ok(Outcome::Continue)
        }
        Inst::MovFI { rd, fs } => {
            th.rset(rd, th.fget(fs).to_bits() as i64);
            Ok(Outcome::Continue)
        }
        Inst::FSqrt { fd, fs } => {
            th.fset(fd, th.fget(fs).sqrt());
            Ok(Outcome::Continue)
        }

        Inst::Load { space: Space::Local, rd, base, offset, .. } => {
            let a = ea_checked(th, tid, pc0, base, offset)?;
            let v = local_read_checked(th, tid, pc0, a)? as i64;
            th.rset(rd, v);
            Ok(Outcome::Continue)
        }
        Inst::Store { space: Space::Local, rs, base, offset, .. } => {
            let a = ea_checked(th, tid, pc0, base, offset)?;
            let v = th.rget(rs) as u64;
            local_write_checked(th, tid, pc0, a, v)?;
            Ok(Outcome::Continue)
        }
        Inst::FLoad { space: Space::Local, fd, base, offset } => {
            let a = ea_checked(th, tid, pc0, base, offset)?;
            let v = f64::from_bits(local_read_checked(th, tid, pc0, a)?);
            th.fset(fd, v);
            Ok(Outcome::Continue)
        }
        Inst::FStore { space: Space::Local, fs, base, offset } => {
            let a = ea_checked(th, tid, pc0, base, offset)?;
            let v = th.fget(fs).to_bits();
            local_write_checked(th, tid, pc0, a, v)?;
            Ok(Outcome::Continue)
        }
        Inst::LoadPair { space: Space::Local, fd1, fd2, base, offset } => {
            let a = ea_checked(th, tid, pc0, base, offset)?;
            let v1 = f64::from_bits(local_read_checked(th, tid, pc0, a)?);
            let v2 = f64::from_bits(local_read_checked(th, tid, pc0, a + 1)?);
            th.fset(fd1, v1);
            th.fset(fd2, v2);
            Ok(Outcome::Continue)
        }
        Inst::StorePair { space: Space::Local, fs1, fs2, base, offset } => {
            let a = ea_checked(th, tid, pc0, base, offset)?;
            let (v1, v2) = (th.fget(fs1).to_bits(), th.fget(fs2).to_bits());
            local_write_checked(th, tid, pc0, a, v1)?;
            local_write_checked(th, tid, pc0, a + 1, v2)?;
            Ok(Outcome::Continue)
        }

        Inst::Load { space: Space::Shared, rd, base, offset, hint } => {
            let addr = ea_checked(th, tid, pc0, base, offset)?;
            let raw = shared
                .try_read(addr)
                .ok_or_else(|| bad_access(tid, pc0, "shared load", addr, shared.len()))?;
            let spin = hint.is_poll();
            // Spin-loop polls re-read one address forever. Counting them as
            // one-line hits would let the §5.2 estimator skip every switch
            // in the loop, and letting them hit the cache would let a
            // spinner monopolize its processor under the cache models —
            // both starve the thread being waited on. Real machines need a
            // non-spinning primitive here (paper footnote 2); we model the
            // poll as always going to memory.
            let oneline_hit = if spin { false } else { th.one_line.access(addr) };
            let cache_hit = if spin {
                traffic.record_load(1, true);
                false
            } else {
                lookup_cache(caches, p, addr, config, traffic, spin)
            };
            record(trace, t0, TraceKind::Read, addr, spin);
            th.rset(rd, raw as i64);
            if R::ENABLED {
                th.wait = match hint {
                    AccessHint::Spin => Cat::LockSpin,
                    AccessHint::Barrier => Cat::BarrierWait,
                    _ => Cat::MemoryStall,
                };
                rec.event(t0, p, tid, EventKind::LoadIssue { addr });
                if spin && th.spin_addr != Some(addr) {
                    let barrier = hint == AccessHint::Barrier;
                    rec.event(t0, p, tid, EventKind::SpinBegin { addr, barrier });
                }
            }
            if spin {
                let mutated = counters.mutations != th.seen_mutations;
                th.seen_mutations = counters.mutations;
                if th.note_spin_poll(addr, raw, t0, mutated) {
                    counters.spin_confirm = true;
                }
            }
            let shape = load_shape(caches.is_some() && !spin, cache_hit, 1, config);
            let q0 = net_queue_cycles::<R>(net);
            let base = net_base(net, latency, t0, p, addr, cache_hit, &shape);
            if R::ENABLED && !cache_hit {
                observe_net_queue(rec, net, q0, t0, p, tid, addr);
            }
            let reply = reply_time(
                fault,
                t0,
                base,
                addr,
                shape,
                spin,
                p,
                tid,
                pc0,
                &mut proc.stats,
                traffic,
                rec,
            )?;
            if R::ENABLED && !cache_hit {
                rec.sample(Metric::LoadLatency, reply - t0);
                rec.event(reply, p, tid, EventKind::LoadReply { addr, latency: reply - t0 });
            }
            let dests = [(false, rd.index() as u8)];
            let dests: &[(bool, u8)] = if rd.is_zero() { &[] } else { &dests };
            Ok(read_dispatch(config, th, counters, dests, cache_hit, oneline_hit, reply))
        }
        Inst::FLoad { space: Space::Shared, fd, base, offset } => {
            let addr = ea_checked(th, tid, pc0, base, offset)?;
            let raw = shared
                .try_read(addr)
                .ok_or_else(|| bad_access(tid, pc0, "shared load", addr, shared.len()))?;
            let oneline_hit = th.one_line.access(addr);
            let cache_hit = lookup_cache(caches, p, addr, config, traffic, false);
            record(trace, t0, TraceKind::Read, addr, false);
            th.fset(fd, f64::from_bits(raw));
            if R::ENABLED {
                th.wait = Cat::MemoryStall;
                rec.event(t0, p, tid, EventKind::LoadIssue { addr });
            }
            let shape = load_shape(caches.is_some(), cache_hit, 1, config);
            let q0 = net_queue_cycles::<R>(net);
            let base = net_base(net, latency, t0, p, addr, cache_hit, &shape);
            if R::ENABLED && !cache_hit {
                observe_net_queue(rec, net, q0, t0, p, tid, addr);
            }
            let reply = reply_time(
                fault,
                t0,
                base,
                addr,
                shape,
                false,
                p,
                tid,
                pc0,
                &mut proc.stats,
                traffic,
                rec,
            )?;
            if R::ENABLED && !cache_hit {
                rec.sample(Metric::LoadLatency, reply - t0);
                rec.event(reply, p, tid, EventKind::LoadReply { addr, latency: reply - t0 });
            }
            let dests = [(true, fd.index() as u8)];
            Ok(read_dispatch(config, th, counters, &dests, cache_hit, oneline_hit, reply))
        }
        Inst::LoadPair { space: Space::Shared, fd1, fd2, base, offset } => {
            let addr = ea_checked(th, tid, pc0, base, offset)?;
            let raw1 = shared
                .try_read(addr)
                .ok_or_else(|| bad_access(tid, pc0, "shared load-pair", addr, shared.len()))?;
            let raw2 = shared
                .try_read(addr + 1)
                .ok_or_else(|| bad_access(tid, pc0, "shared load-pair", addr + 1, shared.len()))?;
            let oneline_hit = th.one_line.access(addr);
            let cache_hit = if let Some(c) = caches.as_mut() {
                let h1 = c.load(p, addr);
                let h2 = c.load(p, addr + 1);
                if !h1 {
                    traffic.record_line_fill(config.cache.line_words, false);
                }
                if !h2 && addr / config.cache.line_words != (addr + 1) / config.cache.line_words {
                    traffic.record_line_fill(config.cache.line_words, false);
                }
                h1 && h2
            } else {
                traffic.record_load(2, false);
                false
            };
            record(trace, t0, TraceKind::ReadPair, addr, false);
            th.fset(fd1, f64::from_bits(raw1));
            th.fset(fd2, f64::from_bits(raw2));
            if R::ENABLED {
                th.wait = Cat::MemoryStall;
                rec.event(t0, p, tid, EventKind::LoadIssue { addr });
            }
            let shape = load_shape(caches.is_some(), cache_hit, 2, config);
            let q0 = net_queue_cycles::<R>(net);
            let base = net_base(net, latency, t0, p, addr, cache_hit, &shape);
            if R::ENABLED && !cache_hit {
                observe_net_queue(rec, net, q0, t0, p, tid, addr);
            }
            let reply = reply_time(
                fault,
                t0,
                base,
                addr,
                shape,
                false,
                p,
                tid,
                pc0,
                &mut proc.stats,
                traffic,
                rec,
            )?;
            if R::ENABLED && !cache_hit {
                rec.sample(Metric::LoadLatency, reply - t0);
                rec.event(reply, p, tid, EventKind::LoadReply { addr, latency: reply - t0 });
            }
            let dests = [(true, fd1.index() as u8), (true, fd2.index() as u8)];
            Ok(read_dispatch(config, th, counters, &dests, cache_hit, oneline_hit, reply))
        }
        Inst::FetchAdd { rd, rs, base, offset, hint } => {
            let addr = ea_checked(th, tid, pc0, base, offset)?;
            let spin = hint == AccessHint::Spin;
            let inc = th.rget(rs);
            let old = shared
                .try_fetch_add(addr, inc)
                .ok_or_else(|| bad_access(tid, pc0, "fetch-and-add", addr, shared.len()))?
                as i64;
            counters.mutations += 1;
            traffic.record_fetch_add(spin);
            if let Some(c) = caches.as_mut() {
                let inv = c.store(p, addr);
                traffic.record_invalidations(inv);
            }
            record(trace, t0, TraceKind::FetchAdd, addr, spin);
            th.rset(rd, old);
            let shape = MsgShape {
                req: MsgClass::FetchAddReq,
                req_words: 1,
                reply: MsgClass::FetchAddReply,
                reply_words: 1,
            };
            // Every F&A crosses the network (even fire-and-forget ones):
            // it occupies links and, under combining, can merge with or
            // open a combining window for concurrent same-address adds.
            let q0 = net_queue_cycles::<R>(net);
            let fa0 =
                if R::ENABLED { net.as_ref().map_or(0, |n| n.stats().fa_combined) } else { 0 };
            let fa_base = net
                .as_mut()
                .map(|n| n.fetch_add(t0, p, addr, shape.req_bits(), shape.reply_bits()) - t0);
            if R::ENABLED {
                th.wait = if hint == AccessHint::Spin { Cat::LockSpin } else { Cat::MemoryStall };
                let combined = net.as_ref().is_some_and(|n| n.stats().fa_combined > fa0);
                rec.event(t0, p, tid, EventKind::FetchAdd { addr, combined });
                if hint == AccessHint::Release {
                    rec.event(t0, p, tid, EventKind::BarrierArrive { addr });
                }
                observe_net_queue(rec, net, q0, t0, p, tid, addr);
            }
            if rd.is_zero() {
                // Fire-and-forget arrival (barrier-style): no reply is
                // awaited, so there is nothing for fault injection to drop
                // that anyone waits on.
                Ok(match config.model {
                    SwitchModel::SwitchEveryCycle => {
                        Outcome::Yield { wake: proc.time, cause: SwitchCause::Rotation }
                    }
                    _ => Outcome::Continue,
                })
            } else {
                let reply = reply_time(
                    fault,
                    t0,
                    fa_base.unwrap_or(latency),
                    addr,
                    shape,
                    spin,
                    p,
                    tid,
                    pc0,
                    &mut proc.stats,
                    traffic,
                    rec,
                )?;
                if R::ENABLED {
                    rec.sample(Metric::LoadLatency, reply - t0);
                    rec.event(reply, p, tid, EventKind::LoadReply { addr, latency: reply - t0 });
                }
                let dests = [(false, rd.index() as u8)];
                // Fetch-and-add always goes to memory: never a cache hit.
                Ok(read_dispatch(config, th, counters, &dests, false, false, reply))
            }
        }

        Inst::Store { space: Space::Shared, rs, base, offset, hint } => {
            let addr = ea_checked(th, tid, pc0, base, offset)?;
            let spin = hint == AccessHint::Spin;
            let v = th.rget(rs) as u64;
            shared
                .try_write(addr, v)
                .ok_or_else(|| bad_access(tid, pc0, "shared store", addr, shared.len()))?;
            counters.mutations += 1;
            shared_store(config, net, t0, p, addr, caches, traffic, spin, 1, tid, rec);
            record(trace, t0, TraceKind::Write, addr, spin);
            if R::ENABLED && hint == AccessHint::Release {
                rec.event(t0, p, tid, EventKind::BarrierRelease { addr });
            }
            Ok(store_outcome(config, proc))
        }
        Inst::FStore { space: Space::Shared, fs, base, offset } => {
            let addr = ea_checked(th, tid, pc0, base, offset)?;
            let v = th.fget(fs).to_bits();
            shared
                .try_write(addr, v)
                .ok_or_else(|| bad_access(tid, pc0, "shared store", addr, shared.len()))?;
            counters.mutations += 1;
            shared_store(config, net, t0, p, addr, caches, traffic, false, 1, tid, rec);
            record(trace, t0, TraceKind::Write, addr, false);
            Ok(store_outcome(config, proc))
        }
        Inst::StorePair { space: Space::Shared, fs1, fs2, base, offset } => {
            let addr = ea_checked(th, tid, pc0, base, offset)?;
            let (v1, v2) = (th.fget(fs1).to_bits(), th.fget(fs2).to_bits());
            shared
                .try_write(addr, v1)
                .ok_or_else(|| bad_access(tid, pc0, "shared store-pair", addr, shared.len()))?;
            shared
                .try_write(addr + 1, v2)
                .ok_or_else(|| bad_access(tid, pc0, "shared store-pair", addr + 1, shared.len()))?;
            counters.mutations += 1;
            record(trace, t0, TraceKind::WritePair, addr, false);
            shared_store(config, net, t0, p, addr, caches, traffic, false, 2, tid, rec);
            if let Some(c) = caches.as_mut() {
                if addr / config.cache.line_words != (addr + 1) / config.cache.line_words {
                    let inv = c.store(p, addr + 1);
                    traffic.record_invalidations(inv);
                }
            }
            Ok(store_outcome(config, proc))
        }

        Inst::Branch { cond, rs, rt, target } => {
            let a = th.rget(rs);
            let b = th.rget(rt);
            let take = match cond {
                BCond::Eq => a == b,
                BCond::Ne => a != b,
                BCond::Lt => a < b,
                BCond::Le => a <= b,
                BCond::Gt => a > b,
                BCond::Ge => a >= b,
            };
            if take {
                th.pc = target.pc();
            }
            Ok(Outcome::Continue)
        }
        Inst::Jump { target } => {
            th.pc = target.pc();
            Ok(Outcome::Continue)
        }
        Inst::SetPrio { level } => {
            th.prio = level;
            Ok(Outcome::Continue)
        }
        Inst::Switch => Ok(switch_outcome(config, th, proc, counters)),
        Inst::Halt => Ok(Outcome::Halt),
        Inst::Nop => Ok(Outcome::Continue),
    }
}

/// `BadProgram` for a wild memory access.
fn bad_access(tid: usize, pc: Pc, what: &str, addr: u64, len: u64) -> SimError {
    SimError::BadProgram {
        thread: tid,
        pc: pc as u64,
        detail: format!("{what} out of range: word {addr} >= {len}"),
    }
}

/// Effective-address computation that turns a negative address into
/// `BadProgram` instead of wrapping or panicking.
fn ea_checked(
    th: &Thread,
    tid: usize,
    pc: Pc,
    base: mtsim_isa::Reg,
    offset: i64,
) -> Result<u64, SimError> {
    th.try_ea(base, offset).ok_or_else(|| SimError::BadProgram {
        thread: tid,
        pc: pc as u64,
        detail: format!(
            "negative effective address {} ({base} + {offset})",
            th.rget(base).wrapping_add(offset)
        ),
    })
}

/// Checked local-memory load.
fn local_read_checked(th: &Thread, tid: usize, pc: Pc, addr: u64) -> Result<u64, SimError> {
    th.try_local_read(addr)
        .ok_or_else(|| bad_access(tid, pc, "local load", addr, th.local.len() as u64))
}

/// Checked local-memory store.
fn local_write_checked(
    th: &mut Thread,
    tid: usize,
    pc: Pc,
    addr: u64,
    v: u64,
) -> Result<(), SimError> {
    let len = th.local.len() as u64;
    th.try_local_write(addr, v).ok_or_else(|| bad_access(tid, pc, "local store", addr, len))
}

/// The request/reply message pair one shared access puts on the wire —
/// drives both fault-recovery traffic accounting (resends and duplicates
/// are billed as the *real* messages, not generic word loads) and network
/// serialization delays.
#[derive(Debug, Clone, Copy)]
struct MsgShape {
    req: MsgClass,
    req_words: u64,
    reply: MsgClass,
    reply_words: u64,
}

impl MsgShape {
    fn req_bits(&self) -> u64 {
        message_bits(self.req, self.req_words)
    }

    fn reply_bits(&self) -> u64 {
        message_bits(self.reply, self.reply_words)
    }
}

/// Message shape of a shared read of `words` words: a cache miss fetches
/// a whole line; everything else (no caches, spin polls, and hits — whose
/// reply is served locally and unused) is a plain word-load pair.
fn load_shape(cached: bool, cache_hit: bool, words: u64, config: &MachineConfig) -> MsgShape {
    if cached && !cache_hit {
        MsgShape {
            req: MsgClass::LineReq,
            req_words: 0,
            reply: MsgClass::LineReply,
            reply_words: config.cache.line_words,
        }
    } else {
        MsgShape {
            req: MsgClass::LoadReq,
            req_words: 0,
            reply: MsgClass::LoadReply,
            reply_words: words,
        }
    }
}

/// Base (fault-free) reply latency of one shared access: a modeled
/// network round trip when a contention topology is active and the
/// access really goes to memory, otherwise the configured constant.
/// Cache hits are served locally and never touch the network.
fn net_base(
    net: &mut Option<Network>,
    constant: u64,
    t0: u64,
    p: usize,
    addr: u64,
    cache_hit: bool,
    shape: &MsgShape,
) -> u64 {
    match net.as_mut() {
        Some(n) if !cache_hit => {
            n.round_trip(t0, p, addr, shape.req_bits(), shape.reply_bits()) - t0
        }
        _ => constant,
    }
}

/// Computes the reply time of one reply-bearing shared request, running
/// the retry protocol when fault injection is active. Faults are timing
/// and traffic events only: the value was already taken from shared memory
/// in global order, so a request that survives its retries observes
/// exactly what a fault-free run would have.
#[allow(clippy::too_many_arguments)]
fn reply_time<R: Recorder>(
    fault: &mut Option<FaultPlan>,
    t0: u64,
    latency: u64,
    addr: u64,
    shape: MsgShape,
    spin: bool,
    p: usize,
    tid: usize,
    pc: Pc,
    stats: &mut ProcStats,
    traffic: &mut Traffic,
    rec: &mut R,
) -> Result<u64, SimError> {
    let Some(plan) = fault.as_mut() else {
        return Ok(t0 + latency);
    };
    match plan.request(latency) {
        Ok(out) => {
            if out.retries > 0 || out.timeouts > 0 || out.duplicates > 0 {
                traffic.record_fault_recovery(
                    out.retries,
                    out.timeouts,
                    out.duplicates,
                    shape.req,
                    shape.req_words,
                    shape.reply,
                    shape.reply_words,
                    spin,
                );
            }
            if R::ENABLED && (out.retries > 0 || out.timeouts > 0) {
                rec.event(
                    t0,
                    p,
                    tid,
                    EventKind::FaultRetry {
                        addr,
                        retries: out.retries as u64,
                        timeouts: out.timeouts as u64,
                    },
                );
            }
            stats.retries += out.retries as u64;
            stats.timeouts += out.timeouts as u64;
            stats.fault_wait += out.delay.saturating_sub(latency);
            Ok(t0 + out.delay)
        }
        Err(e) => Err(SimError::Fault {
            proc: p,
            thread: tid,
            pc: pc as u64,
            addr,
            attempts: e.attempts,
            cycle: t0 + e.wasted,
        }),
    }
}

/// Machine-wide deadlock scan, run the moment some thread's spin loop is
/// proven periodic. Deadlock is declared only when **every** live thread
/// holds a periodicity proof that is current (`seen_mutations` equals the
/// global count — no shared write landed after the proof): then no live
/// thread can ever store, fetch-add, or halt, so the words being waited on
/// are frozen forever.
fn detect_deadlock(
    threads: &[Thread],
    threads_per_proc: usize,
    mutations: u64,
    now: u64,
) -> Option<SimError> {
    let mut waiters = Vec::new();
    let mut halted = 0usize;
    for (i, th) in threads.iter().enumerate() {
        if th.halted {
            halted += 1;
            continue;
        }
        if !th.spin_blocked() || th.seen_mutations != mutations {
            return None;
        }
        waiters.push(DeadlockWaiter {
            thread: i,
            proc: i / threads_per_proc,
            addr: th.spin_addr.unwrap_or(0),
            value: th.last_poll_value,
        });
    }
    if waiters.is_empty() {
        return None;
    }
    Some(SimError::Deadlock { cycle: now, halted_threads: halted, waiters })
}

fn alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
        AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
        AluOp::Sra => a >> (b as u64 & 63),
        AluOp::Slt => (a < b) as i64,
        AluOp::Sle => (a <= b) as i64,
        AluOp::Seq => (a == b) as i64,
        AluOp::Sne => (a != b) as i64,
    }
}

/// Cache lookup + fill traffic for a single-word shared load. Returns the
/// hit flag (always `false` without caches, where the plain load messages
/// are recorded instead).
fn lookup_cache(
    caches: &mut Option<CoherentCaches>,
    p: usize,
    addr: u64,
    config: &MachineConfig,
    traffic: &mut Traffic,
    spin: bool,
) -> bool {
    match caches.as_mut() {
        Some(c) => {
            let hit = c.load(p, addr);
            if !hit {
                traffic.record_line_fill(config.cache.line_words, spin);
            }
            hit
        }
        None => {
            traffic.record_load(1, spin);
            false
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn shared_store<R: Recorder>(
    config: &MachineConfig,
    net: &mut Option<Network>,
    t0: u64,
    p: usize,
    addr: u64,
    caches: &mut Option<CoherentCaches>,
    traffic: &mut Traffic,
    spin: bool,
    words: u64,
    tid: usize,
    rec: &mut R,
) {
    let _ = config;
    traffic.record_store(words, spin);
    rec.event(t0, p, tid, EventKind::StoreIssue { addr });
    // Stores are write-through and acknowledged but never waited on:
    // the round trip still occupies network links (driving up queueing
    // for the loads behind it) even though its completion time is moot.
    let q0 = net_queue_cycles::<R>(net);
    if let Some(n) = net.as_mut() {
        n.round_trip(
            t0,
            p,
            addr,
            message_bits(MsgClass::Store, words),
            message_bits(MsgClass::StoreAck, 0),
        );
    }
    if R::ENABLED {
        observe_net_queue(rec, net, q0, t0, p, tid, addr);
    }
    if let Some(c) = caches.as_mut() {
        let inv = c.store(p, addr);
        traffic.record_invalidations(inv);
    }
}

/// The network's cumulative queue-residency counter, read only when a real
/// recorder is attached (the delta across one send is that message's
/// residency).
#[inline]
fn net_queue_cycles<R: Recorder>(net: &Option<Network>) -> u64 {
    if R::ENABLED {
        net.as_ref().map_or(0, |n| n.stats().queue_cycles)
    } else {
        0
    }
}

/// Emits the queue-residency events and sample for one network message
/// sent since `before` was read. The engine observes queueing at message
/// granularity (the modeled network reports residency per round trip, not
/// per hop), so one enqueue/dequeue pair stands for the whole trip.
fn observe_net_queue<R: Recorder>(
    rec: &mut R,
    net: &Option<Network>,
    before: u64,
    t0: u64,
    p: usize,
    tid: usize,
    addr: u64,
) {
    if let Some(n) = net.as_ref() {
        let queued = n.stats().queue_cycles - before;
        rec.sample(Metric::QueueResidency, queued);
        rec.event(t0, p, tid, EventKind::NetEnqueue { addr, queued });
        rec.event(t0 + queued, p, tid, EventKind::NetDequeue { addr });
    }
}

fn store_outcome(config: &MachineConfig, proc: &Proc) -> Outcome {
    match config.model {
        SwitchModel::SwitchEveryCycle => {
            Outcome::Yield { wake: proc.time, cause: SwitchCause::Rotation }
        }
        _ => Outcome::Continue,
    }
}

fn switch_outcome(
    config: &MachineConfig,
    th: &mut Thread,
    proc: &Proc,
    counters: &mut Counters,
) -> Outcome {
    match config.model {
        SwitchModel::ExplicitSwitch => {
            if config.interblock_estimate && th.group_reads > 0 && th.group_all_oneline {
                counters.skipped += 1;
                th.clear_group();
                th.outstanding = 0;
                return Outcome::Continue;
            }
            let wake = th.outstanding.max(proc.time);
            th.clear_group();
            th.outstanding = 0;
            Outcome::Yield { wake, cause: SwitchCause::Explicit }
        }
        SwitchModel::ConditionalSwitch => {
            if th.pending_miss {
                let wake = th.outstanding.max(proc.time);
                th.clear_group();
                th.outstanding = 0;
                Outcome::Yield { wake, cause: SwitchCause::Explicit }
            } else if config.max_run.is_some_and(|m| th.run_cycles >= m) {
                counters.forced += 1;
                th.clear_group();
                th.outstanding = 0;
                Outcome::Yield { wake: proc.time, cause: SwitchCause::Forced }
            } else {
                counters.skipped += 1;
                th.clear_group();
                th.outstanding = 0;
                Outcome::Continue
            }
        }
        // Under every other model the switch instruction is an ordinary
        // 1-cycle instruction (the every-cycle model rotates regardless).
        _ => Outcome::Continue,
    }
}
