//! Trace-driven cache-geometry sweeps.

use mtsim_mem::{CacheParams, CacheStats, CoherentCaches, TraceEvent};

/// The outcome of replaying a trace against one cache geometry.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The geometry.
    pub params: CacheParams,
    /// Aggregate hit/miss/invalidation statistics.
    pub stats: CacheStats,
    /// Estimated network bits for the cached run: line fills for misses,
    /// write-through stores, invalidations (spin events excluded, as in
    /// the paper's accounting).
    pub estimated_bits: u64,
}

impl SweepPoint {
    /// Estimated bits/cycle/processor given the original run's wall-clock.
    pub fn bits_per_cycle(&self, cycles: u64, processors: u64) -> f64 {
        if cycles == 0 || processors == 0 {
            0.0
        } else {
            self.estimated_bits as f64 / cycles as f64 / processors as f64
        }
    }
}

/// Replays a shared-access trace against any number of cache geometries —
/// the cheap way to answer "would a bigger cache have rescued mp3d?"
/// without re-simulating the program.
///
/// The replay applies the same policy as the engine's cache models:
/// write-through, no-write-allocate, full-map directory invalidation,
/// fetch-and-add bypassing the cache, spin accesses going to memory.
#[derive(Debug)]
pub struct CacheSweep<'a> {
    events: &'a [TraceEvent],
    processors: usize,
}

impl<'a> CacheSweep<'a> {
    /// Creates a sweep over `events` for a machine with `processors`
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if an event names a processor `>= processors`.
    pub fn new(events: &'a [TraceEvent], processors: usize) -> CacheSweep<'a> {
        assert!(
            events.iter().all(|e| (e.proc as usize) < processors),
            "trace references a processor outside 0..{processors}"
        );
        CacheSweep { events, processors }
    }

    /// Replays the trace against one geometry.
    pub fn run(&self, params: CacheParams) -> SweepPoint {
        use mtsim_mem::{ADDR_BITS, HDR_BITS, WORD_BITS};
        let mut caches = CoherentCaches::new(self.processors, params);
        let mut bits: u64 = 0;
        for e in self.events {
            let p = e.proc as usize;
            if e.spin {
                // Spin polls bypass the cache (engine policy) and are
                // excluded from the paper-style bandwidth accounting.
                continue;
            }
            match e.kind {
                mtsim_mem::TraceKind::Read | mtsim_mem::TraceKind::ReadPair => {
                    let words = e.kind.words();
                    let mut any_miss = false;
                    for w in 0..words {
                        if !caches.load(p, e.addr + w) {
                            any_miss = true;
                        }
                    }
                    if any_miss {
                        bits += (HDR_BITS + ADDR_BITS) + (HDR_BITS + params.line_words * WORD_BITS);
                    }
                }
                mtsim_mem::TraceKind::Write | mtsim_mem::TraceKind::WritePair => {
                    let words = e.kind.words();
                    let mut inval = 0;
                    for w in 0..words {
                        inval += caches.store(p, e.addr + w);
                    }
                    bits += (HDR_BITS + ADDR_BITS + words * WORD_BITS) + HDR_BITS;
                    bits += inval * (HDR_BITS + ADDR_BITS);
                }
                mtsim_mem::TraceKind::FetchAdd => {
                    let inval = caches.store(p, e.addr);
                    bits += (HDR_BITS + ADDR_BITS + WORD_BITS) + (HDR_BITS + WORD_BITS);
                    bits += inval * (HDR_BITS + ADDR_BITS);
                }
            }
        }
        SweepPoint { params, stats: caches.total_stats(), estimated_bits: bits }
    }

    /// Replays every geometry in `grid`.
    pub fn run_all(&self, grid: &[CacheParams]) -> Vec<SweepPoint> {
        grid.iter().map(|&p| self.run(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_mem::TraceKind;

    fn ev(proc: u32, kind: TraceKind, addr: u64) -> TraceEvent {
        TraceEvent { time: 0, proc, thread: proc, kind, addr, spin: false }
    }

    #[test]
    fn bigger_caches_hit_more_on_looping_traces() {
        // Two passes over 64 addresses: a 16-word cache thrashes, a
        // 256-word cache hits the whole second pass.
        let mut events = Vec::new();
        for _ in 0..2 {
            for a in 0..64 {
                events.push(ev(0, TraceKind::Read, a));
            }
        }
        let sweep = CacheSweep::new(&events, 1);
        let small = sweep.run(CacheParams { lines: 4, line_words: 4 });
        let large = sweep.run(CacheParams { lines: 64, line_words: 4 });
        assert!(large.stats.hit_rate() > small.stats.hit_rate());
        assert!(large.estimated_bits < small.estimated_bits);
        // Second pass all-hit: 64 misses (first pass, 4-word lines -> 16
        // fills... wait, line_words=4 means 16 fills per pass of 64 words).
        assert_eq!(large.stats.misses, 16);
        assert_eq!(large.stats.hits, 128 - 16);
    }

    #[test]
    fn stores_invalidate_across_processors_in_replay() {
        let events = vec![
            ev(0, TraceKind::Read, 8),
            ev(1, TraceKind::Read, 8),
            ev(0, TraceKind::Write, 8),
            ev(1, TraceKind::Read, 8), // must miss again
        ];
        let sweep = CacheSweep::new(&events, 2);
        let pt = sweep.run(CacheParams::default());
        assert_eq!(pt.stats.invalidations_received, 1);
        assert_eq!(pt.stats.misses, 3);
    }

    #[test]
    fn spin_events_are_ignored() {
        let events = vec![TraceEvent {
            time: 0,
            proc: 0,
            thread: 0,
            kind: TraceKind::Read,
            addr: 1,
            spin: true,
        }];
        let pt = CacheSweep::new(&events, 1).run(CacheParams::default());
        assert_eq!(pt.stats.hits + pt.stats.misses, 0);
        assert_eq!(pt.estimated_bits, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_processor() {
        let events = vec![ev(5, TraceKind::Read, 0)];
        let _ = CacheSweep::new(&events, 2);
    }
}
