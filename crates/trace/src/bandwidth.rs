//! Windowed bandwidth profiles: quantifying §6.1's burstiness warning.

use mtsim_mem::TraceEvent;

/// Bits-per-cycle demand over fixed windows of the run, from a trace.
///
/// The paper reports only run-average bandwidth and cautions that "in
/// reality the channels might need to be wider than this because traffic
/// will be bursty and have periods of higher bandwidth requirements";
/// the profile's `peak/mean` ratio is that burstiness, quantified.
#[derive(Debug, Clone)]
pub struct BandwidthProfile {
    window: u64,
    processors: u64,
    /// Total non-spin bits per window.
    bits: Vec<u64>,
}

impl BandwidthProfile {
    /// Builds the profile with the given window size (cycles).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `processors == 0`.
    pub fn new(events: &[TraceEvent], window: u64, processors: u64) -> BandwidthProfile {
        assert!(window > 0, "window must be positive");
        assert!(processors > 0, "need at least one processor");
        let end = events.iter().map(|e| e.time).max().unwrap_or(0);
        let nwin = (end / window + 1) as usize;
        let mut bits = vec![0u64; nwin];
        for e in events {
            if !e.spin {
                bits[(e.time / window) as usize] += e.kind.bits();
            }
        }
        BandwidthProfile { window, processors, bits }
    }

    /// Window size in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// Per-window bits/cycle/processor series.
    pub fn series(&self) -> impl Iterator<Item = f64> + '_ {
        self.bits.iter().map(move |&b| b as f64 / self.window as f64 / self.processors as f64)
    }

    /// Mean demand over the whole run.
    pub fn mean_bits_per_cycle(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        let total: u64 = self.bits.iter().sum();
        total as f64 / (self.bits.len() as u64 * self.window) as f64 / self.processors as f64
    }

    /// Demand of the busiest window.
    pub fn peak_bits_per_cycle(&self) -> f64 {
        self.series().fold(0.0, f64::max)
    }

    /// Burstiness: peak/mean (1.0 = perfectly smooth; 0.0 for an empty
    /// trace).
    pub fn burstiness(&self) -> f64 {
        let mean = self.mean_bits_per_cycle();
        if mean == 0.0 {
            0.0
        } else {
            self.peak_bits_per_cycle() / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_mem::TraceKind;

    fn ev(time: u64, spin: bool) -> TraceEvent {
        TraceEvent { time, proc: 0, thread: 0, kind: TraceKind::Read, addr: 0, spin }
    }

    #[test]
    fn windows_partition_time() {
        let events = vec![ev(0, false), ev(99, false), ev(100, false)];
        let p = BandwidthProfile::new(&events, 100, 1);
        assert_eq!(p.len(), 2);
        let series: Vec<f64> = p.series().collect();
        assert!(series[0] > series[1]);
    }

    #[test]
    fn burstiness_of_a_front_loaded_trace() {
        // All traffic in the first of ten windows: peak = 10x mean.
        let events: Vec<_> = (0..10).map(|k| ev(k, false)).chain([ev(999, false)]).collect();
        let p = BandwidthProfile::new(&events, 100, 1);
        assert_eq!(p.len(), 10);
        assert!(p.burstiness() > 5.0, "burstiness {}", p.burstiness());
    }

    #[test]
    fn spin_is_excluded() {
        let events = vec![ev(0, true), ev(1, true)];
        let p = BandwidthProfile::new(&events, 10, 1);
        assert!(p.is_empty());
        assert_eq!(p.burstiness(), 0.0);
    }

    #[test]
    fn smooth_traffic_has_low_burstiness() {
        let events: Vec<_> = (0..1000).map(|k| ev(k, false)).collect();
        let p = BandwidthProfile::new(&events, 100, 1);
        assert!((p.burstiness() - 1.0).abs() < 0.05, "{}", p.burstiness());
    }
}
