//! Locality characterization: per-thread stride and reuse-time profiles.
//!
//! These explain the paper's cache results mechanically: blkmat's unit
//! strides cache perfectly, mp3d's scattered cell updates do not.

use mtsim_mem::TraceEvent;
use std::collections::HashMap;

/// Distribution of address deltas between a thread's consecutive shared
/// accesses, bucketed as 0 (same word), ±1, small (|d| ≤ 8), medium
/// (|d| ≤ 256), large.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrideHistogram {
    /// Repeats of the same address.
    pub same: u64,
    /// Unit strides (±1 word).
    pub unit: u64,
    /// |delta| in 2..=8 words.
    pub small: u64,
    /// |delta| in 9..=256 words.
    pub medium: u64,
    /// |delta| beyond 256 words.
    pub large: u64,
}

impl StrideHistogram {
    /// Total transitions observed.
    pub fn total(&self) -> u64 {
        self.same + self.unit + self.small + self.medium + self.large
    }

    /// Fraction of transitions within a cache-line-friendly distance
    /// (same/unit/small).
    pub fn local_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.same + self.unit + self.small) as f64 / t as f64
        }
    }
}

/// Builds the per-thread stride histogram over all non-spin accesses.
pub fn stride_histogram(events: &[TraceEvent]) -> StrideHistogram {
    let mut last: HashMap<u32, u64> = HashMap::new();
    let mut h = StrideHistogram::default();
    for e in events.iter().filter(|e| !e.spin) {
        if let Some(prev) = last.insert(e.thread, e.addr) {
            let d = e.addr.abs_diff(prev);
            match d {
                0 => h.same += 1,
                1 => h.unit += 1,
                2..=8 => h.small += 1,
                9..=256 => h.medium += 1,
                _ => h.large += 1,
            }
        }
    }
    h
}

/// Reuse-time profile: for every re-access of an address, how many cycles
/// passed since the previous access (log₂ buckets).
#[derive(Debug, Clone, Default)]
pub struct ReuseProfile {
    /// `buckets[k]` counts reuses with `2^k <= dt < 2^(k+1)` (bucket 0 is
    /// `dt <= 1`); capped at bucket 20.
    pub buckets: [u64; 21],
    /// Accesses to never-before-seen addresses.
    pub cold: u64,
}

impl ReuseProfile {
    /// Total re-accesses.
    pub fn reuses(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of reuses within `dt <= horizon` cycles (a proxy for how
    /// much a cache with a given effective retention helps).
    pub fn fraction_within(&self, horizon: u64) -> f64 {
        let total = self.reuses();
        if total == 0 {
            return 0.0;
        }
        let cap = if horizon <= 1 { 0 } else { (64 - (horizon - 1).leading_zeros()) as usize };
        let within: u64 = self.buckets.iter().take(cap.min(20) + 1).sum();
        within as f64 / total as f64
    }
}

/// Builds the reuse-time profile over all non-spin accesses (all threads,
/// since the cache is per-processor and shared among its threads).
pub fn reuse_profile(events: &[TraceEvent]) -> ReuseProfile {
    let mut last: HashMap<u64, u64> = HashMap::new();
    let mut p = ReuseProfile::default();
    for e in events.iter().filter(|e| !e.spin) {
        match last.insert(e.addr, e.time) {
            Some(prev) => {
                let dt = e.time.saturating_sub(prev);
                let b = if dt <= 1 { 0 } else { (64 - (dt - 1).leading_zeros()) as usize };
                p.buckets[b.min(20)] += 1;
            }
            None => p.cold += 1,
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_mem::TraceKind;

    fn ev(thread: u32, time: u64, addr: u64) -> TraceEvent {
        TraceEvent { time, proc: 0, thread, kind: TraceKind::Read, addr, spin: false }
    }

    #[test]
    fn strides_are_per_thread() {
        // Thread 0 walks sequentially; thread 1 interleaves far away.
        let events = vec![ev(0, 0, 10), ev(1, 1, 5000), ev(0, 2, 11), ev(1, 3, 5001)];
        let h = stride_histogram(&events);
        assert_eq!(h.unit, 2);
        assert_eq!(h.large, 0);
        assert!((h.local_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_access_is_nonlocal() {
        let events: Vec<_> = (0..64).map(|k| ev(0, k, (k * 7919) % 4096)).collect();
        let h = stride_histogram(&events);
        assert!(h.local_fraction() < 0.3, "{h:?}");
    }

    #[test]
    fn reuse_profile_counts_cold_and_reuse() {
        let events = vec![ev(0, 0, 1), ev(0, 50, 2), ev(0, 100, 1)];
        let p = reuse_profile(&events);
        assert_eq!(p.cold, 2);
        assert_eq!(p.reuses(), 1);
        assert!(p.fraction_within(128) > 0.99);
        assert_eq!(p.fraction_within(2), 0.0);
    }
}
