//! Plain-text trace interchange: one event per line,
//! `time proc thread kind addr [spin]`.

use mtsim_mem::{TraceEvent, TraceKind};

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFormatError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceFormatError {}

fn kind_name(k: TraceKind) -> &'static str {
    match k {
        TraceKind::Read => "r",
        TraceKind::Write => "w",
        TraceKind::ReadPair => "rp",
        TraceKind::WritePair => "wp",
        TraceKind::FetchAdd => "fa",
    }
}

fn kind_parse(s: &str) -> Option<TraceKind> {
    Some(match s {
        "r" => TraceKind::Read,
        "w" => TraceKind::Write,
        "rp" => TraceKind::ReadPair,
        "wp" => TraceKind::WritePair,
        "fa" => TraceKind::FetchAdd,
        _ => return None,
    })
}

/// Serializes a trace to the text format.
pub fn save_trace(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 24);
    for e in events {
        let _ = write!(out, "{} {} {} {} {}", e.time, e.proc, e.thread, kind_name(e.kind), e.addr);
        if e.spin {
            out.push_str(" spin");
        }
        out.push('\n');
    }
    out
}

/// Parses the text format back into events. Blank lines and `#` comments
/// are ignored.
///
/// # Errors
///
/// Returns the first malformed line.
pub fn load_trace(text: &str) -> Result<Vec<TraceEvent>, TraceFormatError> {
    let mut events = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let s = raw.split('#').next().unwrap_or("").trim();
        if s.is_empty() {
            continue;
        }
        let err = |message: String| TraceFormatError { line, message };
        let fields: Vec<&str> = s.split_whitespace().collect();
        if fields.len() < 5 || fields.len() > 6 {
            return Err(err(format!("expected 5-6 fields, found {}", fields.len())));
        }
        let parse_u64 = |f: &str| f.parse::<u64>().map_err(|_| err(format!("bad number '{f}'")));
        // Ids are u32 in `TraceEvent`; parsing them as u64 and truncating
        // would silently alias ids >= 2^32, so reject them instead.
        let parse_u32 = |f: &str| f.parse::<u32>().map_err(|_| err(format!("bad id '{f}'")));
        let time = parse_u64(fields[0])?;
        let proc = parse_u32(fields[1])?;
        let thread = parse_u32(fields[2])?;
        let kind = kind_parse(fields[3]).ok_or_else(|| err(format!("bad kind '{}'", fields[3])))?;
        let addr = parse_u64(fields[4])?;
        let spin = match fields.get(5) {
            None => false,
            Some(&"spin") => true,
            Some(other) => return Err(err(format!("bad flag '{other}'"))),
        };
        events.push(TraceEvent { time, proc, thread, kind, addr, spin });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let events = vec![
            TraceEvent {
                time: 0,
                proc: 1,
                thread: 3,
                kind: TraceKind::Read,
                addr: 42,
                spin: false,
            },
            TraceEvent {
                time: 7,
                proc: 0,
                thread: 0,
                kind: TraceKind::WritePair,
                addr: 8,
                spin: false,
            },
            TraceEvent {
                time: 9,
                proc: 2,
                thread: 5,
                kind: TraceKind::FetchAdd,
                addr: 0,
                spin: true,
            },
        ];
        let text = save_trace(&events);
        assert_eq!(load_trace(&text).unwrap(), events);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n1 0 0 r 5\n";
        assert_eq!(load_trace(text).unwrap().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = load_trace("1 0 0 r 5\n1 0 0 zz 5\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("zz"));
    }
}
