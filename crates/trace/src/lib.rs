//! # mtsim-trace
//!
//! Offline analysis of shared-access traces recorded by the engine
//! (`MachineConfig::collect_trace`). The paper's methodology is
//! trace-based (§3: "we use trace analysis to determine this
//! information"); this crate packages the analyses the evaluation needs:
//!
//! * [`CacheSweep`] — replay the trace against many cache geometries at
//!   once, without re-running the program (backs the cache-geometry
//!   ablation; the paper leaves its geometry unspecified, see DESIGN.md);
//! * [`BandwidthProfile`] — windowed bits/cycle, quantifying the
//!   *burstiness* the paper warns about in §6.1 ("traffic will be bursty
//!   and have periods of higher bandwidth requirements");
//! * [`stride_histogram`] / [`reuse_profile`] — per-thread locality
//!   characterization (why mp3d defeats the cache and blkmat doesn't);
//! * [`save_trace`] / [`load_trace`] — a plain-text interchange format.
//!
//! ## Example
//!
//! ```
//! use mtsim_mem::{TraceEvent, TraceKind};
//! use mtsim_trace::BandwidthProfile;
//!
//! let events = vec![
//!     TraceEvent { time: 5, proc: 0, thread: 0, kind: TraceKind::Read, addr: 1, spin: false },
//!     TraceEvent { time: 250, proc: 0, thread: 0, kind: TraceKind::Write, addr: 2, spin: false },
//! ];
//! let profile = BandwidthProfile::new(&events, 100, 1);
//! assert!(profile.peak_bits_per_cycle() > profile.mean_bits_per_cycle());
//! ```

mod bandwidth;
mod locality;
mod serialize;
mod sweep;

pub use bandwidth::BandwidthProfile;
pub use locality::{reuse_profile, stride_histogram, ReuseProfile, StrideHistogram};
pub use serialize::{load_trace, save_trace, TraceFormatError};
pub use sweep::{CacheSweep, SweepPoint};
