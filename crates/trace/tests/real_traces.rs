//! Trace analysis against real application traces.

use mtsim_apps::{build_app, AppKind, Scale};
use mtsim_core::{Machine, MachineConfig, SwitchModel};
use mtsim_mem::CacheParams;
use mtsim_trace::{
    load_trace, reuse_profile, save_trace, stride_histogram, BandwidthProfile, CacheSweep,
};

fn traced_run(kind: AppKind) -> (Vec<mtsim_mem::TraceEvent>, u64, usize) {
    let procs = 2;
    let app = build_app(kind, Scale::Tiny, procs * 2);
    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, procs, 2).with_trace(true);
    let fin = Machine::new(cfg, &app.program, app.shared.clone()).run().unwrap();
    app.verify(&fin.shared).unwrap();
    let cycles = fin.result.cycles;
    (fin.result.trace.expect("trace requested"), cycles, procs)
}

#[test]
fn traces_are_time_ordered_and_complete() {
    let (trace, _, _) = traced_run(AppKind::Sor);
    assert!(!trace.is_empty());
    assert!(trace.windows(2).all(|w| w[0].time <= w[1].time), "global issue order");
    // sor: five reads per stencil update, one write.
    let reads = trace.iter().filter(|e| e.kind.is_read() && !e.spin).count();
    let writes = trace.iter().filter(|e| e.kind.is_write() && !e.spin).count();
    assert!(reads > 3 * writes, "{reads} reads vs {writes} writes");
}

#[test]
fn mp3d_cell_updates_are_scattered_but_record_accesses_are_not() {
    // The cache-hostile part of mp3d is specifically its space-cell
    // fetch-and-adds (random cells); its own-record field accesses are
    // dense. The stride histogram separates the two components.
    let (mp, ..) = traced_run(AppKind::Mp3d);
    let faa: Vec<_> = mp
        .iter()
        .filter(|e| e.kind == mtsim_mem::TraceKind::FetchAdd && !e.spin)
        .copied()
        .collect();
    let rest: Vec<_> = mp
        .iter()
        .filter(|e| e.kind != mtsim_mem::TraceKind::FetchAdd && !e.spin)
        .copied()
        .collect();
    let faa_h = stride_histogram(&faa);
    let rest_h = stride_histogram(&rest);
    assert!(
        faa_h.local_fraction() + 0.3 < rest_h.local_fraction(),
        "faa {:.2} vs rest {:.2}",
        faa_h.local_fraction(),
        rest_h.local_fraction()
    );
}

#[test]
fn cache_sweep_matches_engine_hit_rate_regime() {
    // Replaying the trace at the engine's default geometry should land in
    // the same hit-rate regime as the conditional-switch engine run.
    let (trace, _, procs) = traced_run(AppKind::Ugray);
    let sweep = CacheSweep::new(&trace, procs);
    let pt = sweep.run(CacheParams::default());

    let app = build_app(AppKind::Ugray, Scale::Tiny, procs * 2);
    let cfg = MachineConfig::new(SwitchModel::ConditionalSwitch, procs, 2);
    let engine = Machine::new(cfg, &app.grouped().0, app.shared.clone())
        .run()
        .unwrap()
        .result
        .cache
        .unwrap();
    let delta = (pt.stats.hit_rate() - engine.hit_rate()).abs();
    assert!(delta < 0.15, "replay {:.2} vs engine {:.2}", pt.stats.hit_rate(), engine.hit_rate());
}

#[test]
fn geometry_sweep_is_monotone_in_capacity() {
    let (trace, _, procs) = traced_run(AppKind::Sor);
    let sweep = CacheSweep::new(&trace, procs);
    let grid = [
        CacheParams { lines: 8, line_words: 4 },
        CacheParams { lines: 64, line_words: 4 },
        CacheParams { lines: 512, line_words: 4 },
    ];
    let pts = sweep.run_all(&grid);
    assert!(pts[0].stats.hit_rate() <= pts[1].stats.hit_rate() + 0.02);
    assert!(pts[1].stats.hit_rate() <= pts[2].stats.hit_rate() + 0.02);
}

#[test]
fn bandwidth_profile_and_reuse_on_real_trace() {
    let (trace, cycles, procs) = traced_run(AppKind::Water);
    let profile = BandwidthProfile::new(&trace, (cycles / 20).max(1), procs as u64);
    assert!(profile.mean_bits_per_cycle() > 0.0);
    assert!(profile.burstiness() >= 1.0);

    let reuse = reuse_profile(&trace);
    // Water re-reads every molecule's position each force phase.
    assert!(reuse.reuses() > reuse.cold);
}

#[test]
fn traces_roundtrip_through_text() {
    let (trace, ..) = traced_run(AppKind::Locus);
    let text = save_trace(&trace);
    assert_eq!(load_trace(&text).unwrap(), trace);
}
