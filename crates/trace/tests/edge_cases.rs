//! Edge-case coverage for the trace toolkit: empty and single-event
//! traces, events landing exactly on window boundaries, and every
//! malformed-line rejection path in the text format.
//!
//! These lock in behavior the analysis code quietly relies on — e.g.
//! that an empty trace yields one all-zero window rather than a panic,
//! and that `load_trace` rejects (rather than truncates) processor ids
//! that don't fit in `u32`.

use mtsim_mem::{TraceEvent, TraceKind};
use mtsim_trace::{
    load_trace, reuse_profile, save_trace, stride_histogram, BandwidthProfile, CacheSweep,
};

fn ev(time: u64, kind: TraceKind, addr: u64) -> TraceEvent {
    TraceEvent { time, proc: 0, thread: 0, kind, addr, spin: false }
}

// ---------------------------------------------------------------- bandwidth

#[test]
fn empty_trace_profile_is_one_zero_window() {
    let p = BandwidthProfile::new(&[], 100, 4);
    assert_eq!(p.len(), 1, "an empty trace still spans one (empty) window");
    assert!(p.is_empty());
    assert_eq!(p.series().collect::<Vec<_>>(), vec![0.0]);
    assert_eq!(p.mean_bits_per_cycle(), 0.0);
    assert_eq!(p.peak_bits_per_cycle(), 0.0);
    assert_eq!(p.burstiness(), 0.0);
}

#[test]
fn single_event_trace_profiles_without_panic() {
    let events = [ev(42, TraceKind::Read, 7)];
    let p = BandwidthProfile::new(&events, 100, 1);
    assert_eq!(p.len(), 1);
    assert!(!p.is_empty());
    assert_eq!(p.peak_bits_per_cycle(), p.mean_bits_per_cycle());
    // One busy window: peak == mean, i.e. perfectly "smooth".
    assert!((p.burstiness() - 1.0).abs() < 1e-12);
}

#[test]
fn window_boundary_events_land_in_the_later_window() {
    // Windows are half-open [k*w, (k+1)*w): time == k*w starts window k.
    let events = [
        ev(0, TraceKind::Read, 0),
        ev(99, TraceKind::Read, 1),
        ev(100, TraceKind::Read, 2),
        ev(200, TraceKind::Read, 3),
    ];
    let p = BandwidthProfile::new(&events, 100, 1);
    assert_eq!(p.len(), 3);
    let bits: Vec<f64> = p.series().collect();
    let unit = TraceKind::Read.bits() as f64 / 100.0;
    assert!((bits[0] - 2.0 * unit).abs() < 1e-12, "window 0 holds times 0 and 99");
    assert!((bits[1] - unit).abs() < 1e-12, "time 100 opens window 1");
    assert!((bits[2] - unit).abs() < 1e-12, "time 200 opens window 2");
}

#[test]
fn event_at_exact_end_of_run_does_not_overflow_window_vector() {
    // The last event defines the run end; its window must exist even
    // when end is an exact multiple of the window size.
    let events = [ev(1000, TraceKind::Write, 0)];
    let p = BandwidthProfile::new(&events, 100, 1);
    assert_eq!(p.len(), 11);
    assert_eq!(p.series().filter(|&b| b > 0.0).count(), 1);
}

// ------------------------------------------------------------ locality/sweep

#[test]
fn locality_profiles_of_empty_and_single_event_traces() {
    let h = stride_histogram(&[]);
    assert_eq!(h.total(), 0);
    assert_eq!(h.local_fraction(), 0.0);
    let r = reuse_profile(&[]);
    assert_eq!(r.reuses(), 0);
    assert_eq!(r.cold, 0);
    assert_eq!(r.fraction_within(1000), 0.0);

    // A single event has no transition and no reuse: only a cold miss.
    let one = [ev(5, TraceKind::Read, 9)];
    assert_eq!(stride_histogram(&one).total(), 0);
    let r1 = reuse_profile(&one);
    assert_eq!((r1.cold, r1.reuses()), (1, 0));
}

#[test]
fn cache_sweep_of_an_empty_trace_is_all_zero() {
    let sweep = CacheSweep::new(&[], 2);
    let pt = sweep.run(mtsim_mem::CacheParams::default());
    assert_eq!(pt.stats.hits + pt.stats.misses, 0);
    assert_eq!(pt.estimated_bits, 0);
    assert_eq!(pt.bits_per_cycle(0, 2), 0.0, "zero-cycle run must not divide by zero");
}

// ----------------------------------------------------------------- serialize

#[test]
fn empty_and_comment_only_inputs_parse_to_no_events() {
    assert_eq!(load_trace("").unwrap(), vec![]);
    assert_eq!(load_trace("\n\n").unwrap(), vec![]);
    assert_eq!(load_trace("# a comment\n   # another\n").unwrap(), vec![]);
}

#[test]
fn single_event_roundtrips() {
    let events = vec![TraceEvent {
        time: u64::MAX,
        proc: u32::MAX,
        thread: u32::MAX,
        kind: TraceKind::ReadPair,
        addr: u64::MAX,
        spin: true,
    }];
    let text = save_trace(&events);
    assert_eq!(load_trace(&text).unwrap(), events);
}

#[test]
fn rejects_wrong_field_counts() {
    let err = load_trace("1 0 0 r\n").unwrap_err();
    assert_eq!(err.line, 1);
    assert!(err.message.contains("5-6 fields"), "{}", err.message);

    let err = load_trace("1 0 0 r 5 spin extra\n").unwrap_err();
    assert!(err.message.contains("found 7"), "{}", err.message);
}

#[test]
fn rejects_non_numeric_fields_with_line_numbers() {
    for (text, line) in
        [("x 0 0 r 5\n", 1), ("# ok\n1 0 0 r notanaddr\n", 2), ("1 0 0 r 5\n\n-3 0 0 r 5\n", 3)]
    {
        let err = load_trace(text).unwrap_err();
        assert_eq!(err.line, line, "input {text:?}");
        assert!(err.message.contains("bad number"), "{}", err.message);
    }
}

#[test]
fn rejects_ids_that_do_not_fit_in_u32() {
    // 2^32 used to be silently truncated to processor 0; it must be an
    // error, not an aliased id.
    let err = load_trace("1 4294967296 0 r 5\n").unwrap_err();
    assert!(err.message.contains("bad id"), "{}", err.message);
    let err = load_trace("1 0 4294967296 r 5\n").unwrap_err();
    assert!(err.message.contains("bad id"), "{}", err.message);
    // The largest valid id still parses.
    assert_eq!(load_trace("1 4294967295 4294967295 r 5\n").unwrap()[0].proc, u32::MAX);
}

#[test]
fn rejects_unknown_kinds_and_flags() {
    let err = load_trace("1 0 0 zz 5\n").unwrap_err();
    assert!(err.message.contains("bad kind 'zz'"), "{}", err.message);

    let err = load_trace("1 0 0 r 5 fast\n").unwrap_err();
    assert!(err.message.contains("bad flag 'fast'"), "{}", err.message);
    assert_eq!(err.to_string(), "trace line 1: bad flag 'fast'");
}

#[test]
fn inline_comments_after_events_are_ignored() {
    let events = load_trace("7 1 2 w 99 # store to the flag word\n").unwrap();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].addr, 99);
    assert!(!events[0].spin);
}
