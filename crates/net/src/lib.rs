//! # mtsim-net — contention-aware interconnection networks
//!
//! The paper models the network as a constant 200-cycle, contention-free
//! pipe (DESIGN.md §2). This crate replaces that stub with a
//! store-and-forward queueing model over pluggable topologies:
//!
//! * [`Topology::Constant`] — the paper's model, kept as the default.
//!   The network object is inert and round trips cost exactly the
//!   configured constant.
//! * [`Topology::Crossbar`] — private injection links, but requests to
//!   one memory module serialize on that module's output port.
//! * [`Topology::Mesh`] — 2D mesh, dimension-order routing; latency
//!   grows with distance and every grid link is a contention point.
//! * [`Topology::Butterfly`] — log₂P-stage indirect network; traffic to
//!   one module funnels through a shared tree of late-stage links, so
//!   hot spots saturate first (the Ultracomputer/RP3 shape).
//!
//! A message of `bits` bits crossing a link with bandwidth `link_bw`
//! bits/cycle occupies it for `ceil(bits / link_bw)` cycles; later
//! messages wait for the link to drain (per-hop queueing delay). Memory
//! modules add a fixed service occupancy. In combining mode, a
//! fetch-and-add that reaches the network while an earlier F&A to the
//! same address is still on its forward flight merges with it in the
//! switches — one request, one reply time, no extra link traffic —
//! making the paper's hot-spot combining assumption explicit.
//!
//! Timing only: the engine executes shared accesses in global time
//! order and applies memory effects at issue time, so the network
//! shifts *when* replies arrive, never *what* they carry. The
//! differential oracle therefore stays byte-equivalent across
//! topologies.

mod topology;

pub use topology::Topology;

use std::collections::HashMap;

/// Configuration for the interconnection network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Which topology connects processors to memory modules.
    pub topology: Topology,
    /// Link bandwidth in bits per cycle (≥ 1).
    pub link_bw: u64,
    /// Fixed propagation latency added per link crossed.
    pub hop_latency: u64,
    /// Memory-module service occupancy per request, in cycles.
    pub mem_service: u64,
    /// Merge concurrent fetch-and-adds to one address in the switches.
    pub combining: bool,
    /// Number of memory modules; 0 means one per processor.
    pub modules: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            topology: Topology::Constant,
            link_bw: 16,
            hop_latency: 4,
            mem_service: 4,
            combining: false,
            modules: 0,
        }
    }
}

impl NetworkConfig {
    /// A constant-latency (paper-model) network; the simulator stays
    /// inert and `MachineConfig::latency` applies unchanged.
    pub fn constant() -> Self {
        NetworkConfig::default()
    }

    /// Starts from defaults with the given topology.
    pub fn new(topology: Topology) -> Self {
        NetworkConfig { topology, ..NetworkConfig::default() }
    }

    /// Sets the link bandwidth in bits per cycle.
    pub fn with_link_bw(mut self, bits_per_cycle: u64) -> Self {
        self.link_bw = bits_per_cycle;
        self
    }

    /// Enables or disables in-network fetch-and-add combining.
    pub fn with_combining(mut self, on: bool) -> Self {
        self.combining = on;
        self
    }

    /// True when the machine must simulate the network (anything beyond
    /// the paper's constant-latency model).
    pub fn is_active(&self) -> bool {
        self.topology != Topology::Constant || self.combining
    }

    /// Validates the configuration, returning a description of the
    /// first problem found.
    pub fn check(&self) -> Result<(), String> {
        if self.link_bw == 0 {
            return Err("network link bandwidth must be at least 1 bit/cycle".to_string());
        }
        Ok(())
    }
}

/// Aggregate network statistics for one run.
///
/// All fields are exact integer counts so `RunStats`-style equality
/// checks (determinism tests, oracle comparisons) stay bit-exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Round trips carried (loads, stores, fetch-and-adds; combined
    /// F&As count here too — they still receive a reply).
    pub requests: u64,
    /// Sum of round-trip latencies, for mean latency.
    pub latency_sum: u64,
    /// Largest single round-trip latency observed.
    pub latency_max: u64,
    /// Total cycles messages spent waiting for busy links or modules.
    pub queue_cycles: u64,
    /// Fetch-and-add requests presented to the network.
    pub fa_requests: u64,
    /// Fetch-and-adds merged into an in-flight request by combining.
    pub fa_combined: u64,
}

impl NetStats {
    /// Mean round-trip latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.requests as f64
        }
    }
}

/// An in-flight fetch-and-add eligible for combining: later F&As to the
/// same address merge with it while it has not yet reached memory.
#[derive(Debug, Clone, Copy)]
struct CombineSlot {
    /// Cycle the request arrives at the memory module; the combining
    /// window closes here — a merge must catch the request in flight.
    forward: u64,
    /// Cycle the (combined) reply arrives back at the sources.
    reply: u64,
}

/// The simulated interconnection network.
///
/// The engine issues shared accesses in global time order, so calls
/// arrive with non-decreasing `t0`; link and module busy times advance
/// monotonically and the whole structure is deterministic.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
    /// Constant round-trip latency used by the `Constant` topology.
    const_latency: u64,
    modules: usize,
    layout: topology::Layout,
    /// Per-link cycle at which the link next becomes free.
    links: Vec<u64>,
    /// Per-module cycle at which the module next becomes free.
    module_busy: Vec<u64>,
    /// Open combining windows by address.
    combine: HashMap<u64, CombineSlot>,
    stats: NetStats,
    /// Scratch path buffer, reused across messages.
    path: Vec<usize>,
}

impl Network {
    /// Builds the network for `procs` processors. `const_latency` is the
    /// round-trip cost under the `Constant` topology (the machine's
    /// configured memory latency).
    pub fn new(cfg: NetworkConfig, procs: usize, const_latency: u64) -> Network {
        let modules = if cfg.modules == 0 { procs.max(1) } else { cfg.modules };
        let layout = topology::Layout::new(cfg.topology, procs.max(1), modules);
        let links = vec![0u64; layout.link_count()];
        Network {
            cfg,
            const_latency,
            modules,
            layout,
            links,
            module_busy: vec![0u64; modules],
            combine: HashMap::new(),
            stats: NetStats::default(),
            path: Vec::new(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Memory module serving `addr` (word-interleaved).
    fn module_of(&self, addr: u64) -> usize {
        (addr % self.modules as u64) as usize
    }

    /// Sends `bits` along `path` starting at `t`, waiting out busy links.
    /// Returns `(arrival, cycles_spent_queueing)`.
    fn traverse(&mut self, mut t: u64, bits: u64, path: &[usize]) -> (u64, u64) {
        let ser = bits.div_ceil(self.cfg.link_bw).max(1);
        let mut queued = 0u64;
        for &link in path {
            let begin = t.max(self.links[link]);
            queued += begin - t;
            self.links[link] = begin + ser;
            t = begin + ser + self.cfg.hop_latency;
        }
        (t, queued)
    }

    /// One full round trip: forward request, module service, reply.
    /// Returns `(reply_arrival, forward_arrival, queue_cycles)`.
    fn trip(
        &mut self,
        t0: u64,
        src: usize,
        addr: u64,
        req_bits: u64,
        reply_bits: u64,
    ) -> (u64, u64, u64) {
        if matches!(self.layout, topology::Layout::Constant) {
            // Contention-free constant pipe; split the round trip evenly
            // so the combining window still has a forward leg.
            return (t0 + self.const_latency, t0 + self.const_latency / 2, 0);
        }
        let module = self.module_of(addr);

        let mut path = std::mem::take(&mut self.path);
        path.clear();
        self.layout.forward_path(src, module, &mut path);
        let (arrival, q_fwd) = self.traverse(t0, req_bits, &path);

        let begin = arrival.max(self.module_busy[module]);
        let q_mem = begin - arrival;
        self.module_busy[module] = begin + self.cfg.mem_service;
        let depart = begin + self.cfg.mem_service;

        path.clear();
        self.layout.return_path(src, module, &mut path);
        let (reply, q_ret) = self.traverse(depart, reply_bits, &path);
        self.path = path;

        (reply, arrival, q_fwd + q_mem + q_ret)
    }

    /// Records one completed round trip in the statistics.
    fn note(&mut self, t0: u64, reply: u64, queued: u64) {
        self.stats.requests += 1;
        let lat = reply - t0;
        self.stats.latency_sum += lat;
        self.stats.latency_max = self.stats.latency_max.max(lat);
        self.stats.queue_cycles += queued;
    }

    /// A shared load or store round trip issued by processor `src` at
    /// cycle `t0`. Returns the cycle the reply (or acknowledgement)
    /// reaches the processor.
    pub fn round_trip(
        &mut self,
        t0: u64,
        src: usize,
        addr: u64,
        req_bits: u64,
        reply_bits: u64,
    ) -> u64 {
        let (reply, _, queued) = self.trip(t0, src, addr, req_bits, reply_bits);
        self.note(t0, reply, queued);
        reply
    }

    /// A fetch-and-add round trip. With combining enabled, a request
    /// that catches an earlier same-address F&A still on its forward
    /// flight merges with it: it consumes no link or module time and
    /// completes when the combined reply fans back out.
    pub fn fetch_add(
        &mut self,
        t0: u64,
        src: usize,
        addr: u64,
        req_bits: u64,
        reply_bits: u64,
    ) -> u64 {
        self.stats.fa_requests += 1;
        if self.cfg.combining {
            if let Some(slot) = self.combine.get(&addr) {
                if t0 <= slot.forward {
                    let reply = slot.reply.max(t0);
                    self.stats.fa_combined += 1;
                    self.note(t0, reply, 0);
                    return reply;
                }
            }
        }
        let (reply, forward, queued) = self.trip(t0, src, addr, req_bits, reply_bits);
        if self.cfg.combining {
            self.combine.insert(addr, CombineSlot { forward, reply });
        }
        self.note(t0, reply, queued);
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REQ: u64 = 64; // header + address
    const REPLY: u64 = 96; // header + one word

    fn net(topology: Topology, procs: usize) -> Network {
        Network::new(NetworkConfig::new(topology), procs, 200)
    }

    #[test]
    fn constant_topology_costs_exactly_the_configured_latency() {
        let mut n = net(Topology::Constant, 4);
        assert_eq!(n.round_trip(100, 0, 7, REQ, REPLY), 300);
        assert_eq!(n.round_trip(100, 3, 7, REQ, REPLY), 300, "no contention");
        let s = n.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.latency_sum, 400);
        assert_eq!(s.latency_max, 200);
        assert_eq!(s.queue_cycles, 0);
    }

    #[test]
    fn crossbar_single_message_is_base_latency() {
        // 4 hops round trip; each: serialization + hop latency. No
        // queueing on an idle network.
        let mut n = net(Topology::Crossbar, 4);
        let cfg = NetworkConfig::default();
        let ser_req = REQ.div_ceil(cfg.link_bw);
        let ser_reply = REPLY.div_ceil(cfg.link_bw);
        let expect =
            2 * (ser_req + cfg.hop_latency) + cfg.mem_service + 2 * (ser_reply + cfg.hop_latency);
        assert_eq!(n.round_trip(0, 0, 5, REQ, REPLY), expect);
        assert_eq!(n.stats().queue_cycles, 0);
        // A later, temporally separated message sees the same latency.
        assert_eq!(n.round_trip(1000, 1, 6, REQ, REPLY), 1000 + expect);
    }

    #[test]
    fn saturated_output_port_queues_the_second_message() {
        // Two processors hit the same module in the same cycle: the
        // second serializes behind the first on the module's port.
        let mut n = net(Topology::Crossbar, 4);
        let first = n.round_trip(0, 0, 4, REQ, REPLY);
        let second = n.round_trip(0, 1, 4, REQ, REPLY);
        assert!(second > first, "contended message must finish later");
        assert!(n.stats().queue_cycles > 0, "queueing must be visible in stats");
        assert_eq!(n.stats().latency_max, second);
    }

    #[test]
    fn mesh_latency_grows_with_distance() {
        let mut n = net(Topology::Mesh, 16); // 4x4 grid
        let near = n.round_trip(0, 0, 0, REQ, REPLY); // same node
        let mut n2 = net(Topology::Mesh, 16);
        let far = n2.round_trip(0, 0, 15, REQ, REPLY); // opposite corner
        assert!(far > near, "corner-to-corner must beat same-node: {far} vs {near}");
    }

    #[test]
    fn butterfly_hot_module_contends_in_the_tree() {
        let mut n = net(Topology::Butterfly, 8);
        let solo = n.round_trip(0, 0, 3, REQ, REPLY);
        // Burst from every processor to the same module.
        let mut hot = net(Topology::Butterfly, 8);
        let worst = (0..8).map(|p| hot.round_trip(0, p, 3, REQ, REPLY)).max().unwrap();
        assert!(worst > solo, "hot-spot burst must queue: {worst} vs {solo}");
        assert!(hot.stats().queue_cycles > 0);
    }

    #[test]
    fn combining_merges_concurrent_fetch_adds() {
        let mut n =
            Network::new(NetworkConfig::new(Topology::Butterfly).with_combining(true), 8, 200);
        let first = n.fetch_add(0, 0, 42, 128, 96);
        let mut replies = vec![first];
        for p in 1..8 {
            replies.push(n.fetch_add(0, p, 42, 128, 96));
        }
        let s = n.stats();
        assert_eq!(s.fa_requests, 8);
        assert_eq!(s.fa_combined, 7, "all later F&As merge with the first");
        assert!(replies.iter().all(|&r| r == first), "merged F&As share the reply");
        // An F&A to a different address does not combine.
        n.fetch_add(0, 0, 43, 128, 96);
        assert_eq!(n.stats().fa_combined, 7);
    }

    #[test]
    fn combining_window_closes_when_request_reaches_memory() {
        let mut n =
            Network::new(NetworkConfig::new(Topology::Crossbar).with_combining(true), 4, 200);
        let first = n.fetch_add(0, 0, 42, 128, 96);
        // Issue long after the first request reached the module: no merge.
        let late = n.fetch_add(first + 100, 1, 42, 128, 96);
        assert_eq!(n.stats().fa_combined, 0);
        assert!(late > first);
    }

    #[test]
    fn without_combining_hot_fetch_adds_serialize() {
        let mut n = net(Topology::Butterfly, 8);
        let first = n.fetch_add(0, 0, 42, 128, 96);
        let second = n.fetch_add(0, 1, 42, 128, 96);
        assert!(second > first);
        assert_eq!(n.stats().fa_combined, 0);
        assert_eq!(n.stats().fa_requests, 2);
    }

    #[test]
    fn same_sequence_is_deterministic() {
        let run = || {
            let mut n =
                Network::new(NetworkConfig::new(Topology::Mesh).with_combining(true), 8, 200);
            let mut out = Vec::new();
            for i in 0..64u64 {
                let t0 = i * 3;
                let p = (i % 8) as usize;
                if i % 4 == 0 {
                    out.push(n.fetch_add(t0, p, i % 5, 128, 96));
                } else {
                    out.push(n.round_trip(t0, p, i * 17 % 11, REQ, REPLY));
                }
            }
            (out, n.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn config_check_rejects_zero_bandwidth() {
        assert!(NetworkConfig::default().check().is_ok());
        assert!(NetworkConfig::default().with_link_bw(0).check().is_err());
        assert!(!NetworkConfig::constant().is_active());
        assert!(NetworkConfig::new(Topology::Mesh).is_active());
        assert!(NetworkConfig::constant().with_combining(true).is_active());
    }

    #[test]
    fn mean_latency_is_sum_over_requests() {
        let mut s = NetStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        s.requests = 4;
        s.latency_sum = 1000;
        assert_eq!(s.mean_latency(), 250.0);
    }
}
