//! Topology kinds and their link-level routing.
//!
//! Every non-constant topology is described by a [`Layout`]: a fixed set
//! of directed links (each with its own serialization queue) plus two
//! routing functions that translate `(processor, memory module)` into the
//! forward and return link paths. Routing is purely structural — all
//! timing (serialization, hop latency, queueing) lives in the simulator.

/// Which interconnection network connects processors to memory modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// The paper's model: a contention-free network with a constant
    /// round-trip latency (`MachineConfig::latency`). No links are
    /// simulated; messages never queue.
    Constant,
    /// Single-stage crossbar: every processor has a private injection
    /// link, but messages to the same memory module serialize on that
    /// module's output port (and on the symmetric return ports).
    Crossbar,
    /// 2D mesh with dimension-order (X-then-Y) routing; memory modules
    /// are co-located with the routers. Latency grows with Manhattan
    /// distance and messages contend for every grid link they cross.
    Mesh,
    /// Indirect butterfly (log₂ P stages of 2×2 switches), the classic
    /// NYU-Ultracomputer/RP3 shape the paper's combining assumption comes
    /// from. Distinct sources heading to one module share the final
    /// stages, so hot spots saturate the tree root first.
    Butterfly,
}

impl Topology {
    /// All topologies, `constant` first.
    pub const ALL: [Topology; 4] =
        [Topology::Constant, Topology::Crossbar, Topology::Mesh, Topology::Butterfly];

    /// Short display name used by the CLI and reports.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Constant => "constant",
            Topology::Crossbar => "crossbar",
            Topology::Mesh => "mesh",
            Topology::Butterfly => "butterfly",
        }
    }

    /// Parses a display name back to the topology.
    pub fn from_name(name: &str) -> Option<Topology> {
        Topology::ALL.into_iter().find(|t| t.name() == name)
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A materialized topology: link count plus routing.
#[derive(Debug, Clone)]
pub(crate) enum Layout {
    /// No links; round trips take the configured constant.
    Constant,
    /// `procs` injection + `modules` output-port links forward, the
    /// mirror pair on the return path.
    Crossbar { procs: usize, modules: usize },
    /// `w × h` grid of routers, four directed grid links per node plus
    /// four NIC links (processor inject/eject, module inject/eject).
    Mesh { w: usize, h: usize },
    /// `stages` ranks of `rows` exit links forward, a mirrored set back.
    Butterfly { rows: usize, stages: usize },
}

impl Layout {
    /// Builds the layout for `topology` over `procs` processors and
    /// `modules` memory modules.
    pub(crate) fn new(topology: Topology, procs: usize, modules: usize) -> Layout {
        match topology {
            Topology::Constant => Layout::Constant,
            Topology::Crossbar => Layout::Crossbar { procs, modules },
            Topology::Mesh => {
                let n = procs.max(modules).max(1);
                let w = (n as f64).sqrt().ceil() as usize;
                let h = n.div_ceil(w);
                Layout::Mesh { w, h }
            }
            Topology::Butterfly => {
                let rows = procs.max(modules).max(2).next_power_of_two();
                Layout::Butterfly { rows, stages: rows.trailing_zeros() as usize }
            }
        }
    }

    /// Number of directed links this layout simulates.
    pub(crate) fn link_count(&self) -> usize {
        match *self {
            Layout::Constant => 0,
            Layout::Crossbar { procs, modules } => 2 * procs + 2 * modules,
            // Four grid links plus four NIC links per node.
            Layout::Mesh { w, h } => w * h * 8,
            Layout::Butterfly { rows, stages } => 2 * rows * stages,
        }
    }

    /// Appends the forward (request) path from processor `src` to memory
    /// module `module` onto `out`.
    pub(crate) fn forward_path(&self, src: usize, module: usize, out: &mut Vec<usize>) {
        match *self {
            Layout::Constant => {}
            Layout::Crossbar { procs, .. } => {
                out.push(src);
                out.push(procs + module);
            }
            Layout::Mesh { w, h } => {
                let nodes = w * h;
                let (a, b) = (src % nodes, module % nodes);
                out.push(nic(nodes, a, 0)); // processor inject
                mesh_route(w, a, b, out);
                out.push(nic(nodes, b, 1)); // module eject
            }
            Layout::Butterfly { rows, stages } => {
                butterfly_route(rows, stages, src % rows, module % rows, 0, out);
            }
        }
    }

    /// Appends the return (reply) path from `module` back to `src`.
    pub(crate) fn return_path(&self, src: usize, module: usize, out: &mut Vec<usize>) {
        match *self {
            Layout::Constant => {}
            Layout::Crossbar { procs, modules } => {
                out.push(procs + modules + module);
                out.push(procs + 2 * modules + src);
            }
            Layout::Mesh { w, h } => {
                let nodes = w * h;
                let (a, b) = (src % nodes, module % nodes);
                out.push(nic(nodes, b, 2)); // module inject
                mesh_route(w, b, a, out);
                out.push(nic(nodes, a, 3)); // processor eject
            }
            Layout::Butterfly { rows, stages } => {
                // The reply crosses a mirrored return butterfly.
                butterfly_route(rows, stages, module % rows, src % rows, rows * stages, out);
            }
        }
    }
}

/// NIC link id: `kind` 0 = proc inject, 1 = module eject, 2 = module
/// inject, 3 = proc eject. Grid links occupy ids `0..nodes*4`.
fn nic(nodes: usize, node: usize, kind: usize) -> usize {
    nodes * 4 + node * 4 + kind
}

/// Dimension-order route: X first, then Y. Pushes one directed grid link
/// per hop (`node*4 + dir`; dir 0 = +X, 1 = -X, 2 = +Y, 3 = -Y).
fn mesh_route(w: usize, from: usize, to: usize, out: &mut Vec<usize>) {
    let (mut x, mut y) = (from % w, from / w);
    let (bx, by) = (to % w, to / w);
    while x != bx {
        let dir = if bx > x { 0 } else { 1 };
        out.push((y * w + x) * 4 + dir);
        x = if bx > x { x + 1 } else { x - 1 };
    }
    while y != by {
        let dir = if by > y { 2 } else { 3 };
        out.push((y * w + x) * 4 + dir);
        y = if by > y { y + 1 } else { y - 1 };
    }
}

/// Destination-bit butterfly route from row `from` to row `to`: after
/// stage `k` the top `k+1` address bits are the destination's, so two
/// messages bound for one row share every late-stage link (the hot-spot
/// tree). `base` selects the forward or mirrored return link set.
fn butterfly_route(
    rows: usize,
    stages: usize,
    from: usize,
    to: usize,
    base: usize,
    out: &mut Vec<usize>,
) {
    for k in 0..stages {
        let low_mask = (1usize << (stages - 1 - k)) - 1;
        let row = (to & !low_mask) | (from & low_mask);
        out.push(base + k * rows + row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for t in Topology::ALL {
            assert_eq!(Topology::from_name(t.name()), Some(t));
        }
        assert_eq!(Topology::from_name("torus"), None);
        assert_eq!(Topology::ALL.len(), 4);
    }

    fn paths(layout: &Layout, src: usize, module: usize) -> (Vec<usize>, Vec<usize>) {
        let (mut f, mut r) = (Vec::new(), Vec::new());
        layout.forward_path(src, module, &mut f);
        layout.return_path(src, module, &mut r);
        (f, r)
    }

    #[test]
    fn crossbar_paths_are_two_hops_and_in_range() {
        let l = Layout::new(Topology::Crossbar, 4, 4);
        let (f, r) = paths(&l, 1, 3);
        assert_eq!(f.len(), 2);
        assert_eq!(r.len(), 2);
        assert!(f.iter().chain(&r).all(|&id| id < l.link_count()));
        // Distinct processors to one module share only the output port.
        let (f2, _) = paths(&l, 2, 3);
        assert_ne!(f[0], f2[0]);
        assert_eq!(f[1], f2[1]);
    }

    #[test]
    fn mesh_route_length_is_manhattan_distance() {
        let l = Layout::new(Topology::Mesh, 16, 16); // 4x4 grid
        let (f, r) = paths(&l, 0, 15); // corner to corner: 3 + 3 hops
        assert_eq!(f.len(), 2 + 6, "two NIC links plus six grid hops");
        assert_eq!(r.len(), 2 + 6);
        assert!(f.iter().chain(&r).all(|&id| id < l.link_count()));
        // Self-route still crosses the NIC.
        let (f0, _) = paths(&l, 5, 5);
        assert_eq!(f0.len(), 2);
    }

    #[test]
    fn butterfly_routes_converge_on_the_destination_tree() {
        let l = Layout::new(Topology::Butterfly, 8, 8); // 8 rows, 3 stages
        let (f, r) = paths(&l, 0, 5);
        assert_eq!(f.len(), 3);
        assert_eq!(r.len(), 3);
        assert!(f.iter().chain(&r).all(|&id| id < l.link_count()));
        // Any two sources share the final-stage link into one module.
        let (g, _) = paths(&l, 7, 5);
        assert_eq!(f.last(), g.last());
        // Forward and return sets are disjoint.
        assert!(f.iter().all(|id| !r.contains(id)));
    }

    #[test]
    fn small_machines_still_have_links() {
        for t in [Topology::Crossbar, Topology::Mesh, Topology::Butterfly] {
            let l = Layout::new(t, 1, 1);
            assert!(l.link_count() > 0, "{t} with one processor");
            let (f, r) = paths(&l, 0, 0);
            assert!(!f.is_empty() && !r.is_empty(), "{t} paths must be non-empty");
        }
    }
}
