//! Typed parsing for the structured CLI flags (latency distributions and
//! network configuration).
//!
//! Historically each parser called `bad_usage` directly, so every flag
//! invented its own failure wording and testing the messages meant
//! spawning the binary. These parsers return a [`FlagError`] instead; the
//! single exit point in `main.rs` maps any of them to stderr plus exit
//! code 2, and the messages are unit-testable in-process.

use mtsim_mem::{LatencyDist, NetworkConfig, Topology};

/// A malformed flag value: which flag, what was given, what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagError {
    /// Flag name without the leading dashes.
    pub flag: &'static str,
    /// The offending value as typed.
    pub value: String,
    /// What the flag accepts.
    pub expected: &'static str,
}

impl FlagError {
    fn new(flag: &'static str, value: &str, expected: &'static str) -> FlagError {
        FlagError { flag, value: value.to_string(), expected }
    }
}

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad value '{}' for --{} (want {})", self.value, self.flag, self.expected)
    }
}

impl std::error::Error for FlagError {}

const DIST_EXPECTED: &str = "constant, uniform:LO:HI, or geometric:MIN:MEAN";

const JOBS_EXPECTED: &str = "a worker count >= 1";
const JOBS_ENV_EXPECTED: &str = "a worker count >= 1 (from the MTSIM_JOBS environment variable)";

/// Parses an explicit `--jobs N` value.
pub fn parse_jobs(value: &str) -> Result<usize, FlagError> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| FlagError::new("jobs", value, JOBS_EXPECTED))
}

/// Reads the `MTSIM_JOBS` environment default for `--jobs`. Unset or
/// blank means "no preference"; anything else must be a valid count —
/// a typo in the environment used to be silently ignored (the pool fell
/// back to the core count), which hid misconfigured CI jobs.
pub fn jobs_from_env() -> Result<Option<usize>, FlagError> {
    match std::env::var("MTSIM_JOBS") {
        Err(_) => Ok(None),
        Ok(v) if v.trim().is_empty() => Ok(None),
        Ok(v) => match v.trim().parse::<usize>().ok().filter(|&n| n >= 1) {
            Some(n) => Ok(Some(n)),
            None => Err(FlagError::new("jobs", &v, JOBS_ENV_EXPECTED)),
        },
    }
}

/// Resolves the worker count: explicit `--jobs` beats `MTSIM_JOBS`;
/// `None` defers to the pool's core-count default.
pub fn resolve_jobs(flag: Option<&str>) -> Result<Option<usize>, FlagError> {
    match flag {
        Some(v) => parse_jobs(v).map(Some),
        None => jobs_from_env(),
    }
}

/// Parses `constant`, `uniform:LO:HI`, or `geometric:MIN:MEAN`.
pub fn parse_latency_dist(spec: &str) -> Result<LatencyDist, FlagError> {
    let err = || FlagError::new("latency-dist", spec, DIST_EXPECTED);
    let num = |v: &str| v.parse::<u64>().map_err(|_| err());
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["constant"] => Ok(LatencyDist::Constant),
        ["uniform", lo, hi] => Ok(LatencyDist::Uniform { lo: num(lo)?, hi: num(hi)? }),
        ["geometric", min, mean] => {
            let mean: f64 = mean.parse().map_err(|_| err())?;
            if !mean.is_finite() || mean < 0.0 {
                return Err(FlagError::new("latency-dist", spec, "a finite geometric mean >= 0"));
            }
            Ok(LatencyDist::Geometric { min: num(min)?, p: 1.0 / (mean + 1.0) })
        }
        _ => Err(err()),
    }
}

/// Parses a `--net` topology name.
pub fn parse_topology(s: &str) -> Result<Topology, FlagError> {
    Topology::from_name(s)
        .ok_or_else(|| FlagError::new("net", s, "constant, crossbar, mesh, or butterfly"))
}

/// Builds the network configuration from `--net NAME`, `--link-bw BITS`,
/// and the `--combining` boolean.
pub fn net_config(
    net: Option<&str>,
    link_bw: Option<&str>,
    combining: bool,
) -> Result<NetworkConfig, FlagError> {
    let mut cfg = NetworkConfig::constant();
    if let Some(name) = net {
        cfg.topology = parse_topology(name)?;
    }
    if let Some(bw) = link_bw {
        cfg.link_bw = bw
            .parse::<u64>()
            .ok()
            .filter(|&b| b >= 1)
            .ok_or_else(|| FlagError::new("link-bw", bw, "a bandwidth >= 1 bits/cycle"))?;
    }
    cfg.combining = combining;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dist_accepts_the_documented_forms() {
        assert_eq!(parse_latency_dist("constant"), Ok(LatencyDist::Constant));
        assert_eq!(
            parse_latency_dist("uniform:100:300"),
            Ok(LatencyDist::Uniform { lo: 100, hi: 300 })
        );
        assert!(matches!(
            parse_latency_dist("geometric:150:50"),
            Ok(LatencyDist::Geometric { min: 150, .. })
        ));
    }

    #[test]
    fn malformed_latency_dist_names_the_flag_and_the_grammar() {
        let e = parse_latency_dist("uniform:abc:2").unwrap_err();
        assert_eq!(e.flag, "latency-dist");
        let msg = e.to_string();
        assert!(msg.contains("'uniform:abc:2'"), "{msg}");
        assert!(msg.contains("--latency-dist"), "{msg}");
        assert!(msg.contains("uniform:LO:HI"), "{msg}");

        let e = parse_latency_dist("gaussian:1:2").unwrap_err();
        assert!(e.to_string().contains("geometric:MIN:MEAN"));
    }

    #[test]
    fn negative_geometric_mean_is_rejected_with_its_own_message() {
        let e = parse_latency_dist("geometric:100:-3").unwrap_err();
        assert!(e.to_string().contains("mean >= 0"), "{e}");
        assert!(parse_latency_dist("geometric:100:NaN").is_err());
    }

    #[test]
    fn topology_parses_all_names_and_rejects_garbage() {
        for t in Topology::ALL {
            assert_eq!(parse_topology(t.name()), Ok(t));
        }
        let e = parse_topology("torus").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("--net") && msg.contains("'torus'"), "{msg}");
        assert!(msg.contains("crossbar, mesh, or butterfly"), "{msg}");
    }

    #[test]
    fn net_config_combines_the_three_flags() {
        let cfg = net_config(Some("mesh"), Some("32"), true).unwrap();
        assert_eq!(cfg.topology, Topology::Mesh);
        assert_eq!(cfg.link_bw, 32);
        assert!(cfg.combining);
        assert_eq!(net_config(None, None, false).unwrap(), NetworkConfig::constant());
    }

    #[test]
    fn zero_or_garbage_link_bw_is_one_typed_error() {
        for bad in ["0", "-4", "fast"] {
            let e = net_config(None, Some(bad), false).unwrap_err();
            assert_eq!(e.flag, "link-bw");
            assert!(e.to_string().contains(">= 1"), "{e}");
        }
    }

    #[test]
    fn jobs_rejects_zero_and_garbage_with_a_typed_error() {
        assert_eq!(parse_jobs("4"), Ok(4));
        for bad in ["0", "-2", "many", "1.5", ""] {
            let e = parse_jobs(bad).unwrap_err();
            assert_eq!(e.flag, "jobs");
            assert!(e.to_string().contains(">= 1"), "{e}");
        }
    }

    #[test]
    fn explicit_jobs_beats_the_environment() {
        // resolve_jobs must not consult MTSIM_JOBS when a flag is given,
        // so a bogus env value is irrelevant here (and this test cannot
        // set the variable: the test harness is multi-threaded).
        assert_eq!(resolve_jobs(Some("3")), Ok(Some(3)));
        assert!(resolve_jobs(Some("zero")).is_err());
    }
}
