//! `mtsim` — command-line driver for the simulator.
//!
//! ```text
//! mtsim run <app> [--model M] [-p N] [-t N] [--scale S] [--latency N]
//!            [--max-run N|off] [--priority] [--estimate] [--stats]
//!            [--seed N] [--fault-drop R] [--fault-delay R] [--fault-dup R]
//!            [--latency-dist D] [--max-retries N]
//!            [--net T] [--link-bw N] [--combining]
//! mtsim list
//! mtsim disasm <app> [--grouped] [--scale S]
//! mtsim models
//! mtsim compile <file.mtc> [-t N] [--grouped]
//! mtsim run-file <file.mtc> [--model M] [-p N] [-t N] [--stats]
//!                [--seed N] [--fault-drop R] [--fault-delay R]
//!                [--fault-dup R] [--latency-dist D] [--max-retries N]
//!                [--net T] [--link-bw N] [--combining]
//! mtsim profile <app> [--model M] [-p N] [-t N] [--scale S] [--latency N]
//!                [--out trace.json] [--ring N] [--attr] [fault/net flags]
//! mtsim sweep [--spec FILE] [--apps A,B|all] [--models M,N|all] [--p LIST]
//!             [--t LIST] [--latency LIST] [--seeds LIST] [--drop LIST]
//!             [--net LIST|all] [--link-bw N] [--combining] [--attr]
//!             [--scale S] [--max-cycles N] [--max-retries N]
//!             [--jobs N] [--out results.json] [--csv results.csv] [--quiet]
//!             [--resume FILE.jsonl] [--job-timeout SECS] [--retries N]
//! mtsim check [--fuzz N] [--seed S] [--jobs N] [--shrink-budget N]
//!             [--chaos N]
//! mtsim serve [--addr A] [--port N] [--jobs N] [--state-dir DIR]
//!             [--queue-cap N] [--cache-cap N]
//! ```
//!
//! `profile` runs one application with the full observability recorder
//! attached (DESIGN.md §17) and writes a Chrome/Perfetto trace-event JSON
//! file (load it at <https://ui.perfetto.dev>). `--ring` bounds the event
//! ring (most recent events win); `--attr` additionally prints the
//! per-thread cycle-attribution flame table on stdout.
//!
//! `check` is the differential-testing driver (DESIGN.md §15): it
//! generates `--fuzz` random race-free programs from `--seed` (decimal or
//! `0x` hex), runs each across every switch model × latency × grouping ×
//! fault seed on the work-stealing pool, and compares every run's final
//! architectural state against the sequential reference interpreter.
//! Failures are minimized before being reported.
//!
//! `sweep` runs the cartesian grid on the work-stealing pool
//! (`mtsim-sweep`). List axes are comma-separated; integer axes accept
//! `LO-HI` ranges. A `--spec` file holds `key = value` lines with the
//! same keys; explicit flags override it. With `--out`/`--csv` the
//! deterministic result table is written there; otherwise CSV goes to
//! stdout. A failing grid point is one failing row, not a dead sweep.
//!
//! Crash safety (DESIGN.md §18): with `--out FILE.json` every completed
//! job also streams to `FILE.json.jsonl` — an fsync'd, checksummed
//! checkpoint. After a crash, `mtsim sweep --resume FILE.json.jsonl`
//! (with the same spec) reruns only the missing grid points and writes
//! output byte-identical to an uninterrupted run; a mismatched spec is
//! refused. `--job-timeout SECS` cancels attempts exceeding a wall-clock
//! budget; panicked/timed-out jobs are retried up to `--retries` times
//! (default 2) with backoff, then quarantined into a `failed_jobs`
//! section instead of aborting the sweep. `mtsim check --chaos N` runs
//! the kill/resume chaos harness over N seeded failure injections.
//!
//! Latency distributions: `constant` (the paper's model), `uniform:LO:HI`,
//! `geometric:MIN:MEAN` (MEAN is the average extra tail beyond MIN).
//!
//! Network topologies (`--net`): `constant` (the paper's contention-free
//! pipe, the default), `crossbar`, `mesh`, `butterfly`. `--link-bw` sets
//! bits/cycle per link (default 16); `--combining` merges concurrent
//! fetch-and-adds to one address inside the switches.
//!
//! `serve` starts the persistent simulation service (`mtsim-serve`,
//! DESIGN.md §19): a JSON-over-HTTP job queue on the sweep engine with
//! a shared artifact cache and crash-safe restart-resume. `--port 0`
//! binds an ephemeral port; the bound address is printed on stdout.
//! Worker counts for `sweep`, `check`, and `serve` come from `--jobs`
//! or, when absent, the `MTSIM_JOBS` environment variable; an invalid
//! value in either place is a usage error (exit 2), never a silent
//! fallback.
//!
//! Exit codes: `0` success, `1` the simulation failed (fault exhaustion,
//! deadlock, watchdog, bad program, wrong results), `2` usage,
//! configuration, or checkpoint-corruption error, `3` sweep completed
//! but quarantined at least one job, `4` sweep aborted early (checkpoint
//! write failure); completed jobs remain resumable.
//!
//! Examples:
//!
//! ```text
//! mtsim run sor --model explicit-switch -p 4 -t 8 --stats
//! mtsim run sieve --fault-drop 0.05 --seed 7 --stats
//! mtsim disasm sor --grouped | head -40
//! ```

mod flags;

use flags::{net_config, parse_latency_dist, FlagError};
use mtsim_apps::{build_app, profile_app, run_app, AppKind, Scale};
use mtsim_core::{MachineConfig, StreamHist, SwitchModel};
use mtsim_mem::FaultConfig;
use mtsim_sweep::{SweepOpts, SweepSpec};

/// The simulation ran and failed (typed `SimError` or wrong results).
const EXIT_RUN_FAILED: i32 = 1;
/// The command line or configuration was invalid — or a checkpoint
/// failed validation (corruption, spec mismatch); nothing was simulated.
const EXIT_USAGE: i32 = 2;
/// The sweep completed but quarantined at least one transiently failing
/// job (graceful degradation; see DESIGN.md §18).
const EXIT_QUARANTINED: i32 = 3;
/// The sweep aborted before finishing the grid (checkpoint write
/// failure); completed jobs are durable and the sweep is resumable.
const EXIT_ABORTED: i32 = 4;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mtsim run <app> [--model M] [-p N] [-t N] [--scale tiny|small|full]\n             [--latency N] [--max-run N|off] [--priority] [--estimate] [--stats]\n             [--seed N] [--fault-drop R] [--fault-delay R] [--fault-dup R]\n             [--latency-dist constant|uniform:LO:HI|geometric:MIN:MEAN]\n             [--max-retries N] [--max-cycles N]\n             [--net constant|crossbar|mesh|butterfly] [--link-bw N] [--combining]\n  mtsim list\n  mtsim models\n  mtsim disasm <app> [--grouped] [--scale S]\n  mtsim compile <file.mtc> [-t N] [--grouped]\n  mtsim run-file <file.mtc> [--model M] [-p N] [-t N] [--stats] [fault/net flags]\n  mtsim profile <app> [--model M] [-p N] [-t N] [--scale S] [--latency N]\n              [--out trace.json] [--ring N] [--attr] [fault/net flags]\n  mtsim sweep [--spec FILE] [--apps LIST|all] [--models LIST|all] [--p LIST]\n              [--t LIST] [--latency LIST] [--seeds LIST] [--drop LIST]\n              [--net LIST|all] [--link-bw N] [--combining] [--attr]\n              [--scale S] [--max-cycles N] [--max-retries N]\n              [--jobs N] [--out FILE.json] [--csv FILE.csv] [--quiet]\n              [--resume FILE.jsonl] [--job-timeout SECS] [--retries N]\n  mtsim check [--fuzz N] [--seed S] [--jobs N] [--shrink-budget N] [--chaos N]\n  mtsim serve [--addr A] [--port N] [--jobs N] [--state-dir DIR]\n              [--queue-cap N] [--cache-cap N]\n\napps: {}\nmodels: {}",
        AppKind::ALL.map(|a| a.name()).join(", "),
        SwitchModel::ALL.map(|m| m.name()).join(", ")
    );
    std::process::exit(EXIT_USAGE);
}

/// Reports a usage/configuration error and exits with code 2.
fn bad_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage()
}

fn parse_app(s: &str) -> AppKind {
    AppKind::ALL
        .into_iter()
        .find(|a| a.name() == s)
        .unwrap_or_else(|| bad_usage(&format!("unknown app '{s}'")))
}

fn parse_model(s: &str) -> SwitchModel {
    SwitchModel::ALL
        .into_iter()
        .find(|m| m.name() == s)
        .unwrap_or_else(|| bad_usage(&format!("unknown model '{s}'")))
}

fn parse_scale(s: &str) -> Scale {
    match s {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "full" => Scale::Full,
        _ => bad_usage(&format!("unknown scale '{s}' (want tiny, small, or full)")),
    }
}

/// Parses a flag value, rejecting garbage with a clear message instead of
/// a panic.
fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| bad_usage(&format!("bad value '{v}' for --{flag}")))
}

/// Unwraps a typed flag-parse result, mapping [`FlagError`] to the usage
/// exit path (stderr + exit code 2).
fn flag_or_die<T>(r: Result<T, FlagError>) -> T {
    r.unwrap_or_else(|e| bad_usage(&e.to_string()))
}

/// Value-taking fault flags shared by `run` and `run-file`.
const FAULT_FLAGS: [&str; 6] =
    ["seed", "fault-drop", "fault-delay", "fault-dup", "latency-dist", "max-retries"];

/// Value-taking network flags shared by `run` and `run-file`
/// (`--combining` is boolean and listed separately).
const NET_FLAGS: [&str; 2] = ["net", "link-bw"];

/// Builds the network configuration from the shared network flags.
fn net_from_args(args: &Args) -> mtsim_mem::NetworkConfig {
    flag_or_die(net_config(args.get("net"), args.get("link-bw"), args.has("combining")))
}

/// Builds the fault configuration from the shared fault flags.
fn fault_config(args: &Args) -> FaultConfig {
    let mut fc = FaultConfig::default();
    if let Some(v) = args.get("seed") {
        fc.seed = parse_num("seed", v);
    }
    if let Some(v) = args.get("fault-drop") {
        fc.drop_rate = parse_num("fault-drop", v);
    }
    if let Some(v) = args.get("fault-delay") {
        fc.delay_rate = parse_num("fault-delay", v);
    }
    if let Some(v) = args.get("fault-dup") {
        fc.dup_rate = parse_num("fault-dup", v);
    }
    if let Some(v) = args.get("latency-dist") {
        fc.dist = flag_or_die(parse_latency_dist(v));
    }
    if let Some(v) = args.get("max-retries") {
        fc.max_retries = parse_num("max-retries", v);
    }
    fc
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses the command line, accepting only the listed flags: anything
    /// else is rejected with a clear message and exit code 2.
    fn parse(takes_value: &[&str], boolean: &[&str]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if a == "-" || !a.starts_with('-') {
                positional.push(a);
                continue;
            }
            let name =
                a.strip_prefix("--").or_else(|| a.strip_prefix('-')).unwrap_or(&a).to_string();
            let value = if takes_value.contains(&name.as_str()) {
                Some(
                    it.next().unwrap_or_else(|| bad_usage(&format!("flag --{name} needs a value"))),
                )
            } else if boolean.contains(&name.as_str()) {
                None
            } else {
                bad_usage(&format!("unknown flag '{a}' for this command"));
            };
            flags.push((name, value));
        }
        Args { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn main() {
    // Dispatch on the subcommand first so every command can validate its
    // own flag set strictly.
    match std::env::args().nth(1).as_deref() {
        Some("list") => {
            Args::parse(&[], &[]);
            for a in AppKind::ALL {
                println!("{:<8} {}", a.name(), a.description());
            }
        }
        Some("models") => {
            Args::parse(&[], &[]);
            for m in SwitchModel::ALL {
                println!("{}", m.name());
            }
        }
        Some("disasm") => cmd_disasm(&Args::parse(&["scale"], &["grouped"])),
        Some("run") => {
            let mut value_flags =
                vec!["model", "p", "t", "scale", "latency", "max-run", "max-cycles"];
            value_flags.extend(FAULT_FLAGS);
            value_flags.extend(NET_FLAGS);
            cmd_run(&Args::parse(&value_flags, &["priority", "estimate", "stats", "combining"]))
        }
        Some("profile") => {
            let mut value_flags =
                vec!["model", "p", "t", "scale", "latency", "max-run", "max-cycles", "out", "ring"];
            value_flags.extend(FAULT_FLAGS);
            value_flags.extend(NET_FLAGS);
            cmd_profile(&Args::parse(&value_flags, &["attr", "combining"]))
        }
        Some("compile") => cmd_compile(&Args::parse(&["t"], &["grouped"])),
        Some("run-file") => {
            let mut value_flags = vec!["model", "p", "t", "max-cycles"];
            value_flags.extend(FAULT_FLAGS);
            value_flags.extend(NET_FLAGS);
            cmd_run_file(&Args::parse(&value_flags, &["stats", "combining"]))
        }
        Some("sweep") => cmd_sweep(&Args::parse(
            &[
                "spec",
                "apps",
                "models",
                "p",
                "t",
                "latency",
                "seeds",
                "drop",
                "net",
                "link-bw",
                "scale",
                "max-cycles",
                "max-retries",
                "jobs",
                "out",
                "csv",
                "resume",
                "job-timeout",
                "retries",
            ],
            &["quiet", "combining", "attr"],
        )),
        Some("check") => {
            cmd_check(&Args::parse(&["fuzz", "seed", "jobs", "shrink-budget", "chaos"], &[]))
        }
        Some("serve") => cmd_serve(&Args::parse(
            &["addr", "port", "jobs", "state-dir", "queue-cap", "cache-cap"],
            &[],
        )),
        _ => usage(),
    }
}

fn cmd_serve(args: &Args) {
    let port: u16 = args.get("port").map(|v| parse_num("port", v)).unwrap_or(8117);
    let addr = format!("{}:{port}", args.get("addr").unwrap_or("127.0.0.1"));
    let workers = flag_or_die(flags::resolve_jobs(args.get("jobs")));
    let queue_cap: usize = args.get("queue-cap").map(|v| parse_num("queue-cap", v)).unwrap_or(64);
    if queue_cap == 0 {
        bad_usage("--queue-cap must be >= 1");
    }
    let cache_cap: usize = args.get("cache-cap").map(|v| parse_num("cache-cap", v)).unwrap_or(128);
    let cfg = mtsim_serve::ServeConfig {
        addr,
        workers,
        state_dir: args.get("state-dir").unwrap_or("mtsim-serve-state").to_string(),
        queue_cap,
        cache_cap,
    };
    let server = mtsim_serve::Server::bind(cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot start server: {e}");
        std::process::exit(EXIT_RUN_FAILED);
    });
    // The authoritative address line (stdout, flushed): with --port 0
    // the kernel picks the port, and scripts parse it from here.
    match server.local_addr() {
        Ok(local) => {
            use std::io::Write;
            println!("mtsim-serve listening on {local}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("error: cannot read bound address: {e}");
            std::process::exit(EXIT_RUN_FAILED);
        }
    }
    if let Err(e) = server.run() {
        eprintln!("error: {e}");
        std::process::exit(EXIT_RUN_FAILED);
    }
}

/// Parses an unsigned seed, accepting both decimal and `0x` hex.
fn parse_seed(flag: &str, v: &str) -> u64 {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.unwrap_or_else(|_| bad_usage(&format!("bad value '{v}' for --{flag}")))
}

fn cmd_check(args: &Args) {
    if let Some(v) = args.get("chaos") {
        let mut cfg =
            mtsim_check::ChaosConfig { trials: parse_num("chaos", v), ..Default::default() };
        if cfg.trials == 0 {
            bad_usage("--chaos must be >= 1");
        }
        if let Some(v) = args.get("seed") {
            cfg.seed = parse_seed("seed", v);
        }
        if let Some(n) = flag_or_die(flags::resolve_jobs(args.get("jobs"))) {
            cfg.workers = n;
        }
        let summary = mtsim_check::chaos(cfg);
        print!("{}", summary.report());
        if !summary.passed() {
            std::process::exit(EXIT_RUN_FAILED);
        }
        return;
    }
    let mut cfg = mtsim_check::FuzzConfig::default();
    if let Some(v) = args.get("fuzz") {
        cfg.cases = parse_num("fuzz", v);
    }
    if let Some(v) = args.get("seed") {
        cfg.seed = parse_seed("seed", v);
    }
    if let Some(n) = flag_or_die(flags::resolve_jobs(args.get("jobs"))) {
        cfg.jobs = n;
    }
    if let Some(v) = args.get("shrink-budget") {
        cfg.shrink_budget = parse_num("shrink-budget", v);
    }
    if cfg.cases == 0 {
        bad_usage("--fuzz must be >= 1");
    }

    let summary = mtsim_check::fuzz(cfg);
    print!("{}", summary.report());
    if !summary.passed() {
        std::process::exit(EXIT_RUN_FAILED);
    }
}

/// Grid-axis flags forwarded verbatim to [`SweepSpec::set`].
const SWEEP_KEYS: [&str; 11] = [
    "apps",
    "models",
    "p",
    "t",
    "latency",
    "seeds",
    "drop",
    "net",
    "link-bw",
    "max-cycles",
    "max-retries",
];

fn cmd_sweep(args: &Args) {
    use std::io::IsTerminal;

    // Spec file first, explicit flags override.
    let mut spec = match args.get("spec") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(EXIT_USAGE);
            });
            SweepSpec::parse_file(&text).unwrap_or_else(|e| bad_usage(&format!("{path}: {e}")))
        }
        None => SweepSpec::default(),
    };
    for key in SWEEP_KEYS {
        if let Some(value) = args.get(key) {
            spec.set(key, value).unwrap_or_else(|e| bad_usage(&e));
        }
    }
    if args.has("combining") {
        spec.set("combining", "true").unwrap_or_else(|e| bad_usage(&e));
    }
    if args.has("attr") {
        spec.set("attr", "true").unwrap_or_else(|e| bad_usage(&e));
    }
    if let Some(s) = args.get("scale") {
        spec.scale = parse_scale(s);
    }

    let workers = flag_or_die(flags::resolve_jobs(args.get("jobs")));
    let quiet = args.has("quiet");
    let job_timeout = args.get("job-timeout").map(|v| {
        let secs: f64 = parse_num("job-timeout", v);
        if !(secs > 0.0 && secs.is_finite()) {
            bad_usage("--job-timeout must be a positive number of seconds");
        }
        std::time::Duration::from_secs_f64(secs)
    });
    let retries: u32 = args.get("retries").map(|v| parse_num("retries", v)).unwrap_or(2);
    // Streaming rides along with --out: the checkpoint lives next to the
    // final table. On resume the checkpoint path is the stream.
    let resume = args.get("resume");
    let stream = match resume {
        Some(_) => None, // resume_sweep reopens the checkpoint itself
        None => args.get("out").map(|o| format!("{o}.jsonl")),
    };
    let opts = SweepOpts {
        workers,
        progress: !quiet && std::io::stderr().is_terminal(),
        stream,
        job_timeout,
        retries,
        ..SweepOpts::default()
    };

    let run = match resume {
        Some(path) => mtsim_sweep::resume_sweep(&spec, &opts, path),
        None => mtsim_sweep::run_sweep(&spec, &opts),
    };
    let out = match run {
        Ok(out) => out,
        Err(e @ mtsim_sweep::SweepError::Aborted { .. }) => {
            eprintln!("error: {e}");
            std::process::exit(EXIT_ABORTED);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(EXIT_USAGE);
        }
    };

    // Deterministic table to the requested sinks; CSV to stdout when no
    // file was asked for.
    let mut wrote_file = false;
    if let Some(path) = args.get("out") {
        std::fs::write(path, out.results_json() + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(EXIT_USAGE);
        });
        wrote_file = true;
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, out.results_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(EXIT_USAGE);
        });
        wrote_file = true;
    }
    if !wrote_file {
        print!("{}", out.results_csv());
    }

    if !quiet {
        eprintln!("{}", out.summary_line());
        for job in out.jobs.iter().filter(|j| j.result.is_err()) {
            let s = &job.spec;
            if let Err(e) = &job.result {
                let tag = if job.quarantined { "quarantined" } else { "failed" };
                eprintln!(
                    "  {tag}: job {} ({} {} p={} t={} latency={} seed={}): {e}",
                    s.id, s.app, s.model, s.procs, s.threads_per_proc, s.latency, s.seed
                );
            }
        }
    }
    if out.quarantined_count() > 0 {
        std::process::exit(EXIT_QUARANTINED);
    }
    if out.failed_count() > 0 {
        std::process::exit(EXIT_RUN_FAILED);
    }
}

fn cmd_disasm(args: &Args) {
    let Some(app_name) = args.positional.get(1) else { usage() };
    let scale = args.get("scale").map(parse_scale).unwrap_or(Scale::Tiny);
    let app = build_app(parse_app(app_name), scale, 1);
    if args.has("grouped") {
        let (grouped, stats) = app.grouped();
        println!(
            "; {} grouped: {} loads in {} groups (factor {:.2})",
            app_name,
            stats.grouped_loads,
            stats.switches_inserted,
            stats.grouping_factor()
        );
        print!("{}", grouped.listing());
    } else {
        print!("{}", app.program.listing());
    }
}

fn read_and_compile(args: &Args, nthreads: usize) -> mtsim_lang::CompiledUnit {
    let Some(path) = args.positional.get(1) else { usage() };
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(EXIT_USAGE);
    });
    match mtsim_lang::compile(path, &source, nthreads) {
        Ok(unit) => unit,
        Err(e) => {
            eprintln!("{path}:{e}");
            std::process::exit(EXIT_RUN_FAILED);
        }
    }
}

fn cmd_compile(args: &Args) {
    let threads: usize = args.get("t").map(|v| parse_num("t", v)).unwrap_or(4);
    let unit = read_and_compile(args, threads);
    if args.has("grouped") {
        let g = mtsim_opt::group_shared_loads(&unit.program);
        println!(
            "; grouped: {} loads in {} groups (factor {:.2})",
            g.stats.grouped_loads,
            g.stats.switches_inserted,
            g.stats.grouping_factor()
        );
        print!("{}", g.program.listing());
    } else {
        for (name, base, words) in unit.layout.regions() {
            println!("; shared {name} @ {base} ({words} words)");
        }
        print!("{}", unit.program.listing());
    }
}

/// Validates a finished config, mapping config errors to exit code 2.
fn validate_or_die(cfg: &MachineConfig) {
    if let Err(e) = cfg.try_validate() {
        eprintln!("error: invalid configuration: {e}");
        std::process::exit(EXIT_USAGE);
    }
}

/// Prints the modeled-network summary line when a network was simulated.
/// With a latency histogram (from a recorder-attached run) the line
/// reports p50/p99 round-trip latency; without one it falls back to the
/// mean.
fn print_net_stats(cfg: &MachineConfig, r: &mtsim_core::RunResult, lat: Option<&StreamHist>) {
    if let Some(n) = r.net {
        let latency = match lat.filter(|h| h.count() > 0) {
            Some(h) => format!("latency p50 {} p99 {}", h.p50(), h.p99()),
            None => format!("mean latency {:.1}", n.mean_latency()),
        };
        println!(
            "  network       {} ({} round trips, {latency}, max {}, {} queue cycles{})",
            cfg.net.topology,
            n.requests,
            n.latency_max,
            n.queue_cycles,
            if cfg.net.combining {
                format!(", {} of {} F&As combined", n.fa_combined, n.fa_requests)
            } else {
                String::new()
            }
        );
    }
}

/// Prints the shared-load round-trip latency percentile line when the
/// histogram saw at least one reply-bearing load.
fn print_latency_stats(h: &StreamHist) {
    if h.count() > 0 {
        println!(
            "  latency       p50 {} p99 {} round-trip cycles ({} shared loads)",
            h.p50(),
            h.p99(),
            h.count()
        );
    }
}

/// Prints the fault-recovery summary line when fault injection was on.
fn print_fault_stats(cfg: &MachineConfig, r: &mtsim_core::RunResult) {
    if !cfg.fault.is_active() {
        return;
    }
    let wait: u64 = r.per_proc.iter().map(|p| p.fault_wait).sum();
    println!(
        "  faults        {} nack retries, {} timeout resends, {} cycles extra wait",
        r.total_retries(),
        r.total_timeouts(),
        wait
    );
}

fn cmd_run_file(args: &Args) {
    let model = args.get("model").map(parse_model).unwrap_or(SwitchModel::SwitchOnLoad);
    let procs: usize = args.get("p").map(|v| parse_num("p", v)).unwrap_or(2);
    let threads: usize = args.get("t").map(|v| parse_num("t", v)).unwrap_or(4);
    let mut cfg = MachineConfig::new(model, procs, threads);
    cfg.max_cycles =
        args.get("max-cycles").map(|v| parse_num("max-cycles", v)).unwrap_or(5_000_000_000);
    cfg.fault = fault_config(args);
    cfg.net = net_from_args(args);
    validate_or_die(&cfg);

    let unit = read_and_compile(args, procs * threads);
    let program = if model.uses_explicit_switch() {
        mtsim_opt::group_shared_loads(&unit.program).program
    } else {
        unit.program.clone()
    };
    let mem = mtsim_mem::SharedMemory::new(unit.shared_words());
    let mut rec = args
        .has("stats")
        .then(|| mtsim_core::ObsRecorder::with_capacity(cfg.processors, cfg.total_threads(), 1));
    let machine = mtsim_core::Machine::try_new(cfg.clone(), &program, mem);
    let fin = match rec.as_mut() {
        Some(r) => machine.and_then(|m| m.run_with(r)),
        None => machine.and_then(mtsim_core::Machine::run),
    };
    let fin = match fin {
        Ok(f) => f,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(EXIT_RUN_FAILED);
        }
    };
    println!(
        "{model}: {} cycles, utilization {:.1}%, {} switches",
        fin.result.cycles,
        fin.result.utilization() * 100.0,
        fin.result.switches_taken
    );
    for (name, base, words) in unit.layout.regions() {
        let shown = words.min(8);
        let vals: Vec<String> =
            (0..shown).map(|k| fin.shared.read_i64(base + k).to_string()).collect();
        let ell = if words > shown { ", ..." } else { "" };
        println!("  {name:<12} [{}{}]", vals.join(", "), ell);
    }
    if args.has("stats") {
        println!(
            "  run-length mean {:.1}; {:.2} bits/cycle/proc",
            fin.result.run_lengths.mean(),
            fin.result.bits_per_cycle()
        );
        let lat = rec.as_ref().map(|rec| &rec.load_latency);
        if let Some(h) = lat {
            print_latency_stats(h);
        }
        print_net_stats(&cfg, &fin.result, lat);
        print_fault_stats(&cfg, &fin.result);
    }
}

fn cmd_run(args: &Args) {
    let Some(app_name) = args.positional.get(1) else { usage() };
    let kind = parse_app(app_name);
    let model = args.get("model").map(parse_model).unwrap_or(SwitchModel::SwitchOnLoad);
    let procs: usize = args.get("p").map(|v| parse_num("p", v)).unwrap_or(4);
    let threads: usize = args.get("t").map(|v| parse_num("t", v)).unwrap_or(4);
    let scale = args.get("scale").map(parse_scale).unwrap_or(Scale::Small);

    let mut cfg = MachineConfig::new(model, procs, threads);
    if let Some(l) = args.get("latency") {
        cfg.latency = parse_num("latency", l);
    }
    if let Some(mr) = args.get("max-run") {
        cfg.max_run = if mr == "off" { None } else { Some(parse_num("max-run", mr)) };
    }
    cfg.priority_scheduling = args.has("priority");
    cfg.interblock_estimate = args.has("estimate") && model == SwitchModel::ExplicitSwitch;
    cfg.max_cycles =
        args.get("max-cycles").map(|v| parse_num("max-cycles", v)).unwrap_or(5_000_000_000);
    cfg.fault = fault_config(args);
    cfg.net = net_from_args(args);
    validate_or_die(&cfg);

    let app = build_app(kind, scale, procs * threads);
    // `--stats` attaches a recorder (tiny ring: only the histograms are
    // read) so the latency percentiles come from real per-load samples;
    // the simulation itself is bit-identical either way.
    let (r, rec) = if args.has("stats") {
        match profile_app(&app, cfg.clone(), 1) {
            Ok((r, rec)) => (r, Some(rec)),
            Err(e) => {
                eprintln!("run failed: {e}");
                std::process::exit(EXIT_RUN_FAILED);
            }
        }
    } else {
        match run_app(&app, cfg.clone()) {
            Ok(r) => (r, None),
            Err(e) => {
                eprintln!("run failed: {e}");
                std::process::exit(EXIT_RUN_FAILED);
            }
        }
    };

    println!("{app_name} on {model}: {procs} procs x {threads} threads (scale {scale:?})");
    println!("  cycles        {}", r.cycles);
    println!("  instructions  {}", r.instructions);
    println!("  utilization   {:.1}%", r.utilization() * 100.0);
    println!("  result        verified against host reference");
    if args.has("stats") {
        println!(
            "  switches      {} taken, {} skipped, {} forced",
            r.switches_taken, r.switches_skipped, r.forced_switches
        );
        println!("  run-length    mean {:.1}", r.run_lengths.mean());
        for (label, count) in r.run_lengths.buckets() {
            println!("    {label:>8}  {count}");
        }
        println!("  grouping      {:.2} reads/switch-point", r.dynamic_grouping_factor());
        println!("  bandwidth     {:.2} bits/cycle/proc (spin excluded)", r.bits_per_cycle());
        println!(
            "  messages      {} data, {} spin",
            r.traffic.data_messages(),
            r.traffic.spin_messages()
        );
        if let Some(c) = r.cache {
            println!(
                "  cache         {:.1}% hits ({} hits, {} misses, {} invalidations)",
                c.hit_rate() * 100.0,
                c.hits,
                c.misses,
                c.invalidations_received
            );
        }
        println!("  scoreboard    {} stall cycles", r.scoreboard_stalls);
        let lat = rec.as_ref().map(|rec| &rec.load_latency);
        if let Some(h) = lat {
            print_latency_stats(h);
        }
        print_net_stats(&cfg, &r, lat);
        print_fault_stats(&cfg, &r);
    }
}

fn cmd_profile(args: &Args) {
    let Some(app_name) = args.positional.get(1) else { usage() };
    let kind = parse_app(app_name);
    let model = args.get("model").map(parse_model).unwrap_or(SwitchModel::SwitchOnLoad);
    let procs: usize = args.get("p").map(|v| parse_num("p", v)).unwrap_or(4);
    let threads: usize = args.get("t").map(|v| parse_num("t", v)).unwrap_or(4);
    let scale = args.get("scale").map(parse_scale).unwrap_or(Scale::Small);

    let mut cfg = MachineConfig::new(model, procs, threads);
    if let Some(l) = args.get("latency") {
        cfg.latency = parse_num("latency", l);
    }
    if let Some(mr) = args.get("max-run") {
        cfg.max_run = if mr == "off" { None } else { Some(parse_num("max-run", mr)) };
    }
    cfg.max_cycles =
        args.get("max-cycles").map(|v| parse_num("max-cycles", v)).unwrap_or(5_000_000_000);
    cfg.fault = fault_config(args);
    cfg.net = net_from_args(args);
    validate_or_die(&cfg);

    let ring: usize =
        args.get("ring").map(|v| parse_num("ring", v)).unwrap_or(mtsim_core::DEFAULT_RING_CAPACITY);
    if ring == 0 {
        bad_usage("--ring must be >= 1");
    }

    let app = build_app(kind, scale, procs * threads);
    let (r, rec) = match profile_app(&app, cfg.clone(), ring) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(EXIT_RUN_FAILED);
        }
    };

    let out_path = args.get("out").unwrap_or("trace.json");
    std::fs::write(out_path, rec.chrome_trace()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(EXIT_USAGE);
    });

    println!("{app_name} on {model}: {procs} procs x {threads} threads (scale {scale:?})");
    println!("  cycles        {}", r.cycles);
    println!(
        "  trace         {} events ({} dropped) -> {out_path}",
        rec.events.len(),
        rec.events.dropped()
    );
    print_latency_stats(&rec.load_latency);
    if rec.run_lengths.count() > 0 {
        println!(
            "  run-length    p50 {} p99 {} busy cycles between switches",
            rec.run_lengths.p50(),
            rec.run_lengths.p99()
        );
    }
    if rec.queue_residency.count() > 0 {
        println!(
            "  net queueing  p50 {} p99 {} cycles per message",
            rec.queue_residency.p50(),
            rec.queue_residency.p99()
        );
    }
    print_net_stats(&cfg, &r, Some(&rec.load_latency));
    print_fault_stats(&cfg, &r);
    if args.has("attr") {
        print!("{}", rec.flame_table());
    }
}
