//! `mtsim` — command-line driver for the simulator.
//!
//! ```text
//! mtsim run <app> [--model M] [-p N] [-t N] [--scale S] [--latency N]
//!            [--max-run N|off] [--priority] [--estimate] [--stats]
//! mtsim list
//! mtsim disasm <app> [--grouped] [--scale S]
//! mtsim models
//! mtsim compile <file.mtc> [-t N] [--grouped]
//! mtsim run-file <file.mtc> [--model M] [-p N] [-t N] [--stats]
//! ```
//!
//! Examples:
//!
//! ```text
//! mtsim run sor --model explicit-switch -p 4 -t 8 --stats
//! mtsim disasm sor --grouped | head -40
//! ```

use mtsim_apps::{build_app, run_app, AppKind, Scale};
use mtsim_core::{MachineConfig, SwitchModel};

fn usage() -> ! {
    eprintln!(
        "usage:\n  mtsim run <app> [--model M] [-p N] [-t N] [--scale tiny|small|full]\n             [--latency N] [--max-run N|off] [--priority] [--estimate] [--stats]\n  mtsim list\n  mtsim models\n  mtsim disasm <app> [--grouped] [--scale S]\n  mtsim compile <file.mtc> [-t N] [--grouped]\n  mtsim run-file <file.mtc> [--model M] [-p N] [-t N] [--stats]\n\napps: {}\nmodels: {}",
        AppKind::ALL.map(|a| a.name()).join(", "),
        SwitchModel::ALL.map(|m| m.name()).join(", ")
    );
    std::process::exit(2);
}

fn parse_app(s: &str) -> AppKind {
    AppKind::ALL.into_iter().find(|a| a.name() == s).unwrap_or_else(|| {
        eprintln!("unknown app '{s}'");
        usage()
    })
}

fn parse_model(s: &str) -> SwitchModel {
    SwitchModel::ALL.into_iter().find(|m| m.name() == s).unwrap_or_else(|| {
        eprintln!("unknown model '{s}'");
        usage()
    })
}

fn parse_scale(s: &str) -> Scale {
    match s {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "full" => Scale::Full,
        _ => {
            eprintln!("unknown scale '{s}'");
            usage()
        }
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(takes_value: &[&str]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                let value = if takes_value.contains(&name) {
                    Some(it.next().unwrap_or_else(|| {
                        eprintln!("flag --{name} needs a value");
                        usage()
                    }))
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn main() {
    let args = Args::parse(&["model", "p", "t", "scale", "latency", "max-run"]);
    match args.positional.first().map(String::as_str) {
        Some("list") => {
            for a in AppKind::ALL {
                println!("{:<8} {}", a.name(), a.description());
            }
        }
        Some("models") => {
            for m in SwitchModel::ALL {
                println!("{}", m.name());
            }
        }
        Some("disasm") => cmd_disasm(&args),
        Some("run") => cmd_run(&args),
        Some("compile") => cmd_compile(&args),
        Some("run-file") => cmd_run_file(&args),
        _ => usage(),
    }
}

fn cmd_disasm(args: &Args) {
    let Some(app_name) = args.positional.get(1) else { usage() };
    let scale = args.get("scale").map(parse_scale).unwrap_or(Scale::Tiny);
    let app = build_app(parse_app(app_name), scale, 1);
    if args.has("grouped") {
        let (grouped, stats) = app.grouped();
        println!(
            "; {} grouped: {} loads in {} groups (factor {:.2})",
            app_name,
            stats.grouped_loads,
            stats.switches_inserted,
            stats.grouping_factor()
        );
        print!("{}", grouped.listing());
    } else {
        print!("{}", app.program.listing());
    }
}

fn read_and_compile(args: &Args, nthreads: usize) -> mtsim_lang::CompiledUnit {
    let Some(path) = args.positional.get(1) else { usage() };
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    match mtsim_lang::compile(path, &source, nthreads) {
        Ok(unit) => unit,
        Err(e) => {
            eprintln!("{path}:{e}");
            std::process::exit(1);
        }
    }
}

fn cmd_compile(args: &Args) {
    let threads: usize = args.get("t").map(|v| v.parse().expect("bad -t")).unwrap_or(4);
    let unit = read_and_compile(args, threads);
    if args.has("grouped") {
        let g = mtsim_opt::group_shared_loads(&unit.program);
        println!(
            "; grouped: {} loads in {} groups (factor {:.2})",
            g.stats.grouped_loads,
            g.stats.switches_inserted,
            g.stats.grouping_factor()
        );
        print!("{}", g.program.listing());
    } else {
        for (name, base, words) in unit.layout.regions() {
            println!("; shared {name} @ {base} ({words} words)");
        }
        print!("{}", unit.program.listing());
    }
}

fn cmd_run_file(args: &Args) {
    let model = args.get("model").map(parse_model).unwrap_or(SwitchModel::SwitchOnLoad);
    let procs: usize = args.get("p").map(|v| v.parse().expect("bad -p")).unwrap_or(2);
    let threads: usize = args.get("t").map(|v| v.parse().expect("bad -t")).unwrap_or(4);
    let unit = read_and_compile(args, procs * threads);
    let program = if model.uses_explicit_switch() {
        mtsim_opt::group_shared_loads(&unit.program).program
    } else {
        unit.program.clone()
    };
    let mut cfg = MachineConfig::new(model, procs, threads);
    cfg.max_cycles = 5_000_000_000;
    let mem = mtsim_mem::SharedMemory::new(unit.shared_words());
    let fin = match mtsim_core::Machine::new(cfg, &program, mem).run() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{model}: {} cycles, utilization {:.1}%, {} switches",
        fin.result.cycles,
        fin.result.utilization() * 100.0,
        fin.result.switches_taken
    );
    for (name, base, words) in unit.layout.regions() {
        let shown = words.min(8);
        let vals: Vec<String> =
            (0..shown).map(|k| fin.shared.read_i64(base + k).to_string()).collect();
        let ell = if words > shown { ", ..." } else { "" };
        println!("  {name:<12} [{}{}]", vals.join(", "), ell);
    }
    if args.has("stats") {
        println!(
            "  run-length mean {:.1}; {:.2} bits/cycle/proc",
            fin.result.run_lengths.mean(),
            fin.result.bits_per_cycle()
        );
    }
}

fn cmd_run(args: &Args) {
    let Some(app_name) = args.positional.get(1) else { usage() };
    let kind = parse_app(app_name);
    let model = args.get("model").map(parse_model).unwrap_or(SwitchModel::SwitchOnLoad);
    let procs: usize = args.get("p").map(|v| v.parse().expect("bad -p")).unwrap_or(4);
    let threads: usize = args.get("t").map(|v| v.parse().expect("bad -t")).unwrap_or(4);
    let scale = args.get("scale").map(parse_scale).unwrap_or(Scale::Small);

    let mut cfg = MachineConfig::new(model, procs, threads);
    if let Some(l) = args.get("latency") {
        cfg.latency = l.parse().expect("bad --latency");
    }
    if let Some(mr) = args.get("max-run") {
        cfg.max_run = if mr == "off" { None } else { Some(mr.parse().expect("bad --max-run")) };
    }
    cfg.priority_scheduling = args.has("priority");
    cfg.interblock_estimate = args.has("estimate") && model == SwitchModel::ExplicitSwitch;
    cfg.max_cycles = 5_000_000_000;

    let app = build_app(kind, scale, procs * threads);
    let r = match run_app(&app, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };

    println!("{app_name} on {model}: {procs} procs x {threads} threads (scale {scale:?})");
    println!("  cycles        {}", r.cycles);
    println!("  instructions  {}", r.instructions);
    println!("  utilization   {:.1}%", r.utilization() * 100.0);
    println!("  result        verified against host reference");
    if args.has("stats") {
        println!(
            "  switches      {} taken, {} skipped, {} forced",
            r.switches_taken, r.switches_skipped, r.forced_switches
        );
        println!("  run-length    mean {:.1}", r.run_lengths.mean());
        for (label, count) in r.run_lengths.buckets() {
            println!("    {label:>8}  {count}");
        }
        println!("  grouping      {:.2} reads/switch-point", r.dynamic_grouping_factor());
        println!("  bandwidth     {:.2} bits/cycle/proc (spin excluded)", r.bits_per_cycle());
        println!(
            "  messages      {} data, {} spin",
            r.traffic.data_messages(),
            r.traffic.spin_messages()
        );
        if let Some(c) = r.cache {
            println!(
                "  cache         {:.1}% hits ({} hits, {} misses, {} invalidations)",
                c.hit_rate() * 100.0,
                c.hits,
                c.misses,
                c.invalidations_received
            );
        }
        println!("  scoreboard    {} stall cycles", r.scoreboard_stalls);
    }
}
