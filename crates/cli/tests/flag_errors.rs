//! End-to-end checks of the typed flag-error path: every malformed
//! structured flag (`--latency-dist`, `--net`, `--link-bw`) exits with
//! code 2 and names the flag, the offending value, and the accepted
//! grammar on stderr.

use std::process::{Command, Output};

fn mtsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mtsim")).args(args).output().expect("spawn mtsim")
}

fn assert_usage_error(args: &[&str], needles: &[&str]) {
    let out = mtsim(args);
    assert_eq!(out.status.code(), Some(2), "args {args:?} should exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for needle in needles {
        assert!(stderr.contains(needle), "args {args:?}: stderr missing {needle:?}\n{stderr}");
    }
}

#[test]
fn malformed_latency_dist_is_a_usage_error() {
    assert_usage_error(
        &[
            "run",
            "sieve",
            "--scale",
            "tiny",
            "--fault-drop",
            "0.1",
            "--latency-dist",
            "gaussian:1:2",
        ],
        &["bad value 'gaussian:1:2' for --latency-dist", "geometric:MIN:MEAN"],
    );
}

#[test]
fn unknown_topology_is_a_usage_error() {
    assert_usage_error(
        &["run", "sieve", "--scale", "tiny", "--net", "torus"],
        &["bad value 'torus' for --net", "crossbar, mesh, or butterfly"],
    );
}

#[test]
fn zero_link_bw_is_a_usage_error() {
    assert_usage_error(
        &["run", "sieve", "--scale", "tiny", "--net", "mesh", "--link-bw", "0"],
        &["bad value '0' for --link-bw", ">= 1"],
    );
}

#[test]
fn net_flags_error_identically_under_run_file_and_sweep() {
    // The same typed path serves every subcommand that takes the flags.
    assert_usage_error(&["sweep", "--net", "torus"], &["unknown topology \"torus\""]);
    assert_usage_error(
        &["run", "sieve", "--scale", "tiny", "--link-bw", "fast"],
        &["bad value 'fast' for --link-bw"],
    );
}

#[test]
fn zero_or_garbage_jobs_is_a_usage_error_everywhere() {
    assert_usage_error(
        &["sweep", "--apps", "sieve", "--jobs", "0"],
        &["bad value '0' for --jobs", ">= 1"],
    );
    assert_usage_error(
        &["check", "--fuzz", "1", "--jobs", "lots"],
        &["bad value 'lots' for --jobs"],
    );
    assert_usage_error(&["serve", "--port", "0", "--jobs", "-3"], &["bad value '-3' for --jobs"]);
}

#[test]
fn invalid_mtsim_jobs_env_is_a_usage_error_not_a_silent_fallback() {
    for bad in ["abc", "0"] {
        let out = Command::new(env!("CARGO_BIN_EXE_mtsim"))
            .args(["sweep", "--apps", "sieve", "--scale", "tiny"])
            .env("MTSIM_JOBS", bad)
            .output()
            .expect("spawn mtsim");
        assert_eq!(out.status.code(), Some(2), "MTSIM_JOBS={bad} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(&format!("bad value '{bad}' for --jobs")), "{stderr}");
        assert!(stderr.contains("MTSIM_JOBS"), "must name the env source:\n{stderr}");
    }
}

#[test]
fn explicit_jobs_overrides_a_bad_environment_and_valid_env_works() {
    // A valid env value is honored; a tiny sweep completes under it.
    let out = Command::new(env!("CARGO_BIN_EXE_mtsim"))
        .args([
            "sweep",
            "--apps",
            "sieve",
            "--models",
            "switch-on-load",
            "--p",
            "2",
            "--t",
            "1",
            "--scale",
            "tiny",
            "--quiet",
        ])
        .env("MTSIM_JOBS", "2")
        .output()
        .expect("spawn mtsim");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // An explicit flag wins before the env is even consulted.
    let out = Command::new(env!("CARGO_BIN_EXE_mtsim"))
        .args([
            "sweep",
            "--apps",
            "sieve",
            "--models",
            "switch-on-load",
            "--p",
            "2",
            "--t",
            "1",
            "--scale",
            "tiny",
            "--quiet",
            "--jobs",
            "1",
        ])
        .env("MTSIM_JOBS", "garbage")
        .output()
        .expect("spawn mtsim");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn well_formed_net_flags_run_and_report_stats() {
    let out = mtsim(&[
        "run",
        "sieve",
        "--scale",
        "tiny",
        "-p",
        "2",
        "-t",
        "2",
        "--net",
        "crossbar",
        "--combining",
        "--stats",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crossbar"), "missing net stats:\n{stdout}");
}
