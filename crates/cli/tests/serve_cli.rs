//! End-to-end service tests against the real binary: submit over a real
//! socket, byte-diff served results against `mtsim sweep`, then `kill
//! -9` the server mid-sweep and prove the restarted process resumes to
//! an identical result.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtsim-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts `mtsim serve --port 0` and parses the bound address off
/// stdout.
fn spawn_server(state_dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mtsim"))
        .args(["serve", "--port", "0", "--jobs", "2", "--state-dir", state_dir.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mtsim serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read address line");
    let addr = line
        .trim()
        .strip_prefix("mtsim-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// One HTTP exchange; returns (status, body).
fn http(addr: &str, raw: &str) -> (u16, Vec<u8>) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw.as_bytes()).expect("write");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        let n = conn.read(&mut buf).expect("read head");
        assert!(n > 0, "closed mid-head");
        raw.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("content-length");
    let mut body = raw[head_end..].to_vec();
    while body.len() < length {
        let n = conn.read(&mut buf).expect("read body");
        assert!(n > 0, "closed mid-body");
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(length);
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, Vec<u8>) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n"))
}

fn post(addr: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    http(
        addr,
        &format!("POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}", body.len()),
    )
}

/// Pulls `"key":<number>` or `"key":"string"` out of a flat JSON body.
fn field(body: &[u8], key: &str) -> String {
    let text = String::from_utf8_lossy(body);
    let pat = format!("\"{key}\":");
    let rest = &text[text.find(&pat).unwrap_or_else(|| panic!("no {key} in {text}")) + pat.len()..];
    rest.trim_start_matches('"').chars().take_while(|c| c.is_alphanumeric()).collect()
}

fn wait_done(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = get(addr, &format!("/v1/sweeps/{id}"));
        assert_eq!(status, 200);
        match field(&body, "state").as_str() {
            "done" => return,
            "queued" | "running" => {}
            other => panic!("job {id} entered state {other}"),
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The reference table for a spec, produced by the batch CLI.
fn sweep_reference(dir: &Path, spec: &str) -> Vec<u8> {
    let spec_path = dir.join("ref.spec");
    let out_path = dir.join("ref.json");
    std::fs::write(&spec_path, spec).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_mtsim"))
        .args([
            "sweep",
            "--spec",
            spec_path.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("spawn mtsim sweep");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    std::fs::read(&out_path).unwrap()
}

const SPEC: &str =
    "apps=sieve\nmodels=switch-on-load,explicit-switch\nprocs=2\nthreads=1,2\nscale=tiny\n";

#[test]
fn served_results_byte_match_the_batch_cli() {
    let dir = tmp_dir("identity");
    let state = dir.join("state");
    let (mut server, addr) = spawn_server(&state);

    let (status, body) = post(&addr, "/v1/sweeps", SPEC);
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let id = field(&body, "id");
    wait_done(&addr, &id);
    let (status, served) = get(&addr, &format!("/v1/sweeps/{id}/results"));
    assert_eq!(status, 200);

    let reference = sweep_reference(&dir, SPEC);
    assert_eq!(served, reference, "served bytes must equal `mtsim sweep --out` for the same spec");
    server.kill().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_dash_nine_mid_sweep_then_restart_resumes_to_identical_bytes() {
    let dir = tmp_dir("chaos");
    let state = dir.join("state");
    // A wide grid of small jobs: long enough to kill mid-flight, cheap
    // enough to finish promptly after the restart.
    let spec = "apps=sieve\nmodels=switch-on-load\nprocs=2\nthreads=2\n\
                latencies=1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20\n\
                seeds=1,2,3\ndrop_rates=0.01\nscale=small\n";

    let (mut server, addr) = spawn_server(&state);
    let (status, body) = post(&addr, "/v1/sweeps", spec);
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let id = field(&body, "id");

    // Wait for durable progress, then SIGKILL — no shutdown handler runs.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = get(&addr, &format!("/v1/sweeps/{id}"));
        let done: u64 = field(&body, "completed").parse().unwrap_or(0);
        if done >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "no progress before kill");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.kill().expect("SIGKILL server");
    server.wait().expect("reap server");

    // The restarted server re-enqueues and resumes the interrupted job.
    let (mut server, addr) = spawn_server(&state);
    wait_done(&addr, &id);
    let (status, served) = get(&addr, &format!("/v1/sweeps/{id}/results"));
    assert_eq!(status, 200);
    let reference = sweep_reference(&dir, spec);
    assert_eq!(served, reference, "post-crash resume must converge to the uninterrupted table");
    server.kill().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
