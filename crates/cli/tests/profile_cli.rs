//! End-to-end checks of the observability surface (DESIGN.md §17): the
//! `profile` subcommand writes a Chrome/Perfetto trace and prints the
//! flame table, and `run --stats` reports exact latency percentiles from
//! the streaming histograms.

use std::process::{Command, Output};

fn mtsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mtsim")).args(args).output().expect("spawn mtsim")
}

fn run_ok(args: &[&str]) -> String {
    let out = mtsim(args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "args {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn stats_reports_exact_percentiles_under_constant_latency() {
    // The paper's memory model is a constant 200-cycle round trip, so
    // every reply-bearing shared load takes exactly 200 cycles and both
    // percentiles must land on it exactly — the histogram's unit buckets
    // are exact below 256.
    let stdout = run_ok(&["run", "sieve", "--scale", "tiny", "-p", "2", "-t", "2", "--stats"]);
    assert!(
        stdout.contains("latency       p50 200 p99 200 round-trip cycles"),
        "missing exact percentile line:\n{stdout}"
    );
}

#[test]
fn profile_writes_a_loadable_trace_and_prints_the_flame_table() {
    let dir = std::env::temp_dir().join(format!("mtsim_profile_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let trace_path = trace.to_str().unwrap();

    let stdout = run_ok(&[
        "profile", "sieve", "--scale", "tiny", "-p", "2", "-t", "2", "--out", trace_path, "--attr",
    ]);
    assert!(stdout.contains("trace"), "missing trace summary line:\n{stdout}");
    assert!(stdout.contains("flame table:"), "missing flame table:\n{stdout}");
    assert!(stdout.contains("share of machine cycles:"), "missing share line:\n{stdout}");

    // The trace must be valid Chrome trace-event JSON: an object with a
    // traceEvents array of "X"/"i"/"M" records. Spot-check the envelope
    // and a couple of required fields without a JSON parser.
    let json = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(
        json.starts_with("{\"traceEvents\":["),
        "bad envelope:\n{}",
        &json[..80.min(json.len())]
    );
    assert!(json.contains(r#""ph":"M""#), "no metadata events");
    assert!(json.contains(r#""ph":"X""#), "no slice events");
    assert!(json.contains(r#""name":"run","cat":"sched""#), "no scheduler slices");
    assert!(json.trim_end().ends_with('}'), "unterminated JSON");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_rejects_a_zero_ring() {
    let out = mtsim(&["profile", "sieve", "--scale", "tiny", "--ring", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--ring must be >= 1"), "{stderr}");
}

#[test]
fn sweep_attr_flag_appends_attribution_columns() {
    let stdout = run_ok(&[
        "sweep",
        "--apps",
        "sieve",
        "--models",
        "switch-on-load",
        "--p",
        "1",
        "--t",
        "2",
        "--scale",
        "tiny",
        "--attr",
        "--quiet",
    ]);
    let header = stdout.lines().next().unwrap();
    assert!(header.ends_with("attr_barrier_wait,attr_idle"), "header missing attr: {header}");
    // Every cycle is attributed: busy+ovh+stall+spin+barrier+idle == P*cycles.
    let row: Vec<&str> = stdout.lines().nth(1).unwrap().split(',').collect();
    let col = |name: &str| {
        let i = header.split(',').position(|h| h == name).unwrap();
        row[i].parse::<u64>().unwrap()
    };
    let attributed: u64 = [
        "attr_busy",
        "attr_switch_ovh",
        "attr_mem_stall",
        "attr_lock_spin",
        "attr_barrier_wait",
        "attr_idle",
    ]
    .iter()
    .map(|n| col(n))
    .sum();
    assert_eq!(attributed, col("procs") * col("cycles"), "attribution leak in: {stdout}");
}

#[test]
fn sweep_without_attr_keeps_the_legacy_header() {
    let stdout = run_ok(&[
        "sweep",
        "--apps",
        "sieve",
        "--models",
        "switch-on-load",
        "--p",
        "1",
        "--t",
        "1",
        "--scale",
        "tiny",
        "--quiet",
    ]);
    let header = stdout.lines().next().unwrap();
    assert!(header.ends_with("error_kind"), "unexpected extra columns: {header}");
    assert!(!stdout.contains("attr_"), "attr columns leaked into unattributed sweep");
}
