//! # mtsim-rt
//!
//! The Sequent-style parallel runtime used by every application:
//! synchronization primitives built — exactly as the paper says — "out of
//! Fetch-and-Add's and spinning":
//!
//! * [`Barrier`] — a reusable generation-counting barrier;
//! * [`TicketLock`] — FIFO mutual exclusion;
//! * [`WorkQueue`] — dynamic self-scheduling over an index space;
//! * [`FloatCell`] — a lock-protected floating-point accumulator.
//!
//! All primitives *emit inline code* into a [`ProgramBuilder`]; the
//! accesses inside spin loops carry [`AccessHint::Spin`] (lock waits) or
//! [`AccessHint::Barrier`] (barrier waits) so the engine's bandwidth
//! statistics can exclude them, matching the paper's footnote 2
//! ("we expect a real machine to provide mechanisms to perform these
//! operations without spinning").
//!
//! ## Example
//!
//! ```
//! use mtsim_asm::{ProgramBuilder, SharedLayout};
//! use mtsim_rt::Barrier;
//!
//! let mut layout = SharedLayout::new();
//! let bar = Barrier::alloc(&mut layout, "bar", 4);
//! let mut b = ProgramBuilder::new("phase");
//! // ... phase 1 work ...
//! bar.emit_wait(&mut b);
//! // ... phase 2 work ...
//! let prog = b.finish();
//! assert!(prog.len() > 0);
//! ```

use mtsim_asm::{IExpr, IVar, ProgramBuilder, SharedLayout};
use mtsim_isa::AccessHint;

/// A reusable centralized barrier: one fetch-and-add counter plus a
/// generation word that arriving threads spin on.
///
/// The last arriver resets the counter and bumps the generation; everyone
/// else spins until the generation changes. Safe for repeated use in loops.
#[derive(Debug, Clone, Copy)]
pub struct Barrier {
    count_addr: i64,
    gen_addr: i64,
    participants: i64,
}

impl Barrier {
    /// Allocates the barrier's two shared words for `participants` threads.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn alloc(layout: &mut SharedLayout, name: &str, participants: i64) -> Barrier {
        assert!(participants > 0, "barrier needs at least one participant");
        let count_addr = layout.alloc(format!("{name}.count"), 1) as i64;
        let gen_addr = layout.alloc(format!("{name}.gen"), 1) as i64;
        Barrier { count_addr, gen_addr, participants }
    }

    /// Number of threads that must arrive.
    pub fn participants(&self) -> i64 {
        self.participants
    }

    /// Emits a barrier wait.
    pub fn emit_wait(&self, b: &mut ProgramBuilder) {
        // my_gen must be read before announcing arrival.
        let my_gen = b.def_i("_bar_gen", b.load_shared(b.const_i(self.gen_addr)));
        let arrived =
            b.def_i("_bar_n", b.fetch_add_hint(b.const_i(self.count_addr), 1, AccessHint::Release));
        b.if_else(
            arrived.get().eq(self.participants - 1),
            |b| {
                // Last arriver: reset, then open the next generation.
                b.store_shared_hint(b.const_i(self.count_addr), 0, AccessHint::Release);
                b.store_shared_hint(
                    b.const_i(self.gen_addr),
                    my_gen.get() + 1,
                    AccessHint::Release,
                );
            },
            |b| {
                b.while_(
                    b.load_shared_hint(b.const_i(self.gen_addr), AccessHint::Barrier)
                        .eq(my_gen.get()),
                    |_b| {},
                );
            },
        );
    }
}

/// FIFO mutual exclusion from a fetch-and-add ticket dispenser and a
/// now-serving word.
#[derive(Debug, Clone, Copy)]
pub struct TicketLock {
    next_addr: i64,
    serving_addr: i64,
}

impl TicketLock {
    /// Allocates the lock's two shared words.
    pub fn alloc(layout: &mut SharedLayout, name: &str) -> TicketLock {
        let next_addr = layout.alloc(format!("{name}.next"), 1) as i64;
        let serving_addr = layout.alloc(format!("{name}.serving"), 1) as i64;
        TicketLock { next_addr, serving_addr }
    }

    /// Emits lock acquisition; returns the ticket, which must be passed to
    /// [`TicketLock::emit_release`] within the same builder scope.
    ///
    /// The holder's scheduling priority is raised for the duration of the
    /// critical section (a 1-cycle `prio` hint, honored only when the
    /// machine enables priority scheduling — the paper's §6.2 suggestion).
    pub fn emit_acquire(&self, b: &mut ProgramBuilder) -> IVar {
        let ticket = b.def_i("_ticket", b.fetch_add(b.const_i(self.next_addr), 1));
        b.while_(
            b.load_shared_hint(b.const_i(self.serving_addr), AccessHint::Spin).ne(ticket.get()),
            |_b| {},
        );
        b.set_priority(1);
        ticket
    }

    /// The ticket-dispenser word address (for compilers that manage the
    /// ticket themselves, e.g. `mtsim-lang` spilling it to local memory).
    pub fn next_addr(&self) -> i64 {
        self.next_addr
    }

    /// The now-serving word address.
    pub fn serving_addr(&self) -> i64 {
        self.serving_addr
    }

    /// Emits lock release.
    pub fn emit_release(&self, b: &mut ProgramBuilder, ticket: IVar) {
        b.store_shared(b.const_i(self.serving_addr), ticket.get() + 1);
        b.set_priority(0);
    }

    /// Emits `body` inside an acquire/release pair.
    pub fn emit_critical(&self, b: &mut ProgramBuilder, body: impl FnOnce(&mut ProgramBuilder)) {
        let ticket = self.emit_acquire(b);
        body(b);
        self.emit_release(b, ticket);
    }
}

/// Dynamic self-scheduling: threads repeatedly grab the next index with
/// fetch-and-add until the index space `0..total` is exhausted. This is
/// the paper's "dynamically scheduling the work" pattern.
#[derive(Debug, Clone, Copy)]
pub struct WorkQueue {
    counter_addr: i64,
}

impl WorkQueue {
    /// Allocates the queue's counter word.
    pub fn alloc(layout: &mut SharedLayout, name: &str) -> WorkQueue {
        let counter_addr = layout.alloc(format!("{name}.counter"), 1) as i64;
        WorkQueue { counter_addr }
    }

    /// Emits `body(item)` for every dynamically claimed `item < total`.
    ///
    /// `chunk` items are claimed per fetch-and-add; `body` runs once per
    /// item (the inner chunk loop is emitted around it).
    pub fn emit_for_each(
        &self,
        b: &mut ProgramBuilder,
        total: impl Into<IExpr>,
        chunk: i64,
        body: impl FnOnce(&mut ProgramBuilder, IVar),
    ) {
        assert!(chunk > 0, "chunk must be positive");
        let total = b.def_i("_wq_total", total);
        let start = b.def_i("_wq_start", 0);
        let again = b.fresh_label();
        let done = b.fresh_label();
        b.place_label(again);
        b.assign(start, b.fetch_add(b.const_i(self.counter_addr), chunk));
        b.branch_if(start.get().ge(total.get()), done);
        // end = min(start + chunk, total)
        let end = b.def_i("_wq_end", start.get() + chunk);
        b.if_(end.get().gt(total.get()), |b| b.assign(end, total.get()));
        b.for_range("_wq_i", start.get(), end.get(), |b, i| body(b, i));
        b.jump(again);
        b.place_label(done);
    }
}

/// A two-level software combining barrier: threads first combine within
/// groups of [`CombiningBarrier::RADIX`], and only the last arriver of
/// each group touches the root counter. This is the software-combining
/// fallback the paper mentions for networks without hardware combining
/// ("If hardware combining is not available, software combining
/// techniques could be used for barriers", §3, citing its reference 26).
///
/// Functionally interchangeable with [`Barrier`]; on a machine without
/// combining it reduces the fetch-and-add pressure on any single memory
/// word from `N` to `RADIX`.
#[derive(Debug, Clone, Copy)]
pub struct CombiningBarrier {
    groups_addr: i64,
    root_addr: i64,
    gen_addr: i64,
    participants: i64,
    ngroups: i64,
}

impl CombiningBarrier {
    /// Threads per first-level combining group.
    pub const RADIX: i64 = 4;

    /// Allocates the barrier's counters for `participants` threads.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn alloc(layout: &mut SharedLayout, name: &str, participants: i64) -> CombiningBarrier {
        assert!(participants > 0, "barrier needs at least one participant");
        let ngroups = (participants + Self::RADIX - 1) / Self::RADIX;
        let groups_addr = layout.alloc(format!("{name}.groups"), ngroups as u64) as i64;
        let root_addr = layout.alloc(format!("{name}.root"), 1) as i64;
        let gen_addr = layout.alloc(format!("{name}.gen"), 1) as i64;
        CombiningBarrier { groups_addr, root_addr, gen_addr, participants, ngroups }
    }

    /// Emits a barrier wait.
    pub fn emit_wait(&self, b: &mut ProgramBuilder) {
        let my_gen = b.def_i("_cb_gen", b.load_shared(b.const_i(self.gen_addr)));
        let group = b.def_i("_cb_grp", b.tid() / Self::RADIX);
        // Size of this thread's group (the last group may be partial).
        let size = b.def_i("_cb_size", b.const_i(Self::RADIX));
        b.if_(group.get().eq(self.ngroups - 1), |b| {
            b.assign(size, b.const_i(self.participants - (self.ngroups - 1) * Self::RADIX));
        });
        let arrived = b.def_i(
            "_cb_n",
            b.fetch_add_hint(group.get() + self.groups_addr, 1, AccessHint::Release),
        );
        b.if_(arrived.get().eq(size.get() - 1), |b| {
            // Group representative: reset the group counter, combine at
            // the root.
            b.store_shared_hint(group.get() + self.groups_addr, 0, AccessHint::Release);
            let r = b.def_i(
                "_cb_r",
                b.fetch_add_hint(b.const_i(self.root_addr), 1, AccessHint::Release),
            );
            b.if_(r.get().eq(self.ngroups - 1), |b| {
                b.store_shared_hint(b.const_i(self.root_addr), 0, AccessHint::Release);
                b.store_shared_hint(
                    b.const_i(self.gen_addr),
                    my_gen.get() + 1,
                    AccessHint::Release,
                );
            });
        });
        b.while_(
            b.load_shared_hint(b.const_i(self.gen_addr), AccessHint::Barrier).eq(my_gen.get()),
            |_b| {},
        );
    }
}

/// A lock-protected shared floating-point accumulator (floating-point has
/// no fetch-and-add, so reductions go through a critical section).
#[derive(Debug, Clone, Copy)]
pub struct FloatCell {
    addr: i64,
    lock: TicketLock,
}

impl FloatCell {
    /// Allocates the cell and its lock.
    pub fn alloc(layout: &mut SharedLayout, name: &str) -> FloatCell {
        let addr = layout.alloc(format!("{name}.value"), 1) as i64;
        let lock = TicketLock::alloc(layout, &format!("{name}.lock"));
        FloatCell { addr, lock }
    }

    /// The cell's shared word address (for host-side reads).
    pub fn addr(&self) -> u64 {
        self.addr as u64
    }

    /// Emits an atomic `cell += value`.
    pub fn emit_add(&self, b: &mut ProgramBuilder, value: impl Into<mtsim_asm::FExpr>) {
        let v = b.def_f("_acc_v", value);
        self.lock.emit_critical(b, |b| {
            let cur = b.def_f("_acc_cur", b.load_shared_f(b.const_i(self.addr)));
            b.store_shared_f(b.const_i(self.addr), cur.get() + v.get());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_core::{Machine, MachineConfig, SwitchModel};
    use mtsim_mem::SharedMemory;

    fn machine(prog: &mtsim_asm::Program, layout: &SharedLayout, p: usize, t: usize) -> Machine {
        Machine::new(
            MachineConfig::new(SwitchModel::SwitchOnLoad, p, t),
            prog,
            SharedMemory::new(layout.size().max(64)),
        )
    }

    #[test]
    fn barrier_separates_phases() {
        // Phase 1: each thread adds to A. Phase 2: thread 0 copies A to B.
        // Without the barrier, A would be incomplete when copied.
        let mut layout = SharedLayout::new();
        let a = layout.alloc("A", 1) as i64;
        let out = layout.alloc("B", 1) as i64;
        let participants = 12;
        let bar = Barrier::alloc(&mut layout, "bar", participants);

        let mut b = ProgramBuilder::new("phases");
        b.fetch_add_discard(b.const_i(a), b.const_i(1), AccessHint::Data);
        bar.emit_wait(&mut b);
        b.if_(b.tid().eq(0), |b| {
            let v = b.def_i("v", b.load_shared(b.const_i(a)));
            b.store_shared(b.const_i(out), v.get());
        });
        let prog = b.finish();

        let fin = machine(&prog, &layout, 4, 3).run().unwrap();
        assert_eq!(fin.shared.read_i64(out as u64), participants);
    }

    #[test]
    fn barrier_is_reusable_in_loops() {
        // Threads alternate phases 20 times; thread 0 checks the counter
        // each round by appending to a log slot it owns.
        let mut layout = SharedLayout::new();
        let a = layout.alloc("A", 1) as i64;
        let ok = layout.alloc("ok", 1) as i64;
        let n = 6;
        let bar = Barrier::alloc(&mut layout, "bar", n);

        let mut b = ProgramBuilder::new("rounds");
        let good = b.def_i("good", 0);
        b.for_range("round", 0, 20, |b, round| {
            b.fetch_add_discard(b.const_i(a), b.const_i(1), AccessHint::Data);
            bar.emit_wait(b);
            b.if_(b.tid().eq(0), |b| {
                let v = b.def_i("v", b.load_shared(b.const_i(a)));
                b.if_(v.get().eq((round.get() + 1) * n), |b| {
                    b.assign(good, good.get() + 1);
                });
            });
            bar.emit_wait(b);
        });
        b.if_(b.tid().eq(0), |b| {
            b.store_shared(b.const_i(ok), good.get());
        });
        let prog = b.finish();

        let fin = machine(&prog, &layout, 3, 2).run().unwrap();
        assert_eq!(fin.shared.read_i64(ok as u64), 20, "every round must see a full barrier");
    }

    #[test]
    fn ticket_lock_serializes_increments() {
        let mut layout = SharedLayout::new();
        let counter = layout.alloc("counter", 1) as i64;
        let lock = TicketLock::alloc(&mut layout, "lock");

        let mut b = ProgramBuilder::new("locked");
        b.for_range("i", 0, 5, |b, _| {
            lock.emit_critical(b, |b| {
                let v = b.def_i("v", b.load_shared(b.const_i(counter)));
                b.store_shared(b.const_i(counter), v.get() + 1);
            });
        });
        let prog = b.finish();

        let fin = machine(&prog, &layout, 4, 2).run().unwrap();
        assert_eq!(fin.shared.read_i64(counter as u64), 4 * 2 * 5);
    }

    #[test]
    fn work_queue_covers_every_item_once() {
        let mut layout = SharedLayout::new();
        let marks = layout.alloc("marks", 100) as i64;
        let wq = WorkQueue::alloc(&mut layout, "wq");

        let mut b = ProgramBuilder::new("dynamic");
        wq.emit_for_each(&mut b, 100, 7, |b, i| {
            b.fetch_add_discard(i.get() + marks, b.const_i(1), AccessHint::Data);
        });
        let prog = b.finish();

        let fin = machine(&prog, &layout, 4, 2).run().unwrap();
        for i in 0..100 {
            assert_eq!(fin.shared.read_i64((marks + i) as u64), 1, "item {i}");
        }
    }

    #[test]
    fn work_queue_respects_total_smaller_than_chunk() {
        let mut layout = SharedLayout::new();
        let marks = layout.alloc("marks", 3) as i64;
        let wq = WorkQueue::alloc(&mut layout, "wq");

        let mut b = ProgramBuilder::new("small");
        wq.emit_for_each(&mut b, 3, 16, |b, i| {
            b.fetch_add_discard(i.get() + marks, b.const_i(1), AccessHint::Data);
        });
        let prog = b.finish();
        let fin = machine(&prog, &layout, 2, 2).run().unwrap();
        for i in 0..3 {
            assert_eq!(fin.shared.read_i64((marks + i) as u64), 1);
        }
    }

    #[test]
    fn combining_barrier_separates_phases() {
        let mut layout = SharedLayout::new();
        let a = layout.alloc("A", 1) as i64;
        let out = layout.alloc("B", 1) as i64;
        let participants = 10; // forces a partial last group
        let bar = CombiningBarrier::alloc(&mut layout, "cb", participants);

        let mut b = ProgramBuilder::new("cb-phases");
        b.fetch_add_discard(b.const_i(a), b.const_i(1), AccessHint::Data);
        bar.emit_wait(&mut b);
        b.if_(b.tid().eq(0), |b| {
            let v = b.def_i("v", b.load_shared(b.const_i(a)));
            b.store_shared(b.const_i(out), v.get());
        });
        let prog = b.finish();

        let fin = machine(&prog, &layout, 5, 2).run().unwrap();
        assert_eq!(fin.shared.read_i64(out as u64), participants);
    }

    #[test]
    fn combining_barrier_is_reusable() {
        let mut layout = SharedLayout::new();
        let a = layout.alloc("A", 1) as i64;
        let ok = layout.alloc("ok", 1) as i64;
        let n = 8;
        let bar = CombiningBarrier::alloc(&mut layout, "cb", n);

        let mut b = ProgramBuilder::new("cb-rounds");
        let good = b.def_i("good", 0);
        b.for_range("round", 0, 12, |b, round| {
            b.fetch_add_discard(b.const_i(a), b.const_i(1), AccessHint::Data);
            bar.emit_wait(b);
            b.if_(b.tid().eq(0), |b| {
                let v = b.def_i("v", b.load_shared(b.const_i(a)));
                b.if_(v.get().eq((round.get() + 1) * n), |b| {
                    b.assign(good, good.get() + 1);
                });
            });
            bar.emit_wait(b);
        });
        b.if_(b.tid().eq(0), |b| b.store_shared(b.const_i(ok), good.get()));
        let prog = b.finish();

        let fin = machine(&prog, &layout, 4, 2).run().unwrap();
        assert_eq!(fin.shared.read_i64(ok as u64), 12);
    }

    #[test]
    fn combining_barrier_spreads_fetch_add_pressure() {
        // 16 threads: 16 group arrivals spread over 4 words plus 4 root
        // arrivals = 20 fetch-and-adds, no single word taking more than
        // RADIX + ngroups.
        let mut layout = SharedLayout::new();
        let bar = CombiningBarrier::alloc(&mut layout, "cb", 16);
        let mut b = ProgramBuilder::new("cb-msg");
        bar.emit_wait(&mut b);
        let prog = b.finish();
        let fin = machine(&prog, &layout, 4, 4).run().unwrap();
        let faa_msgs = fin.result.traffic.messages_of(mtsim_mem::MsgClass::FetchAddReq);
        assert_eq!(faa_msgs, 20);
    }

    #[test]
    fn float_cell_accumulates_atomically() {
        let mut layout = SharedLayout::new();
        let cell = FloatCell::alloc(&mut layout, "sum");

        let mut b = ProgramBuilder::new("fsum");
        let contribution = b.tid().to_f() + 0.5;
        cell.emit_add(&mut b, contribution);
        let prog = b.finish();

        let fin = machine(&prog, &layout, 4, 2).run().unwrap();
        // sum over tid 0..8 of (tid + 0.5) = 28 + 4 = 32
        assert!((fin.shared.read_f64(cell.addr()) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn spin_traffic_is_excluded_from_bandwidth() {
        let mut layout = SharedLayout::new();
        let bar = Barrier::alloc(&mut layout, "bar", 8);
        let mut b = ProgramBuilder::new("spinny");
        bar.emit_wait(&mut b);
        let prog = b.finish();

        let fin = machine(&prog, &layout, 4, 2).run().unwrap();
        assert!(fin.result.traffic.spin_messages() > 0, "spinning must be tagged");
    }

    #[test]
    fn primitives_survive_the_grouping_pass() {
        // The grouping pass must not break barrier/lock semantics.
        let mut layout = SharedLayout::new();
        let counter = layout.alloc("counter", 1) as i64;
        let lock = TicketLock::alloc(&mut layout, "lock");
        let bar = Barrier::alloc(&mut layout, "bar", 6);

        let mut b = ProgramBuilder::new("combo");
        lock.emit_critical(&mut b, |b| {
            let v = b.def_i("v", b.load_shared(b.const_i(counter)));
            b.store_shared(b.const_i(counter), v.get() + 1);
        });
        bar.emit_wait(&mut b);
        let prog = mtsim_opt::group_shared_loads(&b.finish()).program;

        let fin = Machine::new(
            MachineConfig::new(SwitchModel::ExplicitSwitch, 3, 2),
            &prog,
            SharedMemory::new(layout.size()),
        )
        .run()
        .unwrap();
        assert_eq!(fin.shared.read_i64(counter as u64), 6);
    }
}
