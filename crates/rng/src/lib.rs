//! # mtsim-rng
//!
//! A small, dependency-free, deterministic pseudo-random number generator
//! shared by workload generation (`mtsim-apps`) and the fault-injection
//! subsystem (`mtsim-mem`).
//!
//! Everything in the simulator that consumes randomness must be exactly
//! reproducible from a `u64` seed across platforms and releases, so this
//! crate pins a specific algorithm — xoshiro256++ seeded through
//! SplitMix64 — instead of depending on an external crate whose stream
//! could change under us.
//!
//! ```
//! use mtsim_rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64 step: used for seeding and for stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator (Blackman & Vigna). 256 bits of state, period
/// 2²⁵⁶−1, passes BigCrush; more than enough for workload synthesis and
/// fault schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, the
    /// standard recommended seeding procedure).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Derives an independent stream for a named purpose: the same seed
    /// with different labels yields statistically independent generators,
    /// so e.g. drop decisions and latency draws cannot alias.
    pub fn derive(seed: u64, label: &str) -> Rng {
        let mut h = seed ^ 0xA076_1D64_78BD_642F;
        for byte in label.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        Rng::seed_from_u64(h)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Debiased multiply-shift (Lemire). The rejection loop terminates
        // with overwhelming probability on the first draw.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && (hi - lo).is_finite(), "bad range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A draw from the geometric distribution on `{0, 1, 2, …}` with
    /// success probability `p` (mean `(1-p)/p`), by inversion. `p` is
    /// clamped into `(0, 1]`; results are capped at `cap` so one draw can
    /// never run away.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        let p = p.clamp(1e-9, 1.0);
        if p >= 1.0 {
            return 0;
        }
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let k = (u.ln() / (1.0 - p).ln()).floor();
        if k.is_finite() && k >= 0.0 {
            (k as u64).min(cap)
        } else {
            cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn derived_streams_are_independent() {
        let mut a = Rng::derive(5, "drop");
        let mut b = Rng::derive(5, "latency");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            let f = r.range_f64(2.0, 6.0);
            assert!((2.0..6.0).contains(&f));
            let u = r.range_u64(10, 20);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut r = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from_u64(13);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.1)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements virtually never fixed");
    }

    #[test]
    fn geometric_mean_is_plausible() {
        let mut r = Rng::seed_from_u64(19);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(0.25, 1_000)).sum();
        let mean = sum as f64 / n as f64; // expected (1-p)/p = 3.0
        assert!((2.7..3.3).contains(&mean), "mean {mean}");
        assert_eq!(r.geometric(1.0, 10), 0);
        assert!(r.geometric(0.5, 4) <= 4);
    }
}
