//! End-to-end kernel-language tests: compile, run on the machine (under
//! several switch models, grouped and ungrouped), verify results on the
//! host.

use mtsim_core::{Machine, MachineConfig, SwitchModel};
use mtsim_lang::compile;
use mtsim_mem::SharedMemory;
use mtsim_opt::group_shared_loads;

fn run(
    src: &str,
    procs: usize,
    threads: usize,
    model: SwitchModel,
    init: &[(u64, i64)],
) -> SharedMemory {
    let unit = compile("kernel", src, procs * threads).expect("compile");
    let program = if model.uses_explicit_switch() {
        group_shared_loads(&unit.program).program
    } else {
        unit.program.clone()
    };
    let mut mem = SharedMemory::new(unit.shared_words());
    for &(a, v) in init {
        mem.write_i64(a, v);
    }
    let mut cfg = MachineConfig::new(model, procs, threads);
    cfg.max_cycles = 100_000_000;
    Machine::new(cfg, &program, mem).run().expect("run").shared
}

#[test]
fn histogram_kernel_counts_correctly() {
    let src = r#"
        shared int items[64];
        shared int bins[8];
        fn main() {
            int i = tid;
            while (i < 64) {
                int v = items[i];
                faa(bins[v & 7], 1);
                i = i + nthreads;
            }
        }
    "#;
    let unit = compile("hist", src, 4).unwrap();
    let items_base = unit.layout.base("items").unwrap();
    let bins_base = unit.layout.base("bins").unwrap();

    let init: Vec<(u64, i64)> = (0..64).map(|k| (items_base + k, (k * k % 23) as i64)).collect();
    let mem = run(src, 2, 2, SwitchModel::SwitchOnLoad, &init);

    let mut want = [0i64; 8];
    for k in 0..64u64 {
        want[((k * k % 23) & 7) as usize] += 1;
    }
    for (k, &w) in want.iter().enumerate() {
        assert_eq!(mem.read_i64(bins_base + k as u64), w, "bin {k}");
    }
}

#[test]
fn barrier_and_reduction_kernel() {
    let src = r#"
        shared int partial[16];
        shared int total;
        barrier phase;
        fn main() {
            partial[tid] = tid * 10;
            barrier(phase);
            if (tid == 0) {
                int s = 0;
                for (int k = 0; k < nthreads; k = k + 1) {
                    s = s + partial[k];
                }
                total = s;
            }
        }
    "#;
    for model in [SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch] {
        let unit = compile("red", src, 8).unwrap();
        let total = unit.layout.base("total").unwrap();
        let mem = run(src, 4, 2, model, &[]);
        assert_eq!(mem.read_i64(total), (0..8).map(|t| t * 10).sum::<i64>(), "{model}");
    }
}

#[test]
fn lock_kernel_serializes() {
    let src = r#"
        shared int counter;
        lock l;
        fn main() {
            for (int i = 0; i < 5; i = i + 1) {
                acquire(l);
                counter = counter + 1;
                release(l);
            }
        }
    "#;
    let unit = compile("lk", src, 6).unwrap();
    let counter = unit.layout.base("counter").unwrap();
    for model in [SwitchModel::SwitchOnLoad, SwitchModel::ConditionalSwitch] {
        let mem = run(src, 3, 2, model, &[]);
        assert_eq!(mem.read_i64(counter), 6 * 5, "{model}");
    }
}

#[test]
fn float_kernel_with_sqrt_and_conversions() {
    let src = r#"
        shared float xs[32];
        shared float norms[32];
        fn main() {
            int i = tid;
            while (i < 32) {
                float v = xs[i];
                norms[i] = sqrt(v * v + 1.0);
                i = i + nthreads;
            }
        }
    "#;
    let unit = compile("fk", src, 4).unwrap();
    let xs = unit.layout.base("xs").unwrap();
    let norms = unit.layout.base("norms").unwrap();

    let mut mem = SharedMemory::new(unit.shared_words());
    for k in 0..32u64 {
        mem.write_f64(xs + k, k as f64 * 0.5 - 4.0);
    }
    let mut cfg = MachineConfig::new(SwitchModel::SwitchOnUse, 2, 2);
    cfg.max_cycles = 100_000_000;
    let out = Machine::new(cfg, &unit.program, mem).run().unwrap().shared;
    for k in 0..32u64 {
        let v = k as f64 * 0.5 - 4.0;
        assert_eq!(out.read_f64(norms + k), (v * v + 1.0).sqrt(), "norm {k}");
    }
}

#[test]
fn local_arrays_give_private_scratch() {
    // Each thread builds a private table, then publishes one entry.
    let src = r#"
        shared int out[8];
        fn main() {
            local int scratch[16];
            for (int i = 0; i < 16; i = i + 1) {
                scratch[i] = i * (tid + 1);
            }
            out[tid] = scratch[10];
        }
    "#;
    let unit = compile("loc", src, 8).unwrap();
    let out_base = unit.layout.base("out").unwrap();
    let mem = run(src, 4, 2, SwitchModel::SwitchOnLoad, &[]);
    for t in 0..8 {
        assert_eq!(mem.read_i64(out_base + t), 10 * (t as i64 + 1), "thread {t}");
    }
}

#[test]
fn compiled_kernels_group_like_handwritten_code() {
    // A 4-load stencil written in the language should group under the
    // explicit-switch pass just like builder-emitted code.
    let src = r#"
        shared float a[64];
        shared float b[64];
        fn main() {
            for (int i = 1; i < 63; i = i + 1) {
                b[i] = (a[i - 1] + a[i + 1]) + (a[i] * 2.0);
            }
        }
    "#;
    let unit = compile("stencil", src, 1).unwrap();
    let g = group_shared_loads(&unit.program);
    assert!(g.stats.max_group() >= 3, "{:?}", g.stats);
}

#[test]
fn type_errors_are_caught() {
    let cases = [
        ("fn main() { int x = 1.5; }", "type"),
        ("fn main() { float y = 1; }", "type"),
        ("fn main() { int x = 1 + 1.0; }", "differ"),
        ("shared int a[4]; fn main() { float z = a[0]; }", "type"),
        ("fn main() { int x = sqrt(4); }", "float"),
        ("fn main() { barrier(nope); }", "barrier"),
        ("fn main() { acquire(nope); }", "lock"),
        ("fn main() { int x = y; }", "unknown"),
        ("fn main() { int x = 0; int x = 1; }", "already declared"),
        ("shared float f; fn main() { faa(f, 1); }", "shared int"),
    ];
    for (src, needle) in cases {
        let e = compile("bad", src, 2).unwrap_err();
        assert!(e.message.contains(needle), "source: {src}\nexpected '{needle}' in: {e}");
    }
}

#[test]
fn scoping_isolates_blocks() {
    let src = r#"
        shared int out;
        fn main() {
            int x = 1;
            { int y = 2; x = x + y; }
            { int y = 3; x = x + y; }
            if (tid == 0) { out = x; }
        }
    "#;
    let unit = compile("scope", src, 2).unwrap();
    let out = unit.layout.base("out").unwrap();
    let mem = run(src, 1, 2, SwitchModel::SwitchOnLoad, &[]);
    assert_eq!(mem.read_i64(out), 6);
}

#[test]
fn use_out_of_scope_is_an_error() {
    let e = compile("oos", "fn main() { { int y = 2; } int z = y; }", 1).unwrap_err();
    assert!(e.message.contains("unknown name 'y'"), "{e}");
}

#[test]
fn constant_indices_are_bounds_checked() {
    let e = compile("oob", "shared int a[4]; fn main() { a[4] = 1; }", 1).unwrap_err();
    assert!(e.message.contains("out of bounds"), "{e}");
    let e = compile("oob", "shared int a[4]; fn main() { int x = a[9]; }", 1).unwrap_err();
    assert!(e.message.contains("out of bounds"), "{e}");
    let e = compile("oob", "fn main() { local int s[2]; s[2] = 0; }", 1).unwrap_err();
    assert!(e.message.contains("out of bounds"), "{e}");
}
