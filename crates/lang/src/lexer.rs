//! Tokenizer with source positions.

use crate::CompileError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Int(i64),
    Float(f64),
    Ident(String),
    Kw(Kw),
    Punct(&'static str),
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kw {
    Shared,
    Local,
    Lock,
    Barrier,
    Fn,
    IntTy,
    FloatTy,
    If,
    Else,
    While,
    For,
    Tid,
    Nthreads,
    Faa,
    Sqrt,
    Min,
    Max,
    Acquire,
    Release,
    Spin,
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Spanned {
    pub tok: Tok,
    pub line: usize,
    pub col: usize,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "shared" => Kw::Shared,
        "local" => Kw::Local,
        "lock" => Kw::Lock,
        "barrier" => Kw::Barrier,
        "fn" => Kw::Fn,
        "int" => Kw::IntTy,
        "float" => Kw::FloatTy,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "for" => Kw::For,
        "tid" => Kw::Tid,
        "nthreads" => Kw::Nthreads,
        "faa" => Kw::Faa,
        "sqrt" => Kw::Sqrt,
        "min" => Kw::Min,
        "max" => Kw::Max,
        "acquire" => Kw::Acquire,
        "release" => Kw::Release,
        "spin" => Kw::Spin,
        _ => return None,
    })
}

const PUNCTS: [&str; 25] = [
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "(", ")", "{", "}", "[", "]", ";", ",", "=",
    "<", ">", "+", "-", "*", "/", "%", "&",
];

/// Tokenizes `source`.
pub(crate) fn lex(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    let advance = |i: &mut usize, line: &mut usize, col: &mut usize, n: usize, bytes: &[u8]| {
        for _ in 0..n {
            if bytes[*i] == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };

    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            advance(&mut i, &mut line, &mut col, 1, bytes);
            continue;
        }
        // comments
        if source[i..].starts_with("//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            continue;
        }
        if source[i..].starts_with("/*") {
            let (sl, sc) = (line, col);
            advance(&mut i, &mut line, &mut col, 2, bytes);
            while i < bytes.len() {
                if source[i..].starts_with("*/") {
                    advance(&mut i, &mut line, &mut col, 2, bytes);
                    continue 'outer;
                }
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            return Err(CompileError {
                line: sl,
                col: sc,
                message: "unterminated block comment".to_string(),
            });
        }

        let (tl, tc) = (line, col);

        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'e'
                    || bytes[i] == b'E'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && i > start
                        && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
            {
                if bytes[i] == b'.' || bytes[i] == b'e' || bytes[i] == b'E' {
                    is_float = true;
                }
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            let text = &source[start..i];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| CompileError {
                    line: tl,
                    col: tc,
                    message: format!("bad float literal '{text}'"),
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| CompileError {
                    line: tl,
                    col: tc,
                    message: format!("bad integer literal '{text}'"),
                })?)
            };
            out.push(Spanned { tok, line: tl, col: tc });
            continue;
        }

        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            let text = &source[start..i];
            let tok = match keyword(text) {
                Some(k) => Tok::Kw(k),
                None => Tok::Ident(text.to_string()),
            };
            out.push(Spanned { tok, line: tl, col: tc });
            continue;
        }

        for p in PUNCTS {
            if source[i..].starts_with(p) {
                advance(&mut i, &mut line, &mut col, p.len(), bytes);
                out.push(Spanned { tok: Tok::Punct(p), line: tl, col: tc });
                continue 'outer;
            }
        }
        return Err(CompileError {
            line: tl,
            col: tc,
            message: format!("unexpected character '{c}'"),
        });
    }
    out.push(Spanned { tok: Tok::Eof, line, col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_program_fragments() {
        let toks = lex("int x = 42; // comment\nx = x + 1.5e2;").unwrap();
        assert!(toks.iter().any(|t| t.tok == Tok::Int(42)));
        assert!(toks.iter().any(|t| t.tok == Tok::Float(150.0)));
        assert!(toks.iter().any(|t| t.tok == Tok::Kw(Kw::IntTy)));
        assert_eq!(toks.last().unwrap().tok, Tok::Eof);
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("x\n  y").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn two_char_puncts_win() {
        let toks = lex("a <= b == c").unwrap();
        let puncts: Vec<_> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["<=", "=="]);
    }

    #[test]
    fn rejects_garbage() {
        let err = lex("int x = @;").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn block_comments_span_lines() {
        let toks = lex("a /* b\n c */ d").unwrap();
        assert_eq!(toks.len(), 3); // a, d, eof
        assert!(lex("/* unterminated").is_err());
    }
}
