//! Recursive-descent parser.

use crate::ast::{BinOp, Expr, Item, LValue, Stmt, Ty};
use crate::lexer::{Kw, Spanned, Tok};
use crate::CompileError;

#[derive(Debug)]
pub(crate) struct Unit {
    pub items: Vec<Item>,
}

struct Parser<'a> {
    toks: &'a [Spanned],
    pos: usize,
}

pub(crate) fn parse(toks: &[Spanned]) -> Result<Unit, CompileError> {
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while p.peek().tok != Tok::Eof {
        items.push(p.item()?);
    }
    if !items.iter().any(|i| matches!(i, Item::Main { .. })) {
        return Err(p.err_here("program has no `fn main()`"));
    }
    Ok(Unit { items })
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> &Spanned {
        let t = &self.toks[self.pos];
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, s: &Spanned, message: impl Into<String>) -> CompileError {
        CompileError { line: s.line, col: s.col, message: message.into() }
    }

    fn err_here(&self, message: impl Into<String>) -> CompileError {
        let s = self.peek();
        CompileError { line: s.line, col: s.col, message: message.into() }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CompileError> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Punct(q) if *q == p => {
                self.next();
                Ok(())
            }
            _ => Err(self.err(&t, format!("expected '{p}'"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        match &self.peek().tok {
            Tok::Punct(q) if *q == p => {
                self.next();
                true
            }
            _ => false,
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek().tok == Tok::Kw(k) {
            self.next();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, usize, usize), CompileError> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Ident(s) => {
                self.next();
                Ok((s.clone(), t.line, t.col))
            }
            _ => Err(self.err(&t, "expected an identifier")),
        }
    }

    fn ty(&mut self) -> Result<Ty, CompileError> {
        if self.eat_kw(Kw::IntTy) {
            Ok(Ty::Int)
        } else if self.eat_kw(Kw::FloatTy) {
            Ok(Ty::Float)
        } else {
            Err(self.err_here("expected a type (`int` or `float`)"))
        }
    }

    fn int_lit(&mut self) -> Result<u64, CompileError> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Int(v) if v >= 0 => {
                self.next();
                Ok(v as u64)
            }
            _ => Err(self.err(&t, "expected a non-negative integer literal")),
        }
    }

    // ----------------------------------------------------------------
    // Items
    // ----------------------------------------------------------------

    fn item(&mut self) -> Result<Item, CompileError> {
        let t = self.peek().clone();
        if self.eat_kw(Kw::Shared) {
            let ty = self.ty()?;
            let (name, line, col) = self.ident()?;
            let len = if self.eat_punct("[") {
                let n = self.int_lit()?;
                self.expect_punct("]")?;
                Some(n)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Item::Shared { ty, name, len, line, col });
        }
        if self.eat_kw(Kw::Lock) {
            let (name, line, col) = self.ident()?;
            self.expect_punct(";")?;
            return Ok(Item::Lock { name, line, col });
        }
        if self.eat_kw(Kw::Barrier) {
            let (name, line, col) = self.ident()?;
            self.expect_punct(";")?;
            return Ok(Item::Barrier { name, line, col });
        }
        if self.eat_kw(Kw::Fn) {
            let (name, ..) = self.ident()?;
            if name != "main" {
                return Err(self.err(&t, "only `fn main()` is supported"));
            }
            self.expect_punct("(")?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Item::Main { body });
        }
        Err(self.err(&t, "expected a declaration (`shared`, `lock`, `barrier`, `fn`)"))
    }

    // ----------------------------------------------------------------
    // Statements
    // ----------------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.peek().tok == Tok::Eof {
                return Err(self.err_here("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let t = self.peek().clone();

        if matches!(self.peek().tok, Tok::Punct("{")) {
            return Ok(Stmt::Block(self.block()?));
        }
        if self.eat_kw(Kw::Local) {
            let ty = self.ty()?;
            let (name, line, col) = self.ident()?;
            self.expect_punct("[")?;
            let len = self.int_lit()?;
            self.expect_punct("]")?;
            self.expect_punct(";")?;
            return Ok(Stmt::LocalArray { ty, name, len, line, col });
        }
        if matches!(self.peek().tok, Tok::Kw(Kw::IntTy) | Tok::Kw(Kw::FloatTy)) {
            let ty = self.ty()?;
            let (name, line, col) = self.ident()?;
            self.expect_punct("=")?;
            let init = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Decl { ty, name, init, line, col });
        }
        if self.eat_kw(Kw::If) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let otherwise = if self.eat_kw(Kw::Else) {
                if matches!(self.peek().tok, Tok::Kw(Kw::If)) {
                    vec![self.stmt()?] // else if
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, otherwise });
        }
        if self.eat_kw(Kw::While) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw(Kw::For) {
            // for (init; cond; step) {body}  ==>  { init; while (cond) { body; step; } }
            self.expect_punct("(")?;
            let init = if matches!(self.peek().tok, Tok::Kw(Kw::IntTy) | Tok::Kw(Kw::FloatTy)) {
                let ty = self.ty()?;
                let (name, line, col) = self.ident()?;
                self.expect_punct("=")?;
                let e = self.expr()?;
                Stmt::Decl { ty, name, init: e, line, col }
            } else {
                let lv = self.lvalue()?;
                self.expect_punct("=")?;
                let e = self.expr()?;
                Stmt::Assign { lv, value: e }
            };
            self.expect_punct(";")?;
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let lv = self.lvalue()?;
            self.expect_punct("=")?;
            let step_e = self.expr()?;
            self.expect_punct(")")?;
            let mut body = self.block()?;
            body.push(Stmt::Assign { lv, value: step_e });
            return Ok(Stmt::Block(vec![init, Stmt::While { cond, body }]));
        }
        if self.eat_kw(Kw::Faa) {
            self.expect_punct("(")?;
            let lv = self.lvalue()?;
            self.expect_punct(",")?;
            let amount = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::FaaStmt { lv, amount, line: t.line, col: t.col });
        }
        if self.eat_kw(Kw::Barrier) {
            self.expect_punct("(")?;
            let (name, line, col) = self.ident()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::BarrierWait { name, line, col });
        }
        if self.eat_kw(Kw::Acquire) {
            self.expect_punct("(")?;
            let (name, line, col) = self.ident()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Acquire { name, line, col });
        }
        if self.eat_kw(Kw::Release) {
            self.expect_punct("(")?;
            let (name, line, col) = self.ident()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Release { name, line, col });
        }

        // assignment
        let lv = self.lvalue()?;
        self.expect_punct("=")?;
        let value = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { lv, value })
    }

    fn lvalue(&mut self) -> Result<LValue, CompileError> {
        let (name, line, col) = self.ident()?;
        if self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            Ok(LValue::Index(name, Box::new(idx), line, col))
        } else {
            Ok(LValue::Name(name, line, col))
        }
    }

    // ----------------------------------------------------------------
    // Expressions (precedence climbing)
    // ----------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.bitor_shift()?;
        let t = self.peek().clone();
        let op = match &t.tok {
            Tok::Punct("==") => BinOp::Eq,
            Tok::Punct("!=") => BinOp::Ne,
            Tok::Punct("<") => BinOp::Lt,
            Tok::Punct("<=") => BinOp::Le,
            Tok::Punct(">") => BinOp::Gt,
            Tok::Punct(">=") => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.bitor_shift()?;
        Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line: t.line, col: t.col })
    }

    fn bitor_shift(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive()?;
        loop {
            let t = self.peek().clone();
            let op = match &t.tok {
                Tok::Punct("&") => BinOp::And,
                Tok::Punct("<<") => BinOp::Shl,
                Tok::Punct(">>") => BinOp::Shr,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.additive()?;
            lhs =
                Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line: t.line, col: t.col };
        }
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let t = self.peek().clone();
            let op = match &t.tok {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.multiplicative()?;
            lhs =
                Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line: t.line, col: t.col };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let t = self.peek().clone();
            let op = match &t.tok {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.unary()?;
            lhs =
                Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line: t.line, col: t.col };
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let t = self.peek().clone();
        if self.eat_punct("-") {
            let e = self.unary()?;
            return Ok(Expr::Neg(Box::new(e), t.line, t.col));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Int(v) => {
                self.next();
                Ok(Expr::IntLit(*v, t.line, t.col))
            }
            Tok::Float(v) => {
                self.next();
                Ok(Expr::FloatLit(*v, t.line, t.col))
            }
            Tok::Kw(Kw::Tid) => {
                self.next();
                Ok(Expr::Tid(t.line, t.col))
            }
            Tok::Kw(Kw::Nthreads) => {
                self.next();
                Ok(Expr::Nthreads(t.line, t.col))
            }
            Tok::Kw(Kw::Faa) => {
                self.next();
                self.expect_punct("(")?;
                let lv = self.lvalue()?;
                self.expect_punct(",")?;
                let amount = self.expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Faa { lv, amount: Box::new(amount), line: t.line, col: t.col })
            }
            Tok::Kw(Kw::Sqrt) => {
                self.next();
                self.expect_punct("(")?;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Sqrt(Box::new(e), t.line, t.col))
            }
            Tok::Kw(Kw::Min) | Tok::Kw(Kw::Max) => {
                let is_min = t.tok == Tok::Kw(Kw::Min);
                self.next();
                self.expect_punct("(")?;
                let a = self.expr()?;
                self.expect_punct(",")?;
                let b = self.expr()?;
                self.expect_punct(")")?;
                Ok(Expr::MinMax {
                    is_min,
                    a: Box::new(a),
                    b: Box::new(b),
                    line: t.line,
                    col: t.col,
                })
            }
            Tok::Kw(Kw::FloatTy) => {
                self.next();
                self.expect_punct("(")?;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(Expr::ToFloat(Box::new(e), t.line, t.col))
            }
            Tok::Kw(Kw::IntTy) => {
                self.next();
                self.expect_punct("(")?;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(Expr::ToInt(Box::new(e), t.line, t.col))
            }
            Tok::Punct("(") => {
                self.next();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let name = name.clone();
                self.next();
                if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(idx), t.line, t.col))
                } else {
                    Ok(Expr::Name(name, t.line, t.col))
                }
            }
            _ => Err(self.err(&t, "expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn p(src: &str) -> Result<Unit, CompileError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_declarations_and_main() {
        let u = p("shared int a[10]; shared float x; lock l; barrier b; fn main() { }").unwrap();
        assert_eq!(u.items.len(), 5);
    }

    #[test]
    fn requires_main() {
        let err = p("shared int a;").unwrap_err();
        assert!(err.message.contains("main"));
    }

    #[test]
    fn parses_statements() {
        let u = p(r#"
            shared int a[8];
            barrier ph;
            fn main() {
                int i = tid;
                while (i < 8) {
                    faa(a[i], 1);
                    i = i + nthreads;
                }
                barrier(ph);
                if (tid == 0) { a[0] = a[0] + 1; } else { }
                for (int k = 0; k < 4; k = k + 1) { a[k] = k; }
            }
        "#)
        .unwrap();
        let Item::Main { body } = u.items.last().unwrap() else { panic!() };
        assert!(body.len() >= 4);
    }

    #[test]
    fn precedence_mul_over_add_over_cmp() {
        let u = p("fn main() { int x = 1 + 2 * 3 < 10; }").unwrap();
        let Item::Main { body } = &u.items[0] else { panic!() };
        let Stmt::Decl { init, .. } = &body[0] else { panic!() };
        // top node is the comparison
        let Expr::Bin { op: BinOp::Lt, lhs, .. } = init else { panic!("{init:?}") };
        let Expr::Bin { op: BinOp::Add, rhs, .. } = lhs.as_ref() else { panic!() };
        assert!(matches!(rhs.as_ref(), Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn error_positions_are_precise() {
        let err = p("fn main() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expression"));
    }

    #[test]
    fn else_if_chains() {
        let u = p("fn main() { int x = 0; if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; } }");
        assert!(u.is_ok(), "{u:?}");
    }
}
