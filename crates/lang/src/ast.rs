//! Abstract syntax for the kernel language.

/// A value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ty {
    Int,
    Float,
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Ty::Int => "int",
            Ty::Float => "float",
        })
    }
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Item {
    /// `shared <ty> name;` or `shared <ty> name[len];`
    Shared { ty: Ty, name: String, len: Option<u64>, line: usize, col: usize },
    /// `lock name;`
    Lock { name: String, line: usize, col: usize },
    /// `barrier name;`
    Barrier { name: String, line: usize, col: usize },
    /// `fn main() { ... }`
    Main { body: Vec<Stmt> },
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LValue {
    /// A scalar variable (local register var or shared scalar).
    Name(String, usize, usize),
    /// An indexed array (shared or local).
    Index(String, Box<Expr>, usize, usize),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::enum_variant_names)]
pub(crate) enum Stmt {
    /// `int x = e;` / `float y = e;` (initializer required).
    Decl { ty: Ty, name: String, init: Expr, line: usize, col: usize },
    /// `local int buf[n];` / `local float buf[n];`
    LocalArray { ty: Ty, name: String, len: u64, line: usize, col: usize },
    /// `lv = e;`
    Assign { lv: LValue, value: Expr },
    /// `faa(lv, e);` with the result discarded.
    FaaStmt { lv: LValue, amount: Expr, line: usize, col: usize },
    /// `if (c) {..} else {..}`
    If { cond: Expr, then: Vec<Stmt>, otherwise: Vec<Stmt> },
    /// `while (c) {..}`
    While { cond: Expr, body: Vec<Stmt> },
    /// `barrier(name);`
    BarrierWait { name: String, line: usize, col: usize },
    /// `acquire(name);`
    Acquire { name: String, line: usize, col: usize },
    /// `release(name);`
    Release { name: String, line: usize, col: usize },
    /// `{ ... }`
    Block(Vec<Stmt>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Expr {
    IntLit(i64, usize, usize),
    FloatLit(f64, usize, usize),
    /// Scalar read (register var or shared scalar).
    Name(String, usize, usize),
    /// Array read.
    Index(String, Box<Expr>, usize, usize),
    Tid(usize, usize),
    Nthreads(usize, usize),
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: usize,
        col: usize,
    },
    /// Unary minus.
    Neg(Box<Expr>, usize, usize),
    /// `faa(lv, e)` as an expression (yields the old value).
    Faa {
        lv: LValue,
        amount: Box<Expr>,
        line: usize,
        col: usize,
    },
    /// `sqrt(e)`
    Sqrt(Box<Expr>, usize, usize),
    /// `min(a, b)` / `max(a, b)` (float).
    MinMax {
        is_min: bool,
        a: Box<Expr>,
        b: Box<Expr>,
        line: usize,
        col: usize,
    },
    /// `float(e)`
    ToFloat(Box<Expr>, usize, usize),
    /// `int(e)`
    ToInt(Box<Expr>, usize, usize),
}

impl Expr {
    /// The expression's source position.
    pub(crate) fn pos(&self) -> (usize, usize) {
        match self {
            Expr::IntLit(_, l, c)
            | Expr::FloatLit(_, l, c)
            | Expr::Name(_, l, c)
            | Expr::Index(_, _, l, c)
            | Expr::Tid(l, c)
            | Expr::Nthreads(l, c)
            | Expr::Neg(_, l, c)
            | Expr::Sqrt(_, l, c)
            | Expr::ToFloat(_, l, c)
            | Expr::ToInt(_, l, c) => (*l, *c),
            Expr::Bin { line, col, .. }
            | Expr::Faa { line, col, .. }
            | Expr::MinMax { line, col, .. } => (*line, *col),
        }
    }
}
