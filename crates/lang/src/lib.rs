//! # mtsim-lang
//!
//! A small C-flavored kernel language that compiles to the `mtsim`
//! machine — playing the role of the paper's application language: "This
//! grouping is facilitated by the introduction of an explicit context
//! switch instruction and **compiler** optimization techniques." The
//! frontend produces compiler-natural code through `mtsim-asm`'s builder;
//! the `mtsim-opt` grouping pass then optimizes it like any other program.
//!
//! ## The language
//!
//! ```text
//! // Global declarations: shared memory, synchronization objects.
//! shared int   items[1000];
//! shared int   bins[16];
//! shared float total;
//! lock    total_lock;
//! barrier phase;                  // participants = the build's nthreads
//!
//! fn main() {
//!     int i = tid;
//!     while (i < 1000) {
//!         int v = items[i];
//!         faa(bins[v & 15], 1);   // fetch-and-add statement
//!         i = i + nthreads;
//!     }
//!     barrier(phase);
//!     if (tid == 0) {
//!         float s = 0.0;
//!         for (int k = 0; k < 16; k = k + 1) {
//!             s = s + float(bins[k]);
//!         }
//!         acquire(total_lock);
//!         total = total + s;
//!         release(total_lock);
//!     }
//! }
//! ```
//!
//! Types are `int` (i64) and `float` (f64) with **no implicit
//! conversions** (`float(e)` / `int(e)` convert). `local float buf[64];`
//! declares per-thread arrays. Builtins: `tid`, `nthreads`, `faa(lv, e)`
//! (expression or statement), `sqrt`, `min`, `max`, `barrier(name)`,
//! `acquire(name)`/`release(name)`.
//!
//! ## Example
//!
//! ```
//! let src = "shared int out; fn main() { faa(out, tid + 1); }";
//! let unit = mtsim_lang::compile("hello", src, 4).unwrap();
//! assert!(unit.program.len() > 0);
//! assert_eq!(unit.layout.base("out"), Some(0));
//! ```

mod ast;
mod codegen;
mod lexer;
mod parser;

pub use codegen::CompiledUnit;

use mtsim_asm::SharedLayout;

/// A source-located compile error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles `source` into a program image for `nthreads` threads.
///
/// Shared declarations are laid out in declaration order from address 0
/// (inspect [`CompiledUnit::layout`]); barriers are sized to `nthreads`.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or type error with its source
/// position.
pub fn compile(name: &str, source: &str, nthreads: usize) -> Result<CompiledUnit, CompileError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens)?;
    codegen::generate(name, &unit, nthreads as i64)
}

/// Convenience: compile and also return the shared layout size the
/// machine needs.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with_layout(
    name: &str,
    source: &str,
    nthreads: usize,
) -> Result<(CompiledUnit, SharedLayout), CompileError> {
    let unit = compile(name, source, nthreads)?;
    let layout = unit.layout.clone();
    Ok((unit, layout))
}
