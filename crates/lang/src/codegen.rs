//! Type checking and code generation through `mtsim-asm`'s builder.

use crate::ast::{BinOp, Expr, Item, LValue, Stmt, Ty};
use crate::parser::Unit;
use crate::CompileError;
use mtsim_asm::{FExpr, IExpr, Program, ProgramBuilder, SharedLayout};
use mtsim_isa::{AccessHint, AluOp, CmpOp};
use mtsim_rt::{Barrier, TicketLock};
use std::collections::HashMap;

/// The output of a successful compile: a runnable program plus the layout
/// of its shared declarations (for host-side initialization and result
/// inspection via [`SharedLayout::base`]).
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    /// The compiled (ungrouped) program; run it through
    /// `mtsim_opt::group_shared_loads` for the explicit-switch models.
    pub program: Program,
    /// Shared-memory layout: one named region per `shared` declaration.
    pub layout: SharedLayout,
}

impl CompiledUnit {
    /// Words of shared memory the program needs.
    pub fn shared_words(&self) -> u64 {
        self.layout.size().max(1)
    }
}

#[derive(Debug, Clone)]
enum Sym {
    SharedScalar { ty: Ty, addr: i64 },
    SharedArray { ty: Ty, addr: i64, len: u64 },
    VarInt(mtsim_asm::IVar),
    VarFloat(mtsim_asm::FVar),
    LocalArray { ty: Ty, base: i64, len: u64 },
    Lock { lock: TicketLock, ticket_slot: i64 },
    Bar(Barrier),
}

enum TV {
    I(IExpr),
    F(FExpr),
}

impl TV {
    fn ty(&self) -> Ty {
        match self {
            TV::I(_) => Ty::Int,
            TV::F(_) => Ty::Float,
        }
    }
}

fn err(line: usize, col: usize, message: impl Into<String>) -> CompileError {
    CompileError { line, col, message: message.into() }
}

struct Cg {
    scopes: Vec<HashMap<String, Sym>>,
}

impl Cg {
    fn lookup(&self, name: &str) -> Option<&Sym> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn declare(
        &mut self,
        name: &str,
        sym: Sym,
        line: usize,
        col: usize,
    ) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope");
        if scope.contains_key(name) {
            return Err(err(line, col, format!("'{name}' is already declared in this scope")));
        }
        scope.insert(name.to_string(), sym);
        Ok(())
    }
}

/// Generates the program for a parsed unit.
pub(crate) fn generate(
    name: &str,
    unit: &Unit,
    nthreads: i64,
) -> Result<CompiledUnit, CompileError> {
    let mut layout = SharedLayout::new();
    let mut b = ProgramBuilder::new(name);
    let mut cg = Cg { scopes: vec![HashMap::new()] };

    let mut main_body: Option<&[Stmt]> = None;
    for item in &unit.items {
        match item {
            Item::Shared { ty, name, len, line, col } => {
                let words = len.unwrap_or(1);
                if words == 0 {
                    return Err(err(*line, *col, "zero-length shared array"));
                }
                let addr = layout.alloc(name.clone(), words) as i64;
                let sym = match len {
                    Some(n) => Sym::SharedArray { ty: *ty, addr, len: *n },
                    None => Sym::SharedScalar { ty: *ty, addr },
                };
                cg.declare(name, sym, *line, *col)?;
            }
            Item::Lock { name, line, col } => {
                let lock = TicketLock::alloc(&mut layout, name);
                let ticket_slot = b.local_alloc(1);
                cg.declare(name, Sym::Lock { lock, ticket_slot }, *line, *col)?;
            }
            Item::Barrier { name, line, col } => {
                let bar = Barrier::alloc(&mut layout, name, nthreads);
                cg.declare(name, Sym::Bar(bar), *line, *col)?;
            }
            Item::Main { body } => main_body = Some(body),
        }
    }

    let body = main_body.expect("parser guarantees main");
    gen_block(&mut cg, &mut b, body)?;

    Ok(CompiledUnit { program: b.finish(), layout })
}

fn gen_block(cg: &mut Cg, b: &mut ProgramBuilder, stmts: &[Stmt]) -> Result<(), CompileError> {
    cg.scopes.push(HashMap::new());
    let mut result = Ok(());
    for s in stmts {
        result = gen_stmt(cg, b, s);
        if result.is_err() {
            break;
        }
    }
    cg.scopes.pop();
    result
}

fn gen_stmt(cg: &mut Cg, b: &mut ProgramBuilder, stmt: &Stmt) -> Result<(), CompileError> {
    match stmt {
        Stmt::Decl { ty, name, init, line, col } => {
            let v = gen_expr(cg, b, init)?;
            if v.ty() != *ty {
                return Err(err(
                    *line,
                    *col,
                    format!("initializer of '{name}' has type {}, expected {ty}", v.ty()),
                ));
            }
            let sym = match v {
                TV::I(e) => Sym::VarInt(b.def_i(name, e)),
                TV::F(e) => Sym::VarFloat(b.def_f(name, e)),
            };
            cg.declare(name, sym, *line, *col)
        }
        Stmt::LocalArray { ty, name, len, line, col } => {
            if *len == 0 {
                return Err(err(*line, *col, "zero-length local array"));
            }
            let base = b.local_alloc(*len);
            cg.declare(name, Sym::LocalArray { ty: *ty, base, len: *len }, *line, *col)
        }
        Stmt::Assign { lv, value } => {
            let v = gen_expr(cg, b, value)?;
            gen_store(cg, b, lv, v)
        }
        Stmt::FaaStmt { lv, amount, line, col } => {
            let addr = faa_addr(cg, b, lv)?;
            let amt = gen_expr(cg, b, amount)?;
            let TV::I(amt) = amt else {
                return Err(err(*line, *col, "faa amount must be int"));
            };
            b.fetch_add_discard(addr, amt, AccessHint::Data);
            Ok(())
        }
        Stmt::If { cond, then, otherwise } => {
            let c = gen_cond(cg, b, cond)?;
            let mut res = Ok(());
            if otherwise.is_empty() {
                b.if_(c, |b| res = gen_block(cg, b, then));
                res
            } else {
                // Emit the arms sequentially (both closures need `cg`).
                let else_l = b.fresh_label();
                let end = b.fresh_label();
                b.branch_unless(c, else_l);
                b.scoped(|b| res = gen_block(cg, b, then));
                b.jump(end);
                b.place_label(else_l);
                let mut res2 = Ok(());
                b.scoped(|b| res2 = gen_block(cg, b, otherwise));
                b.place_label(end);
                res.and(res2)
            }
        }
        Stmt::While { cond, body } => {
            let c = gen_cond(cg, b, cond)?;
            let mut res = Ok(());
            b.while_(c, |b| res = gen_block(cg, b, body));
            res
        }
        Stmt::BarrierWait { name, line, col } => match cg.lookup(name).cloned() {
            Some(Sym::Bar(bar)) => {
                bar.emit_wait(b);
                Ok(())
            }
            _ => Err(err(*line, *col, format!("'{name}' is not a barrier"))),
        },
        Stmt::Acquire { name, line, col } => match cg.lookup(name).cloned() {
            Some(Sym::Lock { lock, ticket_slot }) => {
                b.scoped(|b| {
                    let ticket = lock.emit_acquire(b);
                    b.store_local(b.const_i(ticket_slot), ticket.get());
                });
                Ok(())
            }
            _ => Err(err(*line, *col, format!("'{name}' is not a lock"))),
        },
        Stmt::Release { name, line, col } => match cg.lookup(name).cloned() {
            Some(Sym::Lock { lock, ticket_slot }) => {
                let ticket = b.load_local(ticket_slot);
                b.store_shared(b.const_i(lock.serving_addr()), ticket + 1);
                b.set_priority(0);
                Ok(())
            }
            _ => Err(err(*line, *col, format!("'{name}' is not a lock"))),
        },
        Stmt::Block(stmts) => {
            let mut res = Ok(());
            b.scoped(|b| res = gen_block(cg, b, stmts));
            res
        }
    }
}

/// Address expression for an int shared lvalue (faa target).
fn faa_addr(cg: &mut Cg, b: &mut ProgramBuilder, lv: &LValue) -> Result<IExpr, CompileError> {
    match lv {
        LValue::Name(name, line, col) => match cg.lookup(name) {
            Some(Sym::SharedScalar { ty: Ty::Int, addr }) => Ok(IExpr::Const(*addr)),
            Some(_) => Err(err(*line, *col, format!("faa target '{name}' must be a shared int"))),
            None => Err(err(*line, *col, format!("unknown name '{name}'"))),
        },
        LValue::Index(name, idx, line, col) => {
            let sym = cg
                .lookup(name)
                .cloned()
                .ok_or_else(|| err(*line, *col, format!("unknown name '{name}'")))?;
            match sym {
                Sym::SharedArray { ty: Ty::Int, addr, len } => {
                    check_bounds(idx, len, name)?;
                    let i = gen_expr(cg, b, idx)?;
                    let TV::I(i) = i else {
                        return Err(err(*line, *col, "array index must be int"));
                    };
                    Ok(i + addr)
                }
                _ => {
                    Err(err(*line, *col, format!("faa target '{name}' must be a shared int array")))
                }
            }
        }
    }
}

fn gen_store(cg: &mut Cg, b: &mut ProgramBuilder, lv: &LValue, v: TV) -> Result<(), CompileError> {
    match lv {
        LValue::Name(name, line, col) => {
            let sym = cg
                .lookup(name)
                .cloned()
                .ok_or_else(|| err(*line, *col, format!("unknown name '{name}'")))?;
            match (sym, v) {
                (Sym::VarInt(var), TV::I(e)) => {
                    b.assign(var, e);
                    Ok(())
                }
                (Sym::VarFloat(var), TV::F(e)) => {
                    b.assign_f(var, e);
                    Ok(())
                }
                (Sym::SharedScalar { ty: Ty::Int, addr }, TV::I(e)) => {
                    b.store_shared(b.const_i(addr), e);
                    Ok(())
                }
                (Sym::SharedScalar { ty: Ty::Float, addr }, TV::F(e)) => {
                    b.store_shared_f(b.const_i(addr), e);
                    Ok(())
                }
                (Sym::SharedScalar { ty, .. }, got) => Err(err(
                    *line,
                    *col,
                    format!("cannot assign {} to shared {ty} '{name}'", got.ty()),
                )),
                (Sym::VarInt(_), got) | (Sym::VarFloat(_), got) => Err(err(
                    *line,
                    *col,
                    format!("type mismatch assigning {} to '{name}'", got.ty()),
                )),
                _ => Err(err(*line, *col, format!("'{name}' is not assignable"))),
            }
        }
        LValue::Index(name, idx, line, col) => {
            let sym = cg
                .lookup(name)
                .cloned()
                .ok_or_else(|| err(*line, *col, format!("unknown name '{name}'")))?;
            let i = gen_expr(cg, b, idx)?;
            let TV::I(i) = i else {
                return Err(err(*line, *col, "array index must be int"));
            };
            match (sym, v) {
                (Sym::SharedArray { ty: Ty::Int, addr, len }, TV::I(e)) => {
                    check_bounds(idx, len, name)?;
                    b.store_shared(i + addr, e);
                    Ok(())
                }
                (Sym::SharedArray { ty: Ty::Float, addr, len }, TV::F(e)) => {
                    check_bounds(idx, len, name)?;
                    b.store_shared_f(i + addr, e);
                    Ok(())
                }
                (Sym::LocalArray { ty: Ty::Int, base, len }, TV::I(e)) => {
                    check_bounds(idx, len, name)?;
                    b.store_local(i + base, e);
                    Ok(())
                }
                (Sym::LocalArray { ty: Ty::Float, base, len }, TV::F(e)) => {
                    check_bounds(idx, len, name)?;
                    b.store_local_f(i + base, e);
                    Ok(())
                }
                (Sym::SharedArray { ty, .. }, got) | (Sym::LocalArray { ty, .. }, got) => Err(err(
                    *line,
                    *col,
                    format!("cannot store {} into {ty} array '{name}'", got.ty()),
                )),
                _ => Err(err(*line, *col, format!("'{name}' is not an array"))),
            }
        }
    }
}

/// Lowers a condition, branching directly on top-level comparisons.
fn gen_cond(
    cg: &mut Cg,
    b: &mut ProgramBuilder,
    e: &Expr,
) -> Result<mtsim_asm::Cond, CompileError> {
    if let Expr::Bin { op, lhs, rhs, line, col } = e {
        if let Some(direct) = cmp_cond(op) {
            let l = gen_expr(cg, b, lhs)?;
            let r = gen_expr(cg, b, rhs)?;
            return match (l, r) {
                (TV::I(l), TV::I(r)) => Ok(match direct {
                    BinOp::Eq => l.eq(r),
                    BinOp::Ne => l.ne(r),
                    BinOp::Lt => l.lt(r),
                    BinOp::Le => l.le(r),
                    BinOp::Gt => l.gt(r),
                    _ => l.ge(r),
                }),
                (TV::F(l), TV::F(r)) => Ok(match direct {
                    BinOp::Eq => l.feq(r),
                    BinOp::Ne => l.fne(r),
                    BinOp::Lt => l.flt(r),
                    BinOp::Le => l.fle(r),
                    BinOp::Gt => r.flt(l),
                    _ => r.fle(l),
                }),
                _ => Err(err(*line, *col, "comparison operands must have the same type")),
            };
        }
    }
    let v = gen_expr(cg, b, e)?;
    let (line, col) = e.pos();
    match v {
        TV::I(i) => Ok(i.ne(0)),
        TV::F(_) => Err(err(line, col, "condition must be int (use a comparison)")),
    }
}

fn cmp_cond(op: &BinOp) -> Option<BinOp> {
    matches!(op, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
        .then_some(*op)
}

/// Compile-time bounds check for constant indices.
fn check_bounds(idx: &Expr, len: u64, name: &str) -> Result<(), CompileError> {
    if let Expr::IntLit(v, line, col) = idx {
        if *v < 0 || *v as u64 >= len {
            return Err(err(
                *line,
                *col,
                format!("index {v} out of bounds for '{name}' (length {len})"),
            ));
        }
    }
    Ok(())
}

fn gen_expr(cg: &mut Cg, b: &mut ProgramBuilder, e: &Expr) -> Result<TV, CompileError> {
    match e {
        Expr::IntLit(v, ..) => Ok(TV::I(IExpr::Const(*v))),
        Expr::FloatLit(v, ..) => Ok(TV::F(FExpr::Const(*v))),
        Expr::Tid(..) => Ok(TV::I(b.tid())),
        Expr::Nthreads(..) => Ok(TV::I(b.nthreads())),
        Expr::Name(name, line, col) => match cg.lookup(name) {
            Some(Sym::VarInt(v)) => Ok(TV::I(v.get())),
            Some(Sym::VarFloat(v)) => Ok(TV::F(v.get())),
            Some(Sym::SharedScalar { ty: Ty::Int, addr }) => Ok(TV::I(b.load_shared(*addr))),
            Some(Sym::SharedScalar { ty: Ty::Float, addr }) => Ok(TV::F(b.load_shared_f(*addr))),
            Some(_) => Err(err(*line, *col, format!("'{name}' is not a scalar value"))),
            None => Err(err(*line, *col, format!("unknown name '{name}'"))),
        },
        Expr::Index(name, idx, line, col) => {
            let sym = cg
                .lookup(name)
                .cloned()
                .ok_or_else(|| err(*line, *col, format!("unknown name '{name}'")))?;
            let i = gen_expr(cg, b, idx)?;
            let TV::I(i) = i else {
                return Err(err(*line, *col, "array index must be int"));
            };
            match sym {
                Sym::SharedArray { ty: Ty::Int, addr, len } => {
                    check_bounds(idx, len, name)?;
                    Ok(TV::I(b.load_shared(i + addr)))
                }
                Sym::SharedArray { ty: Ty::Float, addr, len } => {
                    check_bounds(idx, len, name)?;
                    Ok(TV::F(b.load_shared_f(i + addr)))
                }
                Sym::LocalArray { ty: Ty::Int, base, len } => {
                    check_bounds(idx, len, name)?;
                    Ok(TV::I(b.load_local(i + base)))
                }
                Sym::LocalArray { ty: Ty::Float, base, len } => {
                    check_bounds(idx, len, name)?;
                    Ok(TV::F(b.load_local_f(i + base)))
                }
                _ => Err(err(*line, *col, format!("'{name}' is not an array"))),
            }
        }
        Expr::Neg(inner, ..) => {
            let v = gen_expr(cg, b, inner)?;
            Ok(match v {
                TV::I(e) => TV::I(IExpr::Const(0) - e),
                TV::F(e) => TV::F(FExpr::Const(0.0) - e),
            })
        }
        Expr::Bin { op, lhs, rhs, line, col } => {
            let l = gen_expr(cg, b, lhs)?;
            let r = gen_expr(cg, b, rhs)?;
            gen_bin(*op, l, r, *line, *col)
        }
        Expr::Faa { lv, amount, line, col } => {
            let addr = faa_addr(cg, b, lv)?;
            let a = gen_expr(cg, b, amount)?;
            let TV::I(a) = a else {
                return Err(err(*line, *col, "faa amount must be int"));
            };
            Ok(TV::I(b.fetch_add(addr, a)))
        }
        Expr::Sqrt(inner, line, col) => {
            let v = gen_expr(cg, b, inner)?;
            match v {
                TV::F(e) => Ok(TV::F(e.sqrt())),
                TV::I(_) => Err(err(*line, *col, "sqrt takes a float")),
            }
        }
        Expr::MinMax { is_min, a, b: rhs, line, col } => {
            let av = gen_expr(cg, b, a)?;
            let bv = gen_expr(cg, b, rhs)?;
            match (av, bv) {
                (TV::F(x), TV::F(y)) => Ok(TV::F(if *is_min { x.min(y) } else { x.max(y) })),
                _ => Err(err(*line, *col, "min/max take floats")),
            }
        }
        Expr::ToFloat(inner, line, col) => {
            let v = gen_expr(cg, b, inner)?;
            match v {
                TV::I(e) => Ok(TV::F(e.to_f())),
                TV::F(_) => Err(err(*line, *col, "float() takes an int")),
            }
        }
        Expr::ToInt(inner, line, col) => {
            let v = gen_expr(cg, b, inner)?;
            match v {
                TV::F(e) => Ok(TV::I(e.to_i())),
                TV::I(_) => Err(err(*line, *col, "int() takes a float")),
            }
        }
    }
}

fn gen_bin(op: BinOp, l: TV, r: TV, line: usize, col: usize) -> Result<TV, CompileError> {
    match (l, r) {
        (TV::I(l), TV::I(r)) => {
            let e = match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => l / r,
                BinOp::Rem => l % r,
                BinOp::And => l & r,
                BinOp::Shl => l << r,
                BinOp::Shr => l >> r,
                BinOp::Eq => IExpr::Bin(AluOp::Seq, Box::new(l), Box::new(r)),
                BinOp::Ne => IExpr::Bin(AluOp::Sne, Box::new(l), Box::new(r)),
                BinOp::Lt => IExpr::Bin(AluOp::Slt, Box::new(l), Box::new(r)),
                BinOp::Le => IExpr::Bin(AluOp::Sle, Box::new(l), Box::new(r)),
                BinOp::Gt => IExpr::Bin(AluOp::Slt, Box::new(r), Box::new(l)),
                BinOp::Ge => IExpr::Bin(AluOp::Sle, Box::new(r), Box::new(l)),
            };
            Ok(TV::I(e))
        }
        (TV::F(l), TV::F(r)) => {
            let e = match op {
                BinOp::Add => return Ok(TV::F(l + r)),
                BinOp::Sub => return Ok(TV::F(l - r)),
                BinOp::Mul => return Ok(TV::F(l * r)),
                BinOp::Div => return Ok(TV::F(l / r)),
                BinOp::Eq => IExpr::CmpF(CmpOp::Eq, Box::new(l), Box::new(r)),
                BinOp::Ne => IExpr::CmpF(CmpOp::Ne, Box::new(l), Box::new(r)),
                BinOp::Lt => IExpr::CmpF(CmpOp::Lt, Box::new(l), Box::new(r)),
                BinOp::Le => IExpr::CmpF(CmpOp::Le, Box::new(l), Box::new(r)),
                BinOp::Gt => IExpr::CmpF(CmpOp::Lt, Box::new(r), Box::new(l)),
                BinOp::Ge => IExpr::CmpF(CmpOp::Le, Box::new(r), Box::new(l)),
                _ => {
                    return Err(err(line, col, format!("operator {op:?} is not defined for float")))
                }
            };
            Ok(TV::I(e))
        }
        (l, r) => Err(err(
            line,
            col,
            format!("operand types differ: {} vs {} (convert explicitly)", l.ty(), r.ty()),
        )),
    }
}
