//! # mtsim-apps
//!
//! The paper's seven parallel applications (Table 1), rewritten for the
//! `mtsim` machine against the `mtsim-rt` runtime:
//!
//! | app | paper workload | behavioral signature |
//! |---|---|---|
//! | [`sieve`] | primes < 4,000,000 | constant-rate marking, steady run-lengths |
//! | [`blkmat`] | 200×200 blocked matmul | private copies ⇒ very long run-lengths |
//! | [`sor`] | 192×192 Laplace SOR | the Figure 4 five-load group |
//! | [`ugray`] | ray tracer, 7169 faces | pointer chasing, condition-split field loads, a lock |
//! | [`water`] | 343 molecules | O(n²) forces, 3-coordinate groups, static balance |
//! | [`locus`] | Primary2 wire routing | branchy neighbor loads, mean run-length ≈ 8 |
//! | [`mp3d`] | 100,000 particles | 6-field records but cache-hostile cell access |
//!
//! Every application verifies its final shared-memory image against a
//! host-side (pure Rust) reference; `sor`, `water`, `ugray`, `blkmat` and
//! `mp3d` reproduce the device floating-point computation bit-for-bit.
//!
//! The [`harness`] module provides the model-aware runner and the paper's
//! efficiency metric; [`AppKind`] + [`build_app`] give the benches a
//! uniform registry.

pub mod blkmat;
pub mod harness;
pub mod locus;
pub mod mp3d;
pub mod sieve;
pub mod sor;
pub mod ugray;
pub mod water;

pub use harness::{
    baseline_cycles, efficiency, profile_app, run_app, run_app_with_program,
    threads_for_efficiency, BuiltApp, RunError,
};

/// The seven applications of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Prime counting.
    Sieve,
    /// Blocked matrix multiply.
    Blkmat,
    /// Red-black SOR for Laplace's equation.
    Sor,
    /// Ray-tracing renderer.
    Ugray,
    /// Water-molecule dynamics.
    Water,
    /// Standard-cell wire routing.
    Locus,
    /// Rarefied hypersonic flow particle simulation.
    Mp3d,
}

impl AppKind {
    /// All applications in the paper's Table 1 order.
    pub const ALL: [AppKind; 7] = [
        AppKind::Sieve,
        AppKind::Blkmat,
        AppKind::Sor,
        AppKind::Ugray,
        AppKind::Water,
        AppKind::Locus,
        AppKind::Mp3d,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Sieve => "sieve",
            AppKind::Blkmat => "blkmat",
            AppKind::Sor => "sor",
            AppKind::Ugray => "ugray",
            AppKind::Water => "water",
            AppKind::Locus => "locus",
            AppKind::Mp3d => "mp3d",
        }
    }

    /// The paper's one-line description (Table 1).
    pub fn description(self) -> &'static str {
        match self {
            AppKind::Sieve => "counts primes below a limit",
            AppKind::Blkmat => "blocked matrix multiply",
            AppKind::Sor => "S.O.R. solver for Laplace's equation",
            AppKind::Ugray => "ray tracing graphics renderer",
            AppKind::Water => "simulates a system of water molecules",
            AppKind::Locus => "routes wires in a standard cell circuit",
            AppKind::Mp3d => "simulates rarefied hypersonic flow",
        }
    }

    /// Parses a display name back to the kind (`"sieve"`, `"mp3d"`, …).
    pub fn from_name(name: &str) -> Option<AppKind> {
        AppKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Experiment scale presets: `Tiny` for unit tests, `Small` for the bench
/// harness (seconds per run), `Full` for the default workloads of
/// DESIGN.md §6 (minutes per table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Unit-test sizes (sub-second under the debug profile).
    Tiny,
    /// Bench-harness sizes.
    Small,
    /// The scaled-paper workloads of DESIGN.md.
    Full,
}

impl Scale {
    /// Display name, usable as a CLI/spec-file value.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }

    /// Parses a display name back to the scale.
    pub fn from_name(name: &str) -> Option<Scale> {
        match name {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds an application at a preset scale for `nthreads` threads.
pub fn build_app(kind: AppKind, scale: Scale, nthreads: usize) -> BuiltApp {
    match kind {
        AppKind::Sieve => {
            let limit = match scale {
                Scale::Tiny => 2_000,
                Scale::Small => 40_000,
                Scale::Full => 200_000,
            };
            sieve::build_sieve(sieve::SieveParams { limit }, nthreads)
        }
        AppKind::Blkmat => {
            let (n, bs) = match scale {
                Scale::Tiny => (16, 4),
                Scale::Small => (32, 8),
                Scale::Full => (64, 8),
            };
            blkmat::build_blkmat(blkmat::BlkmatParams { n, bs }, nthreads)
        }
        AppKind::Sor => {
            let (n, iters) = match scale {
                Scale::Tiny => (12, 2),
                Scale::Small => (32, 3),
                Scale::Full => (64, 4),
            };
            sor::build_sor(sor::SorParams { n, iters, omega: 1.5 }, nthreads)
        }
        AppKind::Ugray => {
            let (side, spheres) = match scale {
                Scale::Tiny => (8, 12),
                Scale::Small => (16, 48),
                Scale::Full => (32, 200),
            };
            ugray::build_ugray(
                ugray::UgrayParams { width: side, height: side, n_spheres: spheres, seed: 42 },
                nthreads,
            )
        }
        AppKind::Water => {
            let (n_mol, iters) = match scale {
                Scale::Tiny => (12, 1),
                Scale::Small => (32, 2),
                Scale::Full => (64, 2),
            };
            water::build_water(water::WaterParams { n_mol, iters, seed: 7 }, nthreads)
        }
        AppKind::Locus => {
            let (w, h, wires) = match scale {
                Scale::Tiny => (12, 8, 8),
                Scale::Small => (24, 16, 24),
                Scale::Full => (64, 24, 80),
            };
            locus::build_locus(
                locus::LocusParams { width: w, height: h, n_wires: wires, seed: 3 },
                nthreads,
            )
        }
        AppKind::Mp3d => {
            let (parts, iters) = match scale {
                Scale::Tiny => (64, 2),
                Scale::Small => (400, 3),
                Scale::Full => (4_000, 5),
            };
            mp3d::build_mp3d(
                mp3d::Mp3dParams { n_particles: parts, iters, grid: 8, seed: 11 },
                nthreads,
            )
        }
    }
}

/// A closure that rebuilds `kind` at `scale` for any thread count —
/// the shape the sweep helpers expect.
pub fn app_builder(kind: AppKind, scale: Scale) -> impl Fn(usize) -> BuiltApp {
    move |nthreads| build_app(kind, scale, nthreads)
}
