//! `water` — molecular-dynamics simulation (paper Table 1: "simulate a
//! system of water molecules — 345 molecules, 2 iterations", from the
//! SPLASH suite).
//!
//! O(n²) pairwise short-range forces with a cutoff, statically partitioned
//! over threads — which is why the paper's Figure 2 shows water's
//! efficiency jumping around with the processor count: the static balance
//! is perfect only when the thread count divides the molecule count.
//! Coordinate loads use Load-Double pairs, giving the grouping pass its
//! 3-loads-per-neighbor groups.

use crate::harness::BuiltApp;
use mtsim_asm::{ProgramBuilder, SharedLayout};
use mtsim_mem::SharedMemory;
use mtsim_rng::Rng;
use mtsim_rt::Barrier;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WaterParams {
    /// Number of molecules (the paper uses 343 = 7³).
    pub n_mol: usize,
    /// Timesteps (the paper uses 2).
    pub iters: usize,
    /// Seed for the deterministic initial configuration.
    pub seed: u64,
}

impl Default for WaterParams {
    fn default() -> WaterParams {
        WaterParams { n_mol: 64, iters: 2, seed: 7 }
    }
}

const BOX: f64 = 4.0;
const CUTOFF2: f64 = 2.0;
const SOFTEN: f64 = 0.01;
const DT: f64 = 0.01;

/// Generates the initial positions/velocities (shared by device image and
/// host reference).
fn initial_state(p: &WaterParams) -> (Vec<f64>, Vec<f64>) {
    let mut rng = Rng::seed_from_u64(p.seed);
    let pos: Vec<f64> = (0..3 * p.n_mol).map(|_| rng.range_f64(0.0, BOX)).collect();
    let vel: Vec<f64> = (0..3 * p.n_mol).map(|_| rng.range_f64(-0.5, 0.5)).collect();
    (pos, vel)
}

/// Host-side reference: identical arithmetic, identical order.
pub fn host_water(p: &WaterParams) -> (Vec<f64>, Vec<f64>) {
    let (mut pos, mut vel) = initial_state(p);
    let n = p.n_mol;
    let mut force = vec![0.0f64; 3 * n];
    for _ in 0..p.iters {
        for i in 0..n {
            let (xi, yi, zi) = (pos[3 * i], pos[3 * i + 1], pos[3 * i + 2]);
            let (mut fx, mut fy, mut fz) = (0.0f64, 0.0f64, 0.0f64);
            for j in 0..n {
                if j != i {
                    let dx = xi - pos[3 * j];
                    let dy = yi - pos[3 * j + 1];
                    let dz = zi - pos[3 * j + 2];
                    let r2 = (dx * dx + dy * dy) + dz * dz;
                    if r2 < CUTOFF2 {
                        let inv = 1.0 / (r2 + SOFTEN);
                        let s = inv * inv - inv * 0.5;
                        fx += s * dx;
                        fy += s * dy;
                        fz += s * dz;
                    }
                }
            }
            force[3 * i] = fx;
            force[3 * i + 1] = fy;
            force[3 * i + 2] = fz;
        }
        for i in 0..n {
            for a in 0..3 {
                vel[3 * i + a] += force[3 * i + a] * DT;
                pos[3 * i + a] += vel[3 * i + a] * DT;
            }
        }
    }
    (pos, vel)
}

/// Builds the water program for `nthreads` threads.
pub fn build_water(params: WaterParams, nthreads: usize) -> BuiltApp {
    let n = params.n_mol as i64;
    assert!(params.n_mol >= 2, "need at least two molecules");

    let mut layout = SharedLayout::new();
    let pos = layout.alloc("pos", 3 * params.n_mol as u64) as i64;
    let vel = layout.alloc("vel", 3 * params.n_mol as u64) as i64;
    let force = layout.alloc("force", 3 * params.n_mol as u64) as i64;
    let bar = Barrier::alloc(&mut layout, "step", nthreads as i64);

    let mut b = ProgramBuilder::new("water");
    let lo = b.def_i("lo", b.tid() * n / b.nthreads());
    let hi = b.def_i("hi", (b.tid() + 1) * n / b.nthreads());

    b.for_range("iter", 0, params.iters as i64, |b, _| {
        // Phase 1: forces on own molecules.
        b.for_range("i", lo.get(), hi.get(), |b, i| {
            let ibase = b.def_i("ibase", i.get() * 3 + pos);
            let (xi, yi) = b.load_pair_shared_f("pi", ibase.get());
            let zi = b.def_f("zi", b.load_shared_f(ibase.get() + 2));
            let fx = b.def_f("fx", 0.0);
            let fy = b.def_f("fy", 0.0);
            let fz = b.def_f("fz", 0.0);
            b.for_range("j", 0, n, |b, j| {
                b.if_(j.get().ne(i.get()), |b| {
                    let jbase = b.def_i("jbase", j.get() * 3 + pos);
                    let (xj, yj) = b.load_pair_shared_f("pj", jbase.get());
                    let zj = b.load_shared_f(jbase.get() + 2);
                    let dx = b.def_f("dx", xi.get() - xj.get());
                    let dy = b.def_f("dy", yi.get() - yj.get());
                    let dz = b.def_f("dz", zi.get() - zj);
                    let r2 = b.def_f(
                        "r2",
                        (dx.get() * dx.get() + dy.get() * dy.get()) + dz.get() * dz.get(),
                    );
                    b.if_(r2.get().flt(CUTOFF2), |b| {
                        let inv = b.def_f("inv", b.const_f(1.0) / (r2.get() + SOFTEN));
                        let s = b.def_f("s", inv.get() * inv.get() - inv.get() * 0.5);
                        b.assign_f(fx, fx.get() + s.get() * dx.get());
                        b.assign_f(fy, fy.get() + s.get() * dy.get());
                        b.assign_f(fz, fz.get() + s.get() * dz.get());
                    });
                });
            });
            let fbase = b.def_i("fbase", i.get() * 3 + force);
            b.store_pair_shared_f(fbase.get(), fx.get(), fy.get());
            b.store_shared_f(fbase.get() + 2, fz.get());
        });
        bar.emit_wait(b);

        // Phase 2: integrate own molecules.
        b.for_range("i", lo.get(), hi.get(), |b, i| {
            let base3 = b.def_i("base3", i.get() * 3);
            b.for_range("a", 0, 3, |b, a| {
                let f = b.load_shared_f(base3.get() + a.get() + force);
                let v = b.def_f("v", b.load_shared_f(base3.get() + a.get() + vel));
                b.assign_f(v, v.get() + f * DT);
                b.store_shared_f(base3.get() + a.get() + vel, v.get());
                let x = b.load_shared_f(base3.get() + a.get() + pos);
                b.store_shared_f(base3.get() + a.get() + pos, x + v.get() * DT);
            });
        });
        bar.emit_wait(b);
    });

    let program = b.finish();
    let mut shared = SharedMemory::new(layout.size());
    let (pos0, vel0) = initial_state(&params);
    for (k, &v) in pos0.iter().enumerate() {
        shared.write_f64((pos as usize + k) as u64, v);
    }
    for (k, &v) in vel0.iter().enumerate() {
        shared.write_f64((vel as usize + k) as u64, v);
    }

    let (want_pos, want_vel) = host_water(&params);
    BuiltApp::new("water", program, shared, nthreads, move |mem| {
        for (k, &w) in want_pos.iter().enumerate() {
            let got = mem.read_f64((pos as usize + k) as u64);
            if got != w {
                return Err(format!("pos[{k}]: got {got}, want {w}"));
            }
        }
        for (k, &w) in want_vel.iter().enumerate() {
            let got = mem.read_f64((vel as usize + k) as u64);
            if got != w {
                return Err(format!("vel[{k}]: got {got}, want {w}"));
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_app;
    use mtsim_core::{MachineConfig, SwitchModel};

    #[test]
    fn host_water_moves_molecules() {
        let p = WaterParams { n_mol: 8, iters: 2, seed: 1 };
        let (pos, _) = host_water(&p);
        let (pos0, _) = initial_state(&p);
        assert!(pos.iter().zip(&pos0).any(|(a, b)| a != b), "positions must change");
    }

    #[test]
    fn water_single_thread_bitexact() {
        let app = build_water(WaterParams { n_mol: 6, iters: 1, seed: 3 }, 1);
        run_app(&app, MachineConfig::ideal(1)).unwrap();
    }

    #[test]
    fn water_parallel_models_bitexact() {
        for (model, p, t) in [
            (SwitchModel::SwitchOnLoad, 3, 2),
            (SwitchModel::ExplicitSwitch, 2, 3),
            (SwitchModel::ConditionalSwitch, 2, 2),
        ] {
            let app = build_water(WaterParams { n_mol: 9, iters: 2, seed: 5 }, p * t);
            run_app(&app, MachineConfig::new(model, p, t)).unwrap();
        }
    }

    #[test]
    fn water_grouping_captures_coordinate_loads() {
        let app = build_water(WaterParams::default(), 4);
        let (_, stats) = app.grouped();
        // The neighbor-coordinate LoadPair + z-load group.
        assert!(stats.max_group() >= 2, "{stats:?}");
    }
}
