//! Common application harness: built-app container, model-aware runner,
//! and the paper's efficiency metric.

use mtsim_asm::Program;
use mtsim_core::{Machine, MachineConfig, ObsRecorder, RunResult, SimError, SwitchModel};
use mtsim_mem::SharedMemory;
use mtsim_opt::{group_shared_loads, GroupStats};

/// Why an application run failed: the simulator stopped with a typed
/// [`SimError`], or it finished but the final memory image disagreed with
/// the host-side reference computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The simulation itself failed (fault exhaustion, deadlock, watchdog,
    /// bad program, bad config).
    Sim {
        /// Application name.
        app: String,
        /// The underlying simulator error.
        err: SimError,
    },
    /// The run completed but produced wrong answers.
    Verify {
        /// Application name.
        app: String,
        /// First mismatch found by the verifier.
        detail: String,
    },
}

impl RunError {
    /// The simulator error, when this failure wraps one.
    pub fn sim_error(&self) -> Option<&SimError> {
        match self {
            RunError::Sim { err, .. } => Some(err),
            RunError::Verify { .. } => None,
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim { app, err } => write!(f, "{app}: {err}"),
            RunError::Verify { app, detail } => {
                write!(f, "{app}: verification failed: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim { err, .. } => Some(err),
            RunError::Verify { .. } => None,
        }
    }
}

/// Host-side verifier of a final shared-memory image.
pub type VerifyFn = Box<dyn Fn(&SharedMemory) -> Result<(), String> + Send + Sync>;

/// A fully constructed application instance: program, initialized shared
/// memory, and a host-side verifier of the final memory image.
pub struct BuiltApp {
    /// Application name.
    pub name: String,
    /// The compiler-natural (ungrouped) program.
    pub program: Program,
    /// The initialized shared-memory input image.
    pub shared: SharedMemory,
    /// Number of threads the program was built for.
    pub nthreads: usize,
    verify: VerifyFn,
}

impl std::fmt::Debug for BuiltApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltApp")
            .field("name", &self.name)
            .field("instructions", &self.program.len())
            .field("shared_words", &self.shared.len())
            .field("nthreads", &self.nthreads)
            .finish()
    }
}

impl BuiltApp {
    /// Assembles a built app (used by the per-application constructors).
    pub fn new(
        name: impl Into<String>,
        program: Program,
        shared: SharedMemory,
        nthreads: usize,
        verify: impl Fn(&SharedMemory) -> Result<(), String> + Send + Sync + 'static,
    ) -> BuiltApp {
        BuiltApp { name: name.into(), program, shared, nthreads, verify: Box::new(verify) }
    }

    /// Checks a final shared-memory image against the host-side reference
    /// computation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn verify(&self, shared: &SharedMemory) -> Result<(), String> {
        (self.verify)(shared)
    }

    /// The grouped (explicit-switch) version of the program plus the
    /// static grouping statistics.
    pub fn grouped(&self) -> (Program, GroupStats) {
        let g = group_shared_loads(&self.program);
        (g.program, g.stats)
    }
}

/// Runs `app` under `cfg`, automatically selecting the grouped program for
/// the explicit/conditional-switch models, and verifies the result.
///
/// # Errors
///
/// Returns [`RunError::Sim`] for any typed simulator error (fault
/// exhaustion, deadlock, watchdog, bad program, bad config — including a
/// thread-count mismatch between the app image and `cfg`) and
/// [`RunError::Verify`] when the final memory image fails the host check.
pub fn run_app(app: &BuiltApp, cfg: MachineConfig) -> Result<RunResult, RunError> {
    if cfg.total_threads() != app.nthreads {
        return Err(RunError::Sim {
            app: app.name.clone(),
            err: SimError::Config {
                detail: format!(
                    "app was built for {} threads, config asks for {}",
                    app.nthreads,
                    cfg.total_threads()
                ),
            },
        });
    }
    let program =
        if cfg.model.uses_explicit_switch() { app.grouped().0 } else { app.program.clone() };
    let fin = Machine::try_new(cfg, &program, app.shared.clone())
        .and_then(Machine::run)
        .map_err(|err| RunError::Sim { app: app.name.clone(), err })?;
    app.verify(&fin.shared).map_err(|detail| RunError::Verify { app: app.name.clone(), detail })?;
    Ok(fin.result)
}

/// Runs `app` under `cfg` with a full observability recorder attached
/// (event trace, cycle attribution, histograms — DESIGN.md §17), and
/// verifies the result. `ring_capacity` bounds the event trace; the ring
/// keeps the most recent events and counts the rest as dropped.
///
/// # Errors
///
/// Same contract as [`run_app`].
pub fn profile_app(
    app: &BuiltApp,
    cfg: MachineConfig,
    ring_capacity: usize,
) -> Result<(RunResult, ObsRecorder), RunError> {
    if cfg.total_threads() != app.nthreads {
        return Err(RunError::Sim {
            app: app.name.clone(),
            err: SimError::Config {
                detail: format!(
                    "app was built for {} threads, config asks for {}",
                    app.nthreads,
                    cfg.total_threads()
                ),
            },
        });
    }
    let mut rec = ObsRecorder::with_capacity(cfg.processors, cfg.total_threads(), ring_capacity);
    let program =
        if cfg.model.uses_explicit_switch() { app.grouped().0 } else { app.program.clone() };
    let fin = Machine::try_new(cfg, &program, app.shared.clone())
        .and_then(|m| m.run_with(&mut rec))
        .map_err(|err| RunError::Sim { app: app.name.clone(), err })?;
    app.verify(&fin.shared).map_err(|detail| RunError::Verify { app: app.name.clone(), detail })?;
    Ok((fin.result, rec))
}

/// Runs `app` with an explicitly chosen program variant (used by the
/// Table 6 estimator runs and the ablation benches).
///
/// # Errors
///
/// Returns [`RunError::Sim`] for typed simulator errors and
/// [`RunError::Verify`] for host-check mismatches.
pub fn run_app_with_program(
    app: &BuiltApp,
    program: &Program,
    cfg: MachineConfig,
) -> Result<RunResult, RunError> {
    let fin = Machine::try_new(cfg, program, app.shared.clone())
        .and_then(Machine::run)
        .map_err(|err| RunError::Sim { app: app.name.clone(), err })?;
    app.verify(&fin.shared).map_err(|detail| RunError::Verify { app: app.name.clone(), detail })?;
    Ok(fin.result)
}

/// The paper's efficiency metric: `T_serial_ideal / (P × T_parallel)`,
/// i.e. speedup over the 1-processor ideal machine divided by processors.
pub fn efficiency(baseline_cycles: u64, processors: usize, cycles: u64) -> f64 {
    if cycles == 0 || processors == 0 {
        return 0.0;
    }
    baseline_cycles as f64 / (processors as f64 * cycles as f64)
}

/// Finds the smallest multithreading level in `1..=max_t` reaching
/// `target` efficiency for the given app constructor, or `None`.
///
/// `build` receives the total thread count (`processors × T`). This is the
/// sweep behind Tables 3, 5, 6 and 8.
pub fn threads_for_efficiency(
    build: &dyn Fn(usize) -> BuiltApp,
    model: SwitchModel,
    processors: usize,
    target: f64,
    max_t: usize,
    baseline_cycles: u64,
) -> Option<usize> {
    for t in 1..=max_t {
        let app = build(processors * t);
        let cfg = MachineConfig::new(model, processors, t);
        match run_app(&app, cfg) {
            Ok(r) => {
                if efficiency(baseline_cycles, processors, r.cycles) >= target {
                    return Some(t);
                }
            }
            Err(e) => panic!("sweep run failed: {e}"),
        }
    }
    None
}

/// Runs the app single-threaded on the ideal machine: the baseline for
/// every efficiency figure (the paper's "single (0 latency) processor"
/// cycle counts of Table 1).
pub fn baseline_cycles(build: &dyn Fn(usize) -> BuiltApp) -> u64 {
    let app = build(1);
    let cfg = MachineConfig::ideal(1);
    run_app(&app, cfg).expect("baseline run").cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_app_is_send_and_sync() {
        // The sweep artifact cache hands `Arc<BuiltApp>` to worker threads;
        // the verify closure is explicitly `Send + Sync` and every other
        // field is plain data. Keep it that way.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuiltApp>();
    }
}
