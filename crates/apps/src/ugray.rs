//! `ugray` — ray-tracing renderer (paper Table 1: "ray tracing graphics
//! renderer — gears (7169 faces)", 10,784 lines, the study's biggest code).
//!
//! A sphere-scene Whitted-style tracer that preserves ugray's memory
//! signature: the scene is a **linked list** of 8-word sphere records laid
//! out in shuffled order (pointer chasing defeats intra-block grouping);
//! the record fields are loaded across condition-split basic blocks (the
//! §5.2 inter-block opportunity — the paper measured a 42 % one-line-cache
//! hit rate); pixels are claimed dynamically; and a global nearest-hit
//! statistic is maintained under a ticket lock — the critical section
//! whose interaction with long cache-hit runs motivated the paper's
//! forced-switch mechanism (§6.2).

use crate::harness::BuiltApp;
use mtsim_asm::{ProgramBuilder, SharedLayout};
use mtsim_mem::SharedMemory;
use mtsim_rng::Rng;
use mtsim_rt::{TicketLock, WorkQueue};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct UgrayParams {
    /// Image width (a power of two).
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Number of spheres in the scene.
    pub n_spheres: usize,
    /// Seed for scene generation and record shuffling.
    pub seed: u64,
}

impl Default for UgrayParams {
    fn default() -> UgrayParams {
        UgrayParams { width: 32, height: 32, n_spheres: 200, seed: 42 }
    }
}

const BIG: f64 = 1.0e30;
/// Words per sphere record (8 so the index shift is a 1-cycle `sll`).
const REC: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Sphere {
    cx: f64,
    cy: f64,
    cz: f64,
    r2: f64,
    albedo: f64,
}

/// Scene generation plus the shuffled record placement: returns the sphere
/// list in traversal order and the storage slot of each.
fn scene(p: &UgrayParams) -> (Vec<Sphere>, Vec<usize>) {
    let mut rng = Rng::seed_from_u64(p.seed);
    let spheres: Vec<Sphere> = (0..p.n_spheres)
        .map(|_| {
            let r = rng.range_f64(0.05, 0.35);
            Sphere {
                cx: rng.range_f64(-1.5, 1.5),
                cy: rng.range_f64(-1.5, 1.5),
                cz: rng.range_f64(2.0, 6.0),
                r2: r * r,
                albedo: rng.range_f64(0.2, 1.0),
            }
        })
        .collect();
    let mut slots: Vec<usize> = (0..p.n_spheres).collect();
    rng.shuffle(&mut slots);
    (spheres, slots)
}

/// Host-side reference renderer: identical traversal order and arithmetic.
/// Returns (image, global nearest hit).
pub fn host_ugray(p: &UgrayParams) -> (Vec<f64>, f64) {
    let (spheres, _) = scene(p);
    let (w, h) = (p.width as f64, p.height as f64);
    let mut img = vec![0.0f64; p.width * p.height];
    let mut gmin = BIG;
    for py in 0..p.height {
        for px in 0..p.width {
            let ud = px as f64 / w - 0.5;
            let vd = py as f64 / h - 0.5;
            let dd = ud * ud + vd * vd + 1.0;
            let mut t_best = BIG;
            let mut alb_best = 0.0;
            for s in &spheres {
                let doc = ud * s.cx + vd * s.cy + s.cz;
                let cc = s.cx * s.cx + s.cy * s.cy + s.cz * s.cz;
                let disc = doc * doc - dd * (cc - s.r2);
                if disc > 0.0 {
                    let t = (doc - disc.sqrt()) / dd;
                    if t > 0.0 && t < t_best {
                        t_best = t;
                        alb_best = s.albedo;
                    }
                }
            }
            if t_best < BIG {
                img[py * p.width + px] = alb_best / (1.0 + t_best * t_best);
                if t_best < gmin {
                    gmin = t_best;
                }
            }
        }
    }
    (img, gmin)
}

/// Builds the ugray program for `nthreads` threads.
pub fn build_ugray(params: UgrayParams, nthreads: usize) -> BuiltApp {
    assert!(params.width.is_power_of_two(), "width must be a power of two");
    assert!(params.n_spheres >= 1);
    let wi = params.width as i64;
    let log_w = wi.trailing_zeros() as i64;
    let n_pixels = (params.width * params.height) as i64;

    let (spheres, slots) = scene(&params);

    let mut layout = SharedLayout::new();
    let recs = layout.alloc("spheres", (REC * params.n_spheres) as u64) as i64;
    let image = layout.alloc("image", n_pixels as u64) as i64;
    let gmin_addr = layout.alloc("gmin", 1) as i64;
    let lock = TicketLock::alloc(&mut layout, "gmin-lock");
    let wq = WorkQueue::alloc(&mut layout, "pixels");

    let head = slots[0] as i64;
    let inv_w = 1.0 / params.width as f64;
    let inv_h = 1.0 / params.height as f64;

    let mut b = ProgramBuilder::new("ugray");
    wq.emit_for_each(&mut b, n_pixels, 2, |b, pix| {
        let px = b.def_i("px", pix.get() & (wi - 1));
        let py = b.def_i("py", pix.get() >> log_w);
        let ud = b.def_f("ud", px.get().to_f() * inv_w - 0.5);
        let vd = b.def_f("vd", py.get().to_f() * inv_h - 0.5);
        let dd = b.def_f("dd", ud.get() * ud.get() + vd.get() * vd.get() + 1.0);
        let t_best = b.def_f("t_best", BIG);
        let alb_best = b.def_f("alb_best", 0.0);

        // Pointer-chase down the shuffled record list.
        let idx = b.def_i("idx", head);
        b.while_(idx.get().ge(0), |b| {
            let base = b.def_i("base", (idx.get() << 3) + recs);
            let next = b.def_i("next", b.load_shared(base.get()));
            let (cx, cy) = b.load_pair_shared_f("c", base.get() + 1);
            let cz = b.def_f("cz", b.load_shared_f(base.get() + 3));
            let r2 = b.def_f("r2", b.load_shared_f(base.get() + 4));
            let doc = b.def_f("doc", ud.get() * cx.get() + vd.get() * cy.get() + cz.get());
            let cc = b.def_f("cc", cx.get() * cx.get() + cy.get() * cy.get() + cz.get() * cz.get());
            let disc = b.def_f("disc", doc.get() * doc.get() - dd.get() * (cc.get() - r2.get()));
            b.if_(b.const_f(0.0).flt(disc.get()), |b| {
                let t = b.def_f("t", (doc.get() - disc.get().sqrt()) / dd.get());
                b.if_(b.const_f(0.0).flt(t.get()), |b| {
                    b.if_(t.get().flt(t_best.get()), |b| {
                        // The albedo load lives in its own basic block —
                        // the condition-split field access of §5.2.
                        let alb = b.load_shared_f(base.get() + 5);
                        b.assign_f(alb_best, alb);
                        b.assign_f(t_best, t.get());
                    });
                });
            });
            b.assign(idx, next.get());
        });

        b.if_(t_best.get().flt(BIG), |b| {
            let shade = b.def_f("shade", alb_best.get() / (t_best.get() * t_best.get() + 1.0));
            b.store_shared_f(py.get() * wi + px.get() + image, shade.get());
            // Double-checked global nearest-hit update under the lock.
            let cur = b.def_f("cur", b.load_shared_f(b.const_i(gmin_addr)));
            b.if_(t_best.get().flt(cur.get()), |b| {
                lock.emit_critical(b, |b| {
                    let cur2 = b.def_f("cur2", b.load_shared_f(b.const_i(gmin_addr)));
                    b.if_(t_best.get().flt(cur2.get()), |b| {
                        b.store_shared_f(b.const_i(gmin_addr), t_best.get());
                    });
                });
            });
        });
    });

    let program = b.finish();
    let mut shared = SharedMemory::new(layout.size());
    for (k, s) in spheres.iter().enumerate() {
        let slot = slots[k];
        let base = recs as usize + REC * slot;
        let next: i64 = if k + 1 < slots.len() { slots[k + 1] as i64 } else { -1 };
        shared.write_i64(base as u64, next);
        shared.write_f64(base as u64 + 1, s.cx);
        shared.write_f64(base as u64 + 2, s.cy);
        shared.write_f64(base as u64 + 3, s.cz);
        shared.write_f64(base as u64 + 4, s.r2);
        shared.write_f64(base as u64 + 5, s.albedo);
    }
    shared.write_f64(gmin_addr as u64, BIG);

    let (want_img, want_gmin) = host_ugray(&params);
    let width = params.width;
    BuiltApp::new("ugray", program, shared, nthreads, move |mem| {
        for (k, &w) in want_img.iter().enumerate() {
            let got = mem.read_f64((image as usize + k) as u64);
            if got != w {
                return Err(format!("pixel ({},{}): got {got}, want {w}", k % width, k / width));
            }
        }
        let got_gmin = mem.read_f64(gmin_addr as u64);
        if got_gmin != want_gmin {
            return Err(format!("gmin: got {got_gmin}, want {want_gmin}"));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_app;
    use mtsim_core::{MachineConfig, SwitchModel};

    fn tiny() -> UgrayParams {
        UgrayParams { width: 8, height: 8, n_spheres: 10, seed: 9 }
    }

    #[test]
    fn host_renders_some_hits() {
        let (img, gmin) = host_ugray(&tiny());
        assert!(img.iter().any(|&v| v > 0.0), "scene must be visible");
        assert!(gmin < BIG);
    }

    #[test]
    fn ugray_single_thread_bitexact() {
        let app = build_ugray(tiny(), 1);
        run_app(&app, MachineConfig::ideal(1)).unwrap();
    }

    #[test]
    fn ugray_parallel_models() {
        for (model, p, t) in [
            (SwitchModel::SwitchOnLoad, 4, 2),
            (SwitchModel::ExplicitSwitch, 2, 3),
            (SwitchModel::ConditionalSwitch, 2, 2),
        ] {
            let app = build_ugray(tiny(), p * t);
            run_app(&app, MachineConfig::new(model, p, t)).unwrap();
        }
    }

    #[test]
    fn ugray_oneline_cache_sees_field_locality() {
        // The record fields are adjacent, so the §5.2 estimator should see
        // a substantial hit rate (the paper reports 42 %).
        let app = build_ugray(tiny(), 2);
        let r = run_app(&app, MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 2)).unwrap();
        let rate = r.one_line_hit_rate();
        assert!((0.2..0.95).contains(&rate), "one-line hit rate {rate} outside plausible band");
    }
}
