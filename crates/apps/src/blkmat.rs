//! `blkmat` — blocked matrix multiply (paper Table 1: "blocked matrix
//! multiply — 200 x 200 matrices", 409 lines, 87 Mcycles).
//!
//! Each output block is claimed dynamically; its input blocks are copied
//! into **private local memory** and multiplied there — the paper singles
//! blkmat out for its "exceptionally high mean run-length" precisely
//! because of this private-copy strategy: long stretches of purely local
//! multiply-accumulate separate the bursts of shared loads.

use crate::harness::BuiltApp;
use mtsim_asm::{ProgramBuilder, SharedLayout};
use mtsim_mem::SharedMemory;
use mtsim_rt::WorkQueue;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct BlkmatParams {
    /// Matrix side length.
    pub n: usize,
    /// Block side length (must divide `n`).
    pub bs: usize,
}

impl Default for BlkmatParams {
    fn default() -> BlkmatParams {
        BlkmatParams { n: 64, bs: 8 }
    }
}

/// Deterministic input entries shared by device initialization and host
/// reference.
fn a_entry(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 13) as f64 * 0.5 - 3.0
}

fn b_entry(i: usize, j: usize) -> f64 {
    ((i * 7 + j * 29) % 11) as f64 * 0.25 - 1.25
}

/// Host reference multiply with the device's exact accumulation order
/// (k-blocks ascending, k within block ascending).
pub fn host_blkmat(n: usize, bs: usize) -> Vec<f64> {
    let nb = n / bs;
    let mut c = vec![0.0f64; n * n];
    for bi in 0..nb {
        for bj in 0..nb {
            for kb in 0..nb {
                for r in 0..bs {
                    for col in 0..bs {
                        let mut acc = c[(bi * bs + r) * n + bj * bs + col];
                        for k in 0..bs {
                            acc += a_entry(bi * bs + r, kb * bs + k)
                                * b_entry(kb * bs + k, bj * bs + col);
                        }
                        c[(bi * bs + r) * n + bj * bs + col] = acc;
                    }
                }
            }
        }
    }
    c
}

/// Builds the blkmat program for `nthreads` threads.
pub fn build_blkmat(params: BlkmatParams, nthreads: usize) -> BuiltApp {
    let n = params.n;
    let bs = params.bs;
    assert!(bs >= 2 && n.is_multiple_of(bs), "block size must divide matrix size");
    let (ni, bsi) = (n as i64, bs as i64);
    let nb = ni / bsi;

    let mut layout = SharedLayout::new();
    let a_base = layout.alloc("A", (n * n) as u64) as i64;
    let b_base = layout.alloc("B", (n * n) as u64) as i64;
    let c_base = layout.alloc("C", (n * n) as u64) as i64;
    let wq = WorkQueue::alloc(&mut layout, "blocks");

    let mut b = ProgramBuilder::new("blkmat");
    let la = b.local_alloc((bs * bs) as u64);
    let lb = b.local_alloc((bs * bs) as u64);
    let lc = b.local_alloc((bs * bs) as u64);

    wq.emit_for_each(&mut b, nb * nb, 1, |b, blk| {
        let bi = b.def_i("bi", blk.get() / nb);
        let bj = b.def_i("bj", blk.get() % nb);
        // Zero the private accumulator block.
        b.for_range("z", 0, bsi * bsi, |b, z| {
            b.store_local_f(z.get() + lc, 0.0);
        });
        b.for_range("kb", 0, nb, |b, kb| {
            // Copy A(bi, kb) and B(kb, bj) into private memory: a burst of
            // shared loads feeding local stores.
            b.for_range("r", 0, bsi, |b, r| {
                let arow =
                    b.def_i("arow", (bi.get() * bsi + r.get()) * ni + kb.get() * bsi + a_base);
                let brow =
                    b.def_i("brow", (kb.get() * bsi + r.get()) * ni + bj.get() * bsi + b_base);
                let lrow = b.def_i("lrow", r.get() * bsi);
                b.for_range("cc", 0, bsi, |b, cc| {
                    let av = b.load_shared_f(arow.get() + cc.get());
                    b.store_local_f(lrow.get() + cc.get() + la, av);
                    let bv = b.load_shared_f(brow.get() + cc.get());
                    b.store_local_f(lrow.get() + cc.get() + lb, bv);
                });
            });
            // Multiply-accumulate entirely in local memory: the long runs.
            b.for_range("r", 0, bsi, |b, r| {
                b.for_range("col", 0, bsi, |b, col| {
                    let acc = b.def_f("acc", b.load_local_f(r.get() * bsi + col.get() + lc));
                    b.for_range("k", 0, bsi, |b, k| {
                        let av = b.load_local_f(r.get() * bsi + k.get() + la);
                        let bv = b.load_local_f(k.get() * bsi + col.get() + lb);
                        b.assign_f(acc, acc.get() + av * bv);
                    });
                    b.store_local_f(r.get() * bsi + col.get() + lc, acc.get());
                });
            });
        });
        // Write the finished block to shared C.
        b.for_range("r", 0, bsi, |b, r| {
            let crow = b.def_i("crow", (bi.get() * bsi + r.get()) * ni + bj.get() * bsi + c_base);
            b.for_range("cc", 0, bsi, |b, cc| {
                let v = b.load_local_f(r.get() * bsi + cc.get() + lc);
                b.store_shared_f(crow.get() + cc.get(), v);
            });
        });
    });

    let program = b.finish();
    let mut shared = SharedMemory::new(layout.size());
    for i in 0..n {
        for j in 0..n {
            shared.write_f64((a_base as usize + i * n + j) as u64, a_entry(i, j));
            shared.write_f64((b_base as usize + i * n + j) as u64, b_entry(i, j));
        }
    }

    let want = host_blkmat(n, bs);
    BuiltApp::new("blkmat", program, shared, nthreads, move |mem| {
        for (k, &w) in want.iter().enumerate() {
            let got = mem.read_f64((c_base as usize + k) as u64);
            if (got - w).abs() > 1e-9 {
                return Err(format!("C[{},{}]: got {got}, want {w}", k / n, k % n));
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_app;
    use mtsim_core::{MachineConfig, SwitchModel};

    #[test]
    fn host_blkmat_matches_naive() {
        let n = 8;
        let blocked = host_blkmat(n, 4);
        for i in 0..n {
            for j in 0..n {
                let naive: f64 = (0..n).map(|k| a_entry(i, k) * b_entry(k, j)).sum();
                assert!(
                    (blocked[i * n + j] - naive).abs() < 1e-9,
                    "({i},{j}): {} vs {naive}",
                    blocked[i * n + j]
                );
            }
        }
    }

    #[test]
    fn blkmat_single_thread() {
        let app = build_blkmat(BlkmatParams { n: 8, bs: 4 }, 1);
        run_app(&app, MachineConfig::ideal(1)).unwrap();
    }

    #[test]
    fn blkmat_parallel_models() {
        for (model, p, t) in
            [(SwitchModel::SwitchOnLoad, 4, 2), (SwitchModel::ExplicitSwitch, 2, 2)]
        {
            let app = build_blkmat(BlkmatParams { n: 16, bs: 4 }, p * t);
            run_app(&app, MachineConfig::new(model, p, t)).unwrap();
        }
    }

    #[test]
    fn blkmat_has_long_mean_run_length() {
        // The private-copy strategy should push the mean run-length far
        // above sor-like codes.
        let app = build_blkmat(BlkmatParams { n: 16, bs: 8 }, 2);
        let r = run_app(&app, MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 2)).unwrap();
        assert!(r.run_lengths.mean() > 15.0, "mean run-length {}", r.run_lengths.mean());
    }
}
