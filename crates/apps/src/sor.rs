//! `sor` — red-black successive over-relaxation for Laplace's equation
//! (paper Table 1: "S.O.R. solver for Laplace's equation — 192 x 192
//! grid", 332 lines, 258 Mcycles).
//!
//! This is the paper's flagship grouping example: the inner-loop update of
//! Figure 4 loads **five** shared values (the four neighbors and the
//! center) whose back-to-back loads give sor its terrible
//! switch-on-load run-length distribution (39 % one-cycle runs), and which
//! the grouping pass collapses into a single five-load group.
//!
//! The red-black ordering (update all `(i+j)` even cells, barrier, then
//! all odd cells, barrier) makes the parallel computation bit-for-bit
//! deterministic, so verification against the host reference is exact.

use crate::harness::BuiltApp;
use mtsim_asm::{ProgramBuilder, SharedLayout};
use mtsim_mem::SharedMemory;
use mtsim_rt::Barrier;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct SorParams {
    /// Grid side length (the grid is `n × n`).
    pub n: usize,
    /// Red-black iterations (each updates both colors).
    pub iters: usize,
    /// Over-relaxation factor.
    pub omega: f64,
}

impl Default for SorParams {
    fn default() -> SorParams {
        SorParams { n: 64, iters: 4, omega: 1.5 }
    }
}

/// The deterministic boundary/initial condition shared by device and host.
fn initial(n: usize, i: usize, j: usize) -> f64 {
    if i == 0 {
        1.0 + j as f64 / n as f64
    } else if i == n - 1 || j == 0 || j == n - 1 {
        0.25
    } else {
        0.0
    }
}

/// One red-black update, expressed identically on host and device:
/// `new = c + omega * (((n + s) + (e + w)) * 0.25 - c)`.
fn host_update(c: f64, up: f64, down: f64, left: f64, right: f64, omega: f64) -> f64 {
    c + omega * (((up + down) + (left + right)) * 0.25 - c)
}

/// Host-side reference solver.
pub fn host_sor(n: usize, iters: usize, omega: f64) -> Vec<f64> {
    let mut a: Vec<f64> = (0..n * n).map(|k| initial(n, k / n, k % n)).collect();
    for _ in 0..iters {
        for color in 0..2usize {
            for i in 1..n - 1 {
                // First interior j with (i + j) % 2 == color.
                let mut j = if (i + 1) % 2 == color { 1 } else { 2 };
                while j < n - 1 {
                    let idx = i * n + j;
                    a[idx] =
                        host_update(a[idx], a[idx - n], a[idx + n], a[idx - 1], a[idx + 1], omega);
                    j += 2;
                }
            }
        }
    }
    a
}

/// Builds the sor program for `nthreads` threads.
pub fn build_sor(params: SorParams, nthreads: usize) -> BuiltApp {
    let n = params.n;
    assert!(n >= 4, "grid too small");
    let ni = n as i64;

    let mut layout = SharedLayout::new();
    let grid = layout.alloc("grid", (n * n) as u64) as i64;
    let bar = Barrier::alloc(&mut layout, "color", nthreads as i64);

    let mut b = ProgramBuilder::new("sor");

    // Static row partition of interior rows 1..n-1.
    let rows = ni - 2;
    let lo = b.def_i("lo", b.tid() * rows / b.nthreads() + 1);
    let hi = b.def_i("hi", (b.tid() + 1) * rows / b.nthreads() + 1);
    let omega = params.omega;

    b.for_range("iter", 0, params.iters as i64, |b, _| {
        for color in 0..2i64 {
            b.for_range("i", lo.get(), hi.get(), |b, i| {
                // First interior j with (i + j) % 2 == color.
                let j0 = b.def_i("j0", (i.get() + 1 + color) & 1);
                b.assign(j0, j0.get() + 1);
                let row = b.def_i("row", i.get() * ni + grid);
                b.for_range_step("j", j0.get(), ni - 1, 2, |b, j| {
                    let idx = b.def_i("idx", row.get() + j.get());
                    // The Figure 4 five-load update.
                    let up = b.load_shared_f(idx.get() - ni);
                    let down = b.load_shared_f(idx.get() + ni);
                    let left = b.load_shared_f(idx.get() - 1);
                    let right = b.load_shared_f(idx.get() + 1);
                    let c = b.def_f("c", b.load_shared_f(idx.get()));
                    let avg = b.def_f("avg", ((up + down) + (left + right)) * 0.25);
                    let newv = b.def_f("new", c.get() + (avg.get() - c.get()) * omega);
                    b.store_shared_f(idx.get(), newv.get());
                });
            });
            bar.emit_wait(b);
        }
    });

    let program = b.finish();
    let mut shared = SharedMemory::new(layout.size());
    for i in 0..n {
        for j in 0..n {
            shared.write_f64((grid as usize + i * n + j) as u64, initial(n, i, j));
        }
    }

    let want = host_sor(n, params.iters, omega);
    BuiltApp::new("sor", program, shared, nthreads, move |mem| {
        for (k, &w) in want.iter().enumerate() {
            let got = mem.read_f64((grid as usize + k) as u64);
            if got != w {
                return Err(format!("grid[{},{}]: got {got}, want {w}", k / n, k % n));
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_app;
    use mtsim_core::{MachineConfig, SwitchModel};

    #[test]
    fn host_sor_converges_toward_boundary() {
        // After many iterations interior values move off zero.
        let a = host_sor(8, 50, 1.5);
        assert!(a[3 * 8 + 3].abs() > 1e-3);
    }

    #[test]
    fn device_update_matches_host_update_shape() {
        // The builder's expression tree is ((up+down)+(left+right))*0.25
        // and c + (avg - c)*omega — mirror of host_update with the omega
        // multiplication order swapped; verify algebraic identity on
        // representative values.
        let (c, u, d, l, r, om) = (0.3, 1.1, -0.2, 0.77, 0.01, 1.5);
        let avg = ((u + d) + (l + r)) * 0.25;
        assert_eq!(host_update(c, u, d, l, r, om), c + om * (avg - c));
        // NOTE: device computes c + (avg - c) * omega. For exactness we
        // need host to use the same order; host_update uses
        // omega * (avg - c) which multiplies the same operands — IEEE
        // multiplication is commutative, so the results are identical.
    }

    #[test]
    fn sor_single_thread_matches_host_exactly() {
        let app = build_sor(SorParams { n: 10, iters: 3, omega: 1.5 }, 1);
        run_app(&app, MachineConfig::ideal(1)).unwrap();
    }

    #[test]
    fn sor_parallel_is_deterministic_and_correct() {
        for (model, p, t) in [
            (SwitchModel::SwitchOnLoad, 4, 2),
            (SwitchModel::ExplicitSwitch, 2, 4),
            (SwitchModel::ConditionalSwitch, 2, 2),
        ] {
            let app = build_sor(SorParams { n: 12, iters: 2, omega: 1.5 }, p * t);
            run_app(&app, MachineConfig::new(model, p, t)).unwrap();
        }
    }

    #[test]
    fn sor_grouping_forms_five_load_groups() {
        let app = build_sor(SorParams::default(), 4);
        let (_, stats) = app.grouped();
        assert!(stats.max_group() >= 5, "expected the Figure 4 group: {stats:?}");
    }

    #[test]
    fn sor_threads_exceeding_rows() {
        let app = build_sor(SorParams { n: 6, iters: 1, omega: 1.5 }, 10);
        run_app(&app, MachineConfig::new(SwitchModel::SwitchOnLoad, 5, 2)).unwrap();
    }
}
