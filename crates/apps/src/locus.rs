//! `locus` — standard-cell wire routing (paper Table 1: "route wires in a
//! standard cell circuit — Primary2", from the SPLASH suite).
//!
//! A cost-driven greedy maze router: each wire walks from source to target
//! along a monotone (Manhattan-minimal) path, at every step loading the
//! costs of the one or two cells that move it closer and picking the
//! cheaper. The loads are split across branches by the direction tests —
//! precisely the condition-split structure-field pattern the paper blames
//! for locus's poor intra-block grouping (grouping factor 1.05) and credits
//! with its huge inter-block potential (one-line-cache hit rate 84 %,
//! revised factor 6.6). Wires are claimed dynamically; cells are bumped
//! with fetch-and-add so concurrent wires compose.
//!
//! Path *choices* depend on the interleaving, so verification checks
//! schedule-independent invariants: every recorded path length equals the
//! wire's Manhattan distance, and the total cost added to the grid equals
//! the sum of the path lengths.

use crate::harness::BuiltApp;
use mtsim_asm::{ProgramBuilder, SharedLayout};
use mtsim_isa::AccessHint;
use mtsim_mem::SharedMemory;
use mtsim_rng::Rng;
use mtsim_rt::WorkQueue;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct LocusParams {
    /// Routing-grid width.
    pub width: usize,
    /// Routing-grid height.
    pub height: usize,
    /// Number of wires to route.
    pub n_wires: usize,
    /// Seed for wire-endpoint generation.
    pub seed: u64,
}

impl Default for LocusParams {
    fn default() -> LocusParams {
        LocusParams { width: 64, height: 24, n_wires: 80, seed: 3 }
    }
}

/// Generates the wire list `(sx, sy, tx, ty)`, each with nonzero length.
fn generate_wires(p: &LocusParams) -> Vec<(i64, i64, i64, i64)> {
    let mut rng = Rng::seed_from_u64(p.seed);
    let mut wires = Vec::with_capacity(p.n_wires);
    while wires.len() < p.n_wires {
        let sx = rng.range_i64(0, p.width as i64);
        let sy = rng.range_i64(0, p.height as i64);
        let tx = rng.range_i64(0, p.width as i64);
        let ty = rng.range_i64(0, p.height as i64);
        if sx != tx || sy != ty {
            wires.push((sx, sy, tx, ty));
        }
    }
    wires
}

/// Builds the locus program for `nthreads` threads.
pub fn build_locus(params: LocusParams, nthreads: usize) -> BuiltApp {
    let w = params.width as i64;

    let mut layout = SharedLayout::new();
    let grid = layout.alloc("grid", (params.width * params.height) as u64) as i64;
    let wires_base = layout.alloc("wires", 4 * params.n_wires as u64) as i64;
    let lens = layout.alloc("lens", params.n_wires as u64) as i64;
    let wq = WorkQueue::alloc(&mut layout, "wires-q");

    let mut b = ProgramBuilder::new("locus");
    wq.emit_for_each(&mut b, params.n_wires as i64, 1, |b, wire| {
        let wbase = b.def_i("wbase", wire.get() * 4 + wires_base);
        // Endpoint loads: a groupable burst of four.
        let x = b.def_i("x", b.load_shared(wbase.get()));
        let y = b.def_i("y", b.load_shared(wbase.get() + 1));
        let tx = b.def_i("tx", b.load_shared(wbase.get() + 2));
        let ty = b.def_i("ty", b.load_shared(wbase.get() + 3));
        let len = b.def_i("len", 0);

        // Remaining Manhattan distance; strictly decreases each step.
        let dx_abs = b.def_i("dxa", tx.get() - x.get());
        b.if_(dx_abs.get().lt(0), |b| b.assign(dx_abs, b.const_i(0) - dx_abs.get()));
        let dy_abs = b.def_i("dya", ty.get() - y.get());
        b.if_(dy_abs.get().lt(0), |b| b.assign(dy_abs, b.const_i(0) - dy_abs.get()));
        let manh = b.def_i("manh", dx_abs.get() + dy_abs.get());

        // Row base kept incrementally (strength-reduced, as `cc -O2`
        // would): no multiplies inside the per-step loop, keeping the
        // run-lengths short as in the paper (mean ≈ 8).
        let rowbase = b.def_i("rowbase", y.get() * w + grid);
        b.while_(manh.get().gt(0), |b| {
            let ddx = b.def_i("ddx", tx.get() - x.get());
            let ddy = b.def_i("ddy", ty.get() - y.get());
            // sign(ddx), sign(ddy)
            let sgnx = b.def_i("sgnx", b.const_i(0).lt_val(ddx.get()) - ddx.get().lt_val(0));
            let sgny = b.def_i("sgny", b.const_i(0).lt_val(ddy.get()) - ddy.get().lt_val(0));
            // The row the vertical step would land in.
            let nextrow = b.def_i("nextrow", rowbase.get());
            b.if_else(
                sgny.get().ge(0),
                |b| b.assign(nextrow, nextrow.get() + w),
                |b| b.assign(nextrow, nextrow.get() - w),
            );
            b.if_else(
                ddx.get().ne(0),
                |b| {
                    b.if_else(
                        ddy.get().ne(0),
                        |b| {
                            // Two candidate steps: compare their cell costs
                            // (loads split across this branch structure).
                            let ch = b
                                .def_i("ch", b.load_shared(rowbase.get() + (x.get() + sgnx.get())));
                            let cv = b.def_i("cv", b.load_shared(nextrow.get() + x.get()));
                            b.if_else(
                                ch.get().le(cv.get()),
                                |b| b.assign(x, x.get() + sgnx.get()),
                                |b| {
                                    b.assign(y, y.get() + sgny.get());
                                    b.assign(rowbase, nextrow.get());
                                },
                            );
                        },
                        |b| b.assign(x, x.get() + sgnx.get()),
                    );
                },
                |b| {
                    b.assign(y, y.get() + sgny.get());
                    b.assign(rowbase, nextrow.get());
                },
            );
            b.fetch_add_discard(rowbase.get() + x.get(), b.const_i(1), AccessHint::Data);
            b.assign(len, len.get() + 1);
            b.assign(manh, manh.get() - 1);
        });
        b.store_shared(wire.get() + lens, len.get());
    });

    let program = b.finish();
    let mut shared = SharedMemory::new(layout.size());
    let wires = generate_wires(&params);
    for (k, &(sx, sy, tx, ty)) in wires.iter().enumerate() {
        let base = wires_base as usize + 4 * k;
        shared.write_i64(base as u64, sx);
        shared.write_i64(base as u64 + 1, sy);
        shared.write_i64(base as u64 + 2, tx);
        shared.write_i64(base as u64 + 3, ty);
    }

    let grid_cells = params.width * params.height;
    BuiltApp::new("locus", program, shared, nthreads, move |mem| {
        let mut total_len = 0i64;
        for (k, &(sx, sy, tx, ty)) in wires.iter().enumerate() {
            let manh = (tx - sx).abs() + (ty - sy).abs();
            let got = mem.read_i64((lens as usize + k) as u64);
            if got != manh {
                return Err(format!("wire {k}: path length {got}, Manhattan distance {manh}"));
            }
            total_len += manh;
        }
        let mut grid_sum = 0i64;
        for c in 0..grid_cells {
            let v = mem.read_i64((grid as usize + c) as u64);
            if v < 0 {
                return Err(format!("cell {c} has negative cost {v}"));
            }
            grid_sum += v;
        }
        if grid_sum != total_len {
            return Err(format!("grid cost sum {grid_sum} != total path length {total_len}"));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_app;
    use mtsim_core::{MachineConfig, SwitchModel};

    #[test]
    fn wires_are_nontrivial() {
        let ws = generate_wires(&LocusParams { width: 10, height: 10, n_wires: 20, seed: 1 });
        assert_eq!(ws.len(), 20);
        assert!(ws.iter().all(|&(sx, sy, tx, ty)| sx != tx || sy != ty));
    }

    #[test]
    fn locus_single_thread() {
        let app = build_locus(LocusParams { width: 10, height: 8, n_wires: 6, seed: 2 }, 1);
        run_app(&app, MachineConfig::ideal(1)).unwrap();
    }

    #[test]
    fn locus_parallel_models() {
        for (model, p, t) in [
            (SwitchModel::SwitchOnLoad, 4, 2),
            (SwitchModel::ExplicitSwitch, 2, 3),
            (SwitchModel::ConditionalSwitch, 2, 2),
        ] {
            let app =
                build_locus(LocusParams { width: 12, height: 8, n_wires: 10, seed: 4 }, p * t);
            run_app(&app, MachineConfig::new(model, p, t)).unwrap();
        }
    }

    #[test]
    fn locus_run_lengths_are_short() {
        // Branchy single-load steps: the paper reports a mean around 8.
        let app = build_locus(LocusParams { width: 16, height: 12, n_wires: 12, seed: 6 }, 2);
        let r = run_app(&app, MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 2)).unwrap();
        assert!(
            r.run_lengths.mean() < 20.0,
            "locus run-lengths should be short: {}",
            r.run_lengths.mean()
        );
    }

    #[test]
    fn locus_intra_block_grouping_is_weak() {
        // The step loads are split across branches: the static grouping
        // factor must stay close to 1, as in the paper (1.05).
        let app = build_locus(LocusParams::default(), 4);
        let (_, stats) = app.grouped();
        assert!(
            stats.grouping_factor() < 2.5,
            "expected weak intra-block grouping: {}",
            stats.grouping_factor()
        );
    }
}
