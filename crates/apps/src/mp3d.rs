//! `mp3d` — rarefied hypersonic flow particle simulation (paper Table 1:
//! "simulate rarefied hypersonic flow — 100,000 particles, 10 iterations",
//! from the SPLASH suite).
//!
//! Each particle is a 6-word record (position + velocity) whose loads
//! group nicely, but the per-step space-cell update lands on an
//! effectively random cell — the "very poor reference locality" that
//! makes mp3d the one application caching cannot rescue (§6.1) and the
//! highest-bandwidth code in the study.

use crate::harness::BuiltApp;
use mtsim_asm::{ProgramBuilder, SharedLayout};
use mtsim_isa::AccessHint;
use mtsim_mem::SharedMemory;
use mtsim_rng::Rng;
use mtsim_rt::Barrier;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Mp3dParams {
    /// Number of particles.
    pub n_particles: usize,
    /// Timesteps.
    pub iters: usize,
    /// Space-cell grid side (cells = grid³).
    pub grid: usize,
    /// Seed for the initial particle state.
    pub seed: u64,
}

impl Default for Mp3dParams {
    fn default() -> Mp3dParams {
        Mp3dParams { n_particles: 4_000, iters: 5, grid: 8, seed: 11 }
    }
}

const DT: f64 = 0.05;

/// Box side: the grid has unit cells.
fn box_side(grid: usize) -> f64 {
    grid as f64
}

/// Initial interleaved `[x,y,z,vx,vy,vz]` records.
fn initial_state(p: &Mp3dParams) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(p.seed);
    let l = box_side(p.grid);
    let mut state = Vec::with_capacity(6 * p.n_particles);
    for _ in 0..p.n_particles {
        for _ in 0..3 {
            state.push(rng.range_f64(0.0, l));
        }
        for _ in 0..3 {
            state.push(rng.range_f64(-1.0, 1.0));
        }
    }
    state
}

/// Host-side reference: returns (final state, per-cell visit counters).
pub fn host_mp3d(p: &Mp3dParams) -> (Vec<f64>, Vec<i64>) {
    let mut st = initial_state(p);
    let g = p.grid as i64;
    let l = box_side(p.grid);
    let mut cells = vec![0i64; p.grid * p.grid * p.grid];
    for _ in 0..p.iters {
        for i in 0..p.n_particles {
            let b = 6 * i;
            for a in 0..3 {
                let mut x = st[b + a] + st[b + 3 + a] * DT;
                let mut v = st[b + 3 + a];
                if x < 0.0 {
                    x = 0.0 - x;
                    v = 0.0 - v;
                }
                if x > l {
                    x = (l + l) - x;
                    v = 0.0 - v;
                }
                st[b + a] = x;
                st[b + 3 + a] = v;
            }
            let mut ci = [0i64; 3];
            for a in 0..3 {
                let mut c = st[b + a] as i64;
                if c >= g {
                    c = g - 1;
                }
                ci[a] = c;
            }
            let cell = (ci[0] * g + ci[1]) * g + ci[2];
            cells[cell as usize] += 1;
        }
    }
    (st, cells)
}

/// Builds the mp3d program for `nthreads` threads.
pub fn build_mp3d(params: Mp3dParams, nthreads: usize) -> BuiltApp {
    let n = params.n_particles as i64;
    let g = params.grid as i64;
    let l = box_side(params.grid);

    let mut layout = SharedLayout::new();
    let parts = layout.alloc("particles", 6 * params.n_particles as u64) as i64;
    let cells = layout.alloc("cells", (params.grid * params.grid * params.grid) as u64) as i64;
    let bar = Barrier::alloc(&mut layout, "step", nthreads as i64);

    let mut b = ProgramBuilder::new("mp3d");
    let lo = b.def_i("lo", b.tid() * n / b.nthreads());
    let hi = b.def_i("hi", (b.tid() + 1) * n / b.nthreads());

    b.for_range("iter", 0, params.iters as i64, |b, _| {
        b.for_range("i", lo.get(), hi.get(), |b, i| {
            let base = b.def_i("base", i.get() * 6 + parts);
            // The record's six fields: three Load-Double pairs (groupable).
            let (x, y) = b.load_pair_shared_f("p.xy", base.get());
            let (z, vx) = b.load_pair_shared_f("p.zvx", base.get() + 2);
            let (vy, vz) = b.load_pair_shared_f("p.vyz", base.get() + 4);

            // Move + reflect each axis, mirroring host_mp3d exactly.
            for (px, pv) in [(x, vx), (y, vy), (z, vz)] {
                b.assign_f(px, px.get() + pv.get() * DT);
                b.if_(px.get().flt(0.0), |b| {
                    b.assign_f(px, b.const_f(0.0) - px.get());
                    b.assign_f(pv, b.const_f(0.0) - pv.get());
                });
                b.if_(b.const_f(l).flt(px.get()), |b| {
                    b.assign_f(px, b.const_f(l + l) - px.get());
                    b.assign_f(pv, b.const_f(0.0) - pv.get());
                });
            }

            // Cell index (clamped) — an essentially random cell: the
            // locality-hostile access.
            let cxi = b.def_i("cx", x.get().to_i());
            b.if_(cxi.get().ge(g), |b| b.assign(cxi, g - 1));
            let cyi = b.def_i("cy", y.get().to_i());
            b.if_(cyi.get().ge(g), |b| b.assign(cyi, g - 1));
            let czi = b.def_i("cz", z.get().to_i());
            b.if_(czi.get().ge(g), |b| b.assign(czi, g - 1));
            let cell = b.def_i("cell", (cxi.get() * g + cyi.get()) * g + czi.get());
            b.fetch_add_discard(cell.get() + cells, b.const_i(1), AccessHint::Data);

            // Write the record back: three Store-Double pairs.
            b.store_pair_shared_f(base.get(), x.get(), y.get());
            b.store_pair_shared_f(base.get() + 2, z.get(), vx.get());
            b.store_pair_shared_f(base.get() + 4, vy.get(), vz.get());
        });
        bar.emit_wait(b);
    });

    let program = b.finish();
    let mut shared = SharedMemory::new(layout.size());
    for (k, &v) in initial_state(&params).iter().enumerate() {
        shared.write_f64((parts as usize + k) as u64, v);
    }

    let (want_state, want_cells) = host_mp3d(&params);
    BuiltApp::new("mp3d", program, shared, nthreads, move |mem| {
        for (k, &w) in want_state.iter().enumerate() {
            let got = mem.read_f64((parts as usize + k) as u64);
            if got != w {
                return Err(format!("particle word {k}: got {got}, want {w}"));
            }
        }
        for (k, &w) in want_cells.iter().enumerate() {
            let got = mem.read_i64((cells as usize + k) as u64);
            if got != w {
                return Err(format!("cell {k}: got {got}, want {w}"));
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_app;
    use mtsim_core::{MachineConfig, SwitchModel};

    #[test]
    fn host_conserves_particles() {
        let p = Mp3dParams { n_particles: 50, iters: 3, grid: 4, seed: 1 };
        let (st, cells) = host_mp3d(&p);
        assert_eq!(cells.iter().sum::<i64>(), 50 * 3);
        let l = box_side(p.grid);
        assert!(st.chunks(6).all(|c| (0.0..=l).contains(&c[0])
            && (0.0..=l).contains(&c[1])
            && (0.0..=l).contains(&c[2])));
    }

    #[test]
    fn mp3d_single_thread_bitexact() {
        let app = build_mp3d(Mp3dParams { n_particles: 20, iters: 2, grid: 4, seed: 2 }, 1);
        run_app(&app, MachineConfig::ideal(1)).unwrap();
    }

    #[test]
    fn mp3d_parallel_models() {
        for (model, p, t) in [
            (SwitchModel::SwitchOnLoad, 4, 2),
            (SwitchModel::ExplicitSwitch, 2, 2),
            (SwitchModel::ConditionalSwitch, 2, 2),
        ] {
            let app = build_mp3d(Mp3dParams { n_particles: 30, iters: 2, grid: 4, seed: 4 }, p * t);
            run_app(&app, MachineConfig::new(model, p, t)).unwrap();
        }
    }

    #[test]
    fn mp3d_record_loads_group_well() {
        let app = build_mp3d(Mp3dParams::default(), 4);
        let (_, stats) = app.grouped();
        // Three pair-loads of one record belong to a single group.
        assert!(stats.max_group() >= 3, "{stats:?}");
    }
}
