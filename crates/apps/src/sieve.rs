//! `sieve` — counts primes below a limit (paper Table 1: "counts primes
//! < 4,000,000", 242 lines, 106 Mcycles).
//!
//! Structure mirrors the paper's description: a marking phase that "runs
//! through a large array marking numbers as non-prime at a constant rate"
//! (shared stores, which never context-switch), and a counting phase whose
//! regular shared loads give sieve its nearly constant run-length
//! distribution. Prime candidates are handed out dynamically with
//! fetch-and-add; the phases are separated by a barrier.

use crate::harness::BuiltApp;
use mtsim_asm::{ProgramBuilder, SharedLayout};
use mtsim_isa::AccessHint;
use mtsim_mem::SharedMemory;
use mtsim_rt::{Barrier, WorkQueue};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct SieveParams {
    /// Count primes strictly below this limit.
    pub limit: u64,
}

impl Default for SieveParams {
    fn default() -> SieveParams {
        SieveParams { limit: 200_000 }
    }
}

/// Host-side prime count (the verification reference).
pub fn host_prime_count(limit: u64) -> u64 {
    if limit <= 2 {
        return 0;
    }
    let n = limit as usize;
    let mut composite = vec![false; n];
    let mut count: u64 = 1; // the prime 2
    let mut c = 3usize;
    while c * c < n {
        if !composite[c] {
            let mut m = c * c;
            while m < n {
                composite[m] = true;
                m += 2 * c;
            }
        }
        c += 2;
    }
    let mut i = 3usize;
    while i < n {
        if !composite[i] {
            count += 1;
        }
        i += 2;
    }
    count
}

/// Builds the sieve program for `nthreads` threads.
pub fn build_sieve(params: SieveParams, nthreads: usize) -> BuiltApp {
    let limit = params.limit as i64;
    assert!(limit >= 8, "sieve limit too small");

    let mut layout = SharedLayout::new();
    let flags = layout.alloc("flags", params.limit) as i64;
    let result = layout.alloc("result", 1) as i64;
    let wq = WorkQueue::alloc(&mut layout, "candidates");
    let bar = Barrier::alloc(&mut layout, "phase", nthreads as i64);

    // Odd candidates c = 3 + 2k with c*c < limit.
    let mut k_max = 0i64;
    while (3 + 2 * k_max) * (3 + 2 * k_max) < limit {
        k_max += 1;
    }

    let mut b = ProgramBuilder::new("sieve");

    // Phase A: dynamically grab candidates and mark their odd multiples.
    // (Marking multiples of composite candidates is redundant but
    // harmless, and keeps the phase race-free.)
    wq.emit_for_each(&mut b, k_max, 1, |b, k| {
        let c = b.def_i("c", k.get() * 2 + 3);
        let m = b.def_i("m", c.get() * c.get());
        b.while_(m.get().lt(limit), |b| {
            b.store_shared(m.get() + flags, 1);
            b.assign(m, m.get() + c.get() * 2);
        });
    });
    bar.emit_wait(&mut b);

    // Phase B: count unmarked odd numbers, striding by thread count —
    // a shared load at a constant rate.
    let count = b.def_i("count", 0);
    let i = b.def_i("i", b.tid() * 2 + 3);
    let stride = b.def_i("stride", b.nthreads() * 2);
    b.while_(i.get().lt(limit), |b| {
        let v = b.def_i("v", b.load_shared(i.get() + flags));
        b.if_(v.get().eq(0), |b| {
            b.assign(count, count.get() + 1);
        });
        b.assign(i, i.get() + stride.get());
    });
    // Thread 0 also counts the prime 2.
    b.if_(b.tid().eq(0), |b| {
        b.assign(count, count.get() + 1);
    });
    b.fetch_add_discard(b.const_i(result), count.get(), AccessHint::Data);

    let program = b.finish();
    let shared = SharedMemory::new(layout.size());
    let want = host_prime_count(params.limit);
    BuiltApp::new("sieve", program, shared, nthreads, move |mem| {
        let got = mem.read_i64(result as u64);
        if got == want as i64 {
            Ok(())
        } else {
            Err(format!("prime count: got {got}, want {want}"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_app;
    use mtsim_core::{MachineConfig, SwitchModel};

    #[test]
    fn host_counts_match_known_values() {
        assert_eq!(host_prime_count(10), 4);
        assert_eq!(host_prime_count(100), 25);
        assert_eq!(host_prime_count(1000), 168);
        assert_eq!(host_prime_count(10_000), 1229);
    }

    #[test]
    fn sieve_single_thread_ideal() {
        let app = build_sieve(SieveParams { limit: 2_000 }, 1);
        run_app(&app, MachineConfig::ideal(1)).unwrap();
    }

    #[test]
    fn sieve_parallel_switch_on_load() {
        let app = build_sieve(SieveParams { limit: 2_000 }, 8);
        run_app(&app, MachineConfig::new(SwitchModel::SwitchOnLoad, 4, 2)).unwrap();
    }

    #[test]
    fn sieve_parallel_explicit_switch() {
        let app = build_sieve(SieveParams { limit: 2_000 }, 6);
        run_app(&app, MachineConfig::new(SwitchModel::ExplicitSwitch, 2, 3)).unwrap();
    }

    #[test]
    fn sieve_more_threads_than_work() {
        // Degenerate: more threads than candidates; barriers must still work.
        let app = build_sieve(SieveParams { limit: 64 }, 12);
        run_app(&app, MachineConfig::new(SwitchModel::SwitchOnLoad, 4, 3)).unwrap();
    }
}
