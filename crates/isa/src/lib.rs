//! # mtsim-isa
//!
//! Instruction set of the simulated machine used throughout `mtsim`, the
//! reproduction of Boothe & Ranade, *Improved Multithreading Techniques for
//! Hiding Communication Latency in Multiprocessors* (ISCA 1992).
//!
//! The paper targets a "typical pipelined RISC processor" with the
//! instruction set and timings of the MIPS R3000, extended with:
//!
//! * **local and shared versions** of every load and store (the paper assumes
//!   every reference is statically classified by the compiler);
//! * **Load-Double / Store-Double** to move two adjacent words in a single
//!   network message (here: [`Inst::LoadPair`] / [`Inst::StorePair`]);
//! * **Fetch-and-Add** as the synchronization primitive ([`Inst::FetchAdd`]);
//! * an **explicit context-switch instruction** ([`Inst::Switch`]), the
//!   paper's central addition.
//!
//! This crate defines the registers, instructions, and the per-instruction
//! cycle-cost model; the execution semantics live in `mtsim-core`.
//!
//! ## Example
//!
//! ```
//! use mtsim_isa::{Inst, AluOp, Reg, cost::cycles};
//!
//! let add = Inst::AluI { op: AluOp::Add, rd: Reg::R8, rs: Reg::ZERO, imm: 42 };
//! assert_eq!(cycles(&add), 1);
//! ```

pub mod cost;
mod disasm;
mod inst;
mod reg;

pub use inst::{AccessHint, AluOp, BCond, CmpOp, FpuOp, Inst, Space};
pub use reg::{FReg, Reg};

/// A program-counter value: an index into a program's instruction vector.
pub type Pc = u32;

/// A label identifier used before branch-target resolution.
pub type LabelId = u32;

/// A branch/jump target: a label id before resolution, a [`Pc`] afterwards.
///
/// Programs are constructed with `Target::Label` references and resolved to
/// `Target::Pc` by `mtsim_asm::Program::finish`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// An unresolved reference to a label created by the program builder.
    Label(LabelId),
    /// A resolved absolute instruction index.
    Pc(Pc),
}

impl Target {
    /// Returns the resolved program counter.
    ///
    /// # Panics
    ///
    /// Panics if the target is still an unresolved label.
    pub fn pc(self) -> Pc {
        match self {
            Target::Pc(pc) => pc,
            Target::Label(l) => panic!("unresolved branch target: label {l}"),
        }
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Target::Label(l) => write!(f, "L{l}"),
            Target::Pc(pc) => write!(f, "@{pc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_pc_resolves() {
        assert_eq!(Target::Pc(7).pc(), 7);
    }

    #[test]
    #[should_panic(expected = "unresolved")]
    fn target_label_panics() {
        let _ = Target::Label(3).pc();
    }

    #[test]
    fn target_display() {
        assert_eq!(Target::Label(2).to_string(), "L2");
        assert_eq!(Target::Pc(9).to_string(), "@9");
    }
}
