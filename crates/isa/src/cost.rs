//! Per-instruction cycle costs.
//!
//! The paper uses "the instruction set and timings of the MIPS R3000". The
//! table below follows the R3000/R3010 latencies for the operations the
//! applications use. These are *occupancy* costs charged to the issuing
//! processor; the network round-trip latency of shared accesses is modeled
//! separately by the engine (`mtsim-core`) and is **not** part of these
//! numbers.

use crate::{AluOp, FpuOp, Inst};

/// Cycles for an integer multiply (R3000 `mult`).
pub const MUL_CYCLES: u32 = 12;
/// Cycles for an integer divide/remainder (R3000 `div`).
pub const DIV_CYCLES: u32 = 35;
/// Cycles for FP add/sub/min/max/compare/convert (R3010 double precision).
pub const FP_ADD_CYCLES: u32 = 2;
/// Cycles for FP multiply.
pub const FP_MUL_CYCLES: u32 = 5;
/// Cycles for FP divide.
pub const FP_DIV_CYCLES: u32 = 19;
/// Cycles for FP square root (software-assisted).
pub const FP_SQRT_CYCLES: u32 = 30;

/// Occupancy cost in cycles of one instruction.
///
/// Loads, stores, branches, `Switch`, `FetchAdd` and simple ALU operations
/// all occupy the pipeline for a single cycle; the long-latency arithmetic
/// units use the constants above.
pub fn cycles(inst: &Inst) -> u32 {
    match inst {
        Inst::Alu { op, .. } | Inst::AluI { op, .. } => match op {
            AluOp::Mul => MUL_CYCLES,
            AluOp::Div | AluOp::Rem => DIV_CYCLES,
            _ => 1,
        },
        Inst::Fpu { op, .. } => match op {
            FpuOp::Add | FpuOp::Sub | FpuOp::Min | FpuOp::Max => FP_ADD_CYCLES,
            FpuOp::Mul => FP_MUL_CYCLES,
            FpuOp::Div => FP_DIV_CYCLES,
        },
        Inst::FpuCmp { .. } | Inst::CvtIF { .. } | Inst::CvtFI { .. } => FP_ADD_CYCLES,
        Inst::FSqrt { .. } => FP_SQRT_CYCLES,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FReg, Reg};

    #[test]
    fn simple_ops_are_one_cycle() {
        let i = Inst::AluI { op: AluOp::Add, rd: Reg::R8, rs: Reg::ZERO, imm: 1 };
        assert_eq!(cycles(&i), 1);
        assert_eq!(cycles(&Inst::Switch), 1);
        assert_eq!(cycles(&Inst::Nop), 1);
        assert_eq!(cycles(&Inst::Halt), 1);
    }

    #[test]
    fn long_latency_ops() {
        let mul = Inst::Alu { op: AluOp::Mul, rd: Reg::R8, rs: Reg::R8, rt: Reg::R8 };
        assert_eq!(cycles(&mul), MUL_CYCLES);
        let div = Inst::AluI { op: AluOp::Div, rd: Reg::R8, rs: Reg::R8, imm: 3 };
        assert_eq!(cycles(&div), DIV_CYCLES);
        let f = FReg::F0;
        assert_eq!(cycles(&Inst::Fpu { op: FpuOp::Mul, fd: f, fs: f, ft: f }), FP_MUL_CYCLES);
        assert_eq!(cycles(&Inst::Fpu { op: FpuOp::Div, fd: f, fs: f, ft: f }), FP_DIV_CYCLES);
        assert_eq!(cycles(&Inst::Fpu { op: FpuOp::Add, fd: f, fs: f, ft: f }), FP_ADD_CYCLES);
    }
}
