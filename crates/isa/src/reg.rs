//! Integer and floating-point register names.
//!
//! Each simulated thread owns a private set of 32 integer and 32
//! floating-point registers, exactly as in the paper ("each thread has its
//! own set of 32 integer and 32 floating-point registers").

/// An integer register, `R0`..`R31`.
///
/// `R0` is hardwired to zero as on MIPS. The software conventions used by
/// `mtsim-asm` codegen are documented on the associated constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Thread id at entry (ABI).
    pub const TID: Reg = Reg(1);
    /// Number of threads at entry (ABI).
    pub const NTHREADS: Reg = Reg(2);
    /// Scratch register reserved for the runtime's spin loops.
    pub const RT0: Reg = Reg(3);
    /// Second runtime scratch register.
    pub const RT1: Reg = Reg(4);
    /// Third runtime scratch register.
    pub const RT2: Reg = Reg(5);
    /// First general allocatable register (codegen pool starts here).
    pub const R8: Reg = Reg(8);
    /// Stack pointer by convention (not used by the builder's codegen, which
    /// addresses local memory directly, but reserved for hand-written code).
    pub const SP: Reg = Reg(29);

    /// Number of integer registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn new(n: u8) -> Reg {
        assert!(n < 32, "integer register index {n} out of range");
        Reg(n)
    }

    /// The register's index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for `R0`, whose reads are always zero and writes discarded.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register, `F0`..`F31`. Each holds one `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// First general allocatable FP register.
    pub const F0: FReg = FReg(0);

    /// Number of floating-point registers.
    pub const COUNT: usize = 32;

    /// Creates an FP register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn new(n: u8) -> FReg {
        assert!(n < 32, "fp register index {n} out of range");
        FReg(n)
    }

    /// The register's index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for n in 0..32 {
            assert_eq!(Reg::new(n).index(), n as usize);
            assert_eq!(FReg::new(n).index(), n as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_out_of_range() {
        let _ = FReg::new(32);
    }

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::R8.is_zero());
    }

    #[test]
    fn display() {
        assert_eq!(Reg::new(17).to_string(), "r17");
        assert_eq!(FReg::new(3).to_string(), "f3");
    }
}
