//! Instruction definitions.
//!
//! Addressing: memory is word-addressed (one 64-bit value per address).
//! Loads and stores name a base register plus a constant word offset, and
//! carry a [`Space`] that statically classifies the reference as *local*
//! (private, fast) or *shared* (remote, subject to the network round-trip
//! latency). The paper argues this static classification is realistic for
//! Sequent-style C/FORTRAN programs; in `mtsim` it is enforced by
//! construction because the program builder separates the two spaces.

use crate::{FReg, Reg, Target};

/// Memory space of a load or store: decided statically by the compiler,
/// exactly as the paper assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Private per-thread memory. Always hits the local cache: unit cost,
    /// never causes a context switch.
    Local,
    /// Global shared memory reached over the interconnection network:
    /// round-trip latency applies and, depending on the multithreading
    /// model, the access (or a later `Switch`/use) yields the processor.
    Shared,
}

impl Space {
    /// True for [`Space::Shared`].
    pub fn is_shared(self) -> bool {
        matches!(self, Space::Shared)
    }
}

/// Scheduling-relevant classification of a shared access, used by the
/// statistics machinery.
///
/// The paper (footnote 2, §6.1) excludes messages "used in spinning on locks
/// and barriers" from its bandwidth figures, expecting a real machine to
/// provide non-spinning primitives. The runtime tags the accesses inside its
/// spin loops so the statistics can be reported both ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessHint {
    /// Ordinary data access (the default).
    #[default]
    Data,
    /// Part of a lock spin loop; excluded from paper-style bandwidth.
    Spin,
    /// A barrier-generation poll: spins exactly like [`AccessHint::Spin`]
    /// (same bandwidth exclusion, same deadlock tracking) but tells the
    /// observability layer to charge the wait to barrier-wait rather than
    /// lock-spin.
    Barrier,
    /// A barrier arrive/release access (the arrival fetch-and-add and the
    /// count/generation writes). Behaves exactly like [`AccessHint::Data`]
    /// — it is real synchronization traffic, not a poll — but lets the
    /// observability layer emit barrier-arrive/release events.
    Release,
}

impl AccessHint {
    /// True for the polling hints ([`AccessHint::Spin`] and
    /// [`AccessHint::Barrier`]): re-reads of one word that bypass caches,
    /// are excluded from paper-style bandwidth, and feed the deadlock
    /// detector.
    #[inline]
    pub fn is_poll(self) -> bool {
        matches!(self, AccessHint::Spin | AccessHint::Barrier)
    }
}

/// Integer ALU operation. `Slt`-style comparisons produce 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (R3000 `mult`, 12 cycles).
    Mul,
    /// Signed division (R3000 `div`, 35 cycles). Division by zero yields 0.
    Div,
    /// Signed remainder (same cost as division). Remainder by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set if less than (signed): `rd = (rs < rt) as i64`.
    Slt,
    /// Set if less than or equal (signed).
    Sle,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
}

/// Floating-point arithmetic operation on `f64` registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Addition (2 cycles, R3000/R3010 double-precision flavor).
    Add,
    /// Subtraction (2 cycles).
    Sub,
    /// Multiplication (5 cycles).
    Mul,
    /// Division (19 cycles).
    Div,
    /// Minimum (2 cycles); convenience op used by the applications.
    Min,
    /// Maximum (2 cycles).
    Max,
}

/// Floating-point comparison producing an integer 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

/// Branch condition comparing two integer registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BCond {
    /// `rs == rt`
    Eq,
    /// `rs != rt`
    Ne,
    /// `rs < rt` (signed)
    Lt,
    /// `rs <= rt` (signed)
    Le,
    /// `rs > rt` (signed)
    Gt,
    /// `rs >= rt` (signed)
    Ge,
}

/// One machine instruction.
///
/// Word addressing throughout: `base + offset` is a word index into the
/// instruction's [`Space`]. All integer registers hold `i64` (stored as raw
/// bits), all FP registers hold `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// Three-register ALU operation: `rd = rs op rt`.
    Alu { op: AluOp, rd: Reg, rs: Reg, rt: Reg },
    /// Register-immediate ALU operation: `rd = rs op imm`.
    AluI { op: AluOp, rd: Reg, rs: Reg, imm: i64 },
    /// FP arithmetic: `fd = fs op ft`.
    Fpu { op: FpuOp, fd: FReg, fs: FReg, ft: FReg },
    /// FP comparison into an integer register: `rd = (fs op ft) as i64`.
    FpuCmp { op: CmpOp, rd: Reg, fs: FReg, ft: FReg },
    /// Load FP immediate (assembler pseudo-instruction, 1 cycle).
    FLi { fd: FReg, val: f64 },
    /// Convert integer to float: `fd = rs as f64`.
    CvtIF { fd: FReg, rs: Reg },
    /// Convert float to integer (truncating): `rd = fs as i64`.
    CvtFI { rd: Reg, fs: FReg },
    /// Move an integer register's bits into an FP register.
    MovIF { fd: FReg, rs: Reg },
    /// Move an FP register's bits into an integer register.
    MovFI { rd: Reg, fs: FReg },
    /// Floating-point square root: `fd = sqrt(fs)` (software-assisted on
    /// the R3010, hence the long latency in the cost model).
    FSqrt { fd: FReg, fs: FReg },

    /// Integer load: `rd = space[rs(base) + offset]`.
    Load { space: Space, rd: Reg, base: Reg, offset: i64, hint: AccessHint },
    /// Integer store: `space[base + offset] = rs`.
    Store { space: Space, rs: Reg, base: Reg, offset: i64, hint: AccessHint },
    /// FP load (same addressing; reinterprets the word's bits as `f64`).
    FLoad { space: Space, fd: FReg, base: Reg, offset: i64 },
    /// FP store.
    FStore { space: Space, fs: FReg, base: Reg, offset: i64 },
    /// Load-Double: loads two adjacent words `[base+offset]`, `[base+offset+1]`
    /// into `fd1`, `fd2` with a **single network message** (paper §3: added
    /// "to reduce the number of network messages").
    LoadPair { space: Space, fd1: FReg, fd2: FReg, base: Reg, offset: i64 },
    /// Store-Double: stores two adjacent words in one message.
    StorePair { space: Space, fs1: FReg, fs2: FReg, base: Reg, offset: i64 },
    /// Fetch-and-Add to shared memory: `rd = shared[base+offset]`, then
    /// `shared[base+offset] += rs`, atomically at the memory module.
    /// Behaves like a shared load for context-switching purposes.
    FetchAdd { rd: Reg, rs: Reg, base: Reg, offset: i64, hint: AccessHint },

    /// Conditional branch.
    Branch { cond: BCond, rs: Reg, rt: Reg, target: Target },
    /// Unconditional jump.
    Jump { target: Target },
    /// Sets the thread's scheduling priority (0 = normal). Emitted by the
    /// runtime around critical sections; consumed by the engine's optional
    /// priority scheduler — the "more sophisticated scheduling policies
    /// such as priority scheduling of threads inside critical regions"
    /// the paper suggests in §6.2. A 1-cycle hint with no data effects.
    SetPrio { level: u8 },
    /// The explicit context-switch instruction (paper §5). Under the
    /// `ExplicitSwitch` model the thread yields until all its outstanding
    /// shared accesses complete; under `ConditionalSwitch` it yields only if
    /// one of them missed the cache (or the forced-switch interval expired);
    /// under all other models it is a 1-cycle no-op.
    Switch,
    /// Thread termination.
    Halt,
    /// No operation (1 cycle).
    Nop,
}

impl Inst {
    /// True if the instruction accesses shared memory (and therefore enters
    /// the network / can trigger a context switch).
    pub fn is_shared_access(&self) -> bool {
        match self {
            Inst::Load { space, .. }
            | Inst::Store { space, .. }
            | Inst::FLoad { space, .. }
            | Inst::FStore { space, .. }
            | Inst::LoadPair { space, .. }
            | Inst::StorePair { space, .. } => space.is_shared(),
            Inst::FetchAdd { .. } => true,
            _ => false,
        }
    }

    /// True for shared accesses that *return data* (loads and fetch-and-add):
    /// the accesses that can block a thread.
    pub fn is_shared_read(&self) -> bool {
        match self {
            Inst::Load { space, .. } | Inst::FLoad { space, .. } | Inst::LoadPair { space, .. } => {
                space.is_shared()
            }
            Inst::FetchAdd { .. } => true,
            _ => false,
        }
    }

    /// True for shared stores (fire-and-forget writes).
    pub fn is_shared_write(&self) -> bool {
        match self {
            Inst::Store { space, .. }
            | Inst::FStore { space, .. }
            | Inst::StorePair { space, .. } => space.is_shared(),
            _ => false,
        }
    }

    /// True if this instruction ends a basic block (branch, jump, halt).
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::Branch { .. } | Inst::Jump { .. } | Inst::Halt)
    }

    /// The branch/jump target, if any.
    pub fn target(&self) -> Option<Target> {
        match self {
            Inst::Branch { target, .. } | Inst::Jump { target } => Some(*target),
            _ => None,
        }
    }

    /// Replaces the branch/jump target (used by label resolution).
    pub fn set_target(&mut self, t: Target) {
        match self {
            Inst::Branch { target, .. } | Inst::Jump { target } => *target = t,
            _ => panic!("set_target on non-control instruction {self:?}"),
        }
    }

    /// Integer registers read by this instruction.
    pub fn int_uses(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        match *self {
            Inst::Alu { rs, rt, .. } => {
                v.push(rs);
                v.push(rt);
            }
            Inst::AluI { rs, .. } => v.push(rs),
            Inst::CvtIF { rs, .. } | Inst::MovIF { rs, .. } => v.push(rs),
            Inst::Load { base, .. } | Inst::FLoad { base, .. } | Inst::LoadPair { base, .. } => {
                v.push(base)
            }
            Inst::Store { rs, base, .. } => {
                v.push(rs);
                v.push(base);
            }
            Inst::FStore { base, .. } | Inst::StorePair { base, .. } => v.push(base),
            Inst::FetchAdd { rs, base, .. } => {
                v.push(rs);
                v.push(base);
            }
            Inst::Branch { rs, rt, .. } => {
                v.push(rs);
                v.push(rt);
            }
            _ => {}
        }
        v.retain(|r| !r.is_zero());
        v
    }

    /// Integer register written by this instruction, if any. `LoadPair`
    /// writes FP registers, so it does not appear here.
    pub fn int_def(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Alu { rd, .. }
            | Inst::AluI { rd, .. }
            | Inst::FpuCmp { rd, .. }
            | Inst::CvtFI { rd, .. }
            | Inst::MovFI { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::FetchAdd { rd, .. } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// FP registers read by this instruction.
    pub fn fp_uses(&self) -> Vec<FReg> {
        match *self {
            Inst::Fpu { fs, ft, .. } | Inst::FpuCmp { fs, ft, .. } => vec![fs, ft],
            Inst::CvtFI { fs, .. } | Inst::MovFI { fs, .. } | Inst::FStore { fs, .. } => vec![fs],
            Inst::FSqrt { fs, .. } => vec![fs],
            Inst::StorePair { fs1, fs2, .. } => vec![fs1, fs2],
            _ => Vec::new(),
        }
    }

    /// FP registers written by this instruction.
    pub fn fp_defs(&self) -> Vec<FReg> {
        match *self {
            Inst::Fpu { fd, .. }
            | Inst::FLi { fd, .. }
            | Inst::CvtIF { fd, .. }
            | Inst::MovIF { fd, .. }
            | Inst::FSqrt { fd, .. }
            | Inst::FLoad { fd, .. } => vec![fd],
            Inst::LoadPair { fd1, fd2, .. } => vec![fd1, fd2],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_load() -> Inst {
        Inst::Load {
            space: Space::Shared,
            rd: Reg::R8,
            base: Reg::new(9),
            offset: 4,
            hint: AccessHint::Data,
        }
    }

    #[test]
    fn classification() {
        assert!(shared_load().is_shared_access());
        assert!(shared_load().is_shared_read());
        assert!(!shared_load().is_shared_write());
        let st = Inst::Store {
            space: Space::Shared,
            rs: Reg::R8,
            base: Reg::new(9),
            offset: 0,
            hint: AccessHint::Data,
        };
        assert!(st.is_shared_write() && !st.is_shared_read());
        let local = Inst::Load {
            space: Space::Local,
            rd: Reg::R8,
            base: Reg::new(9),
            offset: 0,
            hint: AccessHint::Data,
        };
        assert!(!local.is_shared_access());
        let fa = Inst::FetchAdd {
            rd: Reg::R8,
            rs: Reg::new(10),
            base: Reg::new(9),
            offset: 0,
            hint: AccessHint::Data,
        };
        assert!(fa.is_shared_read() && fa.is_shared_access());
    }

    #[test]
    fn def_use_sets() {
        let i = Inst::Alu { op: AluOp::Add, rd: Reg::new(8), rs: Reg::new(9), rt: Reg::new(10) };
        assert_eq!(i.int_uses(), vec![Reg::new(9), Reg::new(10)]);
        assert_eq!(i.int_def(), Some(Reg::new(8)));

        // r0 never appears in def/use sets.
        let z = Inst::AluI { op: AluOp::Add, rd: Reg::ZERO, rs: Reg::ZERO, imm: 1 };
        assert!(z.int_uses().is_empty());
        assert_eq!(z.int_def(), None);
    }

    #[test]
    fn pair_defs_are_fp() {
        let lp = Inst::LoadPair {
            space: Space::Shared,
            fd1: FReg::new(1),
            fd2: FReg::new(2),
            base: Reg::new(8),
            offset: 0,
        };
        assert_eq!(lp.int_def(), None);
        assert_eq!(lp.fp_defs(), vec![FReg::new(1), FReg::new(2)]);
        assert_eq!(lp.int_uses(), vec![Reg::new(8)]);
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Halt.is_control());
        assert!(Inst::Jump { target: Target::Label(0) }.is_control());
        assert!(!Inst::Switch.is_control());
    }

    #[test]
    fn set_target_rewrites() {
        let mut j = Inst::Jump { target: Target::Label(5) };
        j.set_target(Target::Pc(12));
        assert_eq!(j.target(), Some(Target::Pc(12)));
    }
}
