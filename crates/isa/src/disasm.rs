//! Textual instruction rendering, used by program listings (e.g. the Fig. 4
//! before/after-grouping listings) and `Debug` output in tests.

use crate::{AluOp, BCond, CmpOp, FpuOp, Inst, Space};

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sle => "sle",
        AluOp::Seq => "seq",
        AluOp::Sne => "sne",
    }
}

fn fpu_name(op: FpuOp) -> &'static str {
    match op {
        FpuOp::Add => "fadd",
        FpuOp::Sub => "fsub",
        FpuOp::Mul => "fmul",
        FpuOp::Div => "fdiv",
        FpuOp::Min => "fmin",
        FpuOp::Max => "fmax",
    }
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "flt",
        CmpOp::Le => "fle",
        CmpOp::Eq => "feq",
        CmpOp::Ne => "fne",
    }
}

fn bcond_name(c: BCond) -> &'static str {
    match c {
        BCond::Eq => "beq",
        BCond::Ne => "bne",
        BCond::Lt => "blt",
        BCond::Le => "ble",
        BCond::Gt => "bgt",
        BCond::Ge => "bge",
    }
}

fn hint_suffix(h: crate::AccessHint) -> &'static str {
    match h {
        crate::AccessHint::Data => "",
        crate::AccessHint::Spin => ".spin",
        crate::AccessHint::Barrier => ".barrier",
        crate::AccessHint::Release => ".rel",
    }
}

fn space_suffix(s: Space) -> &'static str {
    match s {
        Space::Local => ".l",
        Space::Shared => ".s",
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs, rt } => write!(f, "{} {rd}, {rs}, {rt}", alu_name(op)),
            Inst::AluI { op, rd, rs, imm } => write!(f, "{}i {rd}, {rs}, {imm}", alu_name(op)),
            Inst::Fpu { op, fd, fs, ft } => write!(f, "{} {fd}, {fs}, {ft}", fpu_name(op)),
            Inst::FpuCmp { op, rd, fs, ft } => write!(f, "{} {rd}, {fs}, {ft}", cmp_name(op)),
            Inst::FLi { fd, val } => write!(f, "fli {fd}, {val}"),
            Inst::CvtIF { fd, rs } => write!(f, "cvt.i.f {fd}, {rs}"),
            Inst::CvtFI { rd, fs } => write!(f, "cvt.f.i {rd}, {fs}"),
            Inst::MovIF { fd, rs } => write!(f, "mov.i.f {fd}, {rs}"),
            Inst::MovFI { rd, fs } => write!(f, "mov.f.i {rd}, {fs}"),
            Inst::FSqrt { fd, fs } => write!(f, "fsqrt {fd}, {fs}"),
            Inst::Load { space, rd, base, offset, hint } => {
                write!(f, "ld{}{} {rd}, {offset}({base})", space_suffix(space), hint_suffix(hint))
            }
            Inst::Store { space, rs, base, offset, hint } => {
                write!(f, "st{}{} {rs}, {offset}({base})", space_suffix(space), hint_suffix(hint))
            }
            Inst::FLoad { space, fd, base, offset } => {
                write!(f, "fld{} {fd}, {offset}({base})", space_suffix(space))
            }
            Inst::FStore { space, fs, base, offset } => {
                write!(f, "fst{} {fs}, {offset}({base})", space_suffix(space))
            }
            Inst::LoadPair { space, fd1, fd2, base, offset } => {
                write!(f, "ldd{} {fd1}:{fd2}, {offset}({base})", space_suffix(space))
            }
            Inst::StorePair { space, fs1, fs2, base, offset } => {
                write!(f, "std{} {fs1}:{fs2}, {offset}({base})", space_suffix(space))
            }
            Inst::FetchAdd { rd, rs, base, offset, hint } => {
                write!(f, "faa{} {rd}, {rs}, {offset}({base})", hint_suffix(hint))
            }
            Inst::Branch { cond, rs, rt, target } => {
                write!(f, "{} {rs}, {rt}, {target}", bcond_name(cond))
            }
            Inst::Jump { target } => write!(f, "j {target}"),
            Inst::SetPrio { level } => write!(f, "prio {level}"),
            Inst::Switch => write!(f, "switch"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessHint, FReg, Reg, Target};

    #[test]
    fn renders_shared_and_local() {
        let ld = Inst::Load {
            space: Space::Shared,
            rd: Reg::R8,
            base: Reg::new(9),
            offset: 3,
            hint: AccessHint::Data,
        };
        assert_eq!(ld.to_string(), "ld.s r8, 3(r9)");
        let st =
            Inst::FStore { space: Space::Local, fs: FReg::new(2), base: Reg::new(9), offset: -1 };
        assert_eq!(st.to_string(), "fst.l f2, -1(r9)");
    }

    #[test]
    fn renders_control_and_switch() {
        let b = Inst::Branch {
            cond: BCond::Lt,
            rs: Reg::new(8),
            rt: Reg::new(9),
            target: Target::Pc(4),
        };
        assert_eq!(b.to_string(), "blt r8, r9, @4");
        assert_eq!(Inst::Switch.to_string(), "switch");
    }

    #[test]
    fn every_variant_renders_nonempty() {
        let r = Reg::R8;
        let f = FReg::F0;
        let t = Target::Label(1);
        let insts = vec![
            Inst::Alu { op: AluOp::Add, rd: r, rs: r, rt: r },
            Inst::AluI { op: AluOp::Xor, rd: r, rs: r, imm: 7 },
            Inst::Fpu { op: FpuOp::Min, fd: f, fs: f, ft: f },
            Inst::FpuCmp { op: CmpOp::Ne, rd: r, fs: f, ft: f },
            Inst::FLi { fd: f, val: 1.5 },
            Inst::CvtIF { fd: f, rs: r },
            Inst::CvtFI { rd: r, fs: f },
            Inst::MovIF { fd: f, rs: r },
            Inst::MovFI { rd: r, fs: f },
            Inst::FLoad { space: Space::Shared, fd: f, base: r, offset: 0 },
            Inst::LoadPair { space: Space::Shared, fd1: f, fd2: FReg::new(1), base: r, offset: 0 },
            Inst::StorePair { space: Space::Shared, fs1: f, fs2: FReg::new(1), base: r, offset: 0 },
            Inst::FetchAdd { rd: r, rs: r, base: r, offset: 0, hint: AccessHint::Spin },
            Inst::Jump { target: t },
            Inst::Halt,
            Inst::Nop,
        ];
        for i in insts {
            assert!(!i.to_string().is_empty(), "{i:?}");
        }
    }
}
