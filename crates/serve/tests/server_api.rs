//! In-process API tests: a real `Server` on an ephemeral port, talked to
//! over real sockets with hand-written HTTP.
//!
//! Beyond endpoint behavior, one structural property is enforced
//! throughout: **every `application/json` body the server emits must
//! reparse under the strict checkpoint JSON parser**
//! (`mtsim_sweep::checkpoint::parse_json`) — the server's hand-rolled
//! JSON never gets to drift from what the rest of the workspace can
//! read.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use mtsim_serve::{ServeConfig, Server};
use mtsim_sweep::checkpoint::parse_json;
use mtsim_sweep::{run_sweep, SweepOpts, SweepSpec};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtsim-serve-api-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(state_dir: &std::path::Path, queue_cap: usize) -> SocketAddr {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: Some(2),
        state_dir: state_dir.to_string_lossy().into_owned(),
        queue_cap,
        cache_cap: 16,
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || server.run());
    addr
}

/// One response off the wire: status, content-type, body.
struct Reply {
    status: u16,
    content_type: String,
    body: Vec<u8>,
}

impl Reply {
    /// The body as text, asserting it reparses under the strict JSON
    /// parser whenever the server labeled it JSON.
    fn text(&self) -> String {
        let text = String::from_utf8(self.body.clone()).expect("utf-8 body");
        if self.content_type == "application/json" {
            parse_json(text.trim_end()).unwrap_or_else(|e| {
                panic!("server emitted unparseable JSON ({e}): {text}");
            });
        }
        text
    }
}

fn read_reply(conn: &mut TcpStream) -> Reply {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = conn.read(&mut buf).expect("read response head");
        assert!(n > 0, "connection closed mid-head: {:?}", String::from_utf8_lossy(&raw));
        raw.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    let content_type = head
        .lines()
        .find_map(|l| l.strip_prefix("content-type: "))
        .unwrap_or("")
        .trim()
        .to_string();
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("response must declare content-length");
    let mut body: Vec<u8> = raw[head_end..].to_vec();
    while body.len() < length {
        let n = conn.read(&mut buf).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(length);
    Reply { status, content_type, body }
}

fn send(addr: SocketAddr, raw: &[u8]) -> Reply {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(raw).expect("write request");
    read_reply(&mut conn)
}

fn get(addr: SocketAddr, path: &str) -> Reply {
    send(addr, format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    send(
        addr,
        format!("POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}", body.len())
            .as_bytes(),
    )
}

const TINY_SPEC: &str =
    "apps=sieve\nmodels=switch-on-load,explicit-switch\nprocs=2\nthreads=1,2\nscale=tiny\n";

fn field_u64(json: &str, key: &str) -> u64 {
    parse_json(json.trim_end())
        .unwrap()
        .get(key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("missing {key} in {json}"))
}

fn field_str(json: &str, key: &str) -> String {
    parse_json(json.trim_end())
        .unwrap()
        .get(key)
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_else(|| panic!("missing {key} in {json}"))
}

/// Polls the job until it leaves queued/running (or panics after 60s).
fn wait_terminal(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = field_str(&get(addr, &format!("/v1/sweeps/{id}")).text(), "state");
        if state != "queued" && state != "running" {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn healthz_and_error_paths_speak_parseable_json() {
    let dir = tmp_dir("errors");
    let addr = start(&dir, 4);
    let ok = get(addr, "/v1/healthz");
    assert_eq!(ok.status, 200);
    assert!(ok.text().contains("\"ok\":true"));

    assert_eq!(get(addr, "/v1/nonsense").status, 404);
    assert_eq!(get(addr, "/v1/sweeps/notanumber").status, 400);
    assert_eq!(get(addr, "/v1/sweeps/999").status, 404);
    assert_eq!(post(addr, "/v1/sweeps", "apps=unobtainium\n").status, 400);
    assert_eq!(post(addr, "/v1/sweeps?priority=11", TINY_SPEC).status, 400);
    let delete = send(addr, b"DELETE /v1/healthz HTTP/1.1\r\n\r\n");
    assert_eq!(delete.status, 405);
    // Each error body above went through Reply::text()'s reparse check.
    for r in [
        get(addr, "/v1/nonsense"),
        get(addr, "/v1/sweeps/notanumber"),
        post(addr, "/v1/sweeps", "bogus\n"),
    ] {
        r.text();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submitted_sweep_results_are_byte_identical_to_the_library() {
    let dir = tmp_dir("identity");
    let addr = start(&dir, 4);

    let submit = post(addr, "/v1/sweeps", TINY_SPEC);
    assert_eq!(submit.status, 201, "{}", submit.text());
    let id = field_u64(&submit.text(), "id");
    assert_eq!(wait_terminal(addr, id), "done");

    let served = get(addr, &format!("/v1/sweeps/{id}/results"));
    assert_eq!(served.status, 200);
    let spec = SweepSpec::parse_file(TINY_SPEC).unwrap();
    let reference = run_sweep(&spec, &SweepOpts::default()).unwrap().results_json() + "\n";
    assert_eq!(
        String::from_utf8(served.body.clone()).unwrap(),
        reference,
        "served results must be byte-identical to the library's table"
    );

    // Incremental streaming: line 0 is the checkpoint header, then one
    // line per grid point; past-the-end reads are empty, not errors.
    let total = field_u64(&get(addr, &format!("/v1/sweeps/{id}")).text(), "total");
    let all = get(addr, &format!("/v1/sweeps/{id}/results?from=0"));
    assert_eq!(all.content_type, "application/x-ndjson");
    let lines: Vec<&str> = std::str::from_utf8(&all.body).unwrap().lines().collect();
    assert_eq!(lines.len() as u64, total + 1);
    let tail = get(addr, &format!("/v1/sweeps/{id}/results?from={}", total + 1));
    assert!(tail.body.is_empty());

    // The trace renders every grid point as a Perfetto slice.
    let trace = get(addr, &format!("/v1/sweeps/{id}/trace"));
    assert_eq!(trace.status, 200);
    let trace_text = trace.text();
    assert!(trace_text.starts_with("{\"traceEvents\":["));
    assert_eq!(trace_text.matches("\"ph\":\"X\"").count() as u64, total);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_identical_sweep_rebuilds_nothing() {
    let dir = tmp_dir("warm");
    let addr = start(&dir, 4);

    let first = field_u64(&post(addr, "/v1/sweeps", TINY_SPEC).text(), "id");
    assert_eq!(wait_terminal(addr, first), "done");
    let misses_before = {
        let stats = get(addr, "/v1/stats").text();
        let jv = parse_json(stats.trim_end()).unwrap();
        jv.get("cache").and_then(|c| c.get("misses")).and_then(|v| v.as_u64()).unwrap()
    };
    assert!(misses_before > 0, "first sweep must have built artifacts");

    let second = field_u64(&post(addr, "/v1/sweeps", TINY_SPEC).text(), "id");
    assert_eq!(wait_terminal(addr, second), "done");
    let stats = get(addr, "/v1/stats").text();
    let jv = parse_json(stats.trim_end()).unwrap();
    let misses_after =
        jv.get("cache").and_then(|c| c.get("misses")).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(
        misses_after, misses_before,
        "a repeated identical sweep must rebuild nothing: {stats}"
    );
    // Both jobs produced identical bytes from the shared cache.
    let a = get(addr, &format!("/v1/sweeps/{first}/results")).body;
    let b = get(addr, &format!("/v1/sweeps/{second}/results")).body;
    assert_eq!(a, b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_admission_is_bounded() {
    let dir = tmp_dir("admission");
    // Capacity zero: every submission is rejected up front and nothing
    // touches the disk.
    let addr = start(&dir, 0);
    let reply = post(addr, "/v1/sweeps", TINY_SPEC);
    assert_eq!(reply.status, 429);
    reply.text();
    assert!(
        std::fs::read_dir(&dir).unwrap().next().is_none(),
        "a rejected submission must not persist anything"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelling_a_queued_job_is_immediate_and_durable() {
    let dir = tmp_dir("cancel");
    let addr = start(&dir, 8);

    // A multi-point first job occupies the single runner; the second job
    // is deterministically still queued when the cancel arrives.
    let busy_spec = "apps=sieve\nmodels=switch-on-load\nprocs=2\nthreads=2\n\
                     latencies=1,2,3,4,5,6,7,8,9,10\nseeds=1,2,3\nscale=tiny\n";
    let busy = field_u64(&post(addr, "/v1/sweeps", busy_spec).text(), "id");
    let victim = field_u64(&post(addr, "/v1/sweeps", TINY_SPEC).text(), "id");

    let reply = post(addr, &format!("/v1/sweeps/{victim}/cancel"), "");
    assert_eq!(reply.status, 200);
    assert_eq!(field_str(&reply.text(), "state"), "cancelled");
    assert_eq!(wait_terminal(addr, victim), "cancelled");
    // Results of a cancelled job: 409 without ?from, rows via ?from.
    assert_eq!(get(addr, &format!("/v1/sweeps/{victim}/results")).status, 409);
    assert_eq!(get(addr, &format!("/v1/sweeps/{victim}/results?from=0")).status, 200);

    // The busy job is unaffected.
    assert_eq!(wait_terminal(addr, busy), "done");
    // Cancelling a finished job is a no-op reporting its real state.
    let reply = post(addr, &format!("/v1/sweeps/{busy}/cancel"), "");
    assert_eq!(field_str(&reply.text(), "state"), "done");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_and_torn_requests_work_over_a_real_socket() {
    let dir = tmp_dir("pipeline");
    let addr = start(&dir, 4);

    // Two pipelined requests in one write → two responses in order.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\nGET /v1/stats HTTP/1.1\r\n\r\n").unwrap();
    let first = read_reply(&mut conn);
    let second = read_reply(&mut conn);
    assert_eq!((first.status, second.status), (200, 200));
    assert!(first.text().contains("\"ok\""));
    assert!(second.text().contains("\"queue\""));

    // A request torn across writes still parses.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /v1/hea").unwrap();
    conn.flush().unwrap();
    std::thread::sleep(Duration::from_millis(10));
    conn.write_all(b"lthz HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_reply(&mut conn).status, 200);

    // An oversized declared body is rejected at the header.
    let mut conn = TcpStream::connect(addr).unwrap();
    let huge = mtsim_serve::MAX_BODY_BYTES + 1;
    conn.write_all(
        format!("POST /v1/sweeps HTTP/1.1\r\ncontent-length: {huge}\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let reply = read_reply(&mut conn);
    assert_eq!(reply.status, 413);
    reply.text();

    // A malformed content-length is a 400.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"POST /v1/sweeps HTTP/1.1\r\ncontent-length: nope\r\n\r\n").unwrap();
    assert_eq!(read_reply(&mut conn).status, 400);
    let _ = std::fs::remove_dir_all(&dir);
}
