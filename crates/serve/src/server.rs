//! The service itself: TCP accept loop, request routing, and the job
//! runner.
//!
//! Layout: one listener thread per connection (requests are tiny and
//! rare; threads are simpler to reason about than a poll loop and the
//! kernel amortizes them fine at this scale), one *single* runner thread
//! that drains the queue. Sweeps parallelize internally through the
//! worker pool, so running two sweeps at once would just fight over the
//! same cores while breaking the "a sweep owns the machine" performance
//! model — admission control happens at the queue, not the scheduler.
//!
//! Crash safety is delegated: submissions are fsync'd spec files, sweep
//! progress is the PR-6 checkpoint stream, completion is the final
//! result file. The server can be `kill -9`ed at any instant and a
//! restart resumes every unfinished job from its last durable grid
//! point ([`crate::state`] documents the commit points).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use mtsim_obs::{spans_to_chrome_trace, JsonBuilder, TraceSpan};
use mtsim_sweep::{load_checkpoint, resume_sweep, run_sweep, ArtifactCache, SweepError, SweepSpec};

use crate::http::{error_response, response, HttpError, Request, RequestParser};
use crate::queue::JobQueue;
use crate::state::{write_durable, JobState, JobStore};

/// Largest accepted request body (a sweep spec is a few hundred bytes).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the kernel for a free port.
    pub addr: String,
    /// Worker threads per sweep; `None` defers to the pool default.
    pub workers: Option<usize>,
    /// State directory holding job files.
    pub state_dir: String,
    /// Maximum queued (not yet started) jobs; submissions beyond it get
    /// 429.
    pub queue_cap: usize,
    /// Artifact-cache entry cap, enforced between jobs.
    pub cache_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: None,
            state_dir: "mtsim-serve-state".into(),
            queue_cap: 64,
            cache_cap: 128,
        }
    }
}

/// Process-lifetime counters surfaced by `GET /v1/stats`.
#[derive(Debug, Default)]
struct Telemetry {
    requests: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    machine_reuses: AtomicU64,
}

/// Shared server state.
struct ServeState {
    cfg: ServeConfig,
    store: Mutex<JobStore>,
    queue: Mutex<JobQueue>,
    /// Wakes the runner when the queue gains work.
    work: Condvar,
    cache: Arc<ArtifactCache>,
    stats: Telemetry,
    started: Instant,
}

/// A bound, not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the listener, opens the state directory, and re-enqueues
    /// every job interrupted by the previous process's death.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let (store, requeue) = JobStore::open(Path::new(&cfg.state_dir))?;
        let mut queue = JobQueue::new(cfg.queue_cap.max(requeue.len()));
        for &(id, priority) in &requeue {
            queue.push(id, priority).expect("capacity raised to fit recovered jobs");
        }
        let state = Arc::new(ServeState {
            cfg,
            store: Mutex::new(store),
            queue: Mutex::new(queue),
            work: Condvar::new(),
            cache: Arc::new(ArtifactCache::new()),
            stats: Telemetry::default(),
            started: Instant::now(),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (authoritative when the config asked for port
    /// 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever: spawns the runner thread, then accepts
    /// connections until the process dies. Crash safety, not graceful
    /// shutdown, is the contract — `kill -9` is the supported way down.
    pub fn run(self) -> std::io::Result<()> {
        let runner_state = Arc::clone(&self.state);
        std::thread::Builder::new()
            .name("mtsim-serve-runner".into())
            .spawn(move || runner_loop(&runner_state))?;
        for conn in self.listener.incoming() {
            let Ok(conn) = conn else { continue };
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("mtsim-serve-conn".into())
                .spawn(move || handle_connection(conn, &state));
        }
        Ok(())
    }
}

/// Runs queued jobs one at a time until the process dies.
fn runner_loop(state: &ServeState) {
    loop {
        let id = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(id) = queue.pop() {
                    break id;
                }
                queue = state.work.wait(queue).unwrap();
            }
        };
        run_job(state, id);
        // Bound the artifact cache between jobs, never during one: the
        // eviction scan keeps the most recently used program images hot
        // while a burst of one-off specs cannot grow memory unboundedly.
        state.cache.evict_to(state.cfg.cache_cap);
    }
}

/// Runs one job to a terminal state.
fn run_job(state: &ServeState, id: u64) {
    let (spec, ckpt_path, final_path, cancel, completed) = {
        let mut store = state.store.lock().unwrap();
        let ckpt = store.ckpt_path(id);
        let fin = store.final_path(id);
        let Some(job) = store.get_mut(id) else { return };
        // A cancel that raced the queue pop wins: never start the sweep.
        if job.cancel.load(Ordering::Relaxed) || job.state == JobState::Cancelled {
            job.state = JobState::Cancelled;
            state.stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            return;
        }
        job.state = JobState::Running;
        (job.spec.clone(), ckpt, fin, Arc::clone(&job.cancel), Arc::clone(&job.completed))
    };

    let opts = mtsim_sweep::SweepOpts {
        workers: state.cfg.workers,
        progress: false,
        stream: Some(ckpt_path.clone()),
        cache: Some(Arc::clone(&state.cache)),
        cancel: Some(cancel),
        completed: Some(completed),
        ..mtsim_sweep::SweepOpts::default()
    };

    // A checkpoint that landed its header resumes; an empty or absent
    // file starts fresh (the previous process died before the header
    // sync — nothing durable exists to resume from).
    let fresh = match std::fs::metadata(&ckpt_path) {
        Ok(m) => m.len() == 0,
        Err(_) => true,
    };
    let run = if fresh {
        let _ = std::fs::remove_file(&ckpt_path);
        let opts = mtsim_sweep::SweepOpts { stream: Some(ckpt_path.clone()), ..opts };
        run_sweep(&spec, &opts)
    } else {
        let opts = mtsim_sweep::SweepOpts { stream: None, ..opts };
        resume_sweep(&spec, &opts, &ckpt_path)
    };

    let mut store = state.store.lock().unwrap();
    let Some(job) = store.get_mut(id) else { return };
    match run {
        Ok(out) => {
            // Commit point: the final table, byte-identical to the CLI's
            // `--out` file for the same spec.
            match write_durable(Path::new(&final_path), (out.results_json() + "\n").as_bytes()) {
                Ok(()) => {
                    job.state = JobState::Done;
                    job.completed.store(job.total, Ordering::Relaxed);
                    state.stats.jobs_done.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    job.state = JobState::Failed;
                    job.error = Some(format!("cannot write {final_path}: {e}"));
                    state.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            state.stats.machine_reuses.fetch_add(out.machine_reuses, Ordering::Relaxed);
        }
        Err(SweepError::Aborted { reason, completed }) if reason == "cancelled" => {
            job.state = JobState::Cancelled;
            job.completed.store(completed, Ordering::Relaxed);
            state.stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            job.state = JobState::Failed;
            job.error = Some(e.to_string());
            state.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-connection loop: parse, route, respond, until EOF or a framing
/// error.
fn handle_connection(mut conn: TcpStream, state: &ServeState) {
    let mut parser = RequestParser::new(MAX_BODY_BYTES);
    let mut buf = [0u8; 8 * 1024];
    loop {
        match parser.next_request() {
            Ok(Some(request)) => {
                state.stats.requests.fetch_add(1, Ordering::Relaxed);
                let reply = route(state, &request);
                if conn.write_all(&reply).is_err() {
                    return;
                }
                continue; // drain pipelined requests before reading more
            }
            Ok(None) => {}
            Err(e) => {
                let _ = conn.write_all(&framing_error_response(&e));
                return; // framing errors are unrecoverable; close
            }
        }
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => parser.push(&buf[..n]),
        }
    }
}

fn framing_error_response(e: &HttpError) -> Vec<u8> {
    error_response(e.status(), e.message())
}

/// Routes one request to its handler.
fn route(state: &ServeState, request: &Request) -> Vec<u8> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => {
            let mut j = JsonBuilder::new();
            j.begin_object().key("ok").bool(true).end();
            response(200, "application/json", j.finish().as_bytes())
        }
        ("GET", ["v1", "stats"]) => stats(state),
        ("POST", ["v1", "sweeps"]) => submit(state, request),
        ("GET", ["v1", "sweeps", id]) => with_job_id(id, |id| status(state, id)),
        ("GET", ["v1", "sweeps", id, "results"]) => {
            with_job_id(id, |id| results(state, id, request))
        }
        ("GET", ["v1", "sweeps", id, "trace"]) => with_job_id(id, |id| trace(state, id)),
        ("POST", ["v1", "sweeps", id, "cancel"]) => with_job_id(id, |id| cancel(state, id)),
        ("GET" | "POST", _) => error_response(404, "no such endpoint"),
        _ => error_response(405, "only GET and POST are supported"),
    }
}

fn with_job_id(raw: &str, f: impl FnOnce(u64) -> Vec<u8>) -> Vec<u8> {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => error_response(400, &format!("bad job id {raw:?}")),
    }
}

/// `POST /v1/sweeps`: body is a spec file (the same format `mtsim sweep
/// --spec` reads); optional `?priority=N` (0–9, default 0; higher runs
/// first).
fn submit(state: &ServeState, request: &Request) -> Vec<u8> {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return error_response(400, "spec body is not valid utf-8");
    };
    let spec = match SweepSpec::parse_file(text) {
        Ok(spec) => spec,
        Err(e) => return error_response(400, &format!("bad spec: {e}")),
    };
    if let Err(e) = spec.validate() {
        return error_response(400, &format!("bad spec: {e}"));
    }
    let priority: u8 = match request.query_get("priority").unwrap_or("0").parse() {
        Ok(p) if p <= 9 => p,
        _ => return error_response(400, "priority must be an integer in 0..=9"),
    };

    // Admission check first so a full queue never allocates an id or
    // touches the disk.
    {
        let queue = state.queue.lock().unwrap();
        if queue.len() >= state.cfg.queue_cap {
            return error_response(429, &format!("queue is full ({} jobs)", queue.len()));
        }
    }
    let mut store = state.store.lock().unwrap();
    let total = spec.len();
    let id = match store.create(spec, priority) {
        Ok(id) => id,
        Err(e) => return error_response(500, &format!("cannot persist job: {e}")),
    };
    {
        let mut queue = state.queue.lock().unwrap();
        if queue.push(id, priority).is_err() {
            // Lost an admission race; the durable spec stays on disk and
            // will re-enqueue on the next restart, so reply honestly.
            return error_response(429, "queue filled while persisting the job");
        }
    }
    state.work.notify_one();

    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("id").u64(id);
    j.key("state").string(JobState::Queued.name());
    j.key("priority").u64(priority as u64);
    j.key("total").u64(total as u64);
    j.end();
    response(201, "application/json", j.finish().as_bytes())
}

/// `GET /v1/sweeps/:id`: current state and durable progress.
fn status(state: &ServeState, id: u64) -> Vec<u8> {
    let store = state.store.lock().unwrap();
    let Some(job) = store.get(id) else {
        return error_response(404, &format!("no job {id}"));
    };
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("id").u64(job.id);
    j.key("state").string(job.state.name());
    j.key("priority").u64(job.priority as u64);
    j.key("total").u64(job.total as u64);
    j.key("completed").u64(job.completed.load(Ordering::Relaxed) as u64);
    if let Some(e) = &job.error {
        j.key("error").string(e);
    }
    j.end();
    response(200, "application/json", j.finish().as_bytes())
}

/// `GET /v1/sweeps/:id/results`: the final table once the job is done;
/// with `?from=N`, complete checkpoint lines N.. as NDJSON for
/// incremental polling (the header is line 0).
fn results(state: &ServeState, id: u64, request: &Request) -> Vec<u8> {
    let (job_state, ckpt_path, final_path) = {
        let store = state.store.lock().unwrap();
        let Some(job) = store.get(id) else {
            return error_response(404, &format!("no job {id}"));
        };
        (job.state, store.ckpt_path(id), store.final_path(id))
    };
    if let Some(from) = request.query_get("from") {
        let Ok(from) = from.parse::<usize>() else {
            return error_response(400, "from must be a non-negative integer");
        };
        // Complete (newline-terminated) lines only: a concurrent append
        // can leave a torn tail, which the next poll will pick up whole.
        let bytes = std::fs::read(&ckpt_path).unwrap_or_default();
        let complete_upto = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        let body: Vec<u8> = bytes[..complete_upto]
            .split_inclusive(|&b| b == b'\n')
            .skip(from)
            .flatten()
            .copied()
            .collect();
        return response(200, "application/x-ndjson", &body);
    }
    match job_state {
        JobState::Done => match std::fs::read(&final_path) {
            Ok(bytes) => response(200, "application/json", &bytes),
            Err(e) => error_response(500, &format!("cannot read results: {e}")),
        },
        JobState::Failed | JobState::Cancelled => error_response(
            409,
            &format!("job is {}; partial rows are available via ?from=0", job_state.name()),
        ),
        JobState::Queued | JobState::Running => {
            // 202: not done yet — poll again (or stream via ?from=N).
            let mut j = JsonBuilder::new();
            j.begin_object().key("state").string(job_state.name()).end();
            response(202, "application/json", j.finish().as_bytes())
        }
    }
}

/// `POST /v1/sweeps/:id/cancel`: stops a queued or running job. The
/// cancellation is durable — a restart will not resurrect the job.
fn cancel(state: &ServeState, id: u64) -> Vec<u8> {
    let mut store = state.store.lock().unwrap();
    let Some(job) = store.get(id) else {
        return error_response(404, &format!("no job {id}"));
    };
    let reply_state = match job.state {
        JobState::Done | JobState::Failed | JobState::Cancelled => job.state,
        JobState::Queued | JobState::Running => {
            job.cancel.store(true, Ordering::Relaxed);
            if let Err(e) = store.persist_cancel(id) {
                return error_response(500, &format!("cannot persist cancellation: {e}"));
            }
            // A queued job cancels immediately; a running one flips state
            // when the sweep unwinds (its workers observe the token at
            // the next job boundary).
            let was_queued = state.queue.lock().unwrap().remove(id);
            let job = store.get_mut(id).expect("job existed above");
            if was_queued {
                job.state = JobState::Cancelled;
                state.stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            }
            job.state
        }
    };
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("id").u64(id);
    j.key("state").string(reply_state.name());
    j.end();
    response(200, "application/json", j.finish().as_bytes())
}

/// `GET /v1/sweeps/:id/trace`: the job's durable grid points rendered as
/// a Perfetto timeline — one slice per completed job in completion
/// (checkpoint `seq`) order, sized by simulated cycles, on ok/failed
/// tracks.
fn trace(state: &ServeState, id: u64) -> Vec<u8> {
    let ckpt_path = {
        let store = state.store.lock().unwrap();
        if store.get(id).is_none() {
            return error_response(404, &format!("no job {id}"));
        }
        store.ckpt_path(id)
    };
    let ckpt = match load_checkpoint(&ckpt_path) {
        Ok(c) => c,
        Err(e) => return error_response(409, &format!("no usable checkpoint: {e}")),
    };
    let mut records: Vec<_> = ckpt.records.into_values().collect();
    records.sort_by_key(|r| r.seq);
    let mut at = 0u64;
    let mut spans = Vec::with_capacity(records.len());
    for r in records {
        let (track, dur) = match &r.result {
            Ok(stats) => ("ok", stats.cycles.max(1)),
            Err(_) => ("failed", 1),
        };
        spans.push(TraceSpan {
            name: format!("job {}", r.id),
            track: track.into(),
            start: at,
            dur,
        });
        at += dur;
    }
    let json = spans_to_chrome_trace(&format!("sweep {id} (simulated cycles)"), &spans);
    response(200, "application/json", json.as_bytes())
}

/// `GET /v1/stats`: queue, job, cache, and reuse telemetry.
fn stats(state: &ServeState) -> Vec<u8> {
    let (queued, running, done, failed, cancelled) = {
        let store = state.store.lock().unwrap();
        let mut counts = (0u64, 0u64, 0u64, 0u64, 0u64);
        for job in store.jobs() {
            match job.state {
                JobState::Queued => counts.0 += 1,
                JobState::Running => counts.1 += 1,
                JobState::Done => counts.2 += 1,
                JobState::Failed => counts.3 += 1,
                JobState::Cancelled => counts.4 += 1,
            }
        }
        counts
    };
    let queue_depth = state.queue.lock().unwrap().len();
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("uptime_ms").u64(state.started.elapsed().as_millis() as u64);
    j.key("requests").u64(state.stats.requests.load(Ordering::Relaxed));
    j.key("queue").begin_object();
    j.key("depth").u64(queue_depth as u64);
    j.key("cap").u64(state.cfg.queue_cap as u64);
    j.end();
    j.key("jobs").begin_object();
    j.key("queued").u64(queued);
    j.key("running").u64(running);
    j.key("done").u64(done);
    j.key("failed").u64(failed);
    j.key("cancelled").u64(cancelled);
    j.end();
    j.key("cache").begin_object();
    j.key("entries").u64(state.cache.entries() as u64);
    j.key("cap").u64(state.cfg.cache_cap as u64);
    j.key("hits").u64(state.cache.hits());
    j.key("misses").u64(state.cache.misses());
    j.key("evictions").u64(state.cache.evictions());
    j.end();
    j.key("machine_reuses").u64(state.stats.machine_reuses.load(Ordering::Relaxed));
    j.end();
    response(200, "application/json", j.finish().as_bytes())
}
