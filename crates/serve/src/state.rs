//! Durable job store: every submitted sweep survives a server crash.
//!
//! A job is three files in the state directory, all keyed by a numeric
//! id the store allocates:
//!
//! * `job-<id>.spec` — the spec's canonical form (itself a parseable
//!   spec file) plus a `# serve: priority=N` comment the spec parser
//!   ignores. Written fsync'd before the submission is acknowledged:
//!   once a client holds an id, the job exists.
//! * `job-<id>.jsonl` — the sweep's checkpoint stream (the PR-6
//!   crash-safe format), appended fsync'd per completed grid point.
//! * `job-<id>.json` — the final result table, byte-identical to what
//!   `mtsim sweep --out` would have written for the same spec. Its
//!   existence is the commit point: a job with a final file is done.
//!
//! Restart recovery derives everything from those files: a spec with a
//! final file is `Done`; a `job-<id>.cancelled` marker pins a
//! cancellation across restarts; anything else re-enqueues and resumes
//! from its checkpoint (or starts fresh if none landed). A job that hit
//! a sweep-level failure (e.g. an operator-corrupted checkpoint) is
//! `Failed` in memory only — after a restart it re-enqueues and retries,
//! which is the conservative reading of "no final file".

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use mtsim_sweep::{load_checkpoint, SweepSpec};

/// Lifecycle of a job. `Failed` means a *sweep-level* error (checkpoint
/// corruption, I/O); per-grid-point failures are rows in the result
/// table of a `Done` job, not a job state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One submitted sweep.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    pub spec: SweepSpec,
    pub priority: u8,
    /// Grid size (`spec.len()`), cached for status reporting.
    pub total: usize,
    pub state: JobState,
    /// Sweep-level error message for `Failed` jobs.
    pub error: Option<String>,
    /// Cancel token shared with the running sweep.
    pub cancel: Arc<AtomicBool>,
    /// Durable completed-job count, updated live by the running sweep.
    pub completed: Arc<AtomicUsize>,
}

/// In-memory index over the state directory.
#[derive(Debug)]
pub struct JobStore {
    dir: PathBuf,
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
}

impl JobStore {
    /// Opens (creating if needed) a state directory and rebuilds the job
    /// index from its files. Returns the store plus the ids that must be
    /// re-enqueued — submitted jobs that never reached their commit
    /// point, in id order so recovery preserves submission order within
    /// a priority level.
    pub fn open(dir: &Path) -> io::Result<(JobStore, Vec<(u64, u8)>)> {
        std::fs::create_dir_all(dir)?;
        let mut store = JobStore { dir: dir.to_path_buf(), jobs: BTreeMap::new(), next_id: 0 };
        let mut requeue = Vec::new();
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name.strip_prefix("job-").and_then(|n| n.strip_suffix(".spec")) {
                if let Ok(id) = id.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        for id in ids {
            let text = std::fs::read_to_string(store.spec_path(id))?;
            let spec = SweepSpec::parse_file(&text).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("job-{id}.spec: {e}"))
            })?;
            let priority = parse_priority(&text);
            let total = spec.len();
            let done = Path::new(&store.final_path(id)).exists();
            let cancelled = Path::new(&store.cancel_marker_path(id)).exists();
            let state = match (done, cancelled) {
                (true, _) => JobState::Done,
                (false, true) => JobState::Cancelled,
                (false, false) => JobState::Queued,
            };
            // Durable progress hint for status reporting before the job
            // re-runs; a missing or damaged checkpoint just reads as 0.
            let completed = match state {
                JobState::Done => total,
                _ => load_checkpoint(&store.ckpt_path(id)).map(|c| c.records.len()).unwrap_or(0),
            };
            if state == JobState::Queued {
                requeue.push((id, priority));
            }
            store.jobs.insert(
                id,
                Job {
                    id,
                    spec,
                    priority,
                    total,
                    state,
                    error: None,
                    cancel: Arc::new(AtomicBool::new(false)),
                    completed: Arc::new(AtomicUsize::new(completed)),
                },
            );
            store.next_id = store.next_id.max(id + 1);
        }
        Ok((store, requeue))
    }

    /// Persists a new job and returns its id. The spec file is fsync'd:
    /// an acknowledged submission survives `kill -9`.
    pub fn create(&mut self, spec: SweepSpec, priority: u8) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let body = format!("{}# serve: priority={priority}\n", spec.canonical());
        write_durable(Path::new(&self.spec_path(id)), body.as_bytes())?;
        let total = spec.len();
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                priority,
                total,
                state: JobState::Queued,
                error: None,
                cancel: Arc::new(AtomicBool::new(false)),
                completed: Arc::new(AtomicUsize::new(0)),
            },
        );
        Ok(id)
    }

    /// Pins a cancellation across restarts with a marker file.
    pub fn persist_cancel(&self, id: u64) -> io::Result<()> {
        write_durable(Path::new(&self.cancel_marker_path(id)), b"")
    }

    pub fn get(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    pub fn get_mut(&mut self, id: u64) -> Option<&mut Job> {
        self.jobs.get_mut(&id)
    }

    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    pub fn spec_path(&self, id: u64) -> String {
        self.dir.join(format!("job-{id}.spec")).to_string_lossy().into_owned()
    }

    pub fn ckpt_path(&self, id: u64) -> String {
        self.dir.join(format!("job-{id}.jsonl")).to_string_lossy().into_owned()
    }

    pub fn final_path(&self, id: u64) -> String {
        self.dir.join(format!("job-{id}.json")).to_string_lossy().into_owned()
    }

    fn cancel_marker_path(&self, id: u64) -> String {
        self.dir.join(format!("job-{id}.cancelled")).to_string_lossy().into_owned()
    }
}

fn parse_priority(spec_text: &str) -> u8 {
    spec_text
        .lines()
        .find_map(|l| l.trim().strip_prefix("# serve: priority="))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Writes a file and flushes it to stable storage before returning.
pub fn write_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mtsim-serve-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> SweepSpec {
        SweepSpec::parse_file("apps=sieve\nmodels=switch-on-load\nprocs=2\nthreads=1,2\n").unwrap()
    }

    #[test]
    fn create_then_reopen_reconstructs_spec_priority_and_queue_order() {
        let dir = tmp_dir("reopen");
        let (mut store, requeue) = JobStore::open(&dir).unwrap();
        assert!(requeue.is_empty());
        let a = store.create(tiny_spec(), 2).unwrap();
        let b = store.create(tiny_spec(), 7).unwrap();
        assert_ne!(a, b);
        drop(store);

        let (store, requeue) = JobStore::open(&dir).unwrap();
        assert_eq!(requeue, vec![(a, 2), (b, 7)]);
        let job = store.get(b).unwrap();
        assert_eq!(job.priority, 7);
        assert_eq!(job.spec, tiny_spec());
        assert_eq!(job.total, 2);
        assert_eq!(job.state, JobState::Queued);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn final_file_marks_done_and_cancel_marker_survives_restart() {
        let dir = tmp_dir("markers");
        let (mut store, _) = JobStore::open(&dir).unwrap();
        let done = store.create(tiny_spec(), 0).unwrap();
        let gone = store.create(tiny_spec(), 0).unwrap();
        write_durable(Path::new(&store.final_path(done)), b"{}\n").unwrap();
        store.persist_cancel(gone).unwrap();
        drop(store);

        let (store, requeue) = JobStore::open(&dir).unwrap();
        assert!(requeue.is_empty(), "neither job may re-enqueue");
        assert_eq!(store.get(done).unwrap().state, JobState::Done);
        assert_eq!(store.get(gone).unwrap().state, JobState::Cancelled);
        // Ids keep growing past recovered ones.
        let (mut store, _) = JobStore::open(&dir).unwrap();
        assert_eq!(store.create(tiny_spec(), 0).unwrap(), gone + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
