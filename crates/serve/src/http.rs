//! Minimal HTTP/1.1 machinery: an incremental request parser and a
//! response writer.
//!
//! The parser is push-based — callers feed it whatever bytes the socket
//! produced and ask for complete requests — which makes every framing
//! edge case (torn reads mid-header, pipelined requests, oversized
//! bodies) testable without opening a socket. It understands exactly the
//! subset the service speaks: `GET`/`POST`, `Content-Length` bodies, no
//! chunked transfer coding, no continuation lines. Anything outside that
//! subset is a typed [`HttpError`] that maps onto a 4xx status, never a
//! panic or a silent truncation.

use std::collections::VecDeque;

/// Maximum accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request. The target is split at `?`; the query survives as
/// raw `k=v` pairs (the API uses only small integers and hex hashes, so
/// percent-decoding is deliberately out of scope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A framing error. Each variant carries the status the connection
/// handler must answer with before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or length field → 400.
    BadRequest(String),
    /// Declared body (or accumulated head) beyond the cap → 413.
    TooLarge(String),
}

impl HttpError {
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge(_) => 413,
        }
    }

    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m) | HttpError::TooLarge(m) => m,
        }
    }
}

/// Incremental HTTP/1.1 request parser.
///
/// Feed raw bytes with [`RequestParser::push`], then drain complete
/// requests with [`RequestParser::next_request`]. Bytes beyond one
/// request stay buffered, so pipelined requests come out one by one.
/// Errors are sticky: a connection that produced garbage cannot be
/// resynchronized and must be closed after the error response.
pub struct RequestParser {
    buf: VecDeque<u8>,
    max_body: usize,
    /// Head of the request currently being assembled, once parsed.
    pending: Option<(Request, usize)>,
    poisoned: bool,
}

impl RequestParser {
    pub fn new(max_body: usize) -> RequestParser {
        RequestParser { buf: VecDeque::new(), max_body, pending: None, poisoned: false }
    }

    /// Appends bytes read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes currently buffered but not yet consumed by a request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Returns the next complete request, `Ok(None)` when more bytes are
    /// needed, or a sticky framing error.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if self.poisoned {
            return Err(HttpError::BadRequest("connection already failed".into()));
        }
        match self.advance() {
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
            ok => ok,
        }
    }

    fn advance(&mut self) -> Result<Option<Request>, HttpError> {
        if self.pending.is_none() {
            let Some(head_len) = self.find_head_end()? else {
                return Ok(None);
            };
            let head: Vec<u8> = self.buf.drain(..head_len).collect();
            // Drop the blank line terminating the head.
            self.buf.drain(..4.min(self.buf.len()));
            let head = std::str::from_utf8(&head)
                .map_err(|_| HttpError::BadRequest("head is not valid utf-8".into()))?;
            self.pending = Some(parse_head(head, self.max_body)?);
        }
        let (_, body_len) = self.pending.as_ref().expect("pending head set above");
        if self.buf.len() < *body_len {
            return Ok(None);
        }
        let (mut request, body_len) = self.pending.take().expect("pending head set above");
        request.body = self.buf.drain(..body_len).collect();
        Ok(Some(request))
    }

    /// Byte length of the head if its `\r\n\r\n` terminator has arrived.
    fn find_head_end(&self) -> Result<Option<usize>, HttpError> {
        let (a, b) = self.buf.as_slices();
        let mut window = [0u8; 4];
        let len = self.buf.len();
        for end in 4..=len {
            for (i, slot) in window.iter_mut().enumerate() {
                let idx = end - 4 + i;
                *slot = if idx < a.len() { a[idx] } else { b[idx - a.len()] };
            }
            if window == *b"\r\n\r\n" {
                return Ok(Some(end - 4));
            }
        }
        if len > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        Ok(None)
    }
}

/// Parses a request head into a body-less [`Request`] plus the declared
/// body length.
fn parse_head(head: &str, max_body: usize) -> Result<(Request, usize), HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest(format!("malformed request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version {version:?}")));
    }

    let mut body_len = 0usize;
    let mut saw_length = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let parsed: usize = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad content-length {value:?}")))?;
                if saw_length && parsed != body_len {
                    return Err(HttpError::BadRequest("conflicting content-length".into()));
                }
                saw_length = true;
                body_len = parsed;
            }
            "transfer-encoding" => {
                return Err(HttpError::BadRequest("chunked bodies are not supported".into()));
            }
            _ => {}
        }
    }
    // Reject an oversized body at the declaration, before buffering it.
    if body_len > max_body {
        return Err(HttpError::TooLarge(format!("body of {body_len} bytes exceeds {max_body}")));
    }

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    let request =
        Request { method: method.to_string(), path: path.to_string(), query, body: Vec::new() };
    Ok((request, body_len))
}

/// Serializes an HTTP/1.1 response with a `Content-Length` body.
pub fn response(status: u16, content_type: &str, body: &[u8]) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// A JSON error body `{"error": message}` with the given status.
pub fn error_response(status: u16, message: &str) -> Vec<u8> {
    let mut j = mtsim_obs::JsonBuilder::new();
    j.begin_object().key("error").string(message).end();
    response(status, "application/json", j.finish().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Vec<Request>, HttpError> {
        let mut p = RequestParser::new(1024);
        p.push(bytes);
        let mut out = Vec::new();
        while let Some(r) = p.next_request()? {
            out.push(r);
        }
        Ok(out)
    }

    #[test]
    fn a_simple_get_parses() {
        let reqs = parse_all(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "GET");
        assert_eq!(reqs[0].path, "/v1/healthz");
        assert!(reqs[0].body.is_empty());
    }

    #[test]
    fn torn_reads_reassemble_across_arbitrary_split_points() {
        let raw = b"POST /v1/sweeps?priority=7 HTTP/1.1\r\ncontent-length: 11\r\n\r\nhello world";
        for split in 0..raw.len() {
            let mut p = RequestParser::new(1024);
            p.push(&raw[..split]);
            // A partial request is never an error, just "not yet".
            let early = p.next_request().unwrap_or_else(|e| {
                panic!("split at {split} produced error {e:?}");
            });
            if let Some(r) = early {
                assert_eq!(split, raw.len(), "complete request before all bytes arrived");
                assert_eq!(r.body, b"hello world");
            }
            p.push(&raw[split..]);
            let r = p.next_request().unwrap().expect("request must complete");
            assert_eq!(r.method, "POST");
            assert_eq!(r.path, "/v1/sweeps");
            assert_eq!(r.query_get("priority"), Some("7"));
            assert_eq!(r.body, b"hello world");
            assert_eq!(p.next_request().unwrap(), None);
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let reqs = parse_all(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].path, "/a");
        assert_eq!(reqs[1].path, "/b");
        assert_eq!(reqs[1].body, b"hi");
        assert_eq!(reqs[2].path, "/c");
    }

    #[test]
    fn declared_oversize_body_is_rejected_before_it_arrives() {
        let mut p = RequestParser::new(8);
        // Only the head is pushed: the 413 must fire on the declaration.
        p.push(b"POST /v1/sweeps HTTP/1.1\r\ncontent-length: 9\r\n\r\n");
        let err = p.next_request().unwrap_err();
        assert_eq!(err.status(), 413);
        // The parser is poisoned afterwards.
        assert_eq!(p.next_request().unwrap_err().status(), 400);
    }

    #[test]
    fn bad_and_conflicting_content_lengths_are_400() {
        for head in [
            "POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            "POST / HTTP/1.1\r\ncontent-length: -3\r\n\r\n",
            "POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n",
            "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            let err = parse_all(head.as_bytes()).unwrap_err();
            assert_eq!(err.status(), 400, "head {head:?}");
        }
        // Duplicate but *agreeing* lengths are tolerated.
        let reqs =
            parse_all(b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nok")
                .unwrap();
        assert_eq!(reqs[0].body, b"ok");
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in ["GARBAGE\r\n\r\n", "GET /x\r\n\r\n", "GET /x SPDY/3\r\n\r\n", " \r\n\r\n"] {
            let err = parse_all(raw.as_bytes()).unwrap_err();
            assert_eq!(err.status(), 400, "line {raw:?}");
        }
    }

    #[test]
    fn an_unterminated_head_beyond_the_cap_is_413() {
        let mut p = RequestParser::new(1024);
        p.push(b"GET /x HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_HEAD_BYTES + 16];
        p.push(&filler);
        assert_eq!(p.next_request().unwrap_err().status(), 413);
    }

    #[test]
    fn response_frames_the_body_with_a_length() {
        let bytes = response(200, "application/json", b"{}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
