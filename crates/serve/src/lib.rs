//! mtsim-serve: a persistent simulation service over the sweep engine.
//!
//! `mtsim serve` turns the batch sweep machinery into a long-lived
//! process: clients `POST` sweep specs (the exact file format `mtsim
//! sweep --spec` reads), the server queues them FIFO-within-priority
//! with bounded admission, runs them one at a time on the worker pool,
//! and streams durable results back over HTTP. Three properties carry
//! over from the batch path unchanged, by construction rather than by
//! re-implementation:
//!
//! * **Byte identity** — a job's final result file is
//!   `SweepOutcome::results_json()` plus a newline, exactly what the CLI
//!   writes with `--out`; the server adds no fields and reorders
//!   nothing.
//! * **Crash safety** — submissions, per-grid-point progress, and
//!   completion each have an fsync'd commit point (see
//!   [`state`]); `kill -9` at any instant loses at most in-flight grid
//!   points, and a restarted server resumes every unfinished job
//!   automatically.
//! * **Amortized artifacts** — one [`mtsim_sweep::ArtifactCache`] spans
//!   all jobs, so a repeated sweep rebuilds nothing (visible as zero new
//!   misses in `GET /v1/stats`), with LRU eviction between jobs keeping
//!   the cache bounded.
//!
//! The HTTP layer ([`http`]) is a hand-rolled, std-only HTTP/1.1 subset
//! — the workspace's zero-dependency policy (DESIGN.md §9) extends to
//! the network. DESIGN.md §19 documents the architecture; README.md
//! walks through the API with curl.

pub mod http;
pub mod queue;
pub mod server;
pub mod state;

pub use server::{ServeConfig, Server, MAX_BODY_BYTES};
