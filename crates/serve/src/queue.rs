//! Bounded priority job queue: FIFO within a priority level, higher
//! levels drain first.
//!
//! Admission is bounded — a full queue rejects the submission (the HTTP
//! layer maps that to 429) instead of buffering without limit, so a
//! misbehaving client cannot grow server memory. The queue holds job
//! *ids* only; the job bodies live in the [`crate::state::JobStore`].

use std::collections::{BTreeMap, VecDeque};

/// Rejection: the queue is at capacity.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueFull {
    pub cap: usize,
}

/// FIFO-within-priority queue of job ids with a hard capacity.
#[derive(Debug)]
pub struct JobQueue {
    /// Priority level → ids in arrival order. `BTreeMap` iteration is
    /// ascending, so the highest level is popped via `last_entry`-style
    /// access below.
    levels: BTreeMap<u8, VecDeque<u64>>,
    len: usize,
    cap: usize,
}

impl JobQueue {
    pub fn new(cap: usize) -> JobQueue {
        JobQueue { levels: BTreeMap::new(), len: 0, cap }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `id` at `priority` (higher runs first); rejects when at
    /// capacity.
    pub fn push(&mut self, id: u64, priority: u8) -> Result<(), QueueFull> {
        if self.len >= self.cap {
            return Err(QueueFull { cap: self.cap });
        }
        self.levels.entry(priority).or_default().push_back(id);
        self.len += 1;
        Ok(())
    }

    /// Pops the oldest id at the highest non-empty priority level.
    pub fn pop(&mut self) -> Option<u64> {
        let (&priority, level) = self.levels.iter_mut().next_back()?;
        let id = level.pop_front().expect("levels never hold empty queues");
        if level.is_empty() {
            self.levels.remove(&priority);
        }
        self.len -= 1;
        Some(id)
    }

    /// Removes `id` wherever it is queued (cancellation of a job that
    /// has not started). Returns whether it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let mut emptied = None;
        let mut found = false;
        for (&priority, level) in self.levels.iter_mut() {
            if let Some(pos) = level.iter().position(|&q| q == id) {
                level.remove(pos);
                found = true;
                if level.is_empty() {
                    emptied = Some(priority);
                }
                break;
            }
        }
        if let Some(priority) = emptied {
            self.levels.remove(&priority);
        }
        if found {
            self.len -= 1;
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_level_and_priority_across_levels() {
        let mut q = JobQueue::new(8);
        q.push(1, 0).unwrap();
        q.push(2, 5).unwrap();
        q.push(3, 0).unwrap();
        q.push(4, 5).unwrap();
        assert_eq!([q.pop(), q.pop(), q.pop(), q.pop()], [Some(2), Some(4), Some(1), Some(3)]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn a_full_queue_rejects_admission() {
        let mut q = JobQueue::new(2);
        q.push(1, 0).unwrap();
        q.push(2, 9).unwrap();
        assert_eq!(q.push(3, 9), Err(QueueFull { cap: 2 }));
        assert_eq!(q.len(), 2);
        q.pop();
        q.push(3, 9).unwrap();
    }

    #[test]
    fn remove_plucks_a_queued_id_without_disturbing_order() {
        let mut q = JobQueue::new(8);
        for id in 1..=4 {
            q.push(id, 3).unwrap();
        }
        assert!(q.remove(2));
        assert!(!q.remove(2));
        assert_eq!([q.pop(), q.pop(), q.pop(), q.pop()], [Some(1), Some(3), Some(4), None]);
        assert!(q.is_empty());
    }
}
