//! # mtsim-mem
//!
//! Shared-memory, network-traffic, and cache substrate for the `mtsim`
//! simulator.
//!
//! The paper deliberately does **not** simulate a concrete interconnection
//! network: it assumes a constant 200-cycle round-trip latency and measures
//! the bandwidth an application *would demand* of a network, in bits per
//! cycle (§6.1). This crate implements exactly that abstraction:
//!
//! * [`SharedMemory`] — the global word array, with atomic fetch-and-add
//!   applied in global issue order (constant latency makes issue order and
//!   memory-arrival order identical);
//! * [`Traffic`] — message accounting with the documented message format
//!   (32-bit header, 32-bit address, 64-bit data words), split into data
//!   and spin traffic because the paper's footnote 2 excludes spin messages;
//! * [`CoherentCaches`] — per-processor shared-data caches used by the
//!   `switch-on-miss`, `switch-on-use-miss`, and `conditional-switch`
//!   models: direct-mapped, write-through, no-write-allocate, kept coherent
//!   by a full-map directory that invalidates remote copies on stores;
//! * [`OneLineCache`] — the paper's §5.2 experiment: a single 32-word line
//!   per *thread* used to estimate inter-block grouping potential;
//! * [`FaultPlan`] — deterministic, seeded fault injection: per-request
//!   latency distributions, dropped/NACKed replies, duplicates, and the
//!   retry protocol's parameters (see the [`fault`](self::fault) module
//!   docs). The paper's reliable constant-latency network is the inactive
//!   default.
//!
//! Caches here are *timing and traffic* models: data values always come
//! from [`SharedMemory`], which is kept coherent by construction because
//! the engine applies every shared operation in global time order.
//!
//! Since PR 4 the constant-latency pipe is only the default *transport*:
//! [`Network`] (re-exported from `mtsim-net`) models crossbar, 2D-mesh,
//! and butterfly interconnects with finite link bandwidth, per-hop
//! queueing, and optional in-switch fetch-and-add combining. The fault
//! layer composes on top — network timing supplies the base latency that
//! [`FaultPlan`] perturbs.

mod cache;
mod fault;
mod shared;
mod trace;
mod traffic;

pub use cache::{CacheParams, CacheStats, CoherentCaches, OneLineCache};
pub use fault::{FaultConfig, FaultPlan, LatencyDist, ReplyOutcome, RetryExhausted};
pub use shared::SharedMemory;
pub use trace::{TraceEvent, TraceKind};
pub use traffic::{message_bits, MsgClass, Traffic, ADDR_BITS, HDR_BITS, WORD_BITS};

pub use mtsim_net::{NetStats, Network, NetworkConfig, Topology};
