//! Per-processor shared-data caches with directory invalidation, and the
//! paper's §5.2 one-line grouping-estimator cache.

/// Geometry of the per-processor shared-data cache.
///
/// The paper's §6 text does not fully specify the geometry (see DESIGN.md);
/// the default — 512 lines × 4 words (64-bit) = 16 KB, direct-mapped — lands
/// in the paper's reported regime and is a sweep parameter in the ablation
/// bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Number of direct-mapped lines (power of two).
    pub lines: usize,
    /// Words per line (power of two).
    pub line_words: u64,
}

impl Default for CacheParams {
    fn default() -> CacheParams {
        CacheParams { lines: 512, line_words: 4 }
    }
}

impl CacheParams {
    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if either field is zero or not a power of two.
    pub fn validate(&self) {
        assert!(self.lines.is_power_of_two(), "cache lines must be a power of two");
        assert!(self.line_words.is_power_of_two(), "line words must be a power of two");
    }

    /// Cache capacity in 64-bit words.
    pub fn capacity_words(&self) -> u64 {
        self.lines as u64 * self.line_words
    }
}

/// Per-processor cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load lookups that hit.
    pub hits: u64,
    /// Load lookups that missed (and filled the line).
    pub misses: u64,
    /// Lines invalidated here by remote stores.
    pub invalidations_received: u64,
    /// Lines evicted by conflicting fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate over all load lookups, `0.0` if there were none.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another processor's stats into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations_received += other.invalidations_received;
        self.evictions += other.evictions;
    }
}

#[derive(Debug, Clone)]
struct Cache {
    /// `tags[index] = Some(line_addr)` when a line is resident.
    tags: Vec<Option<u64>>,
}

impl Cache {
    fn new(lines: usize) -> Cache {
        Cache { tags: vec![None; lines] }
    }

    fn index(&self, line: u64) -> usize {
        (line as usize) & (self.tags.len() - 1)
    }

    fn present(&self, line: u64) -> bool {
        self.tags[self.index(line)] == Some(line)
    }

    /// Fills `line`, returning the evicted line if a different one was
    /// resident.
    fn fill(&mut self, line: u64) -> Option<u64> {
        let idx = self.index(line);
        let evicted = self.tags[idx].filter(|&t| t != line);
        self.tags[idx] = Some(line);
        evicted
    }

    fn invalidate(&mut self, line: u64) -> bool {
        let idx = self.index(line);
        if self.tags[idx] == Some(line) {
            self.tags[idx] = None;
            true
        } else {
            false
        }
    }
}

/// All processors' caches plus the full-map directory that keeps them
/// coherent.
///
/// Write policy: write-through, no-write-allocate. A store (or
/// fetch-and-add) invalidates every *other* processor's copy of the line —
/// those invalidation messages are what the paper's §6.1 counts as
/// coherency overhead. The storing processor's own copy stays resident
/// (write-through updates memory, and data values always come from
/// [`crate::SharedMemory`], so the cache never holds stale data — it only
/// models timing and traffic).
#[derive(Debug, Clone)]
pub struct CoherentCaches {
    params: CacheParams,
    caches: Vec<Cache>,
    stats: Vec<CacheStats>,
    /// Directory: for each resident line, the set of caching processors.
    sharers: std::collections::HashMap<u64, u128>,
}

impl CoherentCaches {
    /// Creates caches for `processors` processors.
    ///
    /// # Panics
    ///
    /// Panics if `processors > 128` (the directory uses a 128-bit sharer
    /// mask) or the geometry is invalid.
    pub fn new(processors: usize, params: CacheParams) -> CoherentCaches {
        params.validate();
        assert!(processors <= 128, "directory supports at most 128 processors");
        CoherentCaches {
            params,
            caches: (0..processors).map(|_| Cache::new(params.lines)).collect(),
            stats: vec![CacheStats::default(); processors],
            sharers: std::collections::HashMap::new(),
        }
    }

    /// The configured geometry.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.params.line_words
    }

    /// Looks up a load at `addr` by processor `proc`; fills the line on a
    /// miss. Returns `true` on a hit.
    ///
    /// A miss evicts any conflicting resident line (updating the directory)
    /// and registers the processor as a sharer of the new line.
    pub fn load(&mut self, proc: usize, addr: u64) -> bool {
        let line = self.line_of(addr);
        if self.caches[proc].present(line) {
            self.stats[proc].hits += 1;
            return true;
        }
        self.stats[proc].misses += 1;
        if let Some(evicted) = self.caches[proc].fill(line) {
            self.stats[proc].evictions += 1;
            self.remove_sharer(evicted, proc);
        }
        *self.sharers.entry(line).or_insert(0) |= 1u128 << proc;
        false
    }

    /// Applies a store (or fetch-and-add) at `addr` by `proc`: invalidates
    /// every other sharer's copy and returns the number of invalidation
    /// messages sent.
    pub fn store(&mut self, proc: usize, addr: u64) -> u64 {
        let line = self.line_of(addr);
        let Some(mask) = self.sharers.get_mut(&line) else {
            return 0;
        };
        let others = *mask & !(1u128 << proc);
        let count = others.count_ones() as u64;
        if count > 0 {
            let mut m = others;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                m &= m - 1;
                if self.caches[p].invalidate(line) {
                    self.stats[p].invalidations_received += 1;
                }
            }
            *mask &= !(others);
        }
        if *mask == 0 {
            self.sharers.remove(&line);
        }
        count
    }

    fn remove_sharer(&mut self, line: u64, proc: usize) {
        if let Some(mask) = self.sharers.get_mut(&line) {
            *mask &= !(1u128 << proc);
            if *mask == 0 {
                self.sharers.remove(&line);
            }
        }
    }

    /// Statistics for one processor's cache.
    pub fn stats(&self, proc: usize) -> CacheStats {
        self.stats[proc]
    }

    /// Aggregate statistics over all processors.
    pub fn total_stats(&self) -> CacheStats {
        let mut t = CacheStats::default();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }
}

/// The paper's §5.2 estimator: a single 32-word line per **thread**.
///
/// "We simulate a very small cache associated with each thread. The cache
/// has a line size of 32 words, but only one line. We assume that any loads
/// which hit in this cache are in the same structure or array as the
/// preceding reference and thus could have been grouped."
#[derive(Debug, Clone)]
pub struct OneLineCache {
    line_words: u64,
    line: Option<u64>,
    hits: u64,
    accesses: u64,
}

impl Default for OneLineCache {
    fn default() -> OneLineCache {
        OneLineCache::new(32)
    }
}

impl OneLineCache {
    /// Creates the estimator with a given (power-of-two) line size; the
    /// paper uses 32 words.
    ///
    /// # Panics
    ///
    /// Panics if `line_words` is not a power of two.
    pub fn new(line_words: u64) -> OneLineCache {
        assert!(line_words.is_power_of_two(), "line words must be a power of two");
        OneLineCache { line_words, line: None, hits: 0, accesses: 0 }
    }

    /// Records a shared-load access; returns `true` if it falls in the same
    /// aligned line as the previous access (i.e. could have been grouped).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr / self.line_words;
        let hit = self.line == Some(line);
        self.line = Some(line);
        if hit {
            self.hits += 1;
        }
        hit
    }

    /// Accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate (`0.0` with no accesses) — the paper reports 42 % for ugray
    /// and 84 % for locus.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = CoherentCaches::new(2, CacheParams::default());
        assert!(!c.load(0, 100));
        assert!(c.load(0, 101)); // same 4-word line
        assert!(!c.load(1, 100)); // other processor misses separately
        assert_eq!(c.stats(0).hits, 1);
        assert_eq!(c.stats(0).misses, 1);
    }

    #[test]
    fn store_invalidates_other_sharers_only() {
        let mut c = CoherentCaches::new(3, CacheParams::default());
        c.load(0, 40);
        c.load(1, 40);
        c.load(2, 40);
        let inv = c.store(0, 40);
        assert_eq!(inv, 2);
        assert!(c.load(0, 40), "writer keeps its line");
        assert!(!c.load(1, 40), "sharer was invalidated");
        assert_eq!(c.stats(1).invalidations_received, 1);
    }

    #[test]
    fn store_to_uncached_line_sends_nothing() {
        let mut c = CoherentCaches::new(2, CacheParams::default());
        assert_eq!(c.store(0, 999), 0);
    }

    #[test]
    fn conflicting_fill_evicts_and_updates_directory() {
        let p = CacheParams { lines: 2, line_words: 1 };
        let mut c = CoherentCaches::new(2, p);
        c.load(0, 0); // line 0 -> index 0
        c.load(0, 2); // line 2 -> index 0, evicts line 0
        assert_eq!(c.stats(0).evictions, 1);
        // line 0 no longer cached anywhere: store sends no invalidations
        assert_eq!(c.store(1, 0), 0);
    }

    #[test]
    fn total_stats_aggregate() {
        let mut c = CoherentCaches::new(2, CacheParams::default());
        c.load(0, 0);
        c.load(1, 0);
        c.load(1, 1);
        let t = c.total_stats();
        assert_eq!(t.hits + t.misses, 3);
    }

    #[test]
    fn hit_rate_zero_when_empty() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn one_line_cache_tracks_preceding_reference() {
        let mut c = OneLineCache::default();
        assert!(!c.access(5));
        assert!(c.access(6)); // same 32-word line
        assert!(!c.access(64)); // different line
        assert!(!c.access(5)); // line was replaced
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.hits(), 1);
        assert!((c.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn one_line_cache_validates() {
        let _ = OneLineCache::new(33);
    }
}
