//! Deterministic, seeded fault injection for the shared-memory network.
//!
//! Boothe & Ranade's machine assumes a perfectly reliable network with a
//! constant round-trip latency. Every later design in this space treats
//! variable latency and lost or NACKed replies as the common case that
//! multithreading must hide, so this module grows the simulator a hostile
//! network it can be tested against:
//!
//! * [`LatencyDist`] — per-request round-trip latencies drawn from a
//!   constant, uniform, or geometric (long-tailed) distribution;
//! * [`FaultConfig`] — seed plus drop/delay/duplicate rates and the retry
//!   protocol's parameters (retry budget, exponential backoff, timeout);
//! * [`FaultPlan`] — the seeded runtime state. One plan is owned by one
//!   machine; because the engine issues requests in a deterministic global
//!   order, the drawn fault schedule is a pure function of
//!   `(seed, rates, program, machine config)` — runs reproduce bit-for-bit.
//!
//! Faults are *timing and traffic* events, exactly like the cache model:
//! data values still come from [`SharedMemory`](crate::SharedMemory) in
//! global time order, so a run that survives its faults produces the same
//! memory image as a fault-free run — only slower, with the retry work
//! visible in the statistics.

use mtsim_rng::Rng;

/// Distribution of the shared-memory round-trip latency.
///
/// `base` in the draw methods is the machine's configured constant latency
/// (the paper's 200 cycles), which `Constant` reproduces exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyDist {
    /// The paper's model: every round trip takes the configured constant.
    Constant,
    /// Uniform in `[lo, hi]` cycles.
    Uniform {
        /// Minimum round-trip latency.
        lo: u64,
        /// Maximum round-trip latency (inclusive).
        hi: u64,
    },
    /// `min` plus a geometric tail with success probability `p` — a
    /// long-tailed network where most replies are prompt but a few crawl.
    /// The tail mean is `(1-p)/p` extra cycles.
    Geometric {
        /// Minimum round-trip latency.
        min: u64,
        /// Per-cycle stop probability of the tail, in `(0, 1]`.
        p: f64,
    },
}

impl LatencyDist {
    /// Draws one round-trip latency.
    pub fn draw(&self, base: u64, rng: &mut Rng) -> u64 {
        match *self {
            LatencyDist::Constant => base,
            LatencyDist::Uniform { lo, hi } => {
                if lo >= hi {
                    lo
                } else {
                    rng.range_u64(lo, hi + 1)
                }
            }
            LatencyDist::Geometric { min, p } => {
                // Cap the tail at 64 mean-lengths so a single draw cannot
                // blow past any watchdog on its own.
                let mean = ((1.0 - p) / p.max(1e-9)).max(1.0);
                min + rng.geometric(p, (mean * 64.0) as u64 + 1)
            }
        }
    }

    /// Largest latency this distribution can produce (used to size the
    /// drop-timeout default).
    pub fn max_latency(&self, base: u64) -> u64 {
        match *self {
            LatencyDist::Constant => base,
            LatencyDist::Uniform { lo, hi } => hi.max(lo),
            LatencyDist::Geometric { min, p } => {
                let mean = ((1.0 - p) / p.max(1e-9)).max(1.0);
                min + (mean * 64.0) as u64 + 1
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LatencyDist::Constant => "constant",
            LatencyDist::Uniform { .. } => "uniform",
            LatencyDist::Geometric { .. } => "geometric",
        }
    }
}

/// Seed, fault rates, and retry-protocol parameters.
///
/// The default configuration is the paper's reliable constant-latency
/// network: all rates zero, `Constant` distribution — and in that state
/// [`FaultConfig::is_active`] is false and the engine skips the fault path
/// entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault schedule (independent of workload seeds).
    pub seed: u64,
    /// Probability a reply-bearing request fails: half the failures come
    /// back as prompt NACKs, half are silent drops that must time out.
    pub drop_rate: f64,
    /// Probability a successful reply is delayed by an extra geometric
    /// tail (mean one base latency).
    pub delay_rate: f64,
    /// Probability a successful reply is duplicated (pure bandwidth cost;
    /// the engine discards the copy).
    pub dup_rate: f64,
    /// Round-trip latency distribution.
    pub dist: LatencyDist,
    /// Retries after the first attempt before the request is abandoned
    /// and the run fails with `SimError::Fault`.
    pub max_retries: u32,
    /// First exponential-backoff wait after a NACK, in cycles.
    pub backoff_base: u64,
    /// Backoff ceiling in cycles.
    pub backoff_cap: u64,
    /// Cycles a requester waits for a silently dropped reply before
    /// resending. `0` means "auto": four times the worst-case latency.
    pub timeout: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            dup_rate: 0.0,
            dist: LatencyDist::Constant,
            max_retries: 8,
            backoff_base: 16,
            backoff_cap: 4096,
            timeout: 0,
        }
    }
}

impl FaultConfig {
    /// True when any fault or non-constant latency is configured — i.e.
    /// when the engine must consult a [`FaultPlan`] per request.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.delay_rate > 0.0
            || self.dup_rate > 0.0
            || self.dist != LatencyDist::Constant
    }

    /// Checks rates and distribution parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn check(&self) -> Result<(), String> {
        for (name, r) in
            [("drop", self.drop_rate), ("delay", self.delay_rate), ("dup", self.dup_rate)]
        {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return Err(format!("fault {name} rate {r} outside [0, 1]"));
            }
        }
        if let LatencyDist::Uniform { lo, hi } = self.dist {
            if lo > hi {
                return Err(format!("uniform latency range {lo}..{hi} is empty"));
            }
        }
        if let LatencyDist::Geometric { p, .. } = self.dist {
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!("geometric latency p {p} outside (0, 1]"));
            }
        }
        if self.drop_rate > 0.0 && self.max_retries == 0 {
            return Err("drop faults need max_retries >= 1".to_string());
        }
        Ok(())
    }
}

/// What one reply-bearing request cost after the retry protocol absorbed
/// its faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyOutcome {
    /// Cycles from issue to the successful reply, including every failed
    /// attempt, timeout, and backoff wait.
    pub delay: u64,
    /// NACK-triggered resends.
    pub retries: u32,
    /// Silent-drop timeouts (reply lost in the network).
    pub timeouts: u32,
    /// Duplicated replies delivered (discarded, but they cost bandwidth).
    pub duplicates: u32,
}

/// A request that exhausted its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryExhausted {
    /// Total attempts made (first send plus retries).
    pub attempts: u32,
    /// Cycles burned before giving up.
    pub wasted: u64,
}

/// The seeded runtime fault state of one machine.
///
/// Fate decisions (drop / delay / duplicate) and latency magnitudes come
/// from two independent derived streams so changing one rate never shifts
/// the other stream's draws for the same request index.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    fate: Rng,
    magnitude: Rng,
    requests: u64,
}

impl FaultPlan {
    /// Builds the plan for one run.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            fate: Rng::derive(cfg.seed, "fault-fate"),
            magnitude: Rng::derive(cfg.seed, "fault-magnitude"),
            requests: 0,
        }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Reply-bearing requests decided so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Effective drop timeout for a given base latency.
    fn drop_timeout(&self, base: u64) -> u64 {
        if self.cfg.timeout > 0 {
            self.cfg.timeout
        } else {
            4 * self.cfg.dist.max_latency(base).max(1)
        }
    }

    /// Exponential backoff before retry number `attempt` (1-based).
    fn backoff(&self, attempt: u32) -> u64 {
        let shifted = self.cfg.backoff_base.saturating_mul(1u64 << attempt.min(32));
        shifted.min(self.cfg.backoff_cap)
    }

    /// Decides the fate of one reply-bearing request issued against a
    /// machine whose constant base latency is `base`.
    ///
    /// # Errors
    ///
    /// Returns [`RetryExhausted`] when `max_retries` resends all failed.
    pub fn request(&mut self, base: u64) -> Result<ReplyOutcome, RetryExhausted> {
        self.requests += 1;
        let mut out = ReplyOutcome { delay: 0, retries: 0, timeouts: 0, duplicates: 0 };
        for attempt in 0..=self.cfg.max_retries {
            let latency = self.cfg.dist.draw(base, &mut self.magnitude);
            if self.cfg.drop_rate > 0.0 && self.fate.chance(self.cfg.drop_rate) {
                // Failed attempt: a prompt NACK or a silent drop.
                if self.fate.chance(0.5) {
                    out.delay += latency;
                    out.retries += 1;
                } else {
                    out.delay += self.drop_timeout(base);
                    out.timeouts += 1;
                }
                out.delay += self.backoff(attempt + 1);
                continue;
            }
            let mut latency = latency;
            if self.cfg.delay_rate > 0.0 && self.fate.chance(self.cfg.delay_rate) {
                // Congestion: a geometric extra wait, mean one base latency.
                let p = 1.0 / (base.max(1) as f64 + 1.0);
                latency += self.magnitude.geometric(p, 64 * base.max(1));
            }
            if self.cfg.dup_rate > 0.0 && self.fate.chance(self.cfg.dup_rate) {
                out.duplicates += 1;
            }
            out.delay += latency;
            return Ok(out);
        }
        Err(RetryExhausted { attempts: self.cfg.max_retries + 1, wasted: out.delay })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active(drop: f64, delay: f64) -> FaultConfig {
        FaultConfig { seed: 42, drop_rate: drop, delay_rate: delay, ..FaultConfig::default() }
    }

    #[test]
    fn inactive_default() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        cfg.check().unwrap();
    }

    #[test]
    fn reliable_network_is_exactly_the_paper() {
        let mut plan = FaultPlan::new(FaultConfig { seed: 9, ..FaultConfig::default() });
        for _ in 0..100 {
            let out = plan.request(200).unwrap();
            assert_eq!(out, ReplyOutcome { delay: 200, retries: 0, timeouts: 0, duplicates: 0 });
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = active(0.3, 0.2);
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for _ in 0..1000 {
            assert_eq!(a.request(200), b.request(200));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(FaultConfig { seed: 1, ..active(0.4, 0.0) });
        let mut b = FaultPlan::new(FaultConfig { seed: 2, ..active(0.4, 0.0) });
        let da: Vec<_> = (0..100).map(|_| a.request(200).unwrap().delay).collect();
        let db: Vec<_> = (0..100).map(|_| b.request(200).unwrap().delay).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn drops_cost_more_than_clean_runs() {
        let mut clean = FaultPlan::new(FaultConfig { seed: 5, ..FaultConfig::default() });
        let mut faulty = FaultPlan::new(FaultConfig { seed: 5, ..active(0.5, 0.0) });
        let c: u64 = (0..200).map(|_| clean.request(200).unwrap().delay).sum();
        let f: u64 = (0..200).map(|_| faulty.request(200).unwrap().delay).sum();
        assert!(f > c, "faulty {f} must exceed clean {c}");
        let retried: u32 = {
            let mut p = FaultPlan::new(active(0.5, 0.0));
            (0..200).map(|_| p.request(200).unwrap()).map(|o| o.retries + o.timeouts).sum()
        };
        assert!(retried > 0, "half the attempts should fail");
    }

    #[test]
    fn certain_drop_exhausts_retries() {
        let mut plan = FaultPlan::new(FaultConfig {
            drop_rate: 1.0,
            max_retries: 3,
            ..FaultConfig::default()
        });
        let err = plan.request(200).unwrap_err();
        assert_eq!(err.attempts, 4);
        assert!(err.wasted > 0);
    }

    #[test]
    fn uniform_dist_stays_in_bounds() {
        let mut plan = FaultPlan::new(FaultConfig {
            dist: LatencyDist::Uniform { lo: 50, hi: 400 },
            ..FaultConfig::default()
        });
        assert!(plan.config().is_active(), "non-constant dist needs the fault path");
        for _ in 0..1000 {
            let d = plan.request(200).unwrap().delay;
            assert!((50..=400).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn geometric_dist_has_a_tail() {
        let mut plan = FaultPlan::new(FaultConfig {
            dist: LatencyDist::Geometric { min: 100, p: 0.02 },
            ..FaultConfig::default()
        });
        let draws: Vec<u64> = (0..2000).map(|_| plan.request(200).unwrap().delay).collect();
        assert!(draws.iter().all(|&d| d >= 100));
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((120.0..220.0).contains(&mean), "mean {mean} should sit near 149");
        assert!(draws.iter().any(|&d| d > 250), "long tail expected");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let plan = FaultPlan::new(FaultConfig {
            backoff_base: 16,
            backoff_cap: 100,
            ..FaultConfig::default()
        });
        assert_eq!(plan.backoff(1), 32);
        assert_eq!(plan.backoff(2), 64);
        assert_eq!(plan.backoff(3), 100);
        assert_eq!(plan.backoff(30), 100);
    }

    #[test]
    fn bad_configs_are_rejected() {
        assert!(FaultConfig { drop_rate: 1.5, ..FaultConfig::default() }.check().is_err());
        assert!(FaultConfig { delay_rate: -0.1, ..FaultConfig::default() }.check().is_err());
        assert!(FaultConfig {
            dist: LatencyDist::Uniform { lo: 9, hi: 3 },
            ..FaultConfig::default()
        }
        .check()
        .is_err());
        assert!(FaultConfig {
            dist: LatencyDist::Geometric { min: 0, p: 0.0 },
            ..FaultConfig::default()
        }
        .check()
        .is_err());
        assert!(FaultConfig { drop_rate: 0.1, max_retries: 0, ..FaultConfig::default() }
            .check()
            .is_err());
    }

    #[test]
    fn duplicates_are_counted() {
        let mut plan =
            FaultPlan::new(FaultConfig { seed: 7, dup_rate: 0.5, ..FaultConfig::default() });
        let dups: u32 = (0..400).map(|_| plan.request(200).unwrap().duplicates).sum();
        assert!(dups > 100, "dup rate 0.5 over 400 requests gave {dups}");
    }
}
