//! Shared-access trace events.
//!
//! The paper's methodology is trace-based ("In our simulator we use trace
//! analysis to determine this information", §3). The engine can optionally
//! record every shared access; the `mtsim-trace` crate analyzes the
//! stream (locality, reuse, cache-geometry sweeps, bandwidth burstiness).

/// The kind of a shared access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Single-word read (load or the read half of a use).
    Read,
    /// Single-word write.
    Write,
    /// Load-Double (two adjacent words, one message).
    ReadPair,
    /// Store-Double.
    WritePair,
    /// Fetch-and-add (read-modify-write at memory).
    FetchAdd,
}

impl TraceKind {
    /// Words of data the access moves.
    pub fn words(self) -> u64 {
        match self {
            TraceKind::ReadPair | TraceKind::WritePair => 2,
            _ => 1,
        }
    }

    /// Uncached network bits for the access (forward + return), using the
    /// message format of [`crate::Traffic`].
    pub fn bits(self) -> u64 {
        use crate::{ADDR_BITS, HDR_BITS, WORD_BITS};
        match self {
            TraceKind::Read => (HDR_BITS + ADDR_BITS) + (HDR_BITS + WORD_BITS),
            TraceKind::ReadPair => (HDR_BITS + ADDR_BITS) + (HDR_BITS + 2 * WORD_BITS),
            TraceKind::Write => (HDR_BITS + ADDR_BITS + WORD_BITS) + HDR_BITS,
            TraceKind::WritePair => (HDR_BITS + ADDR_BITS + 2 * WORD_BITS) + HDR_BITS,
            TraceKind::FetchAdd => (HDR_BITS + ADDR_BITS + WORD_BITS) + (HDR_BITS + WORD_BITS),
        }
    }

    /// True for accesses that read memory (reads and fetch-and-adds).
    pub fn is_read(self) -> bool {
        matches!(self, TraceKind::Read | TraceKind::ReadPair | TraceKind::FetchAdd)
    }

    /// True for accesses that write memory.
    pub fn is_write(self) -> bool {
        matches!(self, TraceKind::Write | TraceKind::WritePair | TraceKind::FetchAdd)
    }
}

/// One shared access, as recorded by the engine in issue order (which,
/// under the constant-latency network, is also memory-arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issue cycle.
    pub time: u64,
    /// Issuing processor.
    pub proc: u32,
    /// Issuing thread (global id).
    pub thread: u32,
    /// Access kind.
    pub kind: TraceKind,
    /// Word address (first word for pair accesses).
    pub addr: u64,
    /// True for lock/barrier spin traffic.
    pub spin: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties() {
        assert_eq!(TraceKind::ReadPair.words(), 2);
        assert_eq!(TraceKind::Read.words(), 1);
        assert!(TraceKind::FetchAdd.is_read() && TraceKind::FetchAdd.is_write());
        assert!(TraceKind::Read.is_read() && !TraceKind::Read.is_write());
        // A read round trip: 64 forward + 96 back.
        assert_eq!(TraceKind::Read.bits(), 160);
        // The pair saves one header+address pair vs two reads.
        assert!(TraceKind::ReadPair.bits() < 2 * TraceKind::Read.bits());
    }
}
