//! The global shared-memory word array.

/// Global shared memory: a flat array of 64-bit words, word-addressed.
///
/// The simulation engine applies every shared operation in global time
/// order, so plain sequential mutation here is a faithful model of a
/// sequentially-consistent memory with constant access latency.
///
/// Host-side code (application harnesses, tests) uses the same accessors to
/// initialize inputs and verify results; integer and float views share the
/// word array via bit reinterpretation, exactly as the machine's FP
/// load/store instructions do.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    words: Vec<u64>,
}

impl SharedMemory {
    /// Allocates `words` zeroed shared words.
    pub fn new(words: u64) -> SharedMemory {
        SharedMemory { words: vec![0; words as usize] }
    }

    /// Number of words.
    pub fn len(&self) -> u64 {
        self.words.len() as u64
    }

    /// True if the memory has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range (the simulated program performed a
    /// wild shared access — always a bug in the application).
    #[inline]
    pub fn read(&self, addr: u64) -> u64 {
        self.words[addr as usize]
    }

    /// Reads the word at `addr`, or `None` when the access is out of
    /// range. The engine uses the checked accessors so a wild access in a
    /// simulated program surfaces as a typed error instead of a panic.
    #[inline]
    pub fn try_read(&self, addr: u64) -> Option<u64> {
        self.words.get(addr as usize).copied()
    }

    /// Writes the word at `addr`, or returns `None` when out of range.
    #[inline]
    pub fn try_write(&mut self, addr: u64, value: u64) -> Option<()> {
        *self.words.get_mut(addr as usize)? = value;
        Some(())
    }

    /// Atomic fetch-and-add returning the old value, or `None` when out of
    /// range.
    #[inline]
    pub fn try_fetch_add(&mut self, addr: u64, inc: i64) -> Option<u64> {
        let slot = self.words.get_mut(addr as usize)?;
        let old = *slot;
        *slot = old.wrapping_add(inc as u64);
        Some(old)
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64) {
        self.words[addr as usize] = value;
    }

    /// Atomic fetch-and-add: returns the old value after adding `inc`
    /// (wrapping, two's complement).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn fetch_add(&mut self, addr: u64, inc: i64) -> u64 {
        let old = self.words[addr as usize];
        self.words[addr as usize] = old.wrapping_add(inc as u64);
        old
    }

    /// Reads the word at `addr` as a signed integer.
    #[inline]
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read(addr) as i64
    }

    /// Writes a signed integer at `addr`.
    #[inline]
    pub fn write_i64(&mut self, addr: u64, value: i64) {
        self.write(addr, value as u64);
    }

    /// Reads the word at `addr` reinterpreted as an `f64`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read(addr))
    }

    /// Writes an `f64`'s bits at `addr`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write(addr, value.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = SharedMemory::new(8);
        m.write(3, 42);
        assert_eq!(m.read(3), 42);
        assert_eq!(m.read(0), 0);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
    }

    #[test]
    fn fetch_add_returns_old() {
        let mut m = SharedMemory::new(2);
        assert_eq!(m.fetch_add(0, 5), 0);
        assert_eq!(m.fetch_add(0, -2), 5);
        assert_eq!(m.read_i64(0), 3);
    }

    #[test]
    fn float_bits_roundtrip() {
        let mut m = SharedMemory::new(1);
        m.write_f64(0, -1.25);
        assert_eq!(m.read_f64(0), -1.25);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let m = SharedMemory::new(1);
        let _ = m.read(1);
    }

    #[test]
    fn checked_accessors_reject_oob_without_panicking() {
        let mut m = SharedMemory::new(2);
        assert_eq!(m.try_read(1), Some(0));
        assert_eq!(m.try_read(2), None);
        assert_eq!(m.try_write(1, 7), Some(()));
        assert_eq!(m.try_write(2, 7), None);
        assert_eq!(m.try_fetch_add(1, 3), Some(7));
        assert_eq!(m.try_fetch_add(9, 3), None);
        assert_eq!(m.read(1), 10);
    }
}
