//! Simulator-performance bench: wall-clock time to simulate each
//! application under each of the paper's three main models (plus ideal),
//! at tiny scale. Plain `std::time` harness — no external bench framework.

use mtsim_apps::{build_app, run_app, AppKind, Scale};
use mtsim_core::{MachineConfig, SwitchModel};
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: u32 = 10;

fn main() {
    println!("engine throughput (best of {SAMPLES} runs)");
    for model in [
        SwitchModel::Ideal,
        SwitchModel::SwitchOnLoad,
        SwitchModel::ExplicitSwitch,
        SwitchModel::ConditionalSwitch,
    ] {
        for kind in [AppKind::Sieve, AppKind::Sor, AppKind::Mp3d] {
            let (p, t) = (2, 2);
            let app = build_app(kind, Scale::Tiny, p * t);
            let mut best = f64::INFINITY;
            for _ in 0..SAMPLES {
                let start = Instant::now();
                let mut cfg = MachineConfig::new(model, p, t);
                if model == SwitchModel::Ideal {
                    cfg.latency = 0;
                }
                black_box(run_app(&app, cfg).expect("bench run"));
                best = best.min(start.elapsed().as_secs_f64());
            }
            println!("  {model}/{kind}: {:.3} ms", best * 1e3);
        }
    }
}
