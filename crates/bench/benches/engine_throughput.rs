//! Simulator-performance bench: wall-clock time to simulate each
//! application under each of the paper's three main models (plus ideal),
//! at tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};
use mtsim_apps::{build_app, run_app, AppKind, Scale};
use mtsim_core::{MachineConfig, SwitchModel};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for model in [
        SwitchModel::Ideal,
        SwitchModel::SwitchOnLoad,
        SwitchModel::ExplicitSwitch,
        SwitchModel::ConditionalSwitch,
    ] {
        for kind in [AppKind::Sieve, AppKind::Sor, AppKind::Mp3d] {
            g.bench_function(format!("{model}/{kind}"), |b| {
                let (p, t) = (2, 2);
                let app = build_app(kind, Scale::Tiny, p * t);
                b.iter(|| {
                    let mut cfg = MachineConfig::new(model, p, t);
                    if model == SwitchModel::Ideal {
                        cfg.latency = 0;
                    }
                    black_box(run_app(&app, cfg).expect("bench run"));
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
