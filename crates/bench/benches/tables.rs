//! One timed run per paper table/figure: each regenerates its experiment
//! at tiny scale, so `cargo bench` exercises every reproduction code path
//! end to end. Plain `std::time` harness — no external bench framework.

use mtsim_apps::Scale;
use mtsim_bench::experiments;
use mtsim_core::SwitchModel;
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: u32 = 10;

fn bench(name: &str, mut f: impl FnMut()) {
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    println!("  {name}: {:.3} ms", best * 1e3);
}

fn main() {
    println!("table/figure regeneration (best of {SAMPLES} runs)");
    bench("table1", || {
        black_box(experiments::table1(Scale::Tiny));
    });
    bench("fig2", || {
        black_box(experiments::fig2(Scale::Tiny, &[1, 2, 4]));
    });
    bench("table2", || {
        black_box(experiments::run_length_table(Scale::Tiny, SwitchModel::SwitchOnLoad));
    });
    bench("fig3", || {
        black_box(experiments::fig3(Scale::Tiny, &[1, 2], &[1, 2]));
    });
    bench("fig4", || {
        black_box(experiments::fig4());
    });
    bench("table3", || {
        black_box(experiments::mt_table(Scale::Tiny, SwitchModel::SwitchOnLoad, Some(1)));
    });
    bench("table4", || {
        black_box(experiments::run_length_table(Scale::Tiny, SwitchModel::ExplicitSwitch));
    });
    bench("table5", || {
        black_box((
            experiments::mt_table(Scale::Tiny, SwitchModel::ExplicitSwitch, Some(1)),
            experiments::reorganization_penalty(Scale::Tiny),
        ));
    });
    bench("table6", || {
        black_box(experiments::table6(Scale::Tiny));
    });
    bench("table7", || {
        black_box(experiments::table7(Scale::Tiny));
    });
    bench("table8", || {
        black_box(experiments::mt_table(Scale::Tiny, SwitchModel::ConditionalSwitch, Some(1)));
    });
    bench("ablation", || {
        black_box(experiments::max_run_ablation(Scale::Tiny, &[Some(200), Some(400)]));
    });
}
