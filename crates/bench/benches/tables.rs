//! One Criterion bench per paper table/figure: each regenerates its
//! experiment at tiny scale, so `cargo bench` exercises every
//! reproduction code path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use mtsim_apps::Scale;
use mtsim_bench::experiments;
use mtsim_core::SwitchModel;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| black_box(experiments::table1(Scale::Tiny))));
    g.bench_function("fig2", |b| {
        b.iter(|| black_box(experiments::fig2(Scale::Tiny, &[1, 2, 4])))
    });
    g.bench_function("table2", |b| {
        b.iter(|| black_box(experiments::run_length_table(Scale::Tiny, SwitchModel::SwitchOnLoad)))
    });
    g.bench_function("fig3", |b| {
        b.iter(|| black_box(experiments::fig3(Scale::Tiny, &[1, 2], &[1, 2])))
    });
    g.bench_function("fig4", |b| b.iter(|| black_box(experiments::fig4())));
    g.bench_function("table3", |b| {
        b.iter(|| black_box(experiments::mt_table(Scale::Tiny, SwitchModel::SwitchOnLoad)))
    });
    g.bench_function("table4", |b| {
        b.iter(|| {
            black_box(experiments::run_length_table(Scale::Tiny, SwitchModel::ExplicitSwitch))
        })
    });
    g.bench_function("table5", |b| {
        b.iter(|| {
            black_box((
                experiments::mt_table(Scale::Tiny, SwitchModel::ExplicitSwitch),
                experiments::reorganization_penalty(Scale::Tiny),
            ))
        })
    });
    g.bench_function("table6", |b| b.iter(|| black_box(experiments::table6(Scale::Tiny))));
    g.bench_function("table7", |b| b.iter(|| black_box(experiments::table7(Scale::Tiny))));
    g.bench_function("table8", |b| {
        b.iter(|| black_box(experiments::mt_table(Scale::Tiny, SwitchModel::ConditionalSwitch)))
    });
    g.bench_function("ablation", |b| {
        b.iter(|| black_box(experiments::max_run_ablation(Scale::Tiny, &[Some(200), Some(400)])))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
