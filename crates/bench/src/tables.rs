//! Full text reports for the paper's tables, as strings.
//!
//! Each function renders exactly what the corresponding `tableN` binary
//! prints — header, table body, and the paper-comparison footer — so the
//! binaries stay thin printers and the reports can be golden-tested
//! (`tests/golden_reports.rs` at the workspace root snapshots the `Tiny`
//! renders).

use crate::experiments;
use crate::report::{level, mt_table_text, pct, run_length_text, TextTable};
use mtsim_apps::Scale;
use mtsim_core::SwitchModel;

/// `header\n\n` + `body` + `\nfooter\n` — the shape every table binary
/// has always printed.
fn wrap(header: String, body: String, footer: &str) -> String {
    format!("{header}\n\n{body}\n{footer}\n")
}

/// Table 2: run-length distributions, switch-on-load.
pub fn table2_text(scale: Scale) -> String {
    let rows = experiments::run_length_table(scale, SwitchModel::SwitchOnLoad);
    let runs = rows.iter().map(|r| r.hist.count().to_string()).collect();
    wrap(
        format!("Table 2: run-lengths between context switches, switch-on-load (scale {scale:?})"),
        run_length_text(&rows, ("runs", runs)),
        "(paper: sor 39% ones + 39% twos; blkmat exceptionally long mean; locus/mp3d short)",
    )
}

/// Table 3: multithreading level per efficiency target, switch-on-load.
pub fn table3_text(scale: Scale, jobs: Option<usize>) -> String {
    let rows = experiments::mt_table(scale, SwitchModel::SwitchOnLoad, jobs);
    wrap(
        format!("Table 3: switch-on-load — multithreading needed per efficiency (scale {scale:?})"),
        mt_table_text(&rows, None),
        "(paper: sieve reaches 90% at T=11; sor and ugray plateau near 60%)",
    )
}

/// Table 4: run-lengths after grouping, explicit-switch.
pub fn table4_text(scale: Scale) -> String {
    let rows = experiments::run_length_table(scale, SwitchModel::ExplicitSwitch);
    let grouping = rows.iter().map(|r| format!("{:.2}", r.grouping)).collect();
    wrap(
        format!("Table 4: run-lengths after grouping, explicit-switch (scale {scale:?})"),
        run_length_text(&rows, ("grouping", grouping)),
        "(paper: sor and water benefit most; short runs eliminated; locus barely grouped at 1.05)",
    )
}

/// Table 5: explicit-switch levels plus the reorganization penalty.
pub fn table5_text(scale: Scale, jobs: Option<usize>) -> String {
    let penalties = experiments::reorganization_penalty(scale);
    let rows = experiments::mt_table(scale, SwitchModel::ExplicitSwitch, jobs);
    let cells = rows
        .iter()
        .map(|row| {
            let pen = penalties.iter().find(|(a, _)| *a == row.app).map(|&(_, p)| p).unwrap_or(0.0);
            format!("{:+.1}%", pen * 100.0)
        })
        .collect();
    wrap(
        format!(
            "Table 5: explicit-switch — multithreading needed per efficiency (scale {scale:?})"
        ),
        mt_table_text(&rows, Some(("penalty", cells))),
        "(paper: all apps except locus reach 70%+ with T<=14; penalty a few percent)",
    )
}

/// Table 6 (§5.2): inter-block grouping estimate.
pub fn table6_text(scale: Scale) -> String {
    let mut t = TextTable::new([
        "app",
        "1-line hits",
        "grouping",
        "revised",
        "50%",
        "60%",
        "70%",
        "80%",
        "90%",
    ]);
    for row in experiments::table6(scale) {
        t.row(
            [
                row.app.name().to_string(),
                pct(row.one_line_hit_rate),
                format!("{:.2}", row.grouping_before),
                format!("{:.2}", row.grouping_after),
            ]
            .into_iter()
            .chain(row.needed.iter().map(|&n| level(n))),
        );
    }
    wrap(
        format!("Table 6: inter-block grouping estimate, explicit-switch (scale {scale:?})"),
        t.render(),
        "(paper: ugray 42% hits, grouping 1.3 -> 1.9; locus 84% hits, 1.05 -> 6.6)",
    )
}

/// §6.1 table: bandwidth demand and cache hit rates.
pub fn table7_text(scale: Scale) -> String {
    let mut t =
        TextTable::new(["app", "uncached b/c", "hit rate", "cached b/c", "inval msgs/kcycle"]);
    for row in experiments::table7(scale) {
        t.row([
            row.app.name().to_string(),
            format!("{:.2}", row.uncached_bits_per_cycle),
            pct(row.hit_rate),
            format!("{:.2}", row.cached_bits_per_cycle),
            format!("{:.2}", row.invalidations_per_kcycle),
        ]);
    }
    wrap(
        format!(
            "Section 6.1: bandwidth demand (bits/cycle/processor) and hit rates (scale {scale:?})"
        ),
        t.render(),
        "(paper: >90% hits and <4.0 bits/cycle for every app except mp3d)",
    )
}

/// Table 8: conditional-switch multithreading levels.
pub fn table8_text(scale: Scale, jobs: Option<usize>) -> String {
    let rows = experiments::mt_table(scale, SwitchModel::ConditionalSwitch, jobs);
    wrap(
        format!(
            "Table 8: conditional-switch — multithreading needed per efficiency (scale {scale:?})"
        ),
        mt_table_text(&rows, None),
        "(paper: 80%+ efficiency with 6 or fewer threads for the cache-friendly apps)",
    )
}
