//! One function per table/figure of the paper's evaluation.
//!
//! Every function returns structured rows so the `--bin` printers, the
//! Criterion benches, and the shape-check integration tests all share one
//! implementation. Absolute numbers differ from the 1992 testbed (scaled
//! workloads, reconstructed applications); EXPERIMENTS.md records the
//! paper-vs-measured comparison and the shape criteria.

use mtsim_apps::{
    app_builder, build_app, efficiency, run_app, run_app_with_program, AppKind, BuiltApp, Scale,
};
use mtsim_core::{
    MachineConfig, NetworkConfig, RunLengthHist, RunResult, RunStats, SwitchModel, Topology,
};
use mtsim_sweep::{run_job_specs, JobOutcome, JobSpec, SweepOpts};

/// Watchdog for every experiment run (generous; catches deadlocks).
const MAX_CYCLES: u64 = 300_000_000;

fn cfg(model: SwitchModel, procs: usize, t: usize) -> MachineConfig {
    let mut c = MachineConfig::new(model, procs, t);
    c.max_cycles = MAX_CYCLES;
    c
}

/// The per-application processor count used by the multithreading tables
/// (the paper lists one per app, e.g. "sieve (16)", "mp3d (32)").
pub fn procs_for(kind: AppKind, scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2,
        Scale::Small => match kind {
            AppKind::Sieve => 8,
            AppKind::Mp3d => 8,
            _ => 4,
        },
        Scale::Full => match kind {
            AppKind::Sieve => 16,
            AppKind::Mp3d => 16,
            _ => 8,
        },
    }
}

/// Highest multithreading level the sweeps explore.
pub fn max_t(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 6,
        Scale::Small => 24,
        Scale::Full => 32,
    }
}

/// The efficiency targets of Tables 3, 5, 6 and 8.
pub const TARGETS: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One row of Table 1: application inventory.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Application.
    pub app: AppKind,
    /// Static instruction count of the built program (the paper reports
    /// source lines; static instructions are the analogue we have).
    pub static_insts: usize,
    /// Serial cycles on the ideal machine (the paper's "Cycles" column).
    pub serial_cycles: u64,
    /// Dynamic shared accesses in the serial run.
    pub shared_reads: u64,
}

/// Regenerates Table 1 at the given scale.
pub fn table1(scale: Scale) -> Vec<Table1Row> {
    AppKind::ALL
        .iter()
        .map(|&kind| {
            let app = build_app(kind, scale, 1);
            let mut c = MachineConfig::ideal(1);
            c.max_cycles = MAX_CYCLES;
            let r = run_app(&app, c).expect("table1 run");
            Table1Row {
                app: kind,
                static_insts: app.program.len(),
                serial_cycles: r.cycles,
                shared_reads: r.reads_issued,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------

/// One efficiency point.
#[derive(Debug, Clone, Copy)]
pub struct EffPoint {
    /// Processor count.
    pub procs: usize,
    /// Efficiency (speedup / processors).
    pub efficiency: f64,
}

/// Figure 2: efficiency vs processors on the ideal (0-latency) machine.
pub fn fig2(scale: Scale, procs: &[usize]) -> Vec<(AppKind, Vec<EffPoint>)> {
    AppKind::ALL
        .iter()
        .map(|&kind| {
            let build = app_builder(kind, scale);
            let baseline = ideal_baseline(&build);
            let pts = procs
                .iter()
                .map(|&p| {
                    let app = build(p);
                    let mut c = MachineConfig::ideal(p);
                    c.max_cycles = MAX_CYCLES;
                    let r = run_app(&app, c).expect("fig2 run");
                    EffPoint { procs: p, efficiency: efficiency(baseline, p, r.cycles) }
                })
                .collect();
            (kind, pts)
        })
        .collect()
}

/// Serial ideal-machine cycles (the denominator of every efficiency).
pub fn ideal_baseline(build: &dyn Fn(usize) -> BuiltApp) -> u64 {
    let app = build(1);
    let mut c = MachineConfig::ideal(1);
    c.max_cycles = MAX_CYCLES;
    run_app(&app, c).expect("baseline").cycles
}

// ---------------------------------------------------------------------
// Tables 2 and 4: run-length distributions
// ---------------------------------------------------------------------

/// One row of Table 2 / Table 4.
#[derive(Debug, Clone)]
pub struct RunLenRow {
    /// Application.
    pub app: AppKind,
    /// The run-length histogram.
    pub hist: RunLengthHist,
    /// Dynamic grouping factor (Table 4's "grouping" column; ~1 for the
    /// ungrouped switch-on-load runs of Table 2).
    pub grouping: f64,
}

/// Run-length distributions under `model` (Table 2 uses `SwitchOnLoad`,
/// Table 4 `ExplicitSwitch` on the grouped code).
pub fn run_length_table(scale: Scale, model: SwitchModel) -> Vec<RunLenRow> {
    AppKind::ALL
        .iter()
        .map(|&kind| {
            let procs = procs_for(kind, scale).min(4);
            let t = 2;
            let app = build_app(kind, scale, procs * t);
            let r = run_app(&app, cfg(model, procs, t)).expect("run-length run");
            let grouping =
                if model.uses_explicit_switch() { r.dynamic_grouping_factor() } else { 1.0 };
            RunLenRow { app: kind, hist: r.run_lengths, grouping }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------

/// Figure 3: sieve efficiency vs processors at several multithreading
/// levels (switch-on-load, 200-cycle latency), plus the ideal curve.
///
/// Returns `(label, points)` per curve.
pub fn fig3(scale: Scale, levels: &[usize], procs: &[usize]) -> Vec<(String, Vec<EffPoint>)> {
    let build = app_builder(AppKind::Sieve, scale);
    let baseline = ideal_baseline(&build);
    let mut curves = Vec::new();

    let ideal_pts = procs
        .iter()
        .map(|&p| {
            let app = build(p);
            let mut c = MachineConfig::ideal(p);
            c.max_cycles = MAX_CYCLES;
            let r = run_app(&app, c).expect("fig3 ideal");
            EffPoint { procs: p, efficiency: efficiency(baseline, p, r.cycles) }
        })
        .collect();
    curves.push(("ideal".to_string(), ideal_pts));

    for &t in levels {
        let pts = procs
            .iter()
            .map(|&p| {
                let app = build(p * t);
                let r = run_app(&app, cfg(SwitchModel::SwitchOnLoad, p, t)).expect("fig3 run");
                EffPoint { procs: p, efficiency: efficiency(baseline, p, r.cycles) }
            })
            .collect();
        curves.push((format!("T={t}"), pts));
    }
    curves
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

/// Figure 4: the sor inner-loop listing before and after grouping.
/// Returns `(original, grouped)` listings of the hottest block.
pub fn fig4() -> (String, String) {
    let app = build_app(AppKind::Sor, Scale::Tiny, 1);
    let (grouped, _) = app.grouped();
    (app.program.listing(), grouped.listing())
}

// ---------------------------------------------------------------------
// Tables 3, 5, 8: multithreading levels for target efficiencies
// ---------------------------------------------------------------------

/// One row of a multithreading-level table.
#[derive(Debug, Clone)]
pub struct MtRow {
    /// Application.
    pub app: AppKind,
    /// Processor count used for the sweep.
    pub procs: usize,
    /// For each entry of [`TARGETS`], the smallest multithreading level
    /// reaching it (or `None`, printed `-` as in the paper).
    pub needed: Vec<Option<usize>>,
    /// Efficiency at each tried level (for the curious).
    pub efficiencies: Vec<f64>,
}

/// The ideal-machine serial baseline as a sweep job (the denominator of
/// every efficiency figure).
fn baseline_job(id: usize, app: AppKind, scale: Scale) -> JobSpec {
    JobSpec {
        id,
        app,
        model: SwitchModel::Ideal,
        procs: 1,
        threads_per_proc: 1,
        latency: 0,
        seed: 0,
        drop_rate: 0.0,
        net: Topology::Constant,
        link_bw: NetworkConfig::constant().link_bw,
        combining: false,
        attr: false,
        scale,
        max_cycles: MAX_CYCLES,
        max_retries: 8,
    }
}

/// Unwraps a sweep job's stats, panicking with context on failure — the
/// table generators treat any failing grid point as a broken experiment,
/// exactly as the pre-sweep serial code did.
fn stats_or_panic<'a>(job: &'a JobOutcome, what: &str) -> &'a RunStats {
    match &job.result {
        Ok(stats) => stats,
        Err(e) => panic!(
            "{what} failed for {} under {} (p={}, t={}): {e}",
            job.spec.app, job.spec.model, job.spec.procs, job.spec.threads_per_proc
        ),
    }
}

/// Tables 3 (`SwitchOnLoad`), 5 (`ExplicitSwitch`) and 8
/// (`ConditionalSwitch`): the multithreading level needed per efficiency
/// target.
///
/// Runs on the `mtsim-sweep` engine with `workers` threads (`None` =
/// machine default), evaluating the full `1..=max_t` grid for every app.
/// The result is a pure function of the grid — identical at any worker
/// count.
pub fn mt_table(scale: Scale, model: SwitchModel, workers: Option<usize>) -> Vec<MtRow> {
    // Per-app grid: one ideal baseline plus max_t multithreaded points.
    // Ids are laid out app-major so aggregation can index directly.
    let tmax = max_t(scale);
    let stride = tmax + 1;
    let mut jobs = Vec::with_capacity(AppKind::ALL.len() * stride);
    for (a, &kind) in AppKind::ALL.iter().enumerate() {
        let procs = procs_for(kind, scale);
        jobs.push(baseline_job(a * stride, kind, scale));
        for t in 1..=tmax {
            jobs.push(JobSpec {
                id: a * stride + t,
                app: kind,
                model,
                procs,
                threads_per_proc: t,
                latency: 200,
                seed: 0,
                drop_rate: 0.0,
                net: Topology::Constant,
                link_bw: NetworkConfig::constant().link_bw,
                combining: false,
                attr: false,
                scale,
                max_cycles: MAX_CYCLES,
                max_retries: 8,
            });
        }
    }
    let out = run_job_specs(jobs, &SweepOpts { workers, progress: false, ..SweepOpts::default() });

    AppKind::ALL
        .iter()
        .enumerate()
        .map(|(a, &kind)| {
            let procs = procs_for(kind, scale);
            let baseline = stats_or_panic(&out.jobs[a * stride], "baseline").cycles;
            let effs: Vec<f64> = (1..=tmax)
                .map(|t| {
                    let s = stats_or_panic(&out.jobs[a * stride + t], "mt run");
                    efficiency(baseline, procs, s.cycles)
                })
                .collect();
            let needed = TARGETS
                .iter()
                .map(|&target| effs.iter().position(|&e| e >= target).map(|i| i + 1))
                .collect();
            MtRow { app: kind, procs, needed, efficiencies: effs }
        })
        .collect()
}

/// Table 5's last column: the ideal-machine slowdown of the reorganized
/// (grouped) code vs the original — the cost of the added `Switch`
/// instructions and the looser schedule. Returns `(app, penalty)` with
/// `penalty = grouped/original - 1`.
pub fn reorganization_penalty(scale: Scale) -> Vec<(AppKind, f64)> {
    AppKind::ALL
        .iter()
        .map(|&kind| {
            let app = build_app(kind, scale, 1);
            let mut c = MachineConfig::ideal(1);
            c.max_cycles = MAX_CYCLES;
            let orig = run_app_with_program(&app, &app.program, c.clone())
                .expect("penalty original")
                .cycles;
            let (grouped, _) = app.grouped();
            let re = run_app_with_program(&app, &grouped, c).expect("penalty grouped").cycles;
            (kind, re as f64 / orig as f64 - 1.0)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 6: inter-block grouping estimate (§5.2)
// ---------------------------------------------------------------------

/// One row of Table 6.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Application.
    pub app: AppKind,
    /// One-line-cache hit rate (the paper: ugray 42 %, locus 84 %).
    pub one_line_hit_rate: f64,
    /// Dynamic grouping factor without the estimator.
    pub grouping_before: f64,
    /// Revised grouping factor with one-line-hit groups merged.
    pub grouping_after: f64,
    /// Multithreading levels needed per target, estimator on.
    pub needed: Vec<Option<usize>>,
}

/// Table 6: revised multithreading figures under the §5.2 inter-block
/// grouping estimator.
pub fn table6(scale: Scale) -> Vec<Table6Row> {
    AppKind::ALL
        .iter()
        .map(|&kind| {
            let procs = procs_for(kind, scale);
            let build = app_builder(kind, scale);
            let baseline = ideal_baseline(&build);

            // Measurement run (moderate T) for hit rate and factors.
            let t0 = 2;
            let app = build_app(kind, scale, procs.min(4) * t0);
            let plain = run_app(&app, cfg(SwitchModel::ExplicitSwitch, procs.min(4), t0))
                .expect("t6 plain");
            let est = run_app(
                &app,
                cfg(SwitchModel::ExplicitSwitch, procs.min(4), t0).with_interblock_estimate(true),
            )
            .expect("t6 est");

            let mut effs = Vec::new();
            let mut best = 0.0f64;
            for t in 1..=max_t(scale) {
                let app = build(procs * t);
                let r = run_app(
                    &app,
                    cfg(SwitchModel::ExplicitSwitch, procs, t).with_interblock_estimate(true),
                )
                .expect("t6 sweep");
                let e = efficiency(baseline, procs, r.cycles);
                effs.push(e);
                best = best.max(e);
                if best >= TARGETS[TARGETS.len() - 1] {
                    break;
                }
            }
            let needed = TARGETS
                .iter()
                .map(|&target| effs.iter().position(|&e| e >= target).map(|i| i + 1))
                .collect();

            // Revised factor: reads per *taken* switch point.
            let taken_points = est.reads_issued.saturating_sub(0) as f64;
            let _ = taken_points;
            let after = if est.switches_taken == 0 {
                est.reads_issued as f64
            } else {
                est.reads_issued as f64 / est.switches_taken as f64
            };
            Table6Row {
                app: kind,
                one_line_hit_rate: est.one_line_hit_rate(),
                grouping_before: plain.dynamic_grouping_factor(),
                grouping_after: after,
                needed,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 7 (§6.1): cache hit rates and bandwidth
// ---------------------------------------------------------------------

/// One row of the §6.1 cache/bandwidth comparison.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Application.
    pub app: AppKind,
    /// Bandwidth demand without caching (explicit-switch), bits/cycle/proc.
    pub uncached_bits_per_cycle: f64,
    /// Cache hit rate under conditional-switch.
    pub hit_rate: f64,
    /// Bandwidth demand with caching, bits/cycle/proc.
    pub cached_bits_per_cycle: f64,
    /// Invalidation messages per 1000 cycles (coherency overhead).
    pub invalidations_per_kcycle: f64,
}

/// §6.1: bandwidth with and without caching, plus hit rates.
pub fn table7(scale: Scale) -> Vec<Table7Row> {
    AppKind::ALL
        .iter()
        .map(|&kind| {
            let procs = procs_for(kind, scale).min(8);
            let t = 4;
            let app = build_app(kind, scale, procs * t);
            let un =
                run_app(&app, cfg(SwitchModel::ExplicitSwitch, procs, t)).expect("t7 uncached");
            let ca =
                run_app(&app, cfg(SwitchModel::ConditionalSwitch, procs, t)).expect("t7 cached");
            let cache = ca.cache.expect("cache stats");
            let inval = ca.traffic.messages_of(mtsim_mem::MsgClass::Invalidate) as f64
                / ca.cycles as f64
                * 1000.0;
            Table7Row {
                app: kind,
                uncached_bits_per_cycle: un.bits_per_cycle(),
                hit_rate: cache.hit_rate(),
                cached_bits_per_cycle: ca.bits_per_cycle(),
                invalidations_per_kcycle: inval,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// §6.2 ablation: the forced-switch interval
// ---------------------------------------------------------------------

/// One point of the forced-switch ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The `max_run` setting (`None` = forced switch disabled).
    pub max_run: Option<u64>,
    /// `(cycles, forced switches, mean run-length)` — or `None` when the
    /// run livelocked: with the forced switch disabled, a thread spinning
    /// on a cached lock word never yields and starves the lock holder on
    /// its own processor. That starvation is exactly the §6.2 pathology
    /// the paper's 200-cycle flag exists to fix.
    pub outcome: Option<(u64, u64, f64)>,
}

/// §6.2: ugray under conditional-switch with different forced-switch
/// intervals (the paper's fix for lock-holders being starved by
/// cache-hit runs of thousands of cycles).
pub fn max_run_ablation(scale: Scale, settings: &[Option<u64>]) -> Vec<AblationRow> {
    let procs = procs_for(AppKind::Ugray, scale);
    let t = 4;
    let app = build_app(AppKind::Ugray, scale, procs * t);
    // Nominal run with the paper's setting: yields the watchdog budget for
    // the risky settings.
    let nominal = run_app(&app, cfg(SwitchModel::ConditionalSwitch, procs, t))
        .expect("nominal ablation run")
        .cycles;
    settings
        .iter()
        .map(|&mr| {
            let mut c = cfg(SwitchModel::ConditionalSwitch, procs, t).with_max_run(mr);
            c.max_cycles = nominal.saturating_mul(50).max(1_000_000);
            let outcome =
                run_app(&app, c).ok().map(|r| (r.cycles, r.forced_switches, r.run_lengths.mean()));
            AblationRow { max_run: mr, outcome }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Model comparison (Figure 1 tour, used by the models example and bench)
// ---------------------------------------------------------------------

/// Runs one app under every model at fixed `P × T`, returning
/// `(model, result)` pairs.
pub fn model_tour(
    kind: AppKind,
    scale: Scale,
    procs: usize,
    t: usize,
) -> Vec<(SwitchModel, RunResult)> {
    SwitchModel::ALL
        .iter()
        .map(|&m| {
            let app = build_app(kind, scale, procs * t);
            let r = run_app(&app, cfg(m, procs, t)).expect("tour run");
            (m, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_tiny_runs() {
        let rows = table1(Scale::Tiny);
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|r| r.serial_cycles > 0 && r.static_insts > 20));
    }

    #[test]
    fn fig2_efficiency_declines_with_processors() {
        let curves = fig2(Scale::Tiny, &[1, 4]);
        for (app, pts) in &curves {
            assert!(
                pts[0].efficiency > 0.95,
                "{app}: single-processor efficiency {}",
                pts[0].efficiency
            );
            assert!(pts[1].efficiency <= pts[0].efficiency + 0.05, "{app}");
        }
    }

    #[test]
    fn fig4_listings_differ_by_switches() {
        let (orig, grouped) = fig4();
        assert!(!orig.contains("switch"));
        assert!(grouped.contains("switch"));
    }

    #[test]
    fn penalty_is_small_and_nonnegative() {
        for (app, p) in reorganization_penalty(Scale::Tiny) {
            assert!((-0.01..0.30).contains(&p), "{app}: penalty {p}");
        }
    }
}

// ---------------------------------------------------------------------
// Latency tolerance (the paper's title claim)
// ---------------------------------------------------------------------

/// One latency-sweep point.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Round-trip latency in cycles.
    pub latency: u64,
    /// Efficiency per model, in the order of `LATENCY_MODELS`.
    pub efficiency: Vec<f64>,
}

/// Models compared by [`latency_sweep`].
pub const LATENCY_MODELS: [SwitchModel; 3] =
    [SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch, SwitchModel::ConditionalSwitch];

/// The title claim — "easily tolerate latencies of hundreds of cycles":
/// efficiency of one application as the round trip grows from 50 to 800
/// cycles at a fixed multithreading level.
///
/// Runs on the `mtsim-sweep` engine with `workers` threads (`None` =
/// machine default); the app builds once and every (model, latency)
/// point shares the cached artifact.
pub fn latency_sweep(
    kind: AppKind,
    scale: Scale,
    procs: usize,
    t: usize,
    latencies: &[u64],
    workers: Option<usize>,
) -> Vec<LatencyRow> {
    let mut jobs = vec![baseline_job(0, kind, scale)];
    for (i, &lat) in latencies.iter().enumerate() {
        for (m, &model) in LATENCY_MODELS.iter().enumerate() {
            jobs.push(JobSpec {
                id: 1 + i * LATENCY_MODELS.len() + m,
                app: kind,
                model,
                procs,
                threads_per_proc: t,
                latency: lat,
                seed: 0,
                drop_rate: 0.0,
                net: Topology::Constant,
                link_bw: NetworkConfig::constant().link_bw,
                combining: false,
                attr: false,
                scale,
                max_cycles: MAX_CYCLES,
                max_retries: 8,
            });
        }
    }
    let out = run_job_specs(jobs, &SweepOpts { workers, progress: false, ..SweepOpts::default() });
    let baseline = stats_or_panic(&out.jobs[0], "latency baseline").cycles;
    latencies
        .iter()
        .enumerate()
        .map(|(i, &lat)| {
            let efficiency_by_model = (0..LATENCY_MODELS.len())
                .map(|m| {
                    let s = stats_or_panic(
                        &out.jobs[1 + i * LATENCY_MODELS.len() + m],
                        "latency sweep run",
                    );
                    efficiency(baseline, procs, s.cycles)
                })
                .collect();
            LatencyRow { latency: lat, efficiency: efficiency_by_model }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Network contention (PR 4, beyond the paper)
// ---------------------------------------------------------------------

/// One saturation curve: a (model, topology, combining) configuration
/// evaluated across the offered-load axis (threads per processor).
#[derive(Debug, Clone)]
pub struct NetCurve {
    /// Context-switch model.
    pub model: SwitchModel,
    /// Interconnection topology.
    pub topology: Topology,
    /// Whether the switches combine concurrent fetch-and-adds.
    pub combining: bool,
    /// One point per entry of the `ts` axis, in order.
    pub points: Vec<NetPoint>,
}

/// One offered-load point of a [`NetCurve`].
#[derive(Debug, Clone, Copy)]
pub struct NetPoint {
    /// Threads per processor (the offered-load knob).
    pub threads_per_proc: usize,
    /// Wall-clock cycles of the run.
    pub cycles: u64,
    /// Mean modeled round-trip latency over all network requests.
    pub net_mean_latency: f64,
    /// Total cycles messages spent queued on busy links.
    pub net_queue_cycles: u64,
    /// Fetch-and-adds merged in flight (0 without combining).
    pub net_fa_combined: u64,
}

/// Models compared by [`net_contention`].
pub const NET_MODELS: [SwitchModel; 2] = [SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch];

/// The (topology, combining) configurations [`net_contention`] sweeps:
/// the paper's contention-free pipe as the control, then each contention
/// topology with and without combining.
pub fn net_configs() -> Vec<(Topology, bool)> {
    let mut cfgs = vec![(Topology::Constant, false)];
    for t in [Topology::Crossbar, Topology::Mesh, Topology::Butterfly] {
        cfgs.push((t, false));
        cfgs.push((t, true));
    }
    cfgs
}

/// Network saturation curves: per switch model and topology, how the mean
/// modeled round-trip latency grows with offered load (threads per
/// processor). The `constant` control must reproduce the no-network
/// numbers bit-for-bit; mesh and butterfly are expected to queue.
///
/// Runs on the `mtsim-sweep` engine with `workers` threads (`None` =
/// machine default). The result is a pure function of the grid.
pub fn net_contention(
    kind: AppKind,
    scale: Scale,
    procs: usize,
    ts: &[usize],
    workers: Option<usize>,
) -> Vec<NetCurve> {
    let configs = net_configs();
    let mut jobs = Vec::with_capacity(NET_MODELS.len() * configs.len() * ts.len());
    for &model in &NET_MODELS {
        for &(topology, combining) in &configs {
            for &t in ts {
                jobs.push(JobSpec {
                    id: jobs.len(),
                    app: kind,
                    model,
                    procs,
                    threads_per_proc: t,
                    latency: 200,
                    seed: 0,
                    drop_rate: 0.0,
                    net: topology,
                    link_bw: NetworkConfig::constant().link_bw,
                    combining,
                    attr: false,
                    scale,
                    max_cycles: MAX_CYCLES,
                    max_retries: 8,
                });
            }
        }
    }
    let out = run_job_specs(jobs, &SweepOpts { workers, progress: false, ..SweepOpts::default() });

    let mut curves = Vec::with_capacity(NET_MODELS.len() * configs.len());
    let mut next = 0;
    for &model in &NET_MODELS {
        for &(topology, combining) in &configs {
            let points = ts
                .iter()
                .map(|&t| {
                    let s = stats_or_panic(&out.jobs[next], "net contention run");
                    next += 1;
                    NetPoint {
                        threads_per_proc: t,
                        cycles: s.cycles,
                        net_mean_latency: s.net_mean_latency(),
                        net_queue_cycles: s.net_queue_cycles,
                        net_fa_combined: s.net_fa_combined,
                    }
                })
                .collect();
            curves.push(NetCurve { model, topology, combining, points });
        }
    }
    curves
}
