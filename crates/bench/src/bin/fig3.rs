//! Regenerates Figure 3: sieve under switch-on-load multithreading —
//! efficiency vs processors for several multithreading levels, plus the
//! ideal curve.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin fig3 [--scale tiny|small|full]`

use mtsim_apps::Scale;
use mtsim_bench::report::{pct, TextTable};
use mtsim_bench::{experiments, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let (levels, procs): (&[usize], &[usize]) = match scale {
        Scale::Tiny => (&[1, 2, 4], &[1, 2, 4]),
        Scale::Small => (&[1, 2, 4, 6, 8, 12, 16, 24], &[1, 2, 4, 8]),
        Scale::Full => (&[1, 2, 4, 6, 8, 12, 16, 24, 32], &[1, 2, 4, 8, 16]),
    };
    println!("Figure 3: sieve, switch-on-load, 200-cycle latency (scale {scale:?})\n");
    let mut t = TextTable::new(
        std::iter::once("curve".to_string()).chain(procs.iter().map(|p| format!("P={p}"))),
    );
    for (label, pts) in experiments::fig3(scale, levels, procs) {
        t.row(std::iter::once(label).chain(pts.iter().map(|pt| pct(pt.efficiency))));
    }
    print!("{}", t.render());
    println!("\n(paper: T=1 runs at 9%; near-100% efficiency from T=12)");
}
