//! Observability overhead benchmark (DESIGN.md §17 overhead budget).
//!
//! The `Recorder` hooks are selected by generics, so a run over
//! `NoopRecorder` must compile to the uninstrumented engine: this bench
//! times `Machine::run` against `Machine::run_with(&mut NoopRecorder)`
//! (min of K trials each, interleaved) and **asserts** the disabled path
//! stays within the 2% budget. The enabled path (`ObsRecorder`) is timed
//! and reported too, but only sanity-bounded — collecting events and
//! histograms legitimately costs something.
//!
//! Results go to `BENCH_obs.json` so the overhead has a trajectory across
//! changes.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin obs_overhead
//!         [--scale tiny|small|full] [--trials N]`

use std::time::Instant;

use mtsim_apps::{build_app, AppKind};
use mtsim_core::{Machine, MachineConfig, NoopRecorder, ObsRecorder, SwitchModel};
use mtsim_sweep::json::JsonBuilder;

/// Disabled-path budget: `run_with(NoopRecorder)` vs `run`.
const BUDGET: f64 = 0.02;
/// Sanity bound for the full recorder — generous, it does real work.
const ENABLED_BOUND: f64 = 1.0;

fn trials_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--trials" {
            let n: usize = w[1].parse().unwrap_or_else(|_| panic!("bad --trials value '{}'", w[1]));
            assert!(n >= 1, "--trials must be >= 1");
            return n;
        }
    }
    9
}

fn main() {
    let scale = mtsim_bench::scale_from_args();
    let trials = trials_from_args();
    let kind = AppKind::Sor;
    let (procs, t) = (4, 4);
    let app = build_app(kind, scale, procs * t);
    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, procs, t);

    println!(
        "obs_overhead: {} on switch-on-load, {procs}x{t} (scale {scale:?}), min of {trials} trials",
        kind.name()
    );

    // Interleave the variants so frequency scaling and cache warmth hit
    // all three equally; keep the minimum per variant (least-noise
    // estimator for a deterministic workload).
    let (mut plain, mut noop, mut obs) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut cycles = 0;
    for _ in 0..trials {
        let m = Machine::try_new(cfg.clone(), &app.program, app.shared.clone()).expect("machine");
        let t0 = Instant::now();
        let fin = m.run().expect("plain run");
        plain = plain.min(t0.elapsed().as_secs_f64());
        cycles = fin.result.cycles;

        let m = Machine::try_new(cfg.clone(), &app.program, app.shared.clone()).expect("machine");
        let t0 = Instant::now();
        let fin = m.run_with(&mut NoopRecorder).expect("noop run");
        noop = noop.min(t0.elapsed().as_secs_f64());
        assert_eq!(fin.result.cycles, cycles, "noop recorder changed the simulation");

        let mut rec = ObsRecorder::with_capacity(procs, procs * t, 1 << 12);
        let m = Machine::try_new(cfg.clone(), &app.program, app.shared.clone()).expect("machine");
        let t0 = Instant::now();
        let fin = m.run_with(&mut rec).expect("obs run");
        obs = obs.min(t0.elapsed().as_secs_f64());
        assert_eq!(fin.result.cycles, cycles, "obs recorder changed the simulation");
        assert_eq!(rec.attr.conservation_error(cycles), None);
    }

    let noop_overhead = noop / plain - 1.0;
    let obs_overhead = obs / plain - 1.0;
    println!("  plain run       {:8.3} ms", plain * 1e3);
    println!("  noop recorder   {:8.3} ms  ({:+.2}%)", noop * 1e3, noop_overhead * 100.0);
    println!("  full recorder   {:8.3} ms  ({:+.2}%)", obs * 1e3, obs_overhead * 100.0);

    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("bench").string("obs");
    j.key("scale").string(scale.name());
    j.key("app").string(kind.name());
    j.key("procs").u64(procs as u64);
    j.key("threads").u64(t as u64);
    j.key("trials").u64(trials as u64);
    j.key("sim_cycles").u64(cycles);
    j.key("plain_ms").f64(plain * 1e3);
    j.key("noop_ms").f64(noop * 1e3);
    j.key("obs_ms").f64(obs * 1e3);
    j.key("noop_overhead").f64(noop_overhead);
    j.key("obs_overhead").f64(obs_overhead);
    j.key("budget").f64(BUDGET);
    j.end();
    std::fs::write("BENCH_obs.json", j.finish() + "\n").expect("write BENCH_obs.json");
    println!("  wrote BENCH_obs.json");

    assert!(
        noop_overhead < BUDGET,
        "tracing-off overhead {:.2}% blows the {:.0}% budget — the NoopRecorder \
         path is no longer compiling down to the seed engine",
        noop_overhead * 100.0,
        BUDGET * 100.0
    );
    assert!(
        obs_overhead < ENABLED_BOUND,
        "full-recorder overhead {:.2}% is out of hand",
        obs_overhead * 100.0
    );
    println!(
        "  within budget: noop < {:.0}%, full < {:.0}%",
        BUDGET * 100.0,
        ENABLED_BOUND * 100.0
    );
}
