//! Regenerates Table 1: the application inventory (sizes and serial
//! ideal-machine cycle counts).
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table1 [--scale tiny|small|full]`

use mtsim_bench::report::TextTable;
use mtsim_bench::{experiments, scale_from_args};

fn main() {
    let scale = scale_from_args();
    println!("Table 1: Parallel Applications (scale {scale:?})\n");
    let mut t =
        TextTable::new(["app", "static insts", "serial cycles", "shared reads", "description"]);
    for row in experiments::table1(scale) {
        t.row([
            row.app.name().to_string(),
            row.static_insts.to_string(),
            row.serial_cycles.to_string(),
            row.shared_reads.to_string(),
            row.app.description().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\n(paper: sieve 106M, blkmat 87M, sor 258M, ugray 1353M, water 1082M, locus 665M, mp3d 192M cycles at full 1992 sizes)");
}
