//! Sweep-engine throughput benchmark: runs a fixed grid serially
//! (`--jobs 1`) and in parallel (machine default), checks the result
//! tables are byte-identical, and writes the speedup to
//! `BENCH_sweep.json` so future changes get a perf trajectory.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin sweep_bench [--scale tiny|small|full] [--jobs N]`

use mtsim_apps::AppKind;
use mtsim_bench::{jobs_from_args, scale_from_args};
use mtsim_core::SwitchModel;
use mtsim_sweep::json::JsonBuilder;
use mtsim_sweep::{default_workers, run_sweep, SweepOpts, SweepSpec};

fn main() {
    let scale = scale_from_args();
    let spec = SweepSpec {
        apps: vec![AppKind::Sieve, AppKind::Sor, AppKind::Water, AppKind::Ugray],
        models: vec![SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch],
        procs: vec![2],
        threads: vec![1, 2, 4],
        scale,
        ..SweepSpec::default()
    };
    let workers = jobs_from_args().unwrap_or_else(default_workers);
    println!("sweep_bench: {} grid points (scale {scale:?}), 1 vs {workers} worker(s)", spec.len());

    let serial = run_sweep(&spec, &SweepOpts { workers: Some(1), progress: false }).expect("spec");
    let parallel =
        run_sweep(&spec, &SweepOpts { workers: Some(workers), progress: false }).expect("spec");
    assert_eq!(
        serial.results_json(),
        parallel.results_json(),
        "parallel sweep diverged from the serial result table"
    );

    let serial_s = serial.wall.as_secs_f64();
    let parallel_s = parallel.wall.as_secs_f64();
    let speedup = if parallel_s > 0.0 { serial_s / parallel_s } else { 0.0 };
    println!("  serial:   {}", serial.summary_line());
    println!("  parallel: {}", parallel.summary_line());
    println!("  speedup: {speedup:.2}x");

    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("bench").string("sweep");
    j.key("scale").string(scale.name());
    j.key("grid_points").u64(spec.len() as u64);
    j.key("workers").u64(workers as u64);
    j.key("serial_ms").f64(serial_s * 1e3);
    j.key("parallel_ms").f64(parallel_s * 1e3);
    j.key("speedup").f64(speedup);
    j.key("jobs_per_sec").f64(parallel.jobs_per_sec());
    j.key("sim_cycles_per_sec").f64(parallel.sim_cycles_per_sec());
    j.key("cache_hits").u64(parallel.cache_hits);
    j.key("cache_misses").u64(parallel.cache_misses);
    j.key("ok").u64(parallel.ok_count() as u64);
    j.key("failed").u64(parallel.failed_count() as u64);
    j.end();
    std::fs::write("BENCH_sweep.json", j.finish() + "\n").expect("write BENCH_sweep.json");
    println!("  wrote BENCH_sweep.json");
}
