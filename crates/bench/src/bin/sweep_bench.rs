//! Sweep-engine throughput benchmark: runs a fixed grid serially
//! (`--jobs 1`) and in parallel (machine default), checks the result
//! tables are byte-identical, and writes the speedup to
//! `BENCH_sweep.json` so future changes get a perf trajectory. Also runs
//! a small network-saturation grid and writes the per-topology latency
//! numbers to `BENCH_net.json`.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin sweep_bench [--scale tiny|small|full] [--jobs N]`

use mtsim_apps::AppKind;
use mtsim_bench::experiments::net_contention;
use mtsim_bench::{jobs_from_args, scale_from_args};
use mtsim_core::SwitchModel;
use mtsim_sweep::json::JsonBuilder;
use mtsim_sweep::{default_workers, run_sweep, SweepOpts, SweepSpec};

fn main() {
    let scale = scale_from_args();
    let spec = SweepSpec {
        apps: vec![AppKind::Sieve, AppKind::Sor, AppKind::Water, AppKind::Ugray],
        models: vec![SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch],
        procs: vec![2],
        threads: vec![1, 2, 4],
        scale,
        ..SweepSpec::default()
    };
    let workers = jobs_from_args().unwrap_or_else(default_workers);
    println!("sweep_bench: {} grid points (scale {scale:?}), 1 vs {workers} worker(s)", spec.len());

    let serial =
        run_sweep(&spec, &SweepOpts { workers: Some(1), progress: false, ..SweepOpts::default() })
            .expect("spec");
    let parallel = run_sweep(
        &spec,
        &SweepOpts { workers: Some(workers), progress: false, ..SweepOpts::default() },
    )
    .expect("spec");
    assert_eq!(
        serial.results_json(),
        parallel.results_json(),
        "parallel sweep diverged from the serial result table"
    );

    // Crash-safety tax: the same parallel sweep streaming every completed
    // job to a fsync'd checkpoint (DESIGN.md §18). The overhead budget is
    // generous — one sealed line + fdatasync per job — but tracking it
    // keeps the "streaming is effectively free" claim honest.
    let ckpt = {
        let mut p = std::env::temp_dir();
        p.push(format!("mtsim-sweep-bench-{}.jsonl", std::process::id()));
        p.to_string_lossy().into_owned()
    };
    let streamed = run_sweep(
        &spec,
        &SweepOpts {
            workers: Some(workers),
            progress: false,
            stream: Some(ckpt.clone()),
            ..SweepOpts::default()
        },
    )
    .expect("spec");
    assert_eq!(
        serial.results_json(),
        streamed.results_json(),
        "streamed sweep diverged from the serial result table"
    );
    std::fs::remove_file(&ckpt).ok();

    let serial_s = serial.wall.as_secs_f64();
    let parallel_s = parallel.wall.as_secs_f64();
    let streamed_s = streamed.wall.as_secs_f64();
    let speedup = if parallel_s > 0.0 { serial_s / parallel_s } else { 0.0 };
    let overhead = if parallel_s > 0.0 { streamed_s / parallel_s - 1.0 } else { 0.0 };
    println!("  serial:   {}", serial.summary_line());
    println!("  parallel: {}", parallel.summary_line());
    println!("  streamed: {}", streamed.summary_line());
    println!("  speedup: {speedup:.2}x, checkpoint overhead: {:.1}%", overhead * 100.0);
    if overhead > 0.10 {
        println!("  WARNING: checkpoint streaming cost more than the 10% budget");
    }

    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("bench").string("sweep");
    j.key("scale").string(scale.name());
    j.key("grid_points").u64(spec.len() as u64);
    j.key("workers").u64(workers as u64);
    j.key("serial_ms").f64(serial_s * 1e3);
    j.key("parallel_ms").f64(parallel_s * 1e3);
    j.key("streamed_ms").f64(streamed_s * 1e3);
    j.key("speedup").f64(speedup);
    j.key("checkpoint_overhead").f64(overhead);
    j.key("jobs_per_sec").f64(parallel.jobs_per_sec());
    j.key("sim_cycles_per_sec").f64(parallel.sim_cycles_per_sec());
    j.key("cache_hits").u64(parallel.cache_hits);
    j.key("cache_misses").u64(parallel.cache_misses);
    j.key("ok").u64(parallel.ok_count() as u64);
    j.key("failed").u64(parallel.failed_count() as u64);
    j.end();
    std::fs::write("BENCH_sweep.json", j.finish() + "\n").expect("write BENCH_sweep.json");
    println!("  wrote BENCH_sweep.json");

    // Network saturation numbers: a small offered-load sweep per topology,
    // so the contention model's trajectory is tracked alongside the sweep
    // engine's throughput.
    let ts = [1, 2, 4];
    let curves = net_contention(AppKind::Sieve, scale, 4, &ts, Some(workers));
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("bench").string("net");
    j.key("scale").string(scale.name());
    j.key("app").string(AppKind::Sieve.name());
    j.key("procs").u64(4);
    j.key("curves").begin_array();
    for c in &curves {
        j.begin_object();
        j.key("model").string(c.model.name());
        j.key("net").string(c.topology.name());
        j.key("combining").bool(c.combining);
        j.key("points").begin_array();
        for p in &c.points {
            j.begin_object();
            j.key("t").u64(p.threads_per_proc as u64);
            j.key("cycles").u64(p.cycles);
            j.key("mean_latency").f64(p.net_mean_latency);
            j.key("queue_cycles").u64(p.net_queue_cycles);
            j.key("fa_combined").u64(p.net_fa_combined);
            j.end();
        }
        j.end();
        j.end();
    }
    j.end();
    j.end();
    std::fs::write("BENCH_net.json", j.finish() + "\n").expect("write BENCH_net.json");
    println!("  wrote BENCH_net.json ({} saturation curves)", curves.len());
}
