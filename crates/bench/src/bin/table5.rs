//! Regenerates Table 5: explicit-switch multithreading levels plus the
//! code-reorganization penalty.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table5 [--scale tiny|small|full] [--jobs N]`

use mtsim_bench::report::mt_table_text;
use mtsim_bench::{experiments, jobs_from_args, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 5: explicit-switch — multithreading needed per efficiency (scale {scale:?})\n");
    let penalties = experiments::reorganization_penalty(scale);
    let rows = experiments::mt_table(scale, SwitchModel::ExplicitSwitch, jobs_from_args());
    let cells = rows
        .iter()
        .map(|row| {
            let pen = penalties.iter().find(|(a, _)| *a == row.app).map(|&(_, p)| p).unwrap_or(0.0);
            format!("{:+.1}%", pen * 100.0)
        })
        .collect();
    print!("{}", mt_table_text(&rows, Some(("penalty", cells))));
    println!("\n(paper: all apps except locus reach 70%+ with T<=14; penalty a few percent)");
}
