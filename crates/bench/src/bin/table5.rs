//! Regenerates Table 5: explicit-switch multithreading levels plus the
//! code-reorganization penalty.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table5 [--scale tiny|small|full]`

use mtsim_bench::report::{level, TextTable};
use mtsim_bench::{experiments, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 5: explicit-switch — multithreading needed per efficiency (scale {scale:?})\n");
    let penalties = experiments::reorganization_penalty(scale);
    let mut t = TextTable::new(["app (procs)", "50%", "60%", "70%", "80%", "90%", "penalty"]);
    for row in experiments::mt_table(scale, SwitchModel::ExplicitSwitch) {
        let pen = penalties.iter().find(|(a, _)| *a == row.app).map(|&(_, p)| p).unwrap_or(0.0);
        t.row(
            std::iter::once(format!("{} ({})", row.app.name(), row.procs))
                .chain(row.needed.iter().map(|&n| level(n)))
                .chain(std::iter::once(format!("{:+.1}%", pen * 100.0))),
        );
    }
    print!("{}", t.render());
    println!("\n(paper: all apps except locus reach 70%+ with T<=14; penalty a few percent)");
}
