//! Regenerates Table 5: explicit-switch multithreading levels plus the
//! code-reorganization penalty.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table5 [--scale tiny|small|full] [--jobs N]`

use mtsim_bench::{jobs_from_args, scale_from_args, tables};

fn main() {
    print!("{}", tables::table5_text(scale_from_args(), jobs_from_args()));
}
