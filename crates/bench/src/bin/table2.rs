//! Regenerates Table 2: run-length distributions under the
//! switch-on-load model.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table2 [--scale tiny|small|full]`

use mtsim_bench::report::run_length_text;
use mtsim_bench::{experiments, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 2: run-lengths between context switches, switch-on-load (scale {scale:?})\n");
    let rows = experiments::run_length_table(scale, SwitchModel::SwitchOnLoad);
    let runs = rows.iter().map(|r| r.hist.count().to_string()).collect();
    print!("{}", run_length_text(&rows, ("runs", runs)));
    println!(
        "\n(paper: sor 39% ones + 39% twos; blkmat exceptionally long mean; locus/mp3d short)"
    );
}
