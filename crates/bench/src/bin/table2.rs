//! Regenerates Table 2: run-length distributions under the
//! switch-on-load model.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table2 [--scale tiny|small|full]`

use mtsim_bench::{scale_from_args, tables};

fn main() {
    print!("{}", tables::table2_text(scale_from_args()));
}
