//! Regenerates Table 2: run-length distributions under the
//! switch-on-load model.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table2 [--scale tiny|small|full]`

use mtsim_bench::report::{pct, TextTable};
use mtsim_bench::{experiments, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 2: run-lengths between context switches, switch-on-load (scale {scale:?})\n");
    let mut t = TextTable::new(["app", "mean", "%1", "%2", "%3-4", "%5-8", "%9-16", "runs"]);
    for row in experiments::run_length_table(scale, SwitchModel::SwitchOnLoad) {
        t.row([
            row.app.name().to_string(),
            format!("{:.1}", row.hist.mean()),
            pct(row.hist.fraction_at(1)),
            pct(row.hist.fraction_at(2)),
            pct(row.hist.fraction_at(3)),
            pct(row.hist.fraction_at(5)),
            pct(row.hist.fraction_at(9)),
            row.hist.count().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(paper: sor 39% ones + 39% twos; blkmat exceptionally long mean; locus/mp3d short)"
    );
}
