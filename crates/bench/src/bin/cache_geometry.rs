//! Cache-geometry ablation: the paper never states its cache geometry
//! (the §6 text is partially illegible), so DESIGN.md picks a default and
//! this binary sweeps alternatives by replaying each application's
//! shared-access trace — no re-simulation needed.
//!
//! The per-app trace collection runs are independent, so they fan out on
//! the sweep crate's work-stealing pool; results are merged back in
//! Table 1 order.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin cache_geometry [--scale tiny|small|full] [--jobs N]`

use mtsim_apps::{build_app, AppKind};
use mtsim_bench::report::{pct, TextTable};
use mtsim_bench::{jobs_from_args, scale_from_args};
use mtsim_core::{Machine, MachineConfig, SwitchModel};
use mtsim_mem::CacheParams;
use mtsim_sweep::{default_workers, run_jobs};
use mtsim_trace::CacheSweep;

fn main() {
    let scale = scale_from_args();
    let procs = 4;
    let grid = [
        CacheParams { lines: 64, line_words: 4 },   // 2 KB
        CacheParams { lines: 256, line_words: 4 },  // 8 KB
        CacheParams { lines: 512, line_words: 4 },  // 16 KB (default)
        CacheParams { lines: 512, line_words: 8 },  // 32 KB, long lines
        CacheParams { lines: 2048, line_words: 4 }, // 64 KB
    ];
    println!("Cache-geometry sweep, trace replay (scale {scale:?})\n");
    let mut t = TextTable::new(std::iter::once("app".to_string()).chain(
        grid.iter().map(|g| format!("{}KB/{}w", g.capacity_words() * 8 / 1024, g.line_words)),
    ));
    let workers = jobs_from_args().unwrap_or_else(default_workers);
    let hit_rates = run_jobs(AppKind::ALL.to_vec(), workers, |_, &kind| {
        let app = build_app(kind, scale, procs * 2);
        let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, procs, 2).with_trace(true);
        let fin = Machine::new(cfg, &app.program, app.shared.clone()).run().expect("run");
        let trace = fin.result.trace.expect("trace");
        let sweep = CacheSweep::new(&trace, procs);
        sweep.run_all(&grid).iter().map(|pt| pt.stats.hit_rate()).collect::<Vec<f64>>()
    });
    for (kind, rates) in hit_rates {
        let rates = rates.expect("trace replay job");
        t.row(std::iter::once(kind.name().to_string()).chain(rates.into_iter().map(pct)));
    }
    print!("{}", t.render());
    println!("\n(hit rates under write-through/invalidate replay; mp3d stays low at any size)");
}
