//! Cache-geometry ablation: the paper never states its cache geometry
//! (the §6 text is partially illegible), so DESIGN.md picks a default and
//! this binary sweeps alternatives by replaying each application's
//! shared-access trace — no re-simulation needed.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin cache_geometry [--scale tiny|small|full]`

use mtsim_apps::{build_app, AppKind};
use mtsim_bench::report::{pct, TextTable};
use mtsim_bench::scale_from_args;
use mtsim_core::{Machine, MachineConfig, SwitchModel};
use mtsim_mem::CacheParams;
use mtsim_trace::CacheSweep;

fn main() {
    let scale = scale_from_args();
    let procs = 4;
    let grid = [
        CacheParams { lines: 64, line_words: 4 },   // 2 KB
        CacheParams { lines: 256, line_words: 4 },  // 8 KB
        CacheParams { lines: 512, line_words: 4 },  // 16 KB (default)
        CacheParams { lines: 512, line_words: 8 },  // 32 KB, long lines
        CacheParams { lines: 2048, line_words: 4 }, // 64 KB
    ];
    println!("Cache-geometry sweep, trace replay (scale {scale:?})\n");
    let mut t = TextTable::new(std::iter::once("app".to_string()).chain(
        grid.iter().map(|g| format!("{}KB/{}w", g.capacity_words() * 8 / 1024, g.line_words)),
    ));
    for kind in AppKind::ALL {
        let app = build_app(kind, scale, procs * 2);
        let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, procs, 2).with_trace(true);
        let fin = Machine::new(cfg, &app.program, app.shared.clone()).run().expect("run");
        let trace = fin.result.trace.expect("trace");
        let sweep = CacheSweep::new(&trace, procs);
        t.row(
            std::iter::once(kind.name().to_string())
                .chain(sweep.run_all(&grid).iter().map(|pt| pct(pt.stats.hit_rate()))),
        );
    }
    print!("{}", t.render());
    println!("\n(hit rates under write-through/invalidate replay; mp3d stays low at any size)");
}
