//! Regenerates Table 4: run-length distributions after grouping
//! (explicit-switch model), with the grouping factor.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table4 [--scale tiny|small|full]`

use mtsim_bench::{scale_from_args, tables};

fn main() {
    print!("{}", tables::table4_text(scale_from_args()));
}
