//! Regenerates Table 4: run-length distributions after grouping
//! (explicit-switch model), with the grouping factor.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table4 [--scale tiny|small|full]`

use mtsim_bench::report::run_length_text;
use mtsim_bench::{experiments, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 4: run-lengths after grouping, explicit-switch (scale {scale:?})\n");
    let rows = experiments::run_length_table(scale, SwitchModel::ExplicitSwitch);
    let grouping = rows.iter().map(|r| format!("{:.2}", r.grouping)).collect();
    print!("{}", run_length_text(&rows, ("grouping", grouping)));
    println!("\n(paper: sor and water benefit most; short runs eliminated; locus barely grouped at 1.05)");
}
