//! Regenerates Table 4: run-length distributions after grouping
//! (explicit-switch model), with the grouping factor.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table4 [--scale tiny|small|full]`

use mtsim_bench::report::{pct, TextTable};
use mtsim_bench::{experiments, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 4: run-lengths after grouping, explicit-switch (scale {scale:?})\n");
    let mut t = TextTable::new(["app", "mean", "%1", "%2", "%3-4", "%5-8", "%9-16", "grouping"]);
    for row in experiments::run_length_table(scale, SwitchModel::ExplicitSwitch) {
        t.row([
            row.app.name().to_string(),
            format!("{:.1}", row.hist.mean()),
            pct(row.hist.fraction_at(1)),
            pct(row.hist.fraction_at(2)),
            pct(row.hist.fraction_at(3)),
            pct(row.hist.fraction_at(5)),
            pct(row.hist.fraction_at(9)),
            format!("{:.2}", row.grouping),
        ]);
    }
    print!("{}", t.render());
    println!("\n(paper: sor and water benefit most; short runs eliminated; locus barely grouped at 1.05)");
}
