//! §6.2 ablation: the conditional-switch forced-switch interval on ugray
//! (long cache-hit runs starve lock holders without it).
//!
//! Usage: `cargo run --release -p mtsim-bench --bin ablation [--scale tiny|small|full]`

use mtsim_bench::report::TextTable;
use mtsim_bench::{experiments, scale_from_args};

fn main() {
    let scale = scale_from_args();
    println!("Section 6.2 ablation: ugray, conditional-switch forced-switch interval (scale {scale:?})\n");
    let settings = [None, Some(1000), Some(400), Some(200), Some(100)];
    let mut t = TextTable::new(["max_run", "cycles", "forced switches", "mean run-length"]);
    for row in experiments::max_run_ablation(scale, &settings) {
        match row.outcome {
            Some((cycles, forced, mean)) => t.row([
                row.max_run.map_or("off".to_string(), |m| m.to_string()),
                cycles.to_string(),
                forced.to_string(),
                format!("{mean:.1}"),
            ]),
            None => t.row([
                row.max_run.map_or("off".to_string(), |m| m.to_string()),
                "LIVELOCK".to_string(),
                "-".to_string(),
                "- (spinner starves the lock holder)".to_string(),
            ]),
        };
    }
    print!("{}", t.render());
    println!("\n(paper: the 200-cycle flag bounds runs so lock holders are rescheduled promptly)");
}
