//! Regenerates Figure 4: the sor inner loop before and after the grouping
//! optimization (full program listings; the five-load group is in the
//! innermost block, closed by a single `switch`).
//!
//! Usage: `cargo run --release -p mtsim-bench --bin fig4`

use mtsim_bench::experiments;

fn main() {
    let (orig, grouped) = experiments::fig4();
    println!("Figure 4(a): sor as compiled (loads issued one at a time)\n");
    println!("{orig}");
    println!("Figure 4(b): after grouping (loads issued together, one switch)\n");
    println!("{grouped}");
}
