//! The title claim: how efficiency degrades as the memory round trip grows
//! from 50 to 800 cycles, per model, at a fixed multithreading level.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin latency [--scale tiny|small|full] [--jobs N]`

use mtsim_apps::AppKind;
use mtsim_bench::experiments::{latency_sweep, LATENCY_MODELS};
use mtsim_bench::report::{pct, TextTable};
use mtsim_bench::{jobs_from_args, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let (procs, t) = (2, 8);
    println!("Latency tolerance: ugray, {procs} procs x {t} threads (scale {scale:?})\n");
    let mut table = TextTable::new(
        std::iter::once("latency".to_string()).chain(LATENCY_MODELS.iter().map(|m| m.to_string())),
    );
    let rows =
        latency_sweep(AppKind::Ugray, scale, procs, t, &[50, 100, 200, 400, 800], jobs_from_args());
    for row in rows {
        table.row(
            std::iter::once(row.latency.to_string()).chain(row.efficiency.iter().map(|&e| pct(e))),
        );
    }
    print!("{}", table.render());
    println!("\n(paper: grouping lets a small thread count tolerate hundreds of cycles)");
}
