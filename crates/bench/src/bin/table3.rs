//! Regenerates Table 3: multithreading level needed per efficiency target
//! under the switch-on-load model.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table3 [--scale tiny|small|full] [--jobs N]`

use mtsim_bench::{jobs_from_args, scale_from_args, tables};

fn main() {
    print!("{}", tables::table3_text(scale_from_args(), jobs_from_args()));
}
