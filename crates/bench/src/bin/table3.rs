//! Regenerates Table 3: multithreading level needed per efficiency target
//! under the switch-on-load model.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table3 [--scale tiny|small|full] [--jobs N]`

use mtsim_bench::report::mt_table_text;
use mtsim_bench::{experiments, jobs_from_args, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 3: switch-on-load — multithreading needed per efficiency (scale {scale:?})\n");
    let rows = experiments::mt_table(scale, SwitchModel::SwitchOnLoad, jobs_from_args());
    print!("{}", mt_table_text(&rows, None));
    println!("\n(paper: sieve reaches 90% at T=11; sor and ugray plateau near 60%)");
}
