//! Regenerates Table 3: multithreading level needed per efficiency target
//! under the switch-on-load model.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table3 [--scale tiny|small|full]`

use mtsim_bench::report::{level, TextTable};
use mtsim_bench::{experiments, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!("Table 3: switch-on-load — multithreading needed per efficiency (scale {scale:?})\n");
    let mut t = TextTable::new(["app (procs)", "50%", "60%", "70%", "80%", "90%"]);
    for row in experiments::mt_table(scale, SwitchModel::SwitchOnLoad) {
        t.row(
            std::iter::once(format!("{} ({})", row.app.name(), row.procs))
                .chain(row.needed.iter().map(|&n| level(n))),
        );
    }
    print!("{}", t.render());
    println!("\n(paper: sieve reaches 90% at T=11; sor and ugray plateau near 60%)");
}
