//! Bandwidth burstiness: §6.1 warns that "traffic will be bursty and have
//! periods of higher bandwidth requirements" than the run average. This
//! binary quantifies it: mean vs. peak windowed bits/cycle per
//! application.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin burstiness [--scale tiny|small|full]`

use mtsim_apps::{build_app, AppKind};
use mtsim_bench::report::TextTable;
use mtsim_bench::scale_from_args;
use mtsim_core::{Machine, MachineConfig, SwitchModel};
use mtsim_trace::BandwidthProfile;

fn main() {
    let scale = scale_from_args();
    let procs = 4;
    println!("Bandwidth burstiness, explicit-switch, 200-cycle windows (scale {scale:?})\n");
    let mut t = TextTable::new(["app", "mean b/c", "peak b/c", "peak/mean"]);
    for kind in AppKind::ALL {
        let app = build_app(kind, scale, procs * 2);
        let cfg = MachineConfig::new(SwitchModel::ExplicitSwitch, procs, 2).with_trace(true);
        let fin = Machine::new(cfg, &app.grouped().0, app.shared.clone()).run().expect("run");
        let trace = fin.result.trace.expect("trace");
        let profile = BandwidthProfile::new(&trace, 200, procs as u64);
        t.row([
            kind.name().to_string(),
            format!("{:.2}", profile.mean_bits_per_cycle()),
            format!("{:.2}", profile.peak_bits_per_cycle()),
            format!("{:.1}x", profile.burstiness()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(the paper's channel-width caveat, quantified: peak demand is several times the mean)"
    );
}
