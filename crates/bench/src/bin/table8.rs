//! Regenerates Table 8: conditional-switch multithreading levels.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table8 [--scale tiny|small|full]`

use mtsim_bench::report::{level, TextTable};
use mtsim_bench::{experiments, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!(
        "Table 8: conditional-switch — multithreading needed per efficiency (scale {scale:?})\n"
    );
    let mut t = TextTable::new(["app (procs)", "50%", "60%", "70%", "80%", "90%"]);
    for row in experiments::mt_table(scale, SwitchModel::ConditionalSwitch) {
        t.row(
            std::iter::once(format!("{} ({})", row.app.name(), row.procs))
                .chain(row.needed.iter().map(|&n| level(n))),
        );
    }
    print!("{}", t.render());
    println!("\n(paper: 80%+ efficiency with 6 or fewer threads for the cache-friendly apps)");
}
