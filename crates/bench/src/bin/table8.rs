//! Regenerates Table 8: conditional-switch multithreading levels.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table8 [--scale tiny|small|full] [--jobs N]`

use mtsim_bench::{jobs_from_args, scale_from_args, tables};

fn main() {
    print!("{}", tables::table8_text(scale_from_args(), jobs_from_args()));
}
