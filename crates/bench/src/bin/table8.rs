//! Regenerates Table 8: conditional-switch multithreading levels.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table8 [--scale tiny|small|full] [--jobs N]`

use mtsim_bench::report::mt_table_text;
use mtsim_bench::{experiments, jobs_from_args, scale_from_args};
use mtsim_core::SwitchModel;

fn main() {
    let scale = scale_from_args();
    println!(
        "Table 8: conditional-switch — multithreading needed per efficiency (scale {scale:?})\n"
    );
    let rows = experiments::mt_table(scale, SwitchModel::ConditionalSwitch, jobs_from_args());
    print!("{}", mt_table_text(&rows, None));
    println!("\n(paper: 80%+ efficiency with 6 or fewer threads for the cache-friendly apps)");
}
