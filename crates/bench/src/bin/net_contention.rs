//! Network saturation curves: the mean modeled round-trip latency per
//! topology as offered load (threads per processor) grows, per switch
//! model. The `constant` column is the paper's contention-free control —
//! it simulates no network and must reproduce the plain-machine numbers.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin net_contention [--scale tiny|small|full] [--jobs N]`

use mtsim_apps::AppKind;
use mtsim_bench::experiments::{net_contention, NetCurve, NET_MODELS};
use mtsim_bench::report::TextTable;
use mtsim_bench::{jobs_from_args, scale_from_args};
use mtsim_core::Topology;

fn label(c: &NetCurve) -> String {
    if c.combining {
        format!("{}+comb", c.topology)
    } else {
        c.topology.to_string()
    }
}

fn main() {
    let scale = scale_from_args();
    let procs = 4;
    let ts = [1, 2, 4, 8];
    println!(
        "Network contention: ugray, {procs} procs, L=200, load axis T={ts:?} (scale {scale:?})"
    );
    let curves = net_contention(AppKind::Ugray, scale, procs, &ts, jobs_from_args());

    for &model in &NET_MODELS {
        let cs: Vec<&NetCurve> = curves.iter().filter(|c| c.model == model).collect();
        println!("\n{model} — mean modeled round trip (cycles), '-' = no network simulated:");
        let mut table =
            TextTable::new(std::iter::once("T".to_string()).chain(cs.iter().map(|c| label(c))));
        for (i, &t) in ts.iter().enumerate() {
            table.row(std::iter::once(t.to_string()).chain(cs.iter().map(|c| {
                let p = c.points[i];
                if c.topology == Topology::Constant {
                    "-".to_string()
                } else {
                    format!("{:.1}", p.net_mean_latency)
                }
            })));
        }
        print!("{}", table.render());

        println!("{model} — wall-clock cycles:");
        let mut table =
            TextTable::new(std::iter::once("T".to_string()).chain(cs.iter().map(|c| label(c))));
        for (i, &t) in ts.iter().enumerate() {
            table.row(
                std::iter::once(t.to_string())
                    .chain(cs.iter().map(|c| c.points[i].cycles.to_string())),
            );
        }
        print!("{}", table.render());

        // The acceptance claim: modeled latency must rise with offered
        // load on the multi-hop topologies.
        for c in &cs {
            if matches!(c.topology, Topology::Mesh | Topology::Butterfly) && !c.combining {
                let first = c.points.first().expect("points").net_mean_latency;
                let last = c.points.last().expect("points").net_mean_latency;
                assert!(
                    last > first,
                    "{model}/{}: latency failed to rise with load ({first:.1} -> {last:.1})",
                    c.topology
                );
            }
        }
    }
    println!("\n(mesh/butterfly latency rises with load; combining flattens the F&A hot spot)");
}
