//! Regenerates the §6.1 table: cache hit rates and network bandwidth
//! demand with and without caching.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table7 [--scale tiny|small|full]`

use mtsim_bench::report::{pct, TextTable};
use mtsim_bench::{experiments, scale_from_args};

fn main() {
    let scale = scale_from_args();
    println!(
        "Section 6.1: bandwidth demand (bits/cycle/processor) and hit rates (scale {scale:?})\n"
    );
    let mut t =
        TextTable::new(["app", "uncached b/c", "hit rate", "cached b/c", "inval msgs/kcycle"]);
    for row in experiments::table7(scale) {
        t.row([
            row.app.name().to_string(),
            format!("{:.2}", row.uncached_bits_per_cycle),
            pct(row.hit_rate),
            format!("{:.2}", row.cached_bits_per_cycle),
            format!("{:.2}", row.invalidations_per_kcycle),
        ]);
    }
    print!("{}", t.render());
    println!("\n(paper: >90% hits and <4.0 bits/cycle for every app except mp3d)");
}
