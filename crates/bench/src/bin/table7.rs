//! Regenerates the §6.1 table: cache hit rates and network bandwidth
//! demand with and without caching.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table7 [--scale tiny|small|full]`

use mtsim_bench::{scale_from_args, tables};

fn main() {
    print!("{}", tables::table7_text(scale_from_args()));
}
