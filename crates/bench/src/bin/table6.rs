//! Regenerates Table 6 (§5.2): inter-block grouping potential estimated
//! with the one-line 32-word per-thread cache, and the revised
//! multithreading figures.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table6 [--scale tiny|small|full]`

use mtsim_bench::report::{level, pct, TextTable};
use mtsim_bench::{experiments, scale_from_args};

fn main() {
    let scale = scale_from_args();
    println!("Table 6: inter-block grouping estimate, explicit-switch (scale {scale:?})\n");
    let mut t = TextTable::new([
        "app",
        "1-line hits",
        "grouping",
        "revised",
        "50%",
        "60%",
        "70%",
        "80%",
        "90%",
    ]);
    for row in experiments::table6(scale) {
        t.row(
            [
                row.app.name().to_string(),
                pct(row.one_line_hit_rate),
                format!("{:.2}", row.grouping_before),
                format!("{:.2}", row.grouping_after),
            ]
            .into_iter()
            .chain(row.needed.iter().map(|&n| level(n))),
        );
    }
    print!("{}", t.render());
    println!("\n(paper: ugray 42% hits, grouping 1.3 -> 1.9; locus 84% hits, 1.05 -> 6.6)");
}
