//! Regenerates Table 6 (§5.2): inter-block grouping potential estimated
//! with the one-line 32-word per-thread cache, and the revised
//! multithreading figures.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin table6 [--scale tiny|small|full]`

use mtsim_bench::{scale_from_args, tables};

fn main() {
    print!("{}", tables::table6_text(scale_from_args()));
}
