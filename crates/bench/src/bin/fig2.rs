//! Regenerates Figure 2: efficiency vs processors on the ideal (zero
//! latency) shared-memory machine.
//!
//! Usage: `cargo run --release -p mtsim-bench --bin fig2 [--scale tiny|small|full]`

use mtsim_apps::Scale;
use mtsim_bench::report::{pct, TextTable};
use mtsim_bench::{experiments, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let procs: &[usize] = match scale {
        Scale::Tiny => &[1, 2, 4, 8],
        Scale::Small => &[1, 2, 4, 8, 16, 32],
        Scale::Full => &[1, 2, 4, 8, 16, 32, 64, 128],
    };
    println!("Figure 2: efficiency on an ideal shared-memory machine (scale {scale:?})\n");
    let mut t = TextTable::new(
        std::iter::once("app".to_string()).chain(procs.iter().map(|p| format!("P={p}"))),
    );
    for (app, pts) in experiments::fig2(scale, procs) {
        t.row(
            std::iter::once(app.name().to_string()).chain(pts.iter().map(|pt| pct(pt.efficiency))),
        );
    }
    print!("{}", t.render());
    println!(
        "\n(paper: fixed-size efficiency decays with P; water is erratic under its static balance)"
    );
}
