//! # mtsim-bench
//!
//! The evaluation harness: one function per table/figure of Boothe &
//! Ranade (ISCA 1992), each with a `--bin` that prints the paper-style
//! rows (see `src/bin/`) and a Criterion bench that exercises the same
//! code path at reduced scale.
//!
//! | paper artifact | function | binary |
//! |---|---|---|
//! | Table 1 (applications) | [`experiments::table1`] | `table1` |
//! | Figure 2 (ideal efficiency) | [`experiments::fig2`] | `fig2` |
//! | Table 2 (run-lengths, switch-on-load) | [`experiments::run_length_table`] | `table2` |
//! | Figure 3 (sieve multithreading) | [`experiments::fig3`] | `fig3` |
//! | Figure 4 (sor grouping listings) | [`experiments::fig4`] | `fig4` |
//! | Table 3 (switch-on-load MT levels) | [`experiments::mt_table`] | `table3` |
//! | Table 4 (run-lengths after grouping) | [`experiments::run_length_table`] | `table4` |
//! | Table 5 (explicit-switch MT levels + penalty) | [`experiments::mt_table`], [`experiments::reorganization_penalty`] | `table5` |
//! | Table 6 (inter-block grouping estimate) | [`experiments::table6`] | `table6` |
//! | §6.1 bandwidth/hit-rate table | [`experiments::table7`] | `table7` |
//! | Table 8 (conditional-switch MT levels) | [`experiments::mt_table`] | `table8` |
//! | §6.2 forced-switch ablation | [`experiments::max_run_ablation`] | `ablation` |

pub mod experiments;
pub mod report;
pub mod tables;

use mtsim_apps::Scale;

/// Parses `--scale tiny|small|full` from command-line arguments
/// (default `small`).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--scale" {
            return Scale::from_name(&w[1])
                .unwrap_or_else(|| panic!("unknown scale '{}' (expected tiny|small|full)", w[1]));
        }
    }
    Scale::Small
}

/// Parses `--jobs N` from command-line arguments. `None` (flag absent)
/// lets the sweep engine pick its default (`MTSIM_JOBS` or the machine's
/// available parallelism).
pub fn jobs_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--jobs" {
            let n: usize = w[1]
                .parse()
                .unwrap_or_else(|_| panic!("bad --jobs value '{}' (expected a count)", w[1]));
            assert!(n >= 1, "--jobs must be >= 1");
            return Some(n);
        }
    }
    None
}
