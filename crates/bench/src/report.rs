//! Plain-text table rendering for the experiment binaries.

/// A simple aligned-column text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut TextTable {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for c in 0..cols {
            width[c] = self.header[c].len();
            for r in &self.rows {
                width[c] = width[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], width: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..width[c] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &width, &mut out);
        }
        out
    }
}

/// Formats an efficiency as a percentage with no decimals.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Formats an `Option<usize>` multithreading level (`-` when the target
/// was not reached, as in the paper's tables).
pub fn level(x: Option<usize>) -> String {
    match x {
        Some(t) => t.to_string(),
        None => "-".to_string(),
    }
}

/// Renders a multithreading-level table (Tables 3, 5 and 8 share this
/// layout): `app (procs)` then one column per efficiency target, plus an
/// optional extra column given as `(header, one cell per row)`.
pub fn mt_table_text(
    rows: &[crate::experiments::MtRow],
    extra: Option<(&str, Vec<String>)>,
) -> String {
    let mut header: Vec<String> = std::iter::once("app (procs)".to_string())
        .chain(crate::experiments::TARGETS.iter().map(|t| pct(*t)))
        .collect();
    if let Some((name, cells)) = &extra {
        assert_eq!(cells.len(), rows.len(), "extra column arity mismatch");
        header.push((*name).to_string());
    }
    let mut t = TextTable::new(header);
    for (i, row) in rows.iter().enumerate() {
        let mut cells: Vec<String> = std::iter::once(format!("{} ({})", row.app, row.procs))
            .chain(row.needed.iter().map(|&n| level(n)))
            .collect();
        if let Some((_, extra_cells)) = &extra {
            cells.push(extra_cells[i].clone());
        }
        t.row(cells);
    }
    t.render()
}

/// Renders a run-length-distribution table (Tables 2 and 4 share this
/// layout): mean, bucket percentages, then one table-specific last column
/// given as `(header, one cell per row)`.
pub fn run_length_text(
    rows: &[crate::experiments::RunLenRow],
    last: (&str, Vec<String>),
) -> String {
    let (last_header, last_cells) = last;
    assert_eq!(last_cells.len(), rows.len(), "last column arity mismatch");
    let mut t = TextTable::new(["app", "mean", "%1", "%2", "%3-4", "%5-8", "%9-16", last_header]);
    for (row, last_cell) in rows.iter().zip(last_cells) {
        t.row([
            row.app.name().to_string(),
            format!("{:.1}", row.hist.mean()),
            pct(row.hist.fraction_at(1)),
            pct(row.hist.fraction_at(2)),
            pct(row.hist.fraction_at(3)),
            pct(row.hist.fraction_at(5)),
            pct(row.hist.fraction_at(9)),
            last_cell,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["app", "mean"]);
        t.row(["sieve", "36.2"]);
        t.row(["blkmat", "120.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("blkmat"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.805), "80%");
        assert_eq!(level(Some(7)), "7");
        assert_eq!(level(None), "-");
    }
}
