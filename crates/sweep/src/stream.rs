//! Durable append-only result streaming (DESIGN.md §18).
//!
//! A [`StreamWriter`] owns the `<out>.jsonl` checkpoint file. It writes
//! the sealed header when a sweep starts, appends one sealed record per
//! completed job, and calls `fdatasync` after every line — the whole
//! point is that a kill at any instant leaves at most one torn (and
//! therefore detectably incomplete) record, never a silently missing or
//! silently wrong one.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};

use crate::checkpoint::{header_line, record_line, Checkpoint, SweepError};
use crate::results::JobOutcome;

/// Appends sealed checkpoint lines to a sweep's `.jsonl` stream.
#[derive(Debug)]
pub struct StreamWriter {
    file: File,
    path: String,
    seq: u64,
}

impl StreamWriter {
    /// Starts a fresh stream: truncates `path`, writes the header line
    /// binding the stream to `spec_hash` and the grid size, and syncs it.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when the file cannot be created or written.
    pub fn create(path: &str, spec_hash: u64, total: usize) -> Result<StreamWriter, SweepError> {
        let file = File::create(path).map_err(|e| io_err(path, "create checkpoint", &e))?;
        // The header occupies sequence 0; job records start at 1.
        let mut w = StreamWriter { file, path: path.to_string(), seq: 1 };
        w.write_line(&header_line(spec_hash, total))?;
        Ok(w)
    }

    /// Reopens an existing stream for a resumed sweep. The file is
    /// truncated to the checkpoint's valid prefix first — a torn tail
    /// left by a mid-append crash must not have fresh records appended
    /// onto it — and the sequence counter continues past the highest
    /// persisted record.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when the file cannot be opened, truncated, or
    /// positioned.
    pub fn reopen(path: &str, ckpt: &Checkpoint) -> Result<StreamWriter, SweepError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "reopen checkpoint", &e))?;
        file.set_len(ckpt.valid_bytes).map_err(|e| io_err(path, "truncate torn tail of", &e))?;
        file.seek(SeekFrom::Start(ckpt.valid_bytes)).map_err(|e| io_err(path, "seek in", &e))?;
        let seq = ckpt.records.values().map(|r| r.seq + 1).max().unwrap_or(1);
        Ok(StreamWriter { file, path: path.to_string(), seq })
    }

    /// Appends one job record and syncs it to disk.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when the write or sync fails; the caller aborts
    /// the sweep rather than continue with a checkpoint that lies.
    pub fn append(&mut self, outcome: &JobOutcome) -> Result<(), SweepError> {
        let line = record_line(self.seq, outcome);
        self.write_line(&line)?;
        self.seq += 1;
        Ok(())
    }

    /// The stream's path (for messages).
    pub fn path(&self) -> &str {
        &self.path
    }

    fn write_line(&mut self, line: &str) -> Result<(), SweepError> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.file
            .write_all(&bytes)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&self.path, "append to checkpoint", &e))
    }
}

fn io_err(path: &str, op: &'static str, e: &std::io::Error) -> SweepError {
    SweepError::Io { path: path.to_string(), op, detail: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{load_checkpoint, spec_hash};
    use crate::spec::SweepSpec;

    fn temp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("mtsim-stream-{}-{name}.jsonl", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn header_and_records_roundtrip_through_the_loader() {
        let spec = SweepSpec::default();
        let jobs = spec.expand();
        let hash = spec_hash(&spec);
        let path = temp("roundtrip");

        let mut w = StreamWriter::create(&path, hash, jobs.len()).unwrap();
        let outcome = JobOutcome::once(
            jobs[1],
            Err(crate::results::JobError::Verify { message: "word 3: got 9, want 7".into() }),
        );
        w.append(&outcome).unwrap();
        drop(w);

        let ckpt = load_checkpoint(&path).unwrap();
        assert_eq!(ckpt.spec_hash, hash);
        assert_eq!(ckpt.total, jobs.len());
        assert!(!ckpt.torn_tail);
        assert_eq!(ckpt.records.len(), 1);
        let rec = &ckpt.records[&1];
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.attempts, 1);
        assert!(!rec.quarantined);
        assert_eq!(rec.result.as_ref().unwrap_err().kind(), "verify");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_recoverable_and_reopen_truncates_it() {
        let spec = SweepSpec::default();
        let hash = spec_hash(&spec);
        let path = temp("torn");
        let mut w = StreamWriter::create(&path, hash, 2).unwrap();
        let jobs = spec.expand();
        w.append(&JobOutcome::once(
            jobs[0],
            Err(crate::results::JobError::Panic { message: "x".into() }),
        ))
        .unwrap();
        drop(w);

        // Simulate a kill mid-append: half a record, no newline.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(br#"{"crc":"0123456789abcdef","seq":1,"id":1,"atte"#);
        std::fs::write(&path, &bytes).unwrap();

        let ckpt = load_checkpoint(&path).unwrap();
        assert!(ckpt.torn_tail, "partial final line must read as a torn tail");
        assert_eq!(ckpt.valid_bytes, clean_len);
        assert_eq!(ckpt.records.len(), 1);

        // Reopen must drop the torn bytes before appending.
        let mut w = StreamWriter::reopen(&path, &ckpt).unwrap();
        w.append(&JobOutcome::once(
            jobs[1],
            Err(crate::results::JobError::Panic { message: "y".into() }),
        ))
        .unwrap();
        drop(w);
        let again = load_checkpoint(&path).unwrap();
        assert!(!again.torn_tail);
        assert_eq!(again.records.len(), 2);
        assert_eq!(again.records[&1].seq, 2, "sequence continues past persisted records");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn complete_but_corrupt_line_is_a_typed_error() {
        let spec = SweepSpec::default();
        let path = temp("corrupt");
        let mut w = StreamWriter::create(&path, spec_hash(&spec), 2).unwrap();
        w.append(&JobOutcome::once(
            spec.expand()[0],
            Err(crate::results::JobError::Panic { message: "x".into() }),
        ))
        .unwrap();
        drop(w);

        // Flip one byte inside the record body (keeping the newline): this
        // is corruption, not a torn tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        match load_checkpoint(&path) {
            Err(SweepError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
