//! JSON writing for sweep results.
//!
//! The hand-rolled [`JsonBuilder`] now lives in the dependency-free
//! `mtsim-obs` crate so the trace exporters can share it (the workspace
//! has a zero-external-dependency policy, DESIGN.md §9); this module
//! re-exports it to keep `mtsim_sweep::json::JsonBuilder` paths working.

pub use mtsim_obs::JsonBuilder;
