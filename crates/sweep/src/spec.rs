//! Declarative sweep specifications and their expansion into jobs.

use mtsim_apps::{AppKind, Scale};
use mtsim_core::{MachineConfig, NetworkConfig, SwitchModel, Topology};
use mtsim_mem::FaultConfig;

/// A declarative experiment grid: the cartesian product of every axis,
/// one job per point.
///
/// Axes the paper sweeps (DESIGN.md §7): application, switch model,
/// processor count `P`, multithreading level `T`, and round-trip latency
/// `L`. On top of those the fault-injection layer (§13) adds a seed axis
/// and a reply-drop-rate axis, so reliability experiments fit the same
/// grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Applications to run.
    pub apps: Vec<AppKind>,
    /// Context-switch models.
    pub models: Vec<SwitchModel>,
    /// Processor counts.
    pub procs: Vec<usize>,
    /// Multithreading levels (threads per processor).
    pub threads: Vec<usize>,
    /// Round-trip shared-memory latencies in cycles.
    pub latencies: Vec<u64>,
    /// Fault-schedule seeds. Ignored unless a drop rate is non-zero.
    pub seeds: Vec<u64>,
    /// Reply drop rates (0.0 disables fault injection for that point).
    pub drop_rates: Vec<f64>,
    /// Interconnection-network topologies (PR 4). `Constant` is the
    /// paper's contention-free pipe and simulates no network at all.
    pub nets: Vec<Topology>,
    /// Link bandwidth in bits/cycle for contention topologies.
    pub link_bw: u64,
    /// Whether switches combine concurrent fetch-and-adds (§ combining).
    pub combining: bool,
    /// Collect per-thread cycle attribution (observability, DESIGN.md
    /// §17) and append it to the result table. Off by default: the
    /// attributed run costs a few percent and the extra columns would
    /// perturb existing golden files.
    pub attr: bool,
    /// Workload scale preset.
    pub scale: Scale,
    /// Watchdog limit per job, in cycles.
    pub max_cycles: u64,
    /// Retry budget per shared request under fault injection.
    pub max_retries: u32,
}

/// Watchdog default: generous enough for every `Small`-scale table run.
pub const DEFAULT_MAX_CYCLES: u64 = 300_000_000;

impl Default for SweepSpec {
    fn default() -> SweepSpec {
        SweepSpec {
            apps: vec![AppKind::Sieve],
            models: vec![SwitchModel::SwitchOnLoad],
            procs: vec![2],
            threads: vec![1, 2],
            latencies: vec![200],
            seeds: vec![0],
            drop_rates: vec![0.0],
            nets: vec![Topology::Constant],
            link_bw: NetworkConfig::constant().link_bw,
            combining: false,
            attr: false,
            scale: Scale::Small,
            max_cycles: DEFAULT_MAX_CYCLES,
            max_retries: 8,
        }
    }
}

impl SweepSpec {
    /// Sets one axis or scalar from its spec-file/CLI key. Lists are
    /// comma-separated; integer axes also accept `LO-HI` ranges
    /// (`t = 1-8`); `apps`/`models` accept `all`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending key/value.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        let value = value.trim();
        match key {
            "apps" | "app" => {
                self.apps = if value == "all" {
                    AppKind::ALL.to_vec()
                } else {
                    value
                        .split(',')
                        .map(|s| {
                            AppKind::from_name(s.trim())
                                .ok_or_else(|| format!("unknown app {:?}", s.trim()))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "models" | "model" => {
                self.models = if value == "all" {
                    SwitchModel::ALL.to_vec()
                } else {
                    value
                        .split(',')
                        .map(|s| {
                            SwitchModel::from_name(s.trim())
                                .ok_or_else(|| format!("unknown model {:?}", s.trim()))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "p" | "procs" => self.procs = parse_usize_list(value).map_err(|e| ctx(key, &e))?,
            "t" | "threads" => self.threads = parse_usize_list(value).map_err(|e| ctx(key, &e))?,
            "latency" | "latencies" => {
                self.latencies = parse_u64_list(value).map_err(|e| ctx(key, &e))?
            }
            "seeds" | "seed" => self.seeds = parse_u64_list(value).map_err(|e| ctx(key, &e))?,
            "drop" | "drop-rates" | "drop_rates" => {
                self.drop_rates = value
                    .split(',')
                    .map(|s| {
                        s.trim().parse::<f64>().map_err(|_| ctx(key, &format!("bad float {s:?}")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "net" | "nets" => {
                self.nets = if value == "all" {
                    Topology::ALL.to_vec()
                } else {
                    value
                        .split(',')
                        .map(|s| {
                            Topology::from_name(s.trim())
                                .ok_or_else(|| format!("unknown topology {:?}", s.trim()))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "link-bw" | "link_bw" => {
                self.link_bw =
                    value.parse().map_err(|_| ctx(key, &format!("bad integer {value:?}")))?;
            }
            "combining" => {
                self.combining = match value {
                    "true" | "1" | "on" | "yes" => true,
                    "false" | "0" | "off" | "no" => false,
                    _ => return Err(ctx(key, &format!("bad boolean {value:?}"))),
                };
            }
            "attr" => {
                self.attr = match value {
                    "true" | "1" | "on" | "yes" => true,
                    "false" | "0" | "off" | "no" => false,
                    _ => return Err(ctx(key, &format!("bad boolean {value:?}"))),
                };
            }
            "scale" => {
                self.scale =
                    Scale::from_name(value).ok_or_else(|| format!("unknown scale {value:?}"))?;
            }
            "max-cycles" | "max_cycles" => {
                self.max_cycles =
                    value.parse().map_err(|_| ctx(key, &format!("bad integer {value:?}")))?;
            }
            "max-retries" | "max_retries" => {
                self.max_retries =
                    value.parse().map_err(|_| ctx(key, &format!("bad integer {value:?}")))?;
            }
            _ => return Err(format!("unknown sweep key {key:?}")),
        }
        Ok(())
    }

    /// Parses a spec file: one `key = value` per line, `#` comments and
    /// blank lines ignored. Keys are the same as [`SweepSpec::set`].
    ///
    /// # Errors
    ///
    /// Returns the first malformed line or unknown key/value.
    pub fn parse_file(text: &str) -> Result<SweepSpec, String> {
        let mut spec = SweepSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            spec.set(key.trim(), value.trim()).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        Ok(spec)
    }

    /// Checks every axis is non-empty and every value is in range.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the empty or invalid axis.
    pub fn validate(&self) -> Result<(), String> {
        for (name, empty) in [
            ("apps", self.apps.is_empty()),
            ("models", self.models.is_empty()),
            ("procs", self.procs.is_empty()),
            ("threads", self.threads.is_empty()),
            ("latencies", self.latencies.is_empty()),
            ("seeds", self.seeds.is_empty()),
            ("drop rates", self.drop_rates.is_empty()),
            ("nets", self.nets.is_empty()),
        ] {
            if empty {
                return Err(format!("sweep axis {name:?} is empty"));
            }
        }
        if self.procs.contains(&0) || self.threads.contains(&0) {
            return Err("processor and thread counts must be >= 1".into());
        }
        if self.drop_rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
            return Err("drop rates must lie in [0, 1]".into());
        }
        if self.link_bw == 0 {
            return Err("link bandwidth must be >= 1 bit/cycle".into());
        }
        Ok(())
    }

    /// Number of grid points without materializing them.
    pub fn len(&self) -> usize {
        self.apps.len()
            * self.models.len()
            * self.procs.len()
            * self.threads.len()
            * self.latencies.len()
            * self.seeds.len()
            * self.drop_rates.len()
            * self.nets.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A canonical, order-stable rendering of every field that shapes the
    /// grid or its results. Two specs produce byte-identical result
    /// tables iff their canonical forms are equal, so the checkpoint
    /// layer hashes this string to decide whether a resume is legal.
    ///
    /// The rendering is itself a valid spec file:
    /// `parse_file(canonical())` reproduces the spec exactly, which is
    /// how `mtsim serve` persists submitted sweeps for restart-resume.
    pub fn canonical(&self) -> String {
        fn list<T: std::fmt::Display>(items: &[T]) -> String {
            items.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
        }
        format!(
            "apps={}\nmodels={}\nprocs={}\nthreads={}\nlatencies={}\nseeds={}\n\
             drop_rates={}\nnets={}\nlink_bw={}\ncombining={}\nattr={}\nscale={}\n\
             max_cycles={}\nmax_retries={}\n",
            self.apps.iter().map(|a| a.name()).collect::<Vec<_>>().join(","),
            self.models.iter().map(|m| m.name()).collect::<Vec<_>>().join(","),
            list(&self.procs),
            list(&self.threads),
            list(&self.latencies),
            list(&self.seeds),
            list(&self.drop_rates),
            self.nets.iter().map(|n| n.name()).collect::<Vec<_>>().join(","),
            self.link_bw,
            self.combining,
            self.attr,
            self.scale.name(),
            self.max_cycles,
            self.max_retries,
        )
    }

    /// Expands the grid into concrete jobs in deterministic nested-axis
    /// order (app, model, P, T, latency, seed, drop rate, net), assigning
    /// sequential ids. The id — not submission or completion order — keys
    /// the result table, so the output is reproducible at any worker
    /// count.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.len());
        for &app in &self.apps {
            for &model in &self.models {
                for &procs in &self.procs {
                    for &threads_per_proc in &self.threads {
                        for &latency in &self.latencies {
                            for &seed in &self.seeds {
                                for &drop_rate in &self.drop_rates {
                                    for &net in &self.nets {
                                        jobs.push(JobSpec {
                                            id: jobs.len(),
                                            app,
                                            model,
                                            procs,
                                            threads_per_proc,
                                            latency,
                                            seed,
                                            drop_rate,
                                            net,
                                            link_bw: self.link_bw,
                                            combining: self.combining,
                                            attr: self.attr,
                                            scale: self.scale,
                                            max_cycles: self.max_cycles,
                                            max_retries: self.max_retries,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        jobs
    }
}

fn ctx(key: &str, e: &str) -> String {
    format!("key {key:?}: {e}")
}

fn parse_usize_list(value: &str) -> Result<Vec<usize>, String> {
    parse_u64_list(value).map(|v| v.into_iter().map(|n| n as usize).collect())
}

/// `"1,2,4"` and `"1-4"` (inclusive) both work, and mix: `"1,4-6"`.
fn parse_u64_list(value: &str) -> Result<Vec<u64>, String> {
    let mut out = Vec::new();
    for part in value.split(',') {
        let part = part.trim();
        if let Some((lo, hi)) = part.split_once('-') {
            let lo: u64 = lo.trim().parse().map_err(|_| format!("bad range {part:?}"))?;
            let hi: u64 = hi.trim().parse().map_err(|_| format!("bad range {part:?}"))?;
            if lo > hi {
                return Err(format!("empty range {part:?}"));
            }
            out.extend(lo..=hi);
        } else {
            out.push(part.parse().map_err(|_| format!("bad integer {part:?}"))?);
        }
    }
    Ok(out)
}

/// One fully-specified grid point, ready to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Position in the result table (assigned at expansion; callers
    /// building explicit job lists must keep ids unique).
    pub id: usize,
    /// Application.
    pub app: AppKind,
    /// Context-switch model.
    pub model: SwitchModel,
    /// Processors.
    pub procs: usize,
    /// Threads per processor.
    pub threads_per_proc: usize,
    /// Round-trip latency in cycles (forced to 0 under `Ideal`).
    pub latency: u64,
    /// Fault-schedule seed.
    pub seed: u64,
    /// Reply drop rate; 0.0 disables fault injection.
    pub drop_rate: f64,
    /// Interconnection-network topology (`Constant` = no network).
    pub net: Topology,
    /// Link bandwidth in bits/cycle for contention topologies.
    pub link_bw: u64,
    /// Whether switches combine concurrent fetch-and-adds.
    pub combining: bool,
    /// Collect per-thread cycle attribution for this point.
    pub attr: bool,
    /// Workload scale.
    pub scale: Scale,
    /// Watchdog limit in cycles.
    pub max_cycles: u64,
    /// Retry budget under fault injection.
    pub max_retries: u32,
}

impl JobSpec {
    /// Total threads the application image must be built for.
    pub fn nthreads(&self) -> usize {
        self.procs * self.threads_per_proc
    }

    /// The machine configuration for this point.
    pub fn config(&self) -> MachineConfig {
        let latency = if self.model == SwitchModel::Ideal { 0 } else { self.latency };
        let mut cfg =
            MachineConfig::new(self.model, self.procs, self.threads_per_proc).with_latency(latency);
        cfg.max_cycles = self.max_cycles;
        if self.drop_rate > 0.0 {
            cfg = cfg.with_faults(FaultConfig {
                seed: self.seed,
                drop_rate: self.drop_rate,
                max_retries: self.max_retries,
                ..FaultConfig::default()
            });
        }
        // Network simulation is meaningless on the zero-latency ideal
        // machine, so the grid quietly pins that cell to the constant pipe
        // (mirrors the latency override above).
        if self.model != SwitchModel::Ideal {
            let mut net = NetworkConfig::new(self.net);
            net.link_bw = self.link_bw;
            net.combining = self.combining;
            cfg = cfg.with_net(net);
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_expands_to_two_jobs_with_sequential_ids() {
        let jobs = SweepSpec::default().expand();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 0);
        assert_eq!(jobs[1].id, 1);
        assert_eq!(jobs[0].threads_per_proc, 1);
        assert_eq!(jobs[1].threads_per_proc, 2);
    }

    #[test]
    fn set_parses_lists_ranges_and_all() {
        let mut s = SweepSpec::default();
        s.set("apps", "sieve, sor").unwrap();
        assert_eq!(s.apps, vec![AppKind::Sieve, AppKind::Sor]);
        s.set("models", "all").unwrap();
        assert_eq!(s.models.len(), SwitchModel::ALL.len());
        s.set("t", "1,4-6").unwrap();
        assert_eq!(s.threads, vec![1, 4, 5, 6]);
        s.set("scale", "tiny").unwrap();
        assert_eq!(s.scale, Scale::Tiny);
        assert!(s.set("apps", "nonesuch").is_err());
        assert!(s.set("frobnicate", "1").is_err());
        assert!(s.set("t", "6-4").is_err());
    }

    #[test]
    fn parse_file_honors_comments_and_overrides() {
        let text = "# demo sweep\napps = sieve\nt = 1-3  # inline comment\n\nlatency = 50,100\n";
        let s = SweepSpec::parse_file(text).unwrap();
        assert_eq!(s.apps, vec![AppKind::Sieve]);
        assert_eq!(s.threads, vec![1, 2, 3]);
        assert_eq!(s.latencies, vec![50, 100]);
        assert!(SweepSpec::parse_file("no equals here").is_err());
    }

    #[test]
    fn canonical_form_round_trips_through_parse_file() {
        let mut s = SweepSpec::default();
        s.set("apps", "sieve,sor").unwrap();
        s.set("models", "all").unwrap();
        s.set("t", "1-3").unwrap();
        s.set("drop", "0,0.05").unwrap();
        s.set("net", "mesh").unwrap();
        s.set("link-bw", "8").unwrap();
        s.set("combining", "true").unwrap();
        s.set("attr", "true").unwrap();
        s.set("scale", "tiny").unwrap();
        s.set("max-cycles", "123456").unwrap();
        s.set("max-retries", "3").unwrap();
        let parsed = SweepSpec::parse_file(&s.canonical()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.canonical(), s.canonical());
    }

    #[test]
    fn validate_rejects_empty_and_out_of_range() {
        let mut s = SweepSpec::default();
        assert!(s.validate().is_ok());
        s.procs.clear();
        assert!(s.validate().is_err());
        let s = SweepSpec { threads: vec![0], ..SweepSpec::default() };
        assert!(s.validate().is_err());
        let s = SweepSpec { drop_rates: vec![1.5], ..SweepSpec::default() };
        assert!(s.validate().is_err());
    }

    #[test]
    fn net_axis_expands_and_wires_into_the_config() {
        let mut s = SweepSpec::default();
        s.set("net", "constant,mesh").unwrap();
        s.set("link-bw", "8").unwrap();
        s.set("combining", "true").unwrap();
        assert_eq!(s.len(), 4); // 2 threads × 2 nets
        let jobs = s.expand();
        assert_eq!(jobs[0].net, Topology::Constant);
        assert_eq!(jobs[1].net, Topology::Mesh);
        let cfg = jobs[1].config();
        assert_eq!(cfg.net.topology, Topology::Mesh);
        assert_eq!(cfg.net.link_bw, 8);
        assert!(cfg.net.combining);
        assert!(s.set("net", "torus").is_err());
        assert!(s.set("combining", "maybe").is_err());

        let mut s = SweepSpec::default();
        s.set("nets", "all").unwrap();
        assert_eq!(s.nets.len(), Topology::ALL.len());
    }

    #[test]
    fn ideal_machine_pins_the_net_axis_to_constant() {
        let spec = SweepSpec {
            models: vec![SwitchModel::Ideal],
            nets: vec![Topology::Butterfly],
            combining: true,
            ..SweepSpec::default()
        };
        let cfg = spec.expand()[0].config();
        assert!(!cfg.net.is_active(), "ideal machine must not simulate a network");
        assert!(cfg.try_validate().is_ok());
    }

    #[test]
    fn config_zeroes_latency_for_ideal_and_wires_faults() {
        let spec = SweepSpec {
            models: vec![SwitchModel::Ideal],
            drop_rates: vec![0.25],
            seeds: vec![7],
            ..SweepSpec::default()
        };
        let job = spec.expand()[0];
        let cfg = job.config();
        assert_eq!(cfg.latency, 0);
        assert!(cfg.fault.is_active());
        assert_eq!(cfg.fault.seed, 7);
    }
}
