//! Crash-safe checkpoint records for streaming sweeps (DESIGN.md §18).
//!
//! A streamed sweep appends one self-validating JSON line per completed
//! job to `<out>.jsonl`. Each line carries an FNV-1a checksum of its own
//! body, the file opens with a header line binding the stream to a hash
//! of the expanded [`SweepSpec`](crate::SweepSpec), and every append is
//! fsync'd — so after a panic, OOM kill, or ctrl-C the file is a durable
//! record of exactly which grid points finished.
//!
//! Recovery semantics are deliberately asymmetric:
//!
//! * A **torn tail** — a final line with no terminating `'\n'` — is the
//!   unique signature of a crash mid-append. The loader reports it, the
//!   resume path truncates it, and the interrupted job simply re-runs.
//! * Anything else — a checksum mismatch on a *complete* line, a
//!   malformed record, a missing or garbled header — is **corruption**
//!   and yields a typed [`SweepError`], never a panic and never a silent
//!   partial resume.
//! * A header whose spec hash differs from the spec being resumed is a
//!   [`SweepError::SpecMismatch`]: resuming a checkpoint against the
//!   wrong grid would silently fabricate results.

use std::collections::HashMap;

use mtsim_core::{AttrSummary, RunStats};

use crate::json::JsonBuilder;
use crate::results::{JobError, JobOutcome};
use crate::spec::SweepSpec;

/// Schema tag written into every checkpoint header.
pub const CKPT_SCHEMA: &str = "mtsim-sweep-ckpt/v1";

/// Why a sweep failed at the orchestration layer (as opposed to a single
/// grid point failing, which is a row in the result table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The sweep specification itself is invalid.
    Config(String),
    /// A checkpoint or output file could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// What was being attempted.
        op: &'static str,
        /// The OS error.
        detail: String,
    },
    /// A checkpoint file failed validation: bad header, bad checksum on a
    /// complete line, malformed record, or impossible field values.
    Corrupt {
        /// Path of the checkpoint.
        path: String,
        /// 1-based line number of the offending line.
        line: usize,
        /// What exactly failed.
        detail: String,
    },
    /// The checkpoint was written by a different sweep specification.
    SpecMismatch {
        /// Spec hash the resume expected (from the spec being resumed).
        expected: u64,
        /// Spec hash recorded in the checkpoint header.
        found: u64,
    },
    /// The sweep stopped early — a checkpoint write failed mid-run, or a
    /// chaos kill fired. Every job that completed before the abort is
    /// durable in the checkpoint and a later `--resume` picks up from
    /// there.
    Aborted {
        /// What triggered the abort.
        reason: String,
        /// Jobs durably completed (including prior checkpointed ones).
        completed: usize,
    },
}

impl SweepError {
    /// Stable machine-readable kind, mirroring [`JobError::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            SweepError::Config(_) => "config",
            SweepError::Io { .. } => "io",
            SweepError::Corrupt { .. } => "corrupt",
            SweepError::SpecMismatch { .. } => "spec-mismatch",
            SweepError::Aborted { .. } => "aborted",
        }
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Config(detail) => write!(f, "invalid sweep: {detail}"),
            SweepError::Io { path, op, detail } => write!(f, "cannot {op} {path}: {detail}"),
            SweepError::Corrupt { path, line, detail } => {
                write!(f, "corrupt checkpoint {path}:{line}: {detail}")
            }
            SweepError::SpecMismatch { expected, found } => write!(
                f,
                "checkpoint was written by a different sweep spec \
                 (want {expected:016x}, found {found:016x}); refusing to resume"
            ),
            SweepError::Aborted { reason, completed } => write!(
                f,
                "sweep aborted after {completed} completed job(s): {reason}; \
                 completed jobs are checkpointed and resumable"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// 64-bit FNV-1a: the checksum guarding every checkpoint line. Chosen
/// over CRC32 for being table-free and over anything cryptographic
/// because the threat model is torn writes and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of a spec's canonical form; binds a checkpoint to its grid.
pub fn spec_hash(spec: &SweepSpec) -> u64 {
    fnv1a64(spec.canonical().as_bytes())
}

// ---------------------------------------------------------------------------
// Line sealing: `{"crc":"<16 hex>",<body>` where the checksum covers every
// byte of `<body>` (which runs to the closing `}`). The fixed-width prefix
// makes validation independent of JSON parsing: a flipped bit anywhere in
// the line is caught before the record is even looked at.
// ---------------------------------------------------------------------------

const CRC_PREFIX: &str = "{\"crc\":\"";
const CRC_LEN: usize = 16;

/// Seals a JSON object (serialized without a `crc` field) into a
/// checkpoint line, checksum first.
fn seal(object_json: &str) -> String {
    debug_assert!(object_json.starts_with('{') && object_json.ends_with('}'));
    let body = &object_json[1..];
    format!("{CRC_PREFIX}{:016x}\",{body}", fnv1a64(body.as_bytes()))
}

/// Validates a sealed line and returns its body (the object minus the crc
/// field, with the leading `{` restored).
fn unseal(line: &str) -> Result<String, String> {
    let rest = line.strip_prefix(CRC_PREFIX).ok_or("missing crc prefix")?;
    if rest.len() < CRC_LEN + 2 {
        return Err("line shorter than a sealed record".into());
    }
    let (hex, tail) = rest.split_at(CRC_LEN);
    let want = u64::from_str_radix(hex, 16).map_err(|_| "crc field is not hex".to_string())?;
    let body = tail.strip_prefix("\",").ok_or("malformed crc field terminator")?;
    let got = fnv1a64(body.as_bytes());
    if got != want {
        return Err(format!(
            "checksum mismatch: line says {want:016x}, content hashes to {got:016x}"
        ));
    }
    Ok(format!("{{{body}"))
}

// ---------------------------------------------------------------------------
// A minimal strict JSON reader — just enough to parse what the sealed
// writer above produces (objects, strings with JsonBuilder's escapes,
// unsigned integers, floats, booleans, null). Anything else is an error,
// which is exactly what a checkpoint validator wants.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Jv {
    /// Object, in source order.
    Obj(Vec<(String, Jv)>),
    /// Array.
    Arr(Vec<Jv>),
    /// String.
    Str(String),
    /// Unsigned integer (the writer only emits `u64` integers).
    U(u64),
    /// Float.
    F(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Jv {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Jv> {
        match self {
            Jv::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Jv::U(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Jv::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Jv, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Jv::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Jv::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Jv::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Jv::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Jv::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Jv::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Jv::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Jv::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            let mut float = false;
            while *pos < b.len() {
                match b[*pos] {
                    b'0'..=b'9' | b'-' | b'+' => *pos += 1,
                    b'.' | b'e' | b'E' => {
                        float = true;
                        *pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number bytes")?;
            if float {
                text.parse().map(Jv::F).map_err(|_| format!("bad float {text:?}"))
            } else if let Ok(n) = text.parse::<u64>() {
                Ok(Jv::U(n))
            } else {
                text.parse().map(Jv::F).map_err(|_| format!("bad number {text:?}"))
            }
        }
        _ => Err(format!("unexpected byte at offset {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".to_string());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

// ---------------------------------------------------------------------------
// Record serialization
// ---------------------------------------------------------------------------

/// Field order for [`RunStats`] in checkpoint records — every field, so
/// resumed jobs reproduce the result table byte for byte.
const STAT_FIELDS: [&str; 18] = [
    "processors",
    "cycles",
    "instructions",
    "busy",
    "idle",
    "overhead",
    "stalls",
    "switches_taken",
    "switches_skipped",
    "forced_switches",
    "reads_issued",
    "retries",
    "timeouts",
    "net_requests",
    "net_latency_sum",
    "net_latency_max",
    "net_queue_cycles",
    "net_fa_combined",
];

fn stat_values(s: &RunStats) -> [u64; 18] {
    [
        s.processors,
        s.cycles,
        s.instructions,
        s.busy,
        s.idle,
        s.overhead,
        s.stalls,
        s.switches_taken,
        s.switches_skipped,
        s.forced_switches,
        s.reads_issued,
        s.retries,
        s.timeouts,
        s.net_requests,
        s.net_latency_sum,
        s.net_latency_max,
        s.net_queue_cycles,
        s.net_fa_combined,
    ]
}

fn stats_from(jv: &Jv, ctx: &str) -> Result<RunStats, String> {
    let mut v = [0u64; 18];
    for (slot, name) in v.iter_mut().zip(STAT_FIELDS) {
        *slot = jv
            .get(name)
            .and_then(Jv::as_u64)
            .ok_or_else(|| format!("{ctx}: missing or non-integer stat {name:?}"))?;
    }
    Ok(RunStats {
        processors: v[0],
        cycles: v[1],
        instructions: v[2],
        busy: v[3],
        idle: v[4],
        overhead: v[5],
        stalls: v[6],
        switches_taken: v[7],
        switches_skipped: v[8],
        forced_switches: v[9],
        reads_issued: v[10],
        retries: v[11],
        timeouts: v[12],
        net_requests: v[13],
        net_latency_sum: v[14],
        net_latency_max: v[15],
        net_queue_cycles: v[16],
        net_fa_combined: v[17],
    })
}

/// Maps a persisted error kind back to the `'static` kind strings
/// [`JobError`] uses in-process.
fn sim_kind_static(kind: &str) -> Option<&'static str> {
    ["watchdog", "fault", "deadlock", "bad-program", "config", "timeout"]
        .into_iter()
        .find(|k| *k == kind)
}

/// The checkpoint header line (line 1 of the stream).
pub(crate) fn header_line(spec_hash: u64, total: usize) -> String {
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("schema").string(CKPT_SCHEMA);
    j.key("spec").string(&format!("{spec_hash:016x}"));
    j.key("total").u64(total as u64);
    j.end();
    seal(&j.finish())
}

/// One persisted job record.
pub(crate) fn record_line(seq: u64, o: &JobOutcome) -> String {
    let mut j = JsonBuilder::new();
    j.begin_object();
    j.key("seq").u64(seq);
    j.key("id").u64(o.spec.id as u64);
    j.key("attempts").u64(u64::from(o.attempts));
    match &o.result {
        Ok(stats) => {
            j.key("status").string("ok");
            j.key("stats").begin_object();
            for (name, value) in STAT_FIELDS.iter().zip(stat_values(stats)) {
                j.key(name).u64(value);
            }
            j.end();
            if let Some(a) = &o.attr {
                j.key("attr").begin_object();
                j.key("busy").u64(a.busy);
                j.key("switch_overhead").u64(a.switch_overhead);
                j.key("memory_stall").u64(a.memory_stall);
                j.key("lock_spin").u64(a.lock_spin);
                j.key("barrier_wait").u64(a.barrier_wait);
                j.key("idle").u64(a.idle);
                j.end();
            }
        }
        Err(e) => {
            j.key("status").string(if o.quarantined { "quarantined" } else { "error" });
            j.key("error_kind").string(e.kind());
            j.key("error").string(e.message());
        }
    }
    j.end();
    seal(&j.finish())
}

/// A validated checkpoint record: which job finished and with what result.
#[derive(Debug, Clone)]
pub struct CkptRecord {
    /// Append sequence number (completion order; informational).
    pub seq: u64,
    /// Grid-point id (the key used to merge on resume).
    pub id: usize,
    /// Attempts the job took (1 = first try).
    pub attempts: u32,
    /// Whether the job was quarantined after exhausting retries.
    pub quarantined: bool,
    /// The persisted result.
    pub result: Result<RunStats, JobError>,
    /// Persisted cycle attribution, when the sweep ran with `attr`.
    pub attr: Option<AttrSummary>,
}

fn record_from(jv: &Jv) -> Result<CkptRecord, String> {
    let seq = jv.get("seq").and_then(Jv::as_u64).ok_or("missing seq")?;
    let id = jv.get("id").and_then(Jv::as_u64).ok_or("missing id")? as usize;
    let attempts = jv.get("attempts").and_then(Jv::as_u64).unwrap_or(1) as u32;
    let status = jv.get("status").and_then(Jv::as_str).ok_or("missing status")?;
    let (result, quarantined) = match status {
        "ok" => {
            let stats = stats_from(jv.get("stats").ok_or("missing stats")?, "stats")?;
            (Ok(stats), false)
        }
        "error" | "quarantined" => {
            let kind = jv.get("error_kind").and_then(Jv::as_str).ok_or("missing error_kind")?;
            let message =
                jv.get("error").and_then(Jv::as_str).ok_or("missing error message")?.to_string();
            let err = match kind {
                "verify" => JobError::Verify { message },
                "panic" => JobError::Panic { message },
                other => JobError::Sim {
                    kind: sim_kind_static(other)
                        .ok_or_else(|| format!("unknown error kind {other:?}"))?,
                    message,
                },
            };
            (Err(err), status == "quarantined")
        }
        other => return Err(format!("unknown status {other:?}")),
    };
    let attr = match jv.get("attr") {
        None => None,
        Some(a) => {
            let f = |name: &str| {
                a.get(name).and_then(Jv::as_u64).ok_or_else(|| format!("missing attr {name:?}"))
            };
            Some(AttrSummary {
                busy: f("busy")?,
                switch_overhead: f("switch_overhead")?,
                memory_stall: f("memory_stall")?,
                lock_spin: f("lock_spin")?,
                barrier_wait: f("barrier_wait")?,
                idle: f("idle")?,
            })
        }
    };
    Ok(CkptRecord { seq, id, attempts, quarantined, result, attr })
}

/// A loaded, fully validated checkpoint stream.
#[derive(Debug)]
pub struct Checkpoint {
    /// Spec hash from the header.
    pub spec_hash: u64,
    /// Grid size from the header.
    pub total: usize,
    /// Validated records keyed by job id (later records win, so a record
    /// re-appended after a torn-tail recovery supersedes nothing — the
    /// torn copy was never valid).
    pub records: HashMap<usize, CkptRecord>,
    /// Whether a torn tail (partial final line, the crash signature) was
    /// discarded.
    pub torn_tail: bool,
    /// Byte length of the valid prefix; resume truncates the file here
    /// before appending.
    pub valid_bytes: u64,
}

/// Loads and validates a checkpoint stream.
///
/// # Errors
///
/// * [`SweepError::Io`] when the file cannot be read;
/// * [`SweepError::Corrupt`] for a bad header, a checksum mismatch or
///   malformed record on any *complete* (newline-terminated) line, or
///   field values that cannot belong to the declared grid.
///
/// A torn tail is *not* an error: it is reported via
/// [`Checkpoint::torn_tail`] and excluded from `valid_bytes`.
pub fn load_checkpoint(path: &str) -> Result<Checkpoint, SweepError> {
    let bytes = std::fs::read(path).map_err(|e| SweepError::Io {
        path: path.to_string(),
        op: "read checkpoint",
        detail: e.to_string(),
    })?;
    let corrupt =
        |line: usize, detail: String| SweepError::Corrupt { path: path.to_string(), line, detail };

    // Split into complete (newline-terminated) lines plus an optional torn
    // tail. Only the torn tail is forgiven; complete lines must validate.
    let mut complete: Vec<&[u8]> = Vec::new();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            complete.push(&bytes[start..i]);
            start = i + 1;
        }
    }
    let torn_tail = start < bytes.len();
    let valid_bytes = start as u64;

    if complete.is_empty() {
        return Err(corrupt(1, "missing header line".into()));
    }

    let mut header = None;
    let mut records: HashMap<usize, CkptRecord> = HashMap::new();
    for (i, raw) in complete.iter().enumerate() {
        let lineno = i + 1;
        let text = std::str::from_utf8(raw)
            .map_err(|_| corrupt(lineno, "line is not valid utf-8".into()))?;
        let body = unseal(text).map_err(|e| corrupt(lineno, e))?;
        let jv = parse_json(&body).map_err(|e| corrupt(lineno, e))?;
        if i == 0 {
            let schema = jv.get("schema").and_then(Jv::as_str).unwrap_or("");
            if schema != CKPT_SCHEMA {
                return Err(corrupt(1, format!("unknown schema {schema:?}")));
            }
            let spec = jv
                .get("spec")
                .and_then(Jv::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| corrupt(1, "missing spec hash".into()))?;
            let total = jv
                .get("total")
                .and_then(Jv::as_u64)
                .ok_or_else(|| corrupt(1, "missing total".into()))?;
            header = Some((spec, total as usize));
        } else {
            let record = record_from(&jv).map_err(|e| corrupt(lineno, e))?;
            let total = header.expect("header parsed first").1;
            if record.id >= total {
                return Err(corrupt(
                    lineno,
                    format!("job id {} out of range for a {total}-point grid", record.id),
                ));
            }
            records.insert(record.id, record);
        }
    }
    let (spec_hash, total) = header.expect("checked non-empty");
    Ok(Checkpoint { spec_hash, total, records, torn_tail, valid_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seal_unseal_roundtrip_and_tamper_detection() {
        let line = seal(r#"{"seq":3,"id":7}"#);
        assert!(line.starts_with(CRC_PREFIX));
        let body = unseal(&line).unwrap();
        assert_eq!(body, r#"{"seq":3,"id":7}"#);
        // Any single-byte change must be caught.
        let mut tampered = line.clone().into_bytes();
        let last = tampered.len() - 3;
        tampered[last] ^= 1;
        let tampered = String::from_utf8(tampered).unwrap();
        assert!(unseal(&tampered).unwrap_err().contains("checksum mismatch"));
        assert!(unseal("garbage").unwrap_err().contains("crc prefix"));
    }

    #[test]
    fn json_parser_handles_writer_output() {
        let jv = parse_json(r#"{"a":1,"b":"x\ny","c":[1,2],"d":{"e":true},"f":0.5}"#).unwrap();
        assert_eq!(jv.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(jv.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(jv.get("c"), Some(&Jv::Arr(vec![Jv::U(1), Jv::U(2)])));
        assert_eq!(jv.get("d").unwrap().get("e"), Some(&Jv::Bool(true)));
        assert_eq!(jv.get("f"), Some(&Jv::F(0.5)));
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{unquoted:1}").is_err());
    }

    #[test]
    fn escaped_strings_roundtrip_through_seal_and_parse() {
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.key("msg").string("a\"b\\c\nd\u{1}e");
        j.end();
        let line = seal(&j.finish());
        let jv = parse_json(&unseal(&line).unwrap()).unwrap();
        assert_eq!(jv.get("msg").unwrap().as_str(), Some("a\"b\\c\nd\u{1}e"));
    }
}
