//! Per-job outcomes and deterministic sweep-level aggregation.

use std::time::Duration;

use mtsim_core::{AttrSummary, RunStats, SimError};

use crate::json::JsonBuilder;
use crate::spec::JobSpec;

/// Why one grid point failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The simulator returned a typed error.
    Sim {
        /// Stable machine-readable kind (`"watchdog"`, `"fault"`,
        /// `"deadlock"`, `"bad-program"`, `"config"`, `"timeout"`).
        kind: &'static str,
        /// The full human-readable error.
        message: String,
    },
    /// The run completed but the final memory image failed the host-side
    /// verifier.
    Verify {
        /// First mismatch description.
        message: String,
    },
    /// The job panicked; the pool isolated it.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl JobError {
    /// Stable machine-readable kind for the result table.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Sim { kind, .. } => kind,
            JobError::Verify { .. } => "verify",
            JobError::Panic { .. } => "panic",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            JobError::Sim { message, .. }
            | JobError::Verify { message }
            | JobError::Panic { message } => message,
        }
    }

    /// Maps a simulator error to its stable kind string.
    pub fn from_sim(err: &SimError) -> JobError {
        let kind = match err {
            SimError::Watchdog { .. } => "watchdog",
            SimError::Fault { .. } => "fault",
            SimError::Deadlock { .. } => "deadlock",
            SimError::BadProgram { .. } => "bad-program",
            SimError::Config { .. } => "config",
            // Wall-clock cancellation by the pool's per-job watchdog: the
            // only nondeterministic simulator error, and the one the retry
            // layer treats as transient.
            SimError::Cancelled { .. } => "timeout",
        };
        JobError::Sim { kind, message: err.to_string() }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

/// One grid point's spec plus its result.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The point that ran.
    pub spec: JobSpec,
    /// Run statistics, or why the point failed.
    pub result: Result<RunStats, JobError>,
    /// Cycle attribution, present only when the job ran with
    /// [`crate::JobSpec::attr`] set and succeeded. Deterministic, so it
    /// may appear in the result table — but only for attributed sweeps,
    /// keeping unattributed output byte-identical to before.
    pub attr: Option<AttrSummary>,
    /// Whether the application artifact came from the cache. Depends on
    /// scheduling, so it feeds telemetry only — never the result table.
    pub cache_hit: bool,
    /// Attempts this job took (1 = succeeded or failed typed on the first
    /// try). Greater than 1 only after transient failures (panic or
    /// wall-clock timeout) were retried.
    pub attempts: u32,
    /// True when the job kept failing transiently until its retry budget
    /// ran out. Quarantined jobs appear in the `failed_jobs` section of
    /// the result table and map to a distinct process exit code.
    pub quarantined: bool,
}

impl JobOutcome {
    /// An outcome for a job that ran exactly once — the common case for
    /// callers constructing outcomes outside the retry layer.
    pub fn once(spec: JobSpec, result: Result<RunStats, JobError>) -> JobOutcome {
        JobOutcome { spec, result, attr: None, cache_hit: false, attempts: 1, quarantined: false }
    }
}

/// A completed sweep: every job outcome (sorted by job id) plus
/// scheduling-dependent telemetry.
///
/// The split matters for reproducibility: [`SweepOutcome::results_json`]
/// and [`SweepOutcome::results_csv`] derive only from specs and
/// deterministic simulation results, so they are byte-identical across
/// worker counts and submission orders. Wall-clock, throughput, and
/// cache-hit telemetry live in separate accessors (and
/// [`SweepOutcome::telemetry_json`]) because they legitimately vary from
/// run to run.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Outcomes sorted by job id.
    pub jobs: Vec<JobOutcome>,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Artifact-cache hits. For a sweep running against a shared
    /// process-lifetime cache these count this sweep's lookups only.
    pub cache_hits: u64,
    /// Artifact-cache misses (builds performed).
    pub cache_misses: u64,
    /// Jobs whose `Machine` was built from a worker's recycled buffers
    /// (same program, same scratch key) instead of fresh allocations.
    /// Scheduling-dependent — telemetry only, never the result table.
    pub machine_reuses: u64,
}

impl SweepOutcome {
    /// Jobs that completed and verified.
    pub fn ok_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.result.is_ok()).count()
    }

    /// Jobs that failed (simulator error, verify mismatch, or panic).
    pub fn failed_count(&self) -> usize {
        self.jobs.len() - self.ok_count()
    }

    /// Jobs quarantined after exhausting their transient-failure retry
    /// budget (a subset of [`SweepOutcome::failed_count`]).
    pub fn quarantined_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.quarantined).count()
    }

    /// Simulated cycles summed over successful jobs.
    pub fn total_sim_cycles(&self) -> u64 {
        self.jobs.iter().filter_map(|j| j.result.as_ref().ok()).map(|s| s.cycles).sum()
    }

    /// Jobs completed per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.jobs.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Simulated cycles per wall-clock second — the sweep engine's
    /// headline throughput number.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_sim_cycles() as f64 / secs
        } else {
            0.0
        }
    }

    /// The deterministic result table as JSON (schema `mtsim-sweep/v1`).
    ///
    /// Contains only data that is a pure function of the job specs and the
    /// (deterministic) simulations: byte-identical for the same grid at
    /// any worker count. Telemetry is deliberately excluded; see
    /// [`SweepOutcome::telemetry_json`].
    pub fn results_json(&self) -> String {
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.key("schema").string("mtsim-sweep/v1");
        j.key("jobs").begin_array();
        for job in &self.jobs {
            let s = &job.spec;
            j.begin_object();
            j.key("id").u64(s.id as u64);
            j.key("app").string(s.app.name());
            j.key("model").string(s.model.name());
            j.key("scale").string(s.scale.name());
            j.key("procs").u64(s.procs as u64);
            j.key("threads").u64(s.threads_per_proc as u64);
            j.key("latency").u64(s.latency);
            j.key("seed").u64(s.seed);
            j.key("drop_rate").f64(s.drop_rate);
            j.key("net").string(s.net.name());
            match &job.result {
                Ok(r) => {
                    j.key("status").string("ok");
                    j.key("cycles").u64(r.cycles);
                    j.key("instructions").u64(r.instructions);
                    j.key("busy").u64(r.busy);
                    j.key("idle").u64(r.idle);
                    j.key("overhead").u64(r.overhead);
                    j.key("stalls").u64(r.stalls);
                    j.key("switches_taken").u64(r.switches_taken);
                    j.key("switches_skipped").u64(r.switches_skipped);
                    j.key("forced_switches").u64(r.forced_switches);
                    j.key("reads_issued").u64(r.reads_issued);
                    j.key("retries").u64(r.retries);
                    j.key("timeouts").u64(r.timeouts);
                    j.key("utilization").f64(r.utilization());
                    j.key("net_requests").u64(r.net_requests);
                    j.key("net_queue_cycles").u64(r.net_queue_cycles);
                    j.key("net_fa_combined").u64(r.net_fa_combined);
                    if let Some(a) = &job.attr {
                        j.key("attr").begin_object();
                        for (cat, cycles) in a.by_cat() {
                            j.key(cat.name()).u64(cycles);
                        }
                        j.end();
                    }
                }
                Err(e) => {
                    j.key("status").string("error");
                    j.key("error_kind").string(e.kind());
                    j.key("error").string(e.message());
                }
            }
            j.end();
        }
        j.end();
        // Quarantine only happens under wall-clock watchdogs or injected
        // panics, which are inherently nondeterministic — so this section
        // (and the summary key below) appear only when non-empty, keeping
        // deterministic sweeps byte-identical to the historical format.
        if self.quarantined_count() > 0 {
            j.key("failed_jobs").begin_array();
            for job in self.jobs.iter().filter(|j| j.quarantined) {
                let err = job.result.as_ref().expect_err("quarantined jobs carry an error");
                j.begin_object();
                j.key("id").u64(job.spec.id as u64);
                j.key("error_kind").string(err.kind());
                j.key("error").string(err.message());
                j.key("attempts").u64(u64::from(job.attempts));
                j.end();
            }
            j.end();
        }
        j.key("summary").begin_object();
        j.key("total").u64(self.jobs.len() as u64);
        j.key("ok").u64(self.ok_count() as u64);
        j.key("failed").u64(self.failed_count() as u64);
        if self.quarantined_count() > 0 {
            j.key("quarantined").u64(self.quarantined_count() as u64);
        }
        j.key("sim_cycles").u64(self.total_sim_cycles());
        j.end();
        j.end();
        j.finish()
    }

    /// The deterministic result table as CSV (same fields and the same
    /// determinism contract as [`SweepOutcome::results_json`]).
    pub fn results_csv(&self) -> String {
        // Attribution columns appear only when at least one job carries
        // them (i.e. the sweep ran with `attr = true`), so unattributed
        // output stays byte-identical to the pre-observability format.
        let with_attr = self.jobs.iter().any(|j| j.attr.is_some());
        let mut out = String::from(
            "id,app,model,scale,procs,threads,latency,seed,drop_rate,net,status,cycles,\
             instructions,busy,idle,overhead,stalls,switches_taken,switches_skipped,\
             forced_switches,reads_issued,retries,timeouts,utilization,net_requests,\
             net_queue_cycles,net_fa_combined,error_kind\n",
        );
        if with_attr {
            let trimmed = out.trim_end().to_string();
            out = trimmed
                + ",attr_busy,attr_switch_ovh,attr_mem_stall,attr_lock_spin,\
                   attr_barrier_wait,attr_idle\n";
        }
        for job in &self.jobs {
            let s = &job.spec;
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},",
                s.id,
                s.app.name(),
                s.model.name(),
                s.scale.name(),
                s.procs,
                s.threads_per_proc,
                s.latency,
                s.seed,
                s.drop_rate,
                s.net.name()
            ));
            match &job.result {
                Ok(r) => out.push_str(&format!(
                    "ok,{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},",
                    r.cycles,
                    r.instructions,
                    r.busy,
                    r.idle,
                    r.overhead,
                    r.stalls,
                    r.switches_taken,
                    r.switches_skipped,
                    r.forced_switches,
                    r.reads_issued,
                    r.retries,
                    r.timeouts,
                    r.utilization(),
                    r.net_requests,
                    r.net_queue_cycles,
                    r.net_fa_combined
                )),
                Err(e) => {
                    out.push_str(&format!("error,,,,,,,,,,,,,,,,,{}", e.kind()));
                }
            }
            if with_attr {
                match &job.attr {
                    Some(a) => out.push_str(&format!(
                        ",{},{},{},{},{},{}",
                        a.busy,
                        a.switch_overhead,
                        a.memory_stall,
                        a.lock_spin,
                        a.barrier_wait,
                        a.idle
                    )),
                    None => out.push_str(",,,,,,"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Scheduling-dependent telemetry as JSON: wall-clock, throughput,
    /// worker count, cache statistics. Varies run to run by design — keep
    /// it out of golden files.
    pub fn telemetry_json(&self) -> String {
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.key("workers").u64(self.workers as u64);
        j.key("wall_ms").f64(self.wall.as_secs_f64() * 1e3);
        j.key("jobs").u64(self.jobs.len() as u64);
        j.key("ok").u64(self.ok_count() as u64);
        j.key("failed").u64(self.failed_count() as u64);
        j.key("jobs_per_sec").f64(self.jobs_per_sec());
        j.key("sim_cycles_per_sec").f64(self.sim_cycles_per_sec());
        j.key("cache_hits").u64(self.cache_hits);
        j.key("cache_misses").u64(self.cache_misses);
        j.key("machine_reuses").u64(self.machine_reuses);
        j.end();
        j.finish()
    }

    /// One-line human summary for stderr.
    pub fn summary_line(&self) -> String {
        format!(
            "{} jobs ({} ok, {} failed) in {:.2}s on {} worker(s): {:.1} jobs/s, {:.2e} sim-cycles/s, cache {}/{} hits",
            self.jobs.len(),
            self.ok_count(),
            self.failed_count(),
            self.wall.as_secs_f64(),
            self.workers,
            self.jobs_per_sec(),
            self.sim_cycles_per_sec(),
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn outcome_with(results: Vec<Result<RunStats, JobError>>) -> SweepOutcome {
        let spec = SweepSpec { threads: vec![1; results.len()], ..SweepSpec::default() };
        let specs = spec.expand();
        SweepOutcome {
            jobs: specs
                .into_iter()
                .zip(results)
                .map(|(spec, result)| JobOutcome::once(spec, result))
                .collect(),
            workers: 1,
            wall: Duration::from_millis(10),
            cache_hits: 0,
            cache_misses: 1,
            machine_reuses: 0,
        }
    }

    #[test]
    fn json_carries_ok_and_error_rows() {
        let ok = RunStats { processors: 2, cycles: 100, busy: 150, ..RunStats::default() };
        let err = JobError::Sim { kind: "watchdog", message: "expired".into() };
        let out = outcome_with(vec![Ok(ok), Err(err)]);
        let json = out.results_json();
        assert!(json.contains(r#""schema":"mtsim-sweep/v1""#));
        assert!(json.contains(r#""status":"ok""#));
        assert!(json.contains(r#""cycles":100"#));
        assert!(json.contains(r#""utilization":0.75"#));
        assert!(json.contains(r#""error_kind":"watchdog""#));
        assert!(json.contains(r#""summary":{"total":2,"ok":1,"failed":1"#));
        // Telemetry stays out of the deterministic table.
        assert!(!json.contains("wall"));
        assert!(!json.contains("cache"));
    }

    #[test]
    fn csv_has_one_row_per_job_plus_header() {
        let ok = RunStats { processors: 1, cycles: 5, ..RunStats::default() };
        let out = outcome_with(vec![Ok(ok), Err(JobError::Panic { message: "boom".into() })]);
        let csv = out.results_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        let cols = lines[0].split(',').count();
        assert!(lines[1..].iter().all(|l| l.split(',').count() == cols));
        assert!(lines[2].contains("error") && lines[2].ends_with("panic"));
    }

    #[test]
    fn attr_columns_appear_only_for_attributed_sweeps() {
        let ok = RunStats { processors: 1, cycles: 10, ..RunStats::default() };
        let plain = outcome_with(vec![Ok(ok)]);
        assert!(!plain.results_csv().contains("attr_busy"));
        assert!(!plain.results_json().contains(r#""attr""#));

        let mut attributed = outcome_with(vec![Ok(ok), Ok(ok)]);
        attributed.jobs[0].attr = Some(AttrSummary {
            busy: 6,
            switch_overhead: 1,
            memory_stall: 2,
            lock_spin: 0,
            barrier_wait: 0,
            idle: 1,
        });
        let csv = attributed.results_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].ends_with("attr_barrier_wait,attr_idle"));
        let cols = lines[0].split(',').count();
        assert!(lines[1..].iter().all(|l| l.split(',').count() == cols), "ragged csv:\n{csv}");
        assert!(lines[1].contains(",6,1,2,0,0,1"));
        let json = attributed.results_json();
        assert!(json.contains(r#""attr":{"busy":6,"switch-ovh":1,"mem-stall":2"#));
    }

    #[test]
    fn quarantined_jobs_surface_in_failed_jobs_section_only_when_present() {
        let ok = RunStats { processors: 1, cycles: 10, ..RunStats::default() };
        let clean = outcome_with(vec![Ok(ok), Ok(ok)]);
        assert!(!clean.results_json().contains("failed_jobs"));
        assert!(!clean.results_json().contains("\"quarantined\""));

        let mut out = outcome_with(vec![Ok(ok), Err(JobError::Panic { message: "flaky".into() })]);
        out.jobs[1].quarantined = true;
        out.jobs[1].attempts = 3;
        assert_eq!(out.quarantined_count(), 1);
        let json = out.results_json();
        assert!(json.contains(
            r#""failed_jobs":[{"id":1,"error_kind":"panic","error":"flaky","attempts":3}]"#
        ));
        assert!(json.contains(r#""failed":1,"quarantined":1"#));
    }

    #[test]
    fn counters_and_throughput() {
        let ok = RunStats { cycles: 1000, ..RunStats::default() };
        let out = outcome_with(vec![Ok(ok), Ok(ok), Err(JobError::Verify { message: "m".into() })]);
        assert_eq!(out.ok_count(), 2);
        assert_eq!(out.failed_count(), 1);
        assert_eq!(out.total_sim_cycles(), 2000);
        assert!(out.jobs_per_sec() > 0.0);
        assert!(out.telemetry_json().contains(r#""workers":1"#));
    }
}
